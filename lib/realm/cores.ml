(* A binary min-heap of core free times would be asymptotically right, but
   pools are at most a few dozen cores: a linear scan is simpler and just as
   fast at that size. *)

type t = { free_at : float array }

let create ~cores =
  if cores <= 0 then invalid_arg "Cores.create: cores <= 0";
  { free_at = Array.make cores 0. }

let cores t = Array.length t.free_at

let execute_core t ~ready ~duration =
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if t.free_at.(i) < t.free_at.(!best) then best := i
  done;
  let start = Float.max ready t.free_at.(!best) in
  let finish = start +. duration in
  t.free_at.(!best) <- finish;
  (!best, start, finish)

let execute t ~ready ~duration =
  let _, _, finish = execute_core t ~ready ~duration in
  finish

let busy_until t = Array.fold_left Float.max 0. t.free_at

let reset t = Array.fill t.free_at 0 (Array.length t.free_at) 0.
