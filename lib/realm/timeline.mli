(** Completion-time DAG with binding-predecessor critical-path
    attribution.

    The machine simulators record one node per simulated operation, each
    pointing at its {e binding predecessor}: the operation whose
    completion was the argmax constraint on this one's ready time.
    Walking that chain back from the last-finishing node yields the
    critical path; crediting each node with [finish - pred.finish]
    telescopes exactly to the makespan. *)

type node = {
  id : int;
  name : string;
  cat : string;
  track : int;  (** trace tid the node is emitted on *)
  start : float;  (** simulated seconds *)
  finish : float;
  pred : int;  (** binding predecessor id, or {!nil} *)
  args : (string * Obs.Trace.arg) list;
}

type t

val nil : int
val create : unit -> t
val length : t -> int

val binding : (float * int) list -> float * int
(** Argmax over (ready time, producing node) constraints, starting from
    [(0., nil)]; ties keep the earlier candidate (deterministic). *)

val op :
  t ->
  ?cat:string ->
  ?args:(string * Obs.Trace.arg) list ->
  name:string ->
  track:int ->
  start:float ->
  finish:float ->
  pred:int ->
  unit ->
  int
(** Append a node, returning its id. [pred] must be {!nil} or an existing
    node id; simulators must keep [pred.finish <= finish]. *)

val node : t -> int -> node
val nodes : t -> node list

val makespan : t -> float
(** Latest finish over all nodes (0 when empty). *)

val last : t -> int
(** Id of the node achieving {!makespan} ({!nil} when empty). *)

val critical_path : t -> int list
(** Pred chain of {!last}, chronological order. *)

val critical_contributions : t -> (int * float * float) list
(** [(id, start, duration)] per critical-path node; the spans tile
    [\[0, makespan\]] — their durations sum to {!makespan}. *)

val emit :
  ?pid:int ->
  ?crit_track:int ->
  ?track_names:(int * string) list ->
  t ->
  Obs.Trace.t ->
  unit
(** Emit every node as a virtual-time complete span on its own track
    (critical-path members tagged with a [crit] arg), plus a dedicated
    [crit_track] (default 1_000_000) whose spans tile [0, makespan]. *)
