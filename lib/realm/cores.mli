(** Analytic multiserver core pool.

    Tasks submitted in nondecreasing ready-time order are placed on the
    earliest-free core; the pool tracks each core's next free instant.
    This models intra-node task scheduling without an event loop: the
    completion timestamp of each task is returned directly. *)

type t

val create : cores:int -> t
val cores : t -> int

val execute : t -> ready:float -> duration:float -> float
(** Completion time of a task that becomes ready at [ready] and runs for
    [duration] on one core. *)

val execute_core : t -> ready:float -> duration:float -> int * float * float
(** Like {!execute} but also reports placement: [(core, start, finish)].
    [start > ready] means the task queued behind the core's previous
    occupant — the simulators use this to attribute core queueing on the
    critical path. *)

val busy_until : t -> float
(** When the last core frees up. *)

val reset : t -> unit
