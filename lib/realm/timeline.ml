(* Completion-time DAG recorded by the machine simulators.

   Each simulated operation (task, copy, fill, barrier, control issue)
   becomes a node carrying its [start]/[finish] in simulated seconds and
   the id of its *binding predecessor* — the operation whose completion
   was the argmax constraint on this one's ready time (control chain,
   scalar result, data availability, WAR release, or core queueing).

   Binding predecessors give critical-path attribution for free: walking
   the pred chain back from the last-finishing node yields the critical
   path, and crediting each node with [finish - pred.finish] telescopes
   exactly to the makespan. The simulators maintain the invariant
   [pred.finish <= node.finish], so every contribution is nonnegative. *)

type node = {
  id : int;
  name : string;
  cat : string;
  track : int; (* trace tid the node is emitted on *)
  start : float; (* simulated seconds *)
  finish : float;
  pred : int; (* binding predecessor id, or [nil] *)
  args : (string * Obs.Trace.arg) list;
}

type t = { mutable arr : node array; mutable len : int }

let nil = -1

let create () = { arr = [||]; len = 0 }

(* Argmax over (ready time, producing node) constraints; ties keep the
   earlier candidate, so attribution is deterministic. *)
let binding cands =
  List.fold_left
    (fun (bt, bi) (t, i) -> if t > bt then (t, i) else (bt, bi))
    (0., nil) cands

let length t = t.len

let node t id =
  if id < 0 || id >= t.len then invalid_arg "Timeline.node: bad id";
  t.arr.(id)

let op t ?(cat = "") ?(args = []) ~name ~track ~start ~finish ~pred () =
  if pred <> nil && (pred < 0 || pred >= t.len) then
    invalid_arg "Timeline.op: pred is not an existing node";
  let id = t.len in
  let n = { id; name; cat; track; start; finish; pred; args } in
  let cap = Array.length t.arr in
  if id >= cap then begin
    let arr = Array.make (max 64 (2 * cap)) n in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(id) <- n;
  t.len <- t.len + 1;
  id

let nodes t = List.init t.len (fun i -> t.arr.(i))

let makespan t =
  let m = ref 0. in
  for i = 0 to t.len - 1 do
    if t.arr.(i).finish > !m then m := t.arr.(i).finish
  done;
  !m

(* The node the makespan is measured at: latest finish, earliest id on
   ties (deterministic). *)
let last t =
  let best = ref nil in
  for i = 0 to t.len - 1 do
    if !best = nil || t.arr.(i).finish > t.arr.(!best).finish then best := i
  done;
  !best

let critical_path t =
  let rec walk acc id = if id = nil then acc else walk (id :: acc) t.arr.(id).pred in
  let id = last t in
  if id = nil then [] else walk [] id

(* (node id, span start, span duration) along the critical path; spans
   tile [0, makespan] because each starts at its predecessor's finish. *)
let critical_contributions t =
  let prev_finish = ref 0. in
  List.map
    (fun id ->
      let n = t.arr.(id) in
      let start = !prev_finish in
      prev_finish := n.finish;
      (id, start, n.finish -. start))
    (critical_path t)

let emit ?pid ?(crit_track = 1_000_000) ?(track_names = []) t trace =
  if Obs.Trace.enabled trace then begin
    List.iter
      (fun (tid, name) -> Obs.Trace.set_thread_name trace ?pid ~tid name)
      track_names;
    let crit = Array.make (max 1 t.len) false in
    List.iter (fun id -> crit.(id) <- true) (critical_path t);
    for i = 0 to t.len - 1 do
      let n = t.arr.(i) in
      let args = if crit.(i) then ("crit", Obs.Trace.Bool true) :: n.args else n.args in
      Obs.Trace.complete_v trace ?pid ~tid:n.track ~cat:n.cat ~args
        ~ts_s:n.start ~dur_s:(n.finish -. n.start) n.name
    done;
    Obs.Trace.set_thread_name trace ?pid ~tid:crit_track "critical path";
    List.iter
      (fun (id, start, dur) ->
        let n = t.arr.(id) in
        Obs.Trace.complete_v trace ?pid ~tid:crit_track ~cat:"crit"
          ~args:[ ("node", Obs.Trace.Int id) ]
          ~ts_s:start ~dur_s:dur n.name)
      (critical_contributions t)
  end
