(** Per-rank point-to-point channel state, keyed by copy id.

    The compiler's synchronisation (paper §3.4) is a credit protocol per
    copy pair [(copy_id, src color, dst color)]: the producer consumes
    one write-after-read credit per issue, the consumer's [Await]
    consumes one read-after-write token per pair and its [Release]
    grants the next credit. On the wire, a token {e is} the [Data] frame
    itself (the count of queued frames for a pair is its raw counter)
    and a credit is a [Credit] frame incrementing the producer-side
    counter here.

    Tables live for the whole program run, not one block: copy ids are
    program-unique, so frames racing ahead of a slower rank (a credit or
    fragment for a block the receiver has not entered yet) accumulate
    here harmlessly until that block's instructions consume them. This
    is what lets ranks run fully asynchronously with no inter-block
    barrier.

    Epochs are a wire-integrity check, not synchronisation: each pair's
    [Data] frames carry a send counter, and a gap or reordering (which
    an ordered transport should make impossible) raises
    {!Wire.Malformed}. *)

type msg = {
  epoch : int;
  runs : (int * int) array;
  payload : float array;
}

(** One finalize-phase fragment, broadcast by the owner of its source
    color: [(src_color, dst_color, runs, payload)] with [dst_color = -1]
    for root-region destinations. *)
type fragment = {
  src_color : int;
  dst_color : int;
  fruns : (int * int) array;
  fpayload : float array;
}

type t

val create : unit -> t

val war : t -> int * int * int -> int ref
(** Producer-side credit counter of a pair; created at zero on first
    touch (a credit can arrive before the producer registers the
    pair). *)

val add_credit : t -> cid:int -> i:int -> j:int -> unit

val next_send_epoch : t -> cid:int -> i:int -> j:int -> int
(** Allocate the producer-side epoch for the pair's next [Data] frame. *)

val on_data :
  t -> cid:int -> i:int -> j:int -> epoch:int -> runs:(int * int) array ->
  payload:float array -> unit
(** Queue a received fragment; raises {!Wire.Malformed} when [epoch] is
    not the pair's next expected one. *)

val queued : t -> cid:int -> i:int -> j:int -> int
(** Received-but-unconsumed [Data] frames of a pair — its raw count. *)

val pop_data : t -> cid:int -> i:int -> j:int -> msg
(** Dequeue the oldest fragment; raises [Invalid_argument] when empty
    (callers gate on {!queued}). *)

val on_final :
  t -> cid:int -> i:int -> j:int -> runs:(int * int) array ->
  payload:float array -> unit

val final_count : t -> cid:int -> int

val take_final : t -> cid:int -> fragment list
(** Remove and return all collected fragments of a finalize copy, in
    arrival order (callers impose the deterministic apply order). *)

val apply :
  reduce:Regions.Privilege.redop option ->
  fields:Regions.Field.t list ->
  runs:(int * int) array ->
  payload:float array ->
  Regions.Physical.t ->
  unit
(** Scatter a field-major payload into the destination instance along
    the given [(offset, len)] runs — the receiver half of
    {!Spmd.Copy_plan.gather}. Plain copies blit; reductions fold with
    the operator. Bounds and size are validated against the instance
    ({!Wire.Malformed} on mismatch: a frame must never write outside
    its destination). *)
