(** Tree-based collectives: barrier and scalar allreduce (paper §4.4).

    Ranks form a static binary tree (parent [(r-1)/2], children [2r+1]
    and [2r+2]). One operation: every rank deposits its local
    [(color, partial)] contributions; leaves send them up; each inner
    node forwards once its subtree is complete; the root folds {e all}
    contributions in ascending color order — exactly the sequential
    interpreter's fold, so the result is bitwise deterministic however
    the messages interleaved — and broadcasts the result back down. A
    barrier is the degenerate allreduce with no contributions.

    Operations are identified by a sequence number every rank allocates
    in the same order — the replicated instruction stream is identical
    on all ranks, so no negotiation is needed. Frames for a sequence the
    local rank has not begun yet (a faster subtree) buffer in the slot
    table until it catches up.

    The module is a pure state machine: {!on_up}/{!on_down} record
    incoming frames, {!poll} says which frames to send now and whether
    the result is in. The engine owns all actual sends. *)

type t

type action =
  | Send_up of int * (int * float) array  (** (parent, contributions) *)
  | Send_down of int * float  (** (child, folded result) *)

val create : rank:int -> size:int -> t

val parent : rank:int -> int option
val children : rank:int -> size:int -> int list

val begin_op :
  t -> op:Regions.Privilege.redop -> values:(int * float) list -> int
(** Deposit this rank's contributions and allocate the operation's
    sequence number. Call exactly once per collective instruction
    instance, in program order. *)

val on_up : t -> seq:int -> (int * float) array -> unit
val on_down : t -> seq:int -> float -> unit

val poll : t -> seq:int -> action list * float option
(** Frames that have become sendable (each returned exactly once), and
    the operation's result when complete on this rank. *)

val arrived : t -> seq:int -> int
(** Contribution frames gathered locally so far (diagnostics): own
    deposit plus child subtree messages received. *)

val completed : t -> seq:int -> bool
(** Whether the result has reached this rank (diagnostics; side-effect
    free, unlike {!poll}). *)

val finish : t -> seq:int -> unit
(** Drop a completed operation's slot (after the result is consumed). *)
