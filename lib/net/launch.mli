(** Drivers for distributed runs: the deterministic in-process loopback
    and the multi-process fork launcher.

    {!run_loopback} steps every rank's {!Engine} cooperatively over the
    {!Transport.loopback} hub — fully deterministic (same schedule every
    run), sanitizer-capable (all ranks share one process), and with
    exact deadlock detection: when no queue holds a frame and no engine
    can step, the blocked state is global by construction.

    {!launch} forks one OS process per shard over a pre-created
    {!Transport.unix_mesh} or {!Transport.tcp_mesh}. Every process runs
    the whole program against its private context; at the end each child
    ships a marshalled state snapshot and its wire statistics to rank 0
    and broadcasts a goodbye, and rank 0 verifies all final states are
    bitwise identical. Failures never hang: a blocked rank's watchdog
    raises {!Spmd.Exec.Deadlock} (exit code 3 in a child), a crashed
    rank surfaces as an EOF-before-goodbye in its peers' reports, and
    the parent kills survivors before reaping. *)

(** Final program state, in canonical order: sorted scalar bindings and
    sorted per-root-region field columns. Structural equality is bitwise
    equality of the run results. *)
type state = {
  scalars : (string * float) list;
  regions : (string * (string * float array) list) list;
}

val snapshot_state : Interp.Run.context -> state
val states_equal : state -> state -> bool

val run_loopback :
  ?fault:Resilience.Fault.t ->
  ?stats:Spmd.Exec.stats ->
  ?trace:Obs.Trace.t ->
  ?sanitize:bool ->
  Spmd.Prog.t ->
  Interp.Run.context ->
  unit
(** Run the program on the loopback transport, one simulated rank per
    shard ([ctx] is rank 0; the other ranks replay on private contexts,
    and all final states are checked identical). Raises
    {!Spmd.Exec.Deadlock} with per-rank diagnostics when every rank is
    blocked with empty queues, {!Spmd.Sanitizer.Race} under [~sanitize]
    on a missing happens-before edge, and [Failure] if ranks diverge. *)

type outcome = {
  ok : bool;
  state : state option;  (** rank 0's final state, when the run completed *)
  detail : string list;  (** human-readable failure evidence, empty when ok *)
  diag : Resilience.Diag.t option;
      (** structured stall report (deadlock or gather timeout) *)
  exits : (int * string) list;  (** child rank -> exit/signal description *)
  msgs : int;  (** wire frames sent, summed over all ranks *)
  bytes_on_wire : int;  (** frame bytes incl. length prefixes, all ranks *)
  send_retries : int;  (** injected-fault resends, all ranks *)
}

val launch :
  ?transport:[ `Unix | `Tcp ] ->
  ?fault:Resilience.Fault.t ->
  ?kill:int * int ->
  ?watchdog:float ->
  ?stats:Spmd.Exec.stats ->
  ?trace:Obs.Trace.t ->
  Spmd.Prog.t ->
  outcome
(** Fork [shards - 1] children (rank 0 stays in the caller), run the
    program to completion on every rank, gather and cross-check final
    states at rank 0, and reap everything. Never raises on a failed run
    — the outcome says what happened.

    [kill = (rank, n)] hard-kills the given child rank at its [n]-th
    physical send (fault-injection hook for crash testing; rank 0 is not
    killable since it reports the outcome). [fault] arms the
    {!Resilience.Fault.Net_send} site in every rank's transport: with
    transient rates the run recovers by retry/reconnect and [ok] stays
    [true], with [send_retries] counting the resends.

    [watchdog] (default [30.]) bounds every blocked wait, so a killed or
    wedged peer yields a structured [diag] instead of a hang. *)
