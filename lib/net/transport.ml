exception Peer_down of int

let () =
  Printexc.register_printer (function
    | Peer_down r -> Some (Printf.sprintf "Net.Transport.Peer_down(rank %d)" r)
    | _ -> None)

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_recvd : int;
  mutable retries : int;
  mutable reconnects : int;
}

let fresh_stats () =
  { msgs_sent = 0; bytes_sent = 0; msgs_recvd = 0; retries = 0; reconnects = 0 }

type event = Msg of int * Bytes.t | Closed of int | Timeout

type t = {
  rank : int;
  size : int;
  stats : stats;
  send_fn : int -> Bytes.t -> unit;
  recv_fn : float -> event;
  alive_fn : int -> bool;
  close_fn : unit -> unit;
}

let rank t = t.rank
let size t = t.size
let stats t = t.stats
let send t ~dst b = t.send_fn dst b
let recv t ~timeout = t.recv_fn timeout
let alive t r = t.alive_fn r
let close t = t.close_fn ()

(* Every send draws the Net_send site first; an injected transient failure
   re-attempts (after [reconnect dst], a no-op except on the TCP connector
   side) up to the policy cap. The draw advances per *attempt*, so a retry
   faces a fresh decision — a transient fault schedule recovers, a
   rate-1.0 schedule exhausts the cap and declares the peer down. *)
let faulty ?fault ~rank ~stats ~reconnect raw_send dst bytes =
  match fault with
  | None -> raw_send dst bytes
  | Some inj ->
      let pol = Resilience.Fault.policy inj in
      let rec attempt n =
        if Resilience.Fault.draw inj (Resilience.Fault.Net_send dst) ~shard:rank
        then begin
          if n >= pol.Resilience.Fault.net_retries then raise (Peer_down dst);
          stats.retries <- stats.retries + 1;
          reconnect dst;
          attempt (n + 1)
        end
        else raw_send dst bytes
      in
      attempt 0

(* 4-byte length prefix; counted in [bytes_sent] on every transport so
   loopback and socket byte totals are comparable. *)
let prefix_bytes = 4

(* ---------- loopback ---------- *)

let loopback ?fault ~size () =
  let queues = Array.init size (fun _ -> Queue.create ()) in
  Array.init size (fun rank ->
      let stats = fresh_stats () in
      let raw_send dst bytes =
        if dst < 0 || dst >= size then raise (Peer_down dst);
        Queue.push (rank, Bytes.copy bytes) queues.(dst);
        stats.msgs_sent <- stats.msgs_sent + 1;
        stats.bytes_sent <- stats.bytes_sent + Bytes.length bytes + prefix_bytes
      in
      {
        rank;
        size;
        stats;
        send_fn =
          faulty ?fault ~rank ~stats ~reconnect:(fun _ -> ()) raw_send;
        recv_fn =
          (fun _timeout ->
            match Queue.take_opt queues.(rank) with
            | Some (src, bytes) ->
                stats.msgs_recvd <- stats.msgs_recvd + 1;
                Msg (src, bytes)
            | None -> Timeout);
        alive_fn = (fun _ -> true);
        close_fn = (fun () -> ());
      })

(* ---------- socket plumbing ---------- *)

let really_write fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let really_read fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = Unix.read fd b off (n - off) in
      if r = 0 then raise End_of_file;
      go (off + r)
    end
  in
  go 0;
  b

let is_disconnect = function
  | Unix.Unix_error
      ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ENOTCONN), _, _)
    ->
      true
  | _ -> false

let frame_of bytes =
  let n = Bytes.length bytes in
  let out = Bytes.create (prefix_bytes + n) in
  Bytes.set_int32_le out 0 (Int32.of_int n);
  Bytes.blit bytes 0 out prefix_bytes n;
  out

let read_frame fd =
  let len = Int32.to_int (Bytes.get_int32_le (really_read fd prefix_bytes) 0) in
  if len < 0 || len > 1 lsl 30 then raise End_of_file;
  really_read fd len

(* ---------- meshes ---------- *)

type mesh =
  | Munix of { size : int; fds : Unix.file_descr array array }
  | Mtcp of {
      size : int;
      listeners : Unix.file_descr array;
      ports : int array;
    }

let mesh_size = function Munix { size; _ } -> size | Mtcp { size; _ } -> size

let unix_mesh ~size =
  let fds = Array.make_matrix size size Unix.stdin in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      fds.(i).(j) <- a;
      fds.(j).(i) <- b
    done
  done;
  Munix { size; fds }

(* Ephemeral ports on the loopback interface: the parent binds every
   listener before forking, so there is nothing to race or collide on;
   children inherit the listening sockets and the port table. *)
let tcp_mesh ~size =
  let listeners =
    Array.init size (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen fd (size + 2);
        fd)
  in
  let ports =
    Array.map
      (fun fd ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> port
        | Unix.ADDR_UNIX _ -> assert false)
      listeners
  in
  Mtcp { size; listeners; ports }

let hello_of rank =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int rank);
  b

let dial ~rank port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  really_write fd (hello_of rank);
  fd

let endpoint ?fault ?(on_send = fun () -> ()) mesh ~rank =
  (* Writing to a dying peer must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let size = mesh_size mesh in
  if rank < 0 || rank >= size then
    invalid_arg (Printf.sprintf "Net.Transport.endpoint: rank %d of %d" rank size);
  let stats = fresh_stats () in
  let peers : Unix.file_descr option array = Array.make size None in
  let selfq : (int * Bytes.t) Queue.t = Queue.create () in
  let listener, redial =
    match mesh with
    | Munix { fds; _ } ->
        (* Keep this rank's row; close every fd belonging to other
           ranks (their row entries are their processes' copies). *)
        for i = 0 to size - 1 do
          for j = 0 to size - 1 do
            if i <> j then
              if i = rank then peers.(j) <- Some fds.(i).(j)
              else Unix.close fds.(i).(j)
          done
        done;
        (None, fun _ -> ())
    | Mtcp { listeners; ports; _ } ->
        Array.iteri
          (fun r fd -> if r <> rank then Unix.close fd)
          listeners;
        let listener = listeners.(rank) in
        let accept_one () =
          let fd, _ = Unix.accept listener in
          let hello = really_read fd 8 in
          let r = Int64.to_int (Bytes.get_int64_le hello 0) in
          if r < 0 || r >= size then (Unix.close fd; raise End_of_file);
          (match peers.(r) with
          | Some old ->
              (try Unix.close old with Unix.Unix_error _ -> ());
              stats.reconnects <- stats.reconnects + 1
          | None -> ());
          peers.(r) <- Some fd
        in
        (* Rendezvous: connect downward, accept from above. Connects
           complete against the peers' listen backlogs, so the order
           cannot deadlock. *)
        for q = 0 to rank - 1 do
          peers.(q) <- Some (dial ~rank ports.(q))
        done;
        for _ = rank + 1 to size - 1 do
          accept_one ()
        done;
        let redial dst =
          if dst < rank then begin
            (match peers.(dst) with
            | Some old -> (
                try Unix.close old with Unix.Unix_error _ -> ())
            | None -> ());
            match dial ~rank ports.(dst) with
            | fd ->
                peers.(dst) <- Some fd;
                stats.reconnects <- stats.reconnects + 1
            | exception e when is_disconnect e -> peers.(dst) <- None
          end
          (* Acceptor side: the peer re-dials us; the listener stays in
             the receive set, so the replacement lands on the next
             [recv]. *)
        in
        (Some listener, redial)
  in
  let accept_replacement () =
    match (mesh, listener) with
    | Mtcp _, Some l -> (
        match Unix.accept l with
        | fd, _ -> (
            match really_read fd 8 with
            | hello ->
                let r = Int64.to_int (Bytes.get_int64_le hello 0) in
                if r < 0 || r >= size then Unix.close fd
                else begin
                  (match peers.(r) with
                  | Some old -> (
                      try Unix.close old with Unix.Unix_error _ -> ())
                  | None -> ());
                  peers.(r) <- Some fd;
                  stats.reconnects <- stats.reconnects + 1
                end
            | exception (End_of_file | Unix.Unix_error _) -> Unix.close fd)
        | exception Unix.Unix_error _ -> ())
    | _ -> ()
  in
  let raw_send dst bytes =
    if dst = rank then begin
      Queue.push (rank, Bytes.copy bytes) selfq;
      stats.msgs_sent <- stats.msgs_sent + 1;
      stats.bytes_sent <- stats.bytes_sent + Bytes.length bytes + prefix_bytes
    end
    else begin
      on_send ();
      match peers.(dst) with
      | None -> raise (Peer_down dst)
      | Some fd -> (
          match really_write fd (frame_of bytes) with
          | () ->
              stats.msgs_sent <- stats.msgs_sent + 1;
              stats.bytes_sent <-
                stats.bytes_sent + Bytes.length bytes + prefix_bytes
          | exception e when is_disconnect e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              peers.(dst) <- None;
              (* One genuine reconnect attempt before giving up. *)
              redial dst;
              (match peers.(dst) with
              | None -> raise (Peer_down dst)
              | Some fd2 -> (
                  match really_write fd2 (frame_of bytes) with
                  | () ->
                      stats.msgs_sent <- stats.msgs_sent + 1;
                      stats.bytes_sent <-
                        stats.bytes_sent + Bytes.length bytes + prefix_bytes
                  | exception e2 when is_disconnect e2 ->
                      (try Unix.close fd2 with Unix.Unix_error _ -> ());
                      peers.(dst) <- None;
                      raise (Peer_down dst))))
    end
  in
  let reconnect dst =
    (* Injected transient failure: on the TCP connector side, exercise
       the real close-and-redial path; elsewhere the retry just
       re-attempts the write. *)
    match mesh with Mtcp _ -> redial dst | Munix _ -> ()
  in
  let rec recv_fn timeout =
    match Queue.take_opt selfq with
    | Some (src, bytes) ->
        stats.msgs_recvd <- stats.msgs_recvd + 1;
        Msg (src, bytes)
    | None -> (
        let watched =
          List.concat
            [
              (match listener with Some l -> [ l ] | None -> []);
              List.filter_map Fun.id
                (List.init size (fun r -> peers.(r)));
            ]
        in
        if watched = [] then Timeout
        else
          match Unix.select watched [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> Timeout
          | [], _, _ -> Timeout
          | ready, _, _ -> (
              match listener with
              | Some l when List.memq l ready ->
                  accept_replacement ();
                  recv_fn 0.
              | _ -> (
                  (* Lowest ready rank first: deterministic service order
                     given identical readiness. *)
                  let src =
                    let rec find r =
                      if r >= size then None
                      else
                        match peers.(r) with
                        | Some fd when List.memq fd ready -> Some (r, fd)
                        | _ -> find (r + 1)
                    in
                    find 0
                  in
                  match src with
                  | None -> Timeout
                  | Some (r, fd) -> (
                      match read_frame fd with
                      | bytes ->
                          stats.msgs_recvd <- stats.msgs_recvd + 1;
                          Msg (r, bytes)
                      | exception
                          ( End_of_file
                          | Unix.Unix_error
                              ((Unix.ECONNRESET | Unix.EPIPE), _, _) ) ->
                          (try Unix.close fd with Unix.Unix_error _ -> ());
                          peers.(r) <- None;
                          Closed r))))
  in
  {
    rank;
    size;
    stats;
    send_fn = faulty ?fault ~rank ~stats ~reconnect raw_send;
    recv_fn;
    alive_fn = (fun r -> r = rank || peers.(r) <> None);
    close_fn =
      (fun () ->
        Array.iteri
          (fun r fd ->
            match fd with
            | Some fd ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                peers.(r) <- None
            | None -> ())
          (Array.copy peers);
        match listener with
        | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
        | None -> ());
  }
