open Regions
module Prog = Spmd.Prog
module Exec = Spmd.Exec
module Copy_plan = Spmd.Copy_plan
module Intersections = Spmd.Intersections
module Sanitizer = Spmd.Sanitizer
module Program = Ir.Program
module Types = Ir.Types
module Task = Ir.Task
module Eval = Ir.Eval
module Diag = Resilience.Diag

(* ---------- the per-process protocol state ---------- *)

type net = {
  tp : Transport.t;
  chan : Channel.t;
  coll : Collective.t;
  trace : Obs.Trace.t;
  stats : Exec.stats option;
  san : Sanitizer.t option;
  mutable snapshots : (int * string) list;
  mutable stats_in : (int * (int * int * int * int)) list;
  mutable byes : int list;
  mutable dead : int list;
}

let make_net ?stats ?(trace = Obs.Trace.null) ?san tp =
  {
    tp;
    chan = Channel.create ();
    coll = Collective.create ~rank:(Transport.rank tp) ~size:(Transport.size tp);
    trace;
    stats;
    san;
    snapshots = [];
    stats_in = [];
    byes = [];
    dead = [];
  }

let transport net = net.tp
let snapshots net = net.snapshots
let stats_frames net = net.stats_in
let byes net = net.byes
let dead_ranks net = net.dead

let send_frame net ~dst frame =
  let b = Wire.encode frame in
  (match net.stats with
  | None -> ()
  | Some s ->
      Atomic.incr s.Exec.msgs_sent;
      ignore
        (Atomic.fetch_and_add s.Exec.bytes_on_wire
           (Bytes.length b + Transport.prefix_bytes)));
  Obs.Trace.instant net.trace
    ~tid:(Exec.shard_tid (Transport.rank net.tp))
    ~cat:"net"
    ~args:
      [
        ("dst", Obs.Trace.Int dst);
        ("kind", Obs.Trace.Str (Wire.kind frame));
        ("bytes", Obs.Trace.Int (Bytes.length b));
      ]
    "net.send";
  Transport.send net.tp ~dst b

let dispatch net frame =
  match frame with
  | Wire.Data { copy_id; epoch; src_color; dst_color; runs; payload; _ } ->
      Channel.on_data net.chan ~cid:copy_id ~i:src_color ~j:dst_color ~epoch
        ~runs ~payload
  | Wire.Credit { copy_id; src_color; dst_color } ->
      Channel.add_credit net.chan ~cid:copy_id ~i:src_color ~j:dst_color
  | Wire.Coll { seq; dir = `Up; values } -> Collective.on_up net.coll ~seq values
  | Wire.Coll { seq; dir = `Down; values } ->
      let r = if Array.length values = 0 then 0. else snd values.(0) in
      Collective.on_down net.coll ~seq r
  | Wire.Final { copy_id; src_color; dst_color; runs; payload; _ } ->
      Channel.on_final net.chan ~cid:copy_id ~i:src_color ~j:dst_color ~runs
        ~payload
  | Wire.Snapshot { rank; blob } -> net.snapshots <- (rank, blob) :: net.snapshots
  | Wire.Stats { rank; msgs; bytes; retries; injected } ->
      net.stats_in <- (rank, (msgs, bytes, retries, injected)) :: net.stats_in
  | Wire.Bye { rank } -> net.byes <- rank :: net.byes

let pump net ~timeout =
  let got = ref false in
  let rec go timeout =
    match Transport.recv net.tp ~timeout with
    | Transport.Timeout -> ()
    | Transport.Closed r ->
        (* Ordered delivery: a graceful peer's [Bye] was dispatched from
           an earlier frame, so EOF-before-Bye means the peer died. *)
        if (not (List.mem r net.byes)) && not (List.mem r net.dead) then
          net.dead <- r :: net.dead;
        go 0.
    | Transport.Msg (src, b) ->
        got := true;
        let frame = Wire.decode b in
        Obs.Trace.instant net.trace
          ~tid:(Exec.shard_tid (Transport.rank net.tp))
          ~cat:"net"
          ~args:
            [
              ("src", Obs.Trace.Int src);
              ("kind", Obs.Trace.Str (Wire.kind frame));
              ("bytes", Obs.Trace.Int (Bytes.length b));
            ]
          "net.recv";
        dispatch net frame;
        go 0.
  in
  go timeout;
  !got

(* ---------- the block engine ---------- *)

type loop_info = { lvar : string; lcount : int; mutable liter : int }

type eframe = {
  instrs : Prog.instr array;
  mutable idx : int;
  loop : loop_info option;
}

type fin = { mutable k : int; mutable sent : bool }
type phase = Body | Finalizing of fin | Complete
type wait = W_ready | W_coll of { seq : int; cvar : string option }

type engine = {
  net : net;
  source : Program.t;
  ctx : Interp.Run.context;
  block : Prog.block;
  rank : int;
  env : Eval.env;
  insts : (string * int, Physical.t) Hashtbl.t;
  pairs : (int, Intersections.pairs) Hashtbl.t;
  plans : (int * int * int, Copy_plan.t) Hashtbl.t;
  mutable frames : eframe list;
  mutable wait : wait;
  mutable phase : phase;
}

let finished eng = eng.phase = Complete

let bump eng f =
  match eng.net.stats with None -> () | Some s -> Atomic.incr (f s)

let instance eng pname color =
  match Hashtbl.find_opt eng.insts (pname, color) with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Net.Engine: no instance (%s, %d)" pname color)

let root_inst eng rname =
  Interp.Run.region_instance eng.ctx (Program.find_region eng.source rname)

let owner eng pname color =
  let p = Program.find_partition eng.source pname in
  Prog.owner_of_color ~shards:eng.block.Prog.shards
    ~colors:(Partition.color_count p) color

let owned_space_colors eng space =
  let n = Program.find_space eng.source space in
  Prog.colors_of_shard ~shards:eng.block.Prog.shards ~colors:n eng.rank

let owned_src_pairs eng (c : Prog.copy) =
  let pairs = Hashtbl.find eng.pairs c.Prog.copy_id in
  let ps =
    match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false
  in
  List.filter (fun (i, _, _) -> owner eng ps i = eng.rank) pairs.Intersections.items

let owned_dst_pairs eng copy_id =
  let c =
    List.find
      (fun (c : Prog.copy) -> c.Prog.copy_id = copy_id)
      eng.block.Prog.copies
  in
  let pairs = Hashtbl.find eng.pairs copy_id in
  let pd =
    match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false
  in
  ( c,
    List.filter (fun (_, j, _) -> owner eng pd j = eng.rank) pairs.Intersections.items
  )

(* ---------- sanitizer hooks (loopback only; mirror Spmd.Exec) ---------- *)

let san_access eng ~part ~color ~fields kind space =
  match eng.net.san with
  | None -> ()
  | Some san ->
      List.iter
        (fun field ->
          Sanitizer.access san ~shard:eng.rank ~part ~color ~field kind space)
        fields

let san_acquire eng key =
  match eng.net.san with
  | None -> ()
  | Some san -> Sanitizer.acquire san ~shard:eng.rank key

let san_release eng key =
  match eng.net.san with
  | None -> ()
  | Some san -> Sanitizer.release san ~shard:eng.rank key

let san_launch eng (l : Types.launch) c =
  match eng.net.san with
  | None -> ()
  | Some san ->
      let task = Program.find_task eng.source l.Types.task in
      List.iteri
        (fun k rarg ->
          match rarg with
          | Types.Part (pname, Types.Id) ->
              let inst = instance eng pname c in
              let space = Physical.ispace inst in
              List.iter
                (fun (pr : Privilege.t) ->
                  let kind =
                    match pr.Privilege.mode with
                    | Privilege.Read -> Sanitizer.A_read
                    | Privilege.Read_write -> Sanitizer.A_write
                    | Privilege.Reduce op -> Sanitizer.A_reduce op
                  in
                  Sanitizer.access san ~shard:eng.rank ~part:pname ~color:c
                    ~field:pr.Privilege.field kind space)
                (Task.param_privs task k)
          | Types.Part _ | Types.Whole _ -> ())
        l.Types.rargs

(* ---------- copy plans ---------- *)

let plan_for eng ~cid ~i ~j ?space ~fields ~src ~dst () =
  let key = (cid, i, j) in
  match Hashtbl.find_opt eng.plans key with
  | Some p -> p
  | None ->
      let p = Copy_plan.build ?space ~src ~dst ~fields () in
      bump eng (fun s -> s.Exec.plan_builds);
      Hashtbl.replace eng.plans key p;
      p

let count_replay eng plan fields =
  bump eng (fun s -> s.Exec.plan_replays);
  match eng.net.stats with
  | None -> ()
  | Some s ->
      ignore
        (Atomic.fetch_and_add s.Exec.blit_volume
           (Copy_plan.volume plan * List.length fields))

let plan_exec eng ~cid ~i ~j ?space ~fields ~reduce ~src ~dst () =
  let plan = plan_for eng ~cid ~i ~j ?space ~fields ~src ~dst () in
  count_replay eng plan fields;
  Copy_plan.execute plan ~reduce ~src ~dst

(* Local replay of an init/finalize copy whose source every rank holds
   (root regions are replicated in each rank's private context, and the
   replay order is the master-copy order, so the result is identical on
   all ranks). *)
let local_copy eng (c : Prog.copy) =
  let cid = c.Prog.copy_id and fields = c.Prog.fields in
  let reduce = c.Prog.reduce in
  match (c.Prog.src, c.Prog.dst) with
  | Prog.Oregion rs, Prog.Opart pd ->
      let p = Program.find_partition eng.source pd in
      let src = root_inst eng rs in
      for color = 0 to Partition.color_count p - 1 do
        plan_exec eng ~cid ~i:(-1) ~j:color ~fields ~reduce ~src
          ~dst:(instance eng pd color) ()
      done
  | Prog.Opart ps, Prog.Oregion rd ->
      let p = Program.find_partition eng.source ps in
      let dst = root_inst eng rd in
      for color = 0 to Partition.color_count p - 1 do
        plan_exec eng ~cid ~i:color ~j:(-1) ~fields ~reduce
          ~src:(instance eng ps color) ~dst ()
      done
  | Prog.Opart ps, Prog.Opart pd ->
      let pairs = Hashtbl.find eng.pairs cid in
      List.iter
        (fun (i, j, space) ->
          plan_exec eng ~cid ~i ~j ~space ~fields ~reduce
            ~src:(instance eng ps i) ~dst:(instance eng pd j) ())
        pairs.Intersections.items
  | Prog.Oregion rs, Prog.Oregion rd ->
      plan_exec eng ~cid ~i:(-1) ~j:(-1) ~fields ~reduce
        ~src:(root_inst eng rs) ~dst:(root_inst eng rd) ()

(* ---------- leaf launches ---------- *)

let run_launch_color eng (l : Types.launch) c =
  let task = Program.find_task eng.source l.Types.task in
  san_launch eng l c;
  let sargs = Array.map (Eval.sexpr eng.env) l.Types.sargs in
  let accessors =
    Array.of_list
      (List.mapi
         (fun k rarg ->
           match rarg with
           | Types.Part (pname, Types.Id) ->
               let inst = instance eng pname c in
               Accessor.make inst ~space:(Physical.ispace inst)
                 (Task.param_privs task k)
           | Types.Part (pname, Types.Fn (fname, _)) ->
               invalid_arg
                 (Printf.sprintf
                    "Net.Engine: non-normalized projection %s(%s) survived \
                     control replication"
                    fname pname)
           | Types.Whole r ->
               invalid_arg
                 (Printf.sprintf
                    "Net.Engine: whole-region argument %s in replicated code" r))
         l.Types.rargs)
  in
  task.Task.kernel accessors sargs

(* ---------- the data plane, by message ---------- *)

(* Producer-issued copy (§3.4): one [Data] frame per owned pair, gathered
   through the memoized plan. The destination-relative runs travel with
   the payload; both sides build instances from the same deterministic
   index spaces, so the offsets are valid in the receiver. *)
let try_copy eng (c : Prog.copy) =
  let cid = c.Prog.copy_id in
  let owned = owned_src_pairs eng c in
  let all_credits =
    List.for_all
      (fun (i, j, _) -> !(Channel.war eng.net.chan (cid, i, j)) > 0)
      owned
  in
  if not all_credits then `Blocked
  else begin
    let ps =
      match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false
    in
    let pd =
      match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false
    in
    let fnames = List.map Field.name c.Prog.fields in
    List.iter
      (fun (i, j, space) ->
        decr (Channel.war eng.net.chan (cid, i, j));
        san_acquire eng (Sanitizer.K_war (cid, i, j));
        san_access eng ~part:ps ~color:i ~fields:c.Prog.fields Sanitizer.A_read
          space;
        let src = instance eng ps i and dst = instance eng pd j in
        let plan =
          plan_for eng ~cid ~i ~j ~space ~fields:c.Prog.fields ~src ~dst ()
        in
        count_replay eng plan c.Prog.fields;
        let payload = Copy_plan.gather plan ~src in
        let runs = Copy_plan.dst_runs plan in
        (* A plain copy's write is attributed to the producer (as in
           Spmd.Exec); a reduction's application is attributed to the
           consumer at [Await]. *)
        (match c.Prog.reduce with
        | None ->
            san_access eng ~part:pd ~color:j ~fields:c.Prog.fields
              Sanitizer.A_write space
        | Some _ -> ());
        let epoch = Channel.next_send_epoch eng.net.chan ~cid ~i ~j in
        send_frame eng.net ~dst:(owner eng pd j)
          (Wire.Data
             {
               copy_id = cid;
               epoch;
               src_color = i;
               dst_color = j;
               fields = fnames;
               runs;
               payload;
             });
        san_release eng (Sanitizer.K_raw (cid, i, j)))
      owned;
    `Progress
  end

(* The queued [Data] frame is the raw token: [Await] needs one per owned
   pair, then scatters (plain) or folds (reduce, ascending source color)
   the payloads into the local instance. *)
let try_await eng copy_id =
  let c, owned = owned_dst_pairs eng copy_id in
  let ready =
    List.for_all
      (fun (i, j, _) -> Channel.queued eng.net.chan ~cid:copy_id ~i ~j > 0)
      owned
  in
  if not ready then `Blocked
  else begin
    let pd =
      match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false
    in
    let popped =
      List.map
        (fun (i, j, space) ->
          let m = Channel.pop_data eng.net.chan ~cid:copy_id ~i ~j in
          san_acquire eng (Sanitizer.K_raw (copy_id, i, j));
          (i, j, space, m))
        owned
    in
    let ordered =
      List.sort
        (fun (i1, j1, _, _) (i2, j2, _, _) ->
          match Int.compare j1 j2 with 0 -> Int.compare i1 i2 | n -> n)
        popped
    in
    List.iter
      (fun (_, j, space, (m : Channel.msg)) ->
        (match c.Prog.reduce with
        | None -> ()
        | Some _ ->
            san_access eng ~part:pd ~color:j ~fields:c.Prog.fields
              Sanitizer.A_write space);
        Channel.apply ~reduce:c.Prog.reduce ~fields:c.Prog.fields
          ~runs:m.Channel.runs ~payload:m.Channel.payload (instance eng pd j))
      ordered;
    `Progress
  end

let do_release eng copy_id =
  let c, owned = owned_dst_pairs eng copy_id in
  let ps =
    match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false
  in
  List.iter
    (fun (i, j, _) ->
      san_release eng (Sanitizer.K_war (copy_id, i, j));
      send_frame eng.net ~dst:(owner eng ps i)
        (Wire.Credit { copy_id; src_color = i; dst_color = j }))
    owned

(* ---------- collectives ---------- *)

let drain_coll eng seq =
  let acts, result = Collective.poll eng.net.coll ~seq in
  List.iter
    (function
      | Collective.Send_up (p, values) ->
          send_frame eng.net ~dst:p (Wire.Coll { seq; dir = `Up; values })
      | Collective.Send_down (child, r) ->
          send_frame eng.net ~dst:child
            (Wire.Coll { seq; dir = `Down; values = [| (0, r) |] }))
    acts;
  result

(* ---------- block start ---------- *)

let start_block net ~source ctx (b : Prog.block) =
  if b.Prog.shards <> Transport.size net.tp then
    invalid_arg
      (Printf.sprintf
         "Net.Engine: block compiled for %d shards on a %d-rank transport"
         b.Prog.shards (Transport.size net.tp));
  let eng =
    {
      net;
      source;
      ctx;
      block = b;
      rank = Transport.rank net.tp;
      env = Eval.copy (Interp.Run.env ctx);
      insts = Hashtbl.create 64;
      pairs = Hashtbl.create 16;
      plans = Hashtbl.create 32;
      frames = [ { instrs = Array.of_list b.Prog.body; idx = 0; loop = None } ];
      wait = W_ready;
      phase = Body;
    }
  in
  let isect = Option.map (fun (s : Exec.stats) -> s.Exec.isect) net.stats in
  List.iter
    (fun (pname, (p : Partition.t)) ->
      let fields = Exec.fields_used_of_partition source b pname in
      for c = 0 to Partition.color_count p - 1 do
        let sub = Partition.sub p c in
        Hashtbl.replace eng.insts (pname, c)
          (Physical.create_over sub.Region.ispace fields)
      done)
    (Exec.partitions_used source b);
  let part_of = function
    | Prog.Opart p -> Some (Program.find_partition source p)
    | Prog.Oregion _ -> None
  in
  List.iter
    (fun (c : Prog.copy) ->
      match (part_of c.Prog.src, part_of c.Prog.dst) with
      | Some src, Some dst ->
          let pairs =
            match c.Prog.pairs with
            | `Sparse -> Intersections.compute_cached ?stats:isect ~src ~dst ()
            | `Dense -> Intersections.compute_all_pairs ?stats:isect ~src ~dst ()
          in
          Hashtbl.replace eng.pairs c.Prog.copy_id pairs;
          let credits =
            Option.value ~default:1 (List.assoc_opt c.Prog.copy_id b.Prog.credits)
          in
          let ps =
            match c.Prog.src with
            | Prog.Opart p -> p
            | Prog.Oregion _ -> assert false
          in
          (* The credit counter lives at the producer: seed it there. A
             block's copy ids are program-unique, so the persistent
             channel table cannot collide across blocks. *)
          List.iter
            (fun (i, j, _) ->
              if owner eng ps i = eng.rank then
                Channel.war net.chan (c.Prog.copy_id, i, j) := credits)
            pairs.Intersections.items
      | _ -> ())
    b.Prog.copies;
  (* Initialization replays locally on every rank (Fig. 4d: sequential,
     deterministic, touching state every rank holds). *)
  Obs.Trace.with_span net.trace ~tid:(Exec.shard_tid eng.rank) ~cat:"exec"
    "net.init" (fun () ->
      List.iter
        (function
          | Prog.Copy c -> local_copy eng c
          | Prog.Fill { part; fields; op } ->
              let p = Program.find_partition source part in
              for color = 0 to Partition.color_count p - 1 do
                let inst = instance eng part color in
                List.iter
                  (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
                  fields
              done
          | instr ->
              invalid_arg
                (Format.asprintf "Net.Engine: unsupported init instruction %a"
                   Prog.pp_instr instr))
        b.Prog.init);
  eng

(* ---------- the stepper ---------- *)

let push_loop eng var count body =
  if count > 0 then begin
    Eval.set eng.env var 0.;
    eng.frames <-
      {
        instrs = Array.of_list body;
        idx = 0;
        loop = Some { lvar = var; lcount = count; liter = 0 };
      }
      :: eng.frames
  end

let rec normalize_frames eng =
  match eng.frames with
  | [] -> ()
  | f :: rest ->
      if f.idx >= Array.length f.instrs then (
        match f.loop with
        | Some li when li.liter + 1 < li.lcount ->
            li.liter <- li.liter + 1;
            Eval.set eng.env li.lvar (float_of_int li.liter);
            f.idx <- 0
        | Some _ | None ->
            eng.frames <- rest;
            normalize_frames eng)
      else ()

let step_body eng (f : eframe) =
  let instr = f.instrs.(f.idx) in
  let tr = eng.net.trace in
  let tid = Exec.shard_tid eng.rank in
  let t0 = if Obs.Trace.enabled tr then Obs.Trace.now_us tr else 0. in
  let advance () =
    f.idx <- f.idx + 1;
    normalize_frames eng;
    if Obs.Trace.enabled tr then
      Obs.Trace.complete tr ~tid ~cat:"exec" ~ts:t0
        ~dur:(Obs.Trace.now_us tr -. t0)
        (Exec.instr_label instr);
    `Progress
  in
  match instr with
  | Prog.Assign (v, e) ->
      Eval.set eng.env v (Eval.sexpr eng.env e);
      advance ()
  | Prog.For_time { var; count; body } ->
      f.idx <- f.idx + 1;
      Obs.Trace.instant tr ~tid ~cat:"exec"
        ~args:[ ("count", Obs.Trace.Int count) ]
        "for_time";
      push_loop eng var count body;
      normalize_frames eng;
      `Progress
  | Prog.Launch { space; launch } ->
      List.iter
        (fun c -> ignore (run_launch_color eng launch c))
        (owned_space_colors eng space);
      advance ()
  | Prog.Fill { part; fields; op } ->
      let p = Program.find_partition eng.source part in
      List.iter
        (fun c ->
          let inst = instance eng part c in
          san_access eng ~part ~color:c ~fields Sanitizer.A_write
            (Physical.ispace inst);
          List.iter
            (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
            fields)
        (Prog.colors_of_shard ~shards:eng.block.Prog.shards
           ~colors:(Partition.color_count p) eng.rank);
      advance ()
  | Prog.Copy c -> (
      match try_copy eng c with `Blocked -> `Blocked | `Progress -> advance ())
  | Prog.Await id -> (
      match try_await eng id with `Blocked -> `Blocked | `Progress -> advance ())
  | Prog.Release id ->
      do_release eng id;
      Obs.Trace.instant tr ~tid ~cat:"exec"
        ~args:[ ("copy_id", Obs.Trace.Int id) ]
        "credit.release";
      advance ()
  | Prog.Barrier -> (
      match eng.wait with
      | W_coll { seq; cvar = None } -> (
          match drain_coll eng seq with
          | Some _ ->
              san_acquire eng Sanitizer.K_barrier;
              Collective.finish eng.net.coll ~seq;
              eng.wait <- W_ready;
              advance ()
          | None -> `Blocked)
      | W_ready | W_coll _ ->
          (* A barrier is the empty allreduce over the rank tree. *)
          let seq =
            Collective.begin_op eng.net.coll ~op:Privilege.Sum ~values:[]
          in
          san_release eng Sanitizer.K_barrier;
          Obs.Trace.instant tr ~tid ~cat:"exec"
            ~args:[ ("generation", Obs.Trace.Int seq) ]
            "barrier.arrive";
          eng.wait <- W_coll { seq; cvar = None };
          ignore (drain_coll eng seq);
          `Progress)
  | Prog.Launch_collective { space; launch; var; op } -> (
      match eng.wait with
      | W_coll { seq; cvar = Some _ } -> (
          match drain_coll eng seq with
          | Some r ->
              san_acquire eng Sanitizer.K_collective;
              Eval.set eng.env var r;
              Collective.finish eng.net.coll ~seq;
              eng.wait <- W_ready;
              advance ()
          | None -> `Blocked)
      | W_ready | W_coll _ ->
          let mine =
            List.map
              (fun c -> (c, run_launch_color eng launch c))
              (owned_space_colors eng space)
          in
          let seq = Collective.begin_op eng.net.coll ~op ~values:mine in
          san_release eng Sanitizer.K_collective;
          Obs.Trace.instant tr ~tid ~cat:"exec"
            ~args:[ ("var", Obs.Trace.Str var) ]
            "collective.deposit";
          eng.wait <- W_coll { seq; cvar = Some var };
          ignore (drain_coll eng seq);
          `Progress)
  | Prog.Checkpoint _ ->
      (* No checkpoint sink in the distributed backend (yet): the
         instruction is the documented no-op it is without a sink. *)
      advance ()

(* ---------- finalize: fragment broadcast ---------- *)

let broadcast_final eng ~cid ~i ~j ~fields ~runs ~payload =
  Channel.on_final eng.net.chan ~cid ~i ~j ~runs ~payload;
  for r = 0 to Transport.size eng.net.tp - 1 do
    if r <> eng.rank then
      send_frame eng.net ~dst:r
        (Wire.Final
           { copy_id = cid; src_color = i; dst_color = j; fields; runs; payload })
  done

let fin_copy eng k =
  match List.nth eng.block.Prog.finalize k with
  | Prog.Copy c -> c
  | instr ->
      invalid_arg
        (Format.asprintf "Net.Engine: unsupported finalize instruction %a"
           Prog.pp_instr instr)

let expected_fragments eng (c : Prog.copy) =
  match (c.Prog.src, c.Prog.dst) with
  | Prog.Opart ps, Prog.Oregion _ ->
      Partition.color_count (Program.find_partition eng.source ps)
  | Prog.Opart _, Prog.Opart _ ->
      List.length (Hashtbl.find eng.pairs c.Prog.copy_id).Intersections.items
  | (Prog.Oregion _, _) -> 0

let step_finalize eng (f : fin) =
  let nfin = List.length eng.block.Prog.finalize in
  if f.k >= nfin then begin
    (* Replicated scalar state is identical on every rank; fold this
       rank's copy back into its context. *)
    let master_env = Interp.Run.env eng.ctx in
    List.iter (fun (k, v) -> Eval.set master_env k v) (Eval.bindings eng.env);
    eng.phase <- Complete;
    `Progress
  end
  else
    let c = fin_copy eng f.k in
    match c.Prog.src with
    | Prog.Oregion _ ->
        (* Root-region source: every rank holds it whole — pure replay. *)
        local_copy eng c;
        f.k <- f.k + 1;
        f.sent <- false;
        `Progress
    | Prog.Opart ps ->
        let cid = c.Prog.copy_id in
        if not f.sent then begin
          f.sent <- true;
          let fnames = List.map Field.name c.Prog.fields in
          (match c.Prog.dst with
          | Prog.Oregion rd ->
              let p = Program.find_partition eng.source ps in
              let root = root_inst eng rd in
              List.iter
                (fun i ->
                  let src = instance eng ps i in
                  let plan =
                    plan_for eng ~cid ~i ~j:(-1) ~fields:c.Prog.fields ~src
                      ~dst:root ()
                  in
                  count_replay eng plan c.Prog.fields;
                  broadcast_final eng ~cid ~i ~j:(-1) ~fields:fnames
                    ~runs:(Copy_plan.dst_runs plan)
                    ~payload:(Copy_plan.gather plan ~src))
                (Prog.colors_of_shard ~shards:eng.block.Prog.shards
                   ~colors:(Partition.color_count p) eng.rank)
          | Prog.Opart pd ->
              let pairs = Hashtbl.find eng.pairs cid in
              List.iter
                (fun (i, j, space) ->
                  if owner eng ps i = eng.rank then begin
                    let src = instance eng ps i and dst = instance eng pd j in
                    let plan =
                      plan_for eng ~cid ~i ~j ~space ~fields:c.Prog.fields ~src
                        ~dst ()
                    in
                    count_replay eng plan c.Prog.fields;
                    broadcast_final eng ~cid ~i ~j ~fields:fnames
                      ~runs:(Copy_plan.dst_runs plan)
                      ~payload:(Copy_plan.gather plan ~src)
                  end)
                pairs.Intersections.items);
          `Progress
        end
        else if Channel.final_count eng.net.chan ~cid < expected_fragments eng c
        then `Blocked
        else begin
          let frags = Channel.take_final eng.net.chan ~cid in
          (* Apply in master-copy order: ascending source color for a root
             destination, intersection-pair order otherwise — every rank
             replays the same sequence, so reductions fold identically. *)
          let order =
            match c.Prog.dst with
            | Prog.Oregion _ -> fun (fr : Channel.fragment) -> fr.Channel.src_color
            | Prog.Opart _ ->
                let tbl = Hashtbl.create 16 in
                List.iteri
                  (fun k (i, j, _) -> Hashtbl.replace tbl (i, j) k)
                  (Hashtbl.find eng.pairs cid).Intersections.items;
                fun (fr : Channel.fragment) -> (
                  match
                    Hashtbl.find_opt tbl (fr.Channel.src_color, fr.Channel.dst_color)
                  with
                  | Some k -> k
                  | None ->
                      raise
                        (Wire.Malformed
                           (Printf.sprintf
                              "finalize copy#%d: fragment (%d, %d) matches no \
                               intersection pair"
                              cid fr.Channel.src_color fr.Channel.dst_color)))
          in
          let sorted =
            List.sort (fun a b -> Int.compare (order a) (order b)) frags
          in
          List.iter
            (fun (fr : Channel.fragment) ->
              let dst =
                match c.Prog.dst with
                | Prog.Oregion rd -> root_inst eng rd
                | Prog.Opart pd -> instance eng pd fr.Channel.dst_color
              in
              Channel.apply ~reduce:c.Prog.reduce ~fields:c.Prog.fields
                ~runs:fr.Channel.fruns ~payload:fr.Channel.fpayload dst)
            sorted;
          f.k <- f.k + 1;
          f.sent <- false;
          `Progress
        end

let step eng =
  match eng.phase with
  | Complete -> `Done
  | Finalizing f -> step_finalize eng f
  | Body -> (
      normalize_frames eng;
      match eng.frames with
      | [] ->
          eng.phase <- Finalizing { k = 0; sent = false };
          `Progress
      | f :: _ -> step_body eng f)

(* ---------- diagnostics ---------- *)

let chan_diag eng (cid, i, j) =
  {
    Diag.copy_id = cid;
    src = i;
    dst = j;
    war = !(Channel.war eng.net.chan (cid, i, j));
    raw = Channel.queued eng.net.chan ~cid ~i ~j;
  }

let diag_shard eng =
  match eng.phase with
  | Complete -> { Diag.sid = eng.rank; instr = None; wait = Diag.Finished }
  | Finalizing f ->
      let label =
        if f.k >= List.length eng.block.Prog.finalize then "finalize: folding"
        else
          let c = fin_copy eng f.k in
          Printf.sprintf "finalize copy#%d (%d/%d fragments)" c.Prog.copy_id
            (Channel.final_count eng.net.chan ~cid:c.Prog.copy_id)
            (expected_fragments eng c)
      in
      { Diag.sid = eng.rank; instr = Some label; wait = Diag.Running }
  | Body -> (
      normalize_frames eng;
      match eng.frames with
      | [] -> { Diag.sid = eng.rank; instr = None; wait = Diag.Finished }
      | f :: _ ->
          let instr = f.instrs.(f.idx) in
          let wait =
            match instr with
            | Prog.Copy c ->
                Diag.At_copy
                  (List.map
                     (fun (i, j, _) -> chan_diag eng (c.Prog.copy_id, i, j))
                     (owned_src_pairs eng c))
            | Prog.Await id ->
                let _, owned = owned_dst_pairs eng id in
                Diag.At_await
                  (List.map (fun (i, j, _) -> chan_diag eng (id, i, j)) owned)
            | Prog.Barrier -> (
                match eng.wait with
                | W_coll { seq; _ } ->
                    Diag.At_barrier
                      {
                        arrived = Collective.arrived eng.net.coll ~seq;
                        generation = seq;
                      }
                | W_ready -> Diag.Running)
            | Prog.Launch_collective { var; _ } -> (
                match eng.wait with
                | W_coll { seq; _ } ->
                    Diag.At_collective
                      {
                        var;
                        arrived = Collective.arrived eng.net.coll ~seq;
                        consumed = 0;
                        published = Collective.completed eng.net.coll ~seq;
                      }
                | W_ready -> Diag.Running)
            | _ -> Diag.Running
          in
          {
            Diag.sid = eng.rank;
            instr = Some (Format.asprintf "%a" Prog.pp_instr instr);
            wait;
          })

let diagnose net ~reason engines =
  let reason =
    match net.dead with
    | [] -> reason
    | dead ->
        Printf.sprintf "%s; peers closed before goodbye: %s" reason
          (String.concat ", "
             (List.map string_of_int (List.sort Int.compare dead)))
  in
  {
    Diag.reason;
    shards = List.map diag_shard engines;
    barrier_arrived = 0;
    barrier_generation = 0;
  }

(* ---------- the blocking per-rank driver (socket mode) ---------- *)

let run_rank ?(watchdog = 30.) net (prog : Prog.t) ctx =
  let rank = Transport.rank net.tp in
  if Obs.Trace.enabled net.trace then
    Obs.Trace.set_thread_name net.trace ~tid:(Exec.shard_tid rank)
      (Printf.sprintf "rank %d" rank);
  List.iter
    (function
      | Prog.Seq stmts -> Interp.Run.run_stmts ctx stmts
      | Prog.Replicated b ->
          let eng = start_block net ~source:prog.Prog.source ctx b in
          let last = ref (Unix.gettimeofday ()) in
          let rec drive () =
            if pump net ~timeout:0. then last := Unix.gettimeofday ();
            match step eng with
            | `Done -> ()
            | `Progress ->
                last := Unix.gettimeofday ();
                drive ()
            | `Blocked ->
                if pump net ~timeout:0.005 then last := Unix.gettimeofday ()
                else if
                  watchdog > 0. && Unix.gettimeofday () -. !last > watchdog
                then
                  raise
                    (Exec.Deadlock
                       (diagnose net
                          ~reason:
                            (Printf.sprintf
                               "rank %d: no frame and no progress for %.2fs"
                               rank watchdog)
                          [ eng ]));
                drive ()
          in
          (try drive ()
           with Transport.Peer_down r ->
             raise
               (Exec.Deadlock
                  (diagnose net
                     ~reason:
                       (Printf.sprintf
                          "rank %d unreachable from rank %d (send retries \
                           exhausted)"
                          r rank)
                     [ eng ]))))
    prog.Prog.items
