open Regions
module Prog = Spmd.Prog
module Exec = Spmd.Exec

type state = {
  scalars : (string * float) list;
  regions : (string * (string * float array) list) list;
}

let snapshot_state ctx =
  {
    scalars = List.sort compare (Interp.Run.scalars ctx);
    regions =
      Interp.Run.root_instances ctx
      |> List.map (fun (name, inst) ->
             ( name,
               Physical.fields inst
               |> List.map (fun f ->
                      (Field.name f, Array.copy (Physical.column inst f)))
               |> List.sort compare ))
      |> List.sort compare;
  }

let states_equal (a : state) (b : state) = a = b

let shard_count (p : Prog.t) =
  List.fold_left
    (fun acc item ->
      match item with
      | Prog.Replicated b -> (
          match acc with
          | Some n when n <> b.Prog.shards ->
              invalid_arg
                (Printf.sprintf
                   "Net.Launch: blocks disagree on shard count (%d vs %d)" n
                   b.Prog.shards)
          | _ -> Some b.Prog.shards)
      | Prog.Seq _ -> acc)
    None p.Prog.items

(* ---------- deterministic loopback ---------- *)

let run_loopback ?fault ?stats ?trace ?(sanitize = false) (prog : Prog.t) ctx =
  match shard_count prog with
  | None ->
      (* No replicated block: the program is purely sequential. *)
      List.iter
        (function
          | Prog.Seq stmts -> Interp.Run.run_stmts ctx stmts
          | Prog.Replicated _ -> assert false)
        prog.Prog.items
  | Some size ->
      let tps = Transport.loopback ?fault ~size () in
      let san =
        if sanitize then Some (Spmd.Sanitizer.create ~nshards:size) else None
      in
      let nets = Array.map (fun tp -> Engine.make_net ?stats ?trace ?san tp) tps in
      let ctxs =
        Array.init size (fun r ->
            if r = 0 then ctx else Interp.Run.create prog.Prog.source)
      in
      List.iter
        (function
          | Prog.Seq stmts ->
              Array.iter (fun c -> Interp.Run.run_stmts c stmts) ctxs
          | Prog.Replicated b ->
              let engines =
                Array.init size (fun r ->
                    Engine.start_block nets.(r) ~source:prog.Prog.source
                      ctxs.(r) b)
              in
              let rec drive () =
                if not (Array.for_all Engine.finished engines) then begin
                  let progressed = ref false in
                  Array.iter
                    (fun net ->
                      if Engine.pump net ~timeout:0. then progressed := true)
                    nets;
                  Array.iter
                    (fun eng ->
                      if not (Engine.finished eng) then
                        match Engine.step eng with
                        | `Progress -> progressed := true
                        | `Done | `Blocked -> ())
                    engines;
                  if not !progressed then
                    (* Exact detection: no queued frame anywhere and no
                       engine can move — globally blocked by construction. *)
                    raise
                      (Exec.Deadlock
                         (Engine.diagnose nets.(0)
                            ~reason:
                              (Printf.sprintf
                                 "all %d ranks blocked with empty queues" size)
                            (Array.to_list engines)));
                  drive ()
                end
              in
              drive ())
        prog.Prog.items;
      (* Every rank replayed the same program; their final states must be
         bitwise identical (the distributed invariant the socket launcher
         checks across processes). *)
      let reference = snapshot_state ctxs.(0) in
      Array.iteri
        (fun r c ->
          if r > 0 && not (states_equal (snapshot_state c) reference) then
            failwith
              (Printf.sprintf
                 "Net.Launch.run_loopback: rank %d diverged from rank 0" r))
        ctxs

(* ---------- multi-process launcher ---------- *)

type outcome = {
  ok : bool;
  state : state option;
  detail : string list;
  diag : Resilience.Diag.t option;
  exits : (int * string) list;
  msgs : int;
  bytes_on_wire : int;
  send_retries : int;
}

let signal_name s =
  if s = Sys.sigkill then "KILL"
  else if s = Sys.sigterm then "TERM"
  else if s = Sys.sigsegv then "SEGV"
  else if s = Sys.sigpipe then "PIPE"
  else string_of_int s

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %s" (signal_name s)

(* Child exit codes: 0 completed, 3 structured deadlock report, 2 crash,
   9 killed by the [?kill] switch. *)
let child_main mesh ~rank ~watchdog ?fault ?kill (prog : Prog.t) =
  let on_send =
    match kill with
    | Some (kr, after) when kr = rank ->
        let n = ref 0 in
        fun () ->
          incr n;
          if !n > after then Unix._exit 9
    | _ -> fun () -> ()
  in
  let code =
    try
      let tp = Transport.endpoint ?fault ~on_send mesh ~rank in
      let net = Engine.make_net tp in
      let ctx = Interp.Run.create prog.Prog.source in
      let size = Transport.size tp in
      try
        Engine.run_rank ~watchdog net prog ctx;
        let blob = Marshal.to_string (snapshot_state ctx) [] in
        let st = Transport.stats tp in
        Engine.send_frame net ~dst:0 (Wire.Snapshot { rank; blob });
        Engine.send_frame net ~dst:0
          (Wire.Stats
             {
               rank;
               msgs = st.Transport.msgs_sent;
               bytes = st.Transport.bytes_sent;
               retries = st.Transport.retries;
               injected = st.Transport.retries;
             });
        for r = 0 to size - 1 do
          if r <> rank then
            try Engine.send_frame net ~dst:r (Wire.Bye { rank })
            with Transport.Peer_down _ -> ()
        done;
        Transport.close tp;
        0
      with
      | Exec.Deadlock d ->
          Printf.eprintf "[rank %d] %s\n%!" rank (Resilience.Diag.to_string d);
          3
      | e ->
          Printf.eprintf "[rank %d] %s\n%!" rank (Printexc.to_string e);
          2
    with e ->
      Printf.eprintf "[rank %d] %s\n%!" rank (Printexc.to_string e);
      2
  in
  Unix._exit code

let launch ?(transport = `Unix) ?fault ?kill ?(watchdog = 30.) ?stats ?trace
    (prog : Prog.t) =
  let size =
    match shard_count prog with
    | Some n -> n
    | None -> invalid_arg "Net.Launch.launch: program has no replicated block"
  in
  (match kill with
  | Some (r, _) when r <= 0 || r >= size ->
      invalid_arg
        "Net.Launch.launch: kill rank must be in 1..shards-1 (rank 0 reports \
         the outcome)"
  | _ -> ());
  let mesh =
    match transport with
    | `Unix -> Transport.unix_mesh ~size
    | `Tcp -> Transport.tcp_mesh ~size
  in
  flush stdout;
  flush stderr;
  let pids =
    List.init (size - 1) (fun k ->
        let rank = k + 1 in
        match Unix.fork () with
        | 0 -> child_main mesh ~rank ~watchdog ?fault ?kill prog
        | pid -> (rank, pid))
  in
  let tp = Transport.endpoint ?fault mesh ~rank:0 in
  let net = Engine.make_net ?stats ?trace tp in
  let ctx = Interp.Run.create prog.Prog.source in
  let result =
    try
      Engine.run_rank ~watchdog net prog ctx;
      (* End-of-run gather: every child owes a snapshot, its wire stats
         and a goodbye. Bounded wait — a child that died after finishing
         its run but before the gather must not hang the parent. *)
      let deadline = Unix.gettimeofday () +. Float.max 5. watchdog in
      let complete () =
        List.length (Engine.snapshots net) >= size - 1
        && List.length (Engine.stats_frames net) >= size - 1
        && List.length (Engine.byes net) >= size - 1
      in
      while (not (complete ())) && Unix.gettimeofday () < deadline do
        ignore (Engine.pump net ~timeout:0.05)
      done;
      if complete () then Ok ()
      else
        Error
          (`Stalled
             (Engine.diagnose net
                ~reason:"gather: end-of-run frames missing at the deadline" []))
    with
    | Exec.Deadlock d -> Error (`Stalled d)
    | e -> Error (`Crash e)
  in
  (* On failure, kill the survivors so reaping cannot hang. *)
  (match result with
  | Ok () -> ()
  | Error _ ->
      List.iter
        (fun (_, pid) ->
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        pids);
  let exits =
    List.map
      (fun (rank, pid) ->
        let _, status = Unix.waitpid [] pid in
        (rank, status_string status))
      pids
  in
  Transport.close tp;
  let pstats = Transport.stats tp in
  let msgs, bytes_on_wire, send_retries =
    List.fold_left
      (fun (m, b, r) (_, (cm, cb, cr, _)) -> (m + cm, b + cb, r + cr))
      ( pstats.Transport.msgs_sent,
        pstats.Transport.bytes_sent,
        pstats.Transport.retries )
      (Engine.stats_frames net)
  in
  let mismatches =
    match result with
    | Error _ -> []
    | Ok () ->
        let reference = snapshot_state ctx in
        List.filter_map
          (fun (rank, blob) ->
            let st : state = Marshal.from_string blob 0 in
            if states_equal st reference then None
            else
              Some
                (Printf.sprintf "rank %d: final state differs from rank 0" rank))
          (List.sort compare (Engine.snapshots net))
  in
  let bad_exits = List.filter (fun (_, s) -> s <> "exit 0") exits in
  let detail =
    mismatches
    @ List.map (fun (r, s) -> Printf.sprintf "rank %d: %s" r s) bad_exits
    @ (match result with
      | Error (`Crash e) -> [ Printexc.to_string e ]
      | Error (`Stalled d) -> [ d.Resilience.Diag.reason ]
      | Ok () -> [])
  in
  {
    ok = (match result with Ok () -> true | Error _ -> false)
         && mismatches = [] && bad_exits = [];
    state = (match result with Ok () -> Some (snapshot_state ctx) | Error _ -> None);
    detail;
    diag = (match result with Error (`Stalled d) -> Some d | _ -> None);
    exits;
    msgs;
    bytes_on_wire;
    send_retries;
  }
