(** The per-rank execution engine of the distributed backend.

    One {!net} per process (or per simulated rank under loopback) wires
    a {!Transport.t} to the protocol state: {!Channel} tables for the
    copy credit/data plane, a {!Collective} tree for barriers and scalar
    reductions, and the end-of-run gather boxes ([Snapshot]/[Stats]/
    [Bye] frames destined for rank 0). {!pump} drains the transport and
    dispatches every frame to its table; it never blocks the engine's
    own instruction stream.

    One {!engine} runs one replicated block on one rank, mirroring
    {!Spmd.Exec}'s cooperative stepper exactly — same instruction
    semantics, same sanitizer hooks, same deterministic orders (staged
    reductions applied in ascending source color, collectives folded in
    ascending color at the tree root) — except that channel counters
    move by message instead of by shared memory:

    - [Copy] gathers each owned pair's payload through the memoized
      {!Spmd.Copy_plan} and sends a [Data] frame to the destination
      color's owner (consuming one war credit; §3.4 producer-issued
      copies).
    - [Await] needs one queued [Data] frame per owned destination pair
      — the frame {e is} the raw token — and scatters/folds the
      payloads into the local instance.
    - [Release] sends a [Credit] frame back to each source owner.
    - [Barrier] / [Launch_collective] run one tree operation
      ({!Collective}); a barrier is the empty allreduce.
    - The finalize phase broadcasts every owned fragment as [Final]
      frames to {e all} ranks and applies the full set in master-copy
      order, so each rank finishes holding the complete, bitwise
      identical root state.

    Every rank executes the whole program against its private
    {!Interp.Run.context} ([Seq] items and block initialization are
    replayed identically everywhere — they are deterministic), and the
    engine's instructions touch only the colors its rank owns, so the
    union of ranks is exactly one {!Spmd.Exec} run. *)

type net

val make_net :
  ?stats:Spmd.Exec.stats ->
  ?trace:Obs.Trace.t ->
  ?san:Spmd.Sanitizer.t ->
  Transport.t ->
  net
(** [san] is only meaningful under loopback, where all ranks share one
    process (and one sanitizer); socket-mode ranks pass nothing. *)

val transport : net -> Transport.t

val pump : net -> timeout:float -> bool
(** Drain ready frames (waiting up to [timeout] for the first one) and
    dispatch them; [true] when at least one frame arrived. Peer EOFs are
    recorded (see {!dead_ranks}), not raised. *)

val send_frame : net -> dst:int -> Wire.frame -> unit
(** Encode, count ({!Spmd.Exec.stats} and {!Obs.Trace}) and send.
    Raises {!Transport.Peer_down} when [dst] is unreachable. *)

val snapshots : net -> (int * string) list
(** [Snapshot] blobs gathered so far (rank 0's end-of-run collection). *)

val stats_frames : net -> (int * (int * int * int * int)) list
(** Gathered [(rank, (msgs, bytes, retries, injected))] wire stats. *)

val byes : net -> int list
(** Ranks that announced graceful completion. *)

val dead_ranks : net -> int list
(** Ranks whose connection closed {e before} a [Bye] — crashed peers. *)

type engine

val start_block :
  net -> source:Ir.Program.t -> Interp.Run.context -> Spmd.Prog.block -> engine
(** Allocate the block's replicated instances and intersection pairs,
    seed the producer-side credit counters, and run the initialization
    instructions (replayed locally — they are deterministic, so every
    rank computes the same state). The block's shard count must equal
    the transport size. *)

val step : engine -> [ `Progress | `Blocked | `Done ]
(** Execute (or block on) the current instruction, exactly one
    {!Spmd.Exec} stepper step. Callers interleave {!pump} with blocked
    steps; a step is [`Blocked] only while some needed frame has not
    arrived. [`Done] once the finalize phase completed (scalars are
    folded back into the context's environment at that point). *)

val finished : engine -> bool

val diag_shard : engine -> Resilience.Diag.shard
(** This rank's row of a stall report: current instruction and what it
    is waiting on (local channel counters, collective arrival counts). *)

val diagnose : net -> reason:string -> engine list -> Resilience.Diag.t
(** Assemble a structured deadlock/stall report from the given engines
    (all ranks under loopback; just the local one in socket mode, where
    remote state is unknowable — the reason string carries any
    crashed-peer evidence from {!dead_ranks}). *)

val run_rank : ?watchdog:float -> net -> Spmd.Prog.t -> Interp.Run.context -> unit
(** Run the whole program on this rank, blocking: [Seq] items through
    the sequential interpreter, each replicated block through an
    {!engine} with {!pump} interleaved. [watchdog] (seconds, default
    [30.]; [<= 0.] disables) bounds how long the rank may sit blocked
    without receiving a frame before raising {!Spmd.Exec.Deadlock} with
    this rank's diagnostics — in a distributed run a global blocked
    state is not locally observable, so the watchdog is the detector.
    {!Transport.Peer_down} is converted to the same structured report. *)
