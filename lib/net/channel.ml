open Regions

type msg = { epoch : int; runs : (int * int) array; payload : float array }

type fragment = {
  src_color : int;
  dst_color : int;
  fruns : (int * int) array;
  fpayload : float array;
}

type t = {
  war : (int * int * int, int ref) Hashtbl.t;
  data : (int * int * int, msg Queue.t) Hashtbl.t;
  send_epoch : (int * int * int, int ref) Hashtbl.t;
  recv_epoch : (int * int * int, int ref) Hashtbl.t;
  final : (int, fragment list ref) Hashtbl.t;
}

let create () =
  {
    war = Hashtbl.create 64;
    data = Hashtbl.create 64;
    send_epoch = Hashtbl.create 64;
    recv_epoch = Hashtbl.create 64;
    final = Hashtbl.create 8;
  }

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl key r;
      r

let war t key = cell t.war key
let add_credit t ~cid ~i ~j = incr (cell t.war (cid, i, j))

let next_send_epoch t ~cid ~i ~j =
  let r = cell t.send_epoch (cid, i, j) in
  let e = !r in
  incr r;
  e

let queue t key =
  match Hashtbl.find_opt t.data key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.data key q;
      q

let on_data t ~cid ~i ~j ~epoch ~runs ~payload =
  let expected = cell t.recv_epoch (cid, i, j) in
  if epoch <> !expected then
    raise
      (Wire.Malformed
         (Printf.sprintf "copy#%d (%d->%d): epoch %d, expected %d" cid i j
            epoch !expected));
  incr expected;
  Queue.push { epoch; runs; payload } (queue t (cid, i, j))

let queued t ~cid ~i ~j =
  match Hashtbl.find_opt t.data (cid, i, j) with
  | Some q -> Queue.length q
  | None -> 0

let pop_data t ~cid ~i ~j =
  match Queue.take_opt (queue t (cid, i, j)) with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Net.Channel.pop_data: copy#%d (%d->%d) empty" cid i j)

let final_box t cid =
  match Hashtbl.find_opt t.final cid with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace t.final cid b;
      b

let on_final t ~cid ~i ~j ~runs ~payload =
  let b = final_box t cid in
  b :=
    { src_color = i; dst_color = j; fruns = runs; fpayload = payload } :: !b

let final_count t ~cid =
  match Hashtbl.find_opt t.final cid with
  | Some b -> List.length !b
  | None -> 0

let take_final t ~cid =
  match Hashtbl.find_opt t.final cid with
  | Some b ->
      let l = List.rev !b in
      b := [];
      l
  | None -> []

let apply ~reduce ~fields ~runs ~payload dst =
  let volume = Array.fold_left (fun acc (_, len) -> acc + len) 0 runs in
  let nfields = List.length fields in
  if Array.length payload <> volume * nfields then
    raise
      (Wire.Malformed
         (Printf.sprintf "payload of %d floats for %d runs x %d fields (%d)"
            (Array.length payload) (Array.length runs) nfields
            (volume * nfields)));
  List.iteri
    (fun fi f ->
      let col = Physical.column dst f in
      let ncol = Array.length col in
      let pos = ref (fi * volume) in
      Array.iter
        (fun (off, len) ->
          if off < 0 || len < 0 || off + len > ncol then
            raise
              (Wire.Malformed
                 (Printf.sprintf "run (%d, %d) outside a %d-element column"
                    off len ncol));
          (match reduce with
          | None -> Array.blit payload !pos col off len
          | Some op ->
              let p = !pos in
              for k = 0 to len - 1 do
                col.(off + k) <-
                  Privilege.apply_redop op col.(off + k) payload.(p + k)
              done);
          pos := !pos + len)
        runs)
    fields
