type frame =
  | Data of {
      copy_id : int;
      epoch : int;
      src_color : int;
      dst_color : int;
      fields : string list;
      runs : (int * int) array;
      payload : float array;
    }
  | Credit of { copy_id : int; src_color : int; dst_color : int }
  | Coll of { seq : int; dir : [ `Up | `Down ]; values : (int * float) array }
  | Final of {
      copy_id : int;
      src_color : int;
      dst_color : int;
      fields : string list;
      runs : (int * int) array;
      payload : float array;
    }
  | Snapshot of { rank : int; blob : string }
  | Stats of {
      rank : int;
      msgs : int;
      bytes : int;
      retries : int;
      injected : int;
    }
  | Bye of { rank : int }

exception Malformed of string

let () =
  Printexc.register_printer (function
    | Malformed msg -> Some ("Net.Wire.Malformed: " ^ msg)
    | _ -> None)

let version = 1

let tag = function
  | Data _ -> 1
  | Credit _ -> 2
  | Coll _ -> 3
  | Final _ -> 4
  | Snapshot _ -> 5
  | Stats _ -> 6
  | Bye _ -> 7

let kind = function
  | Data _ -> "data"
  | Credit _ -> "credit"
  | Coll { dir = `Up; _ } -> "coll.up"
  | Coll { dir = `Down; _ } -> "coll.down"
  | Final _ -> "final"
  | Snapshot _ -> "snapshot"
  | Stats _ -> "stats"
  | Bye _ -> "bye"

(* ---------- encoding ---------- *)

let add_int b v = Buffer.add_int64_le b (Int64.of_int v)
let add_float b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let add_string b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_fields b fields =
  add_int b (List.length fields);
  List.iter (add_string b) fields

let add_runs b runs =
  add_int b (Array.length runs);
  Array.iter
    (fun (off, len) ->
      add_int b off;
      add_int b len)
    runs

let add_payload b payload =
  add_int b (Array.length payload);
  Array.iter (add_float b) payload

let encode frame =
  let b = Buffer.create 64 in
  Buffer.add_uint8 b version;
  Buffer.add_uint8 b (tag frame);
  (match frame with
  | Data { copy_id; epoch; src_color; dst_color; fields; runs; payload } ->
      add_int b copy_id;
      add_int b epoch;
      add_int b src_color;
      add_int b dst_color;
      add_fields b fields;
      add_runs b runs;
      add_payload b payload
  | Credit { copy_id; src_color; dst_color } ->
      add_int b copy_id;
      add_int b src_color;
      add_int b dst_color
  | Coll { seq; dir; values } ->
      add_int b seq;
      Buffer.add_uint8 b (match dir with `Up -> 0 | `Down -> 1);
      add_int b (Array.length values);
      Array.iter
        (fun (c, v) ->
          add_int b c;
          add_float b v)
        values
  | Final { copy_id; src_color; dst_color; fields; runs; payload } ->
      add_int b copy_id;
      add_int b src_color;
      add_int b dst_color;
      add_fields b fields;
      add_runs b runs;
      add_payload b payload
  | Snapshot { rank; blob } ->
      add_int b rank;
      add_string b blob
  | Stats { rank; msgs; bytes; retries; injected } ->
      add_int b rank;
      add_int b msgs;
      add_int b bytes;
      add_int b retries;
      add_int b injected
  | Bye { rank } -> add_int b rank);
  Buffer.to_bytes b

(* ---------- decoding ---------- *)

type cursor = { buf : Bytes.t; mutable pos : int }

let need cur n what =
  if cur.pos + n > Bytes.length cur.buf then
    raise
      (Malformed
         (Printf.sprintf "truncated %s at byte %d (need %d of %d)" what
            cur.pos n (Bytes.length cur.buf)))

let read_u8 cur what =
  need cur 1 what;
  let v = Bytes.get_uint8 cur.buf cur.pos in
  cur.pos <- cur.pos + 1;
  v

let read_int cur what =
  need cur 8 what;
  let v = Int64.to_int (Bytes.get_int64_le cur.buf cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let read_float cur what =
  need cur 8 what;
  let v = Int64.float_of_bits (Bytes.get_int64_le cur.buf cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let read_count cur what =
  let n = read_int cur what in
  if n < 0 || n > Bytes.length cur.buf then
    raise (Malformed (Printf.sprintf "bad %s count %d" what n));
  n

let read_string cur what =
  let n = read_int cur what in
  if n < 0 then raise (Malformed (Printf.sprintf "negative %s length" what));
  need cur n what;
  let s = Bytes.sub_string cur.buf cur.pos n in
  cur.pos <- cur.pos + n;
  s

let read_fields cur =
  let n = read_count cur "field" in
  List.init n (fun _ -> read_string cur "field name")

let read_runs cur =
  let n = read_count cur "run" in
  Array.init n (fun _ ->
      let off = read_int cur "run offset" in
      let len = read_int cur "run length" in
      if off < 0 || len < 0 then
        raise (Malformed (Printf.sprintf "negative run (%d, %d)" off len));
      (off, len))

let read_payload cur =
  let n = read_int cur "payload" in
  if n < 0 || n * 8 > Bytes.length cur.buf then
    raise (Malformed (Printf.sprintf "bad payload count %d" n));
  Array.init n (fun _ -> read_float cur "payload")

let decode buf =
  let cur = { buf; pos = 0 } in
  let v = read_u8 cur "version" in
  if v <> version then
    raise (Malformed (Printf.sprintf "version %d, expected %d" v version));
  let t = read_u8 cur "tag" in
  let frame =
    match t with
    | 1 ->
        let copy_id = read_int cur "copy_id" in
        let epoch = read_int cur "epoch" in
        let src_color = read_int cur "src_color" in
        let dst_color = read_int cur "dst_color" in
        let fields = read_fields cur in
        let runs = read_runs cur in
        let payload = read_payload cur in
        Data { copy_id; epoch; src_color; dst_color; fields; runs; payload }
    | 2 ->
        let copy_id = read_int cur "copy_id" in
        let src_color = read_int cur "src_color" in
        let dst_color = read_int cur "dst_color" in
        Credit { copy_id; src_color; dst_color }
    | 3 ->
        let seq = read_int cur "seq" in
        let dir =
          match read_u8 cur "dir" with
          | 0 -> `Up
          | 1 -> `Down
          | d -> raise (Malformed (Printf.sprintf "bad collective dir %d" d))
        in
        let n = read_count cur "value" in
        let values =
          Array.init n (fun _ ->
              let c = read_int cur "color" in
              let v = read_float cur "value" in
              (c, v))
        in
        Coll { seq; dir; values }
    | 4 ->
        let copy_id = read_int cur "copy_id" in
        let src_color = read_int cur "src_color" in
        let dst_color = read_int cur "dst_color" in
        let fields = read_fields cur in
        let runs = read_runs cur in
        let payload = read_payload cur in
        Final { copy_id; src_color; dst_color; fields; runs; payload }
    | 5 ->
        let rank = read_int cur "rank" in
        let blob = read_string cur "blob" in
        Snapshot { rank; blob }
    | 6 ->
        let rank = read_int cur "rank" in
        let msgs = read_int cur "msgs" in
        let bytes = read_int cur "bytes" in
        let retries = read_int cur "retries" in
        let injected = read_int cur "injected" in
        Stats { rank; msgs; bytes; retries; injected }
    | 7 -> Bye { rank = read_int cur "rank" }
    | t -> raise (Malformed (Printf.sprintf "unknown frame tag %d" t))
  in
  if cur.pos <> Bytes.length buf then
    raise
      (Malformed
         (Printf.sprintf "%d trailing bytes after %s frame"
            (Bytes.length buf - cur.pos)
            (kind frame)));
  frame
