(** The wire protocol of the distributed backend.

    Every message between shard processes is one self-describing frame:
    a version byte, a kind tag, then fixed-width little-endian fields
    (ints as 64-bit, floats as their IEEE-754 bit patterns — the bitwise
    determinism guarantee extends onto the wire). The transport layer
    adds a 4-byte length prefix per frame; this module only encodes and
    decodes the frame body.

    Data-plane frames serialize region fragments straight out of
    {!Spmd.Copy_plan}: the producer gathers its planned source runs into
    a field-major payload and ships it with the plan's
    {e destination-relative} [(offset, len)] runs, so the receiver
    scatters into its own instance without rebuilding the plan — both
    sides derive instance layouts from the same (deterministic) index
    spaces, so destination offsets computed by the sender are valid in
    the receiver's address space. *)

(** One frame. [Data] is a body-phase copy fragment (synchronised by
    credits), [Credit] a write-after-read grant, [Coll] one hop of a
    tree collective, [Final] a finalize-phase fragment broadcast to all
    ranks, and [Snapshot]/[Stats]/[Bye] the end-of-run gather at
    rank 0. *)
type frame =
  | Data of {
      copy_id : int;
      epoch : int;  (** per (copy_id, src, dst) send counter, from 0 *)
      src_color : int;
      dst_color : int;
      fields : string list;  (** field names, validation only *)
      runs : (int * int) array;  (** destination (offset, len) runs *)
      payload : float array;  (** field-major, [volume] floats a field *)
    }
  | Credit of { copy_id : int; src_color : int; dst_color : int }
  | Coll of {
      seq : int;  (** global collective sequence number *)
      dir : [ `Up | `Down ];
      values : (int * float) array;
          (** [`Up]: (color, partial) contributions; [`Down]: a single
              [(0, result)] pair, or empty for a barrier *)
    }
  | Final of {
      copy_id : int;
      src_color : int;
      dst_color : int;  (** [-1] when the destination is the root *)
      fields : string list;
      runs : (int * int) array;
      payload : float array;
    }
  | Snapshot of { rank : int; blob : string }
      (** marshalled final state, for the rank-0 consistency check *)
  | Stats of {
      rank : int;
      msgs : int;
      bytes : int;
      retries : int;
      injected : int;
    }
  | Bye of { rank : int }

exception Malformed of string
(** Raised by {!decode} on a version mismatch, unknown tag, truncated
    body or trailing bytes. *)

val encode : frame -> Bytes.t
val decode : Bytes.t -> frame

val kind : frame -> string
(** Short label for traces and diagnostics ("data", "credit", ...). *)
