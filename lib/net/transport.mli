(** Point-to-point transports for the distributed backend.

    A transport connects [size] ranks with ordered, reliable byte-frame
    delivery (each {!send} is one length-prefixed frame, received whole).
    Three implementations:

    - {!loopback}: an in-process hub of FIFO queues. Fully deterministic
      under the cooperative loopback driver — the tests' and sanitizer's
      reference — and API-identical to the real transports.
    - {!unix_mesh}: a pre-fork full mesh of Unix-domain socketpairs; the
      parent creates every pair, each forked process keeps its own row.
    - {!tcp_mesh}: TCP over the loopback interface on ephemeral ports.
      Rank [r] accepts from higher ranks and connects to lower ones; the
      listener stays in the receive set for the whole run, so a dropped
      connection can be re-established mid-run (see [?fault]).

    With [?fault], every send first draws the
    {!Resilience.Fault.Net_send} site; an injected transient failure is
    retried up to [policy.net_retries] times — on the TCP connector side
    each retry closes and re-dials the connection, exercising the real
    reconnect path. Exhausted retries, a broken pipe, or a reset raise
    {!Peer_down}.

    Graceful peer shutdown surfaces as {!Closed} from {!recv} (EOF after
    the kernel buffer drains), never an exception: whether the close was
    expected is a protocol-level question (did the peer say goodbye
    first?) that the engine answers, not the transport. *)

exception Peer_down of int
(** The given rank is unreachable: send retries exhausted, connection
    reset, or re-dial refused. *)

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;  (** length prefixes included *)
  mutable msgs_recvd : int;
  mutable retries : int;  (** injected-fault resends *)
  mutable reconnects : int;  (** TCP re-dials and re-accepts *)
}

val prefix_bytes : int
(** Per-frame length-prefix overhead, counted in [bytes_sent] on every
    transport (loopback included) so byte totals are comparable. *)

type event =
  | Msg of int * Bytes.t  (** one frame from the given rank *)
  | Closed of int  (** the given rank closed its connection (EOF) *)
  | Timeout

type t

val rank : t -> int
val size : t -> int
val stats : t -> stats

val send : t -> dst:int -> Bytes.t -> unit
(** Send one frame ([dst] may be the sender itself — delivered through a
    local queue). Raises {!Peer_down} when [dst] is unreachable. *)

val recv : t -> timeout:float -> event
(** Wait up to [timeout] seconds for one event. [~timeout:0.] polls.
    When several peers are ready the lowest rank is served first, and a
    frame from a peer is delivered before its EOF. *)

val alive : t -> int -> bool
(** Whether an open connection to the given rank exists right now
    (always [true] on loopback and for [rank t] itself). *)

val close : t -> unit

val loopback : ?fault:Resilience.Fault.t -> size:int -> unit -> t array
(** All [size] endpoints of an in-process hub. Not thread-safe: made for
    the cooperative loopback driver, which steps engines one at a
    time. *)

(** A pre-fork mesh: created once in the launcher parent, then each
    process (parent included) claims its endpoint, which closes every
    file descriptor belonging to other ranks. Claim at most one rank per
    process. *)
type mesh

val mesh_size : mesh -> int

val unix_mesh : size:int -> mesh
val tcp_mesh : size:int -> mesh

val endpoint :
  ?fault:Resilience.Fault.t -> ?on_send:(unit -> unit) -> mesh -> rank:int -> t
(** [on_send] runs before every physical send (fault-injection hooks,
    e.g. the launcher's kill-shard switch). *)
