open Regions

type action =
  | Send_up of int * (int * float) array
  | Send_down of int * float

type slot = {
  mutable op : Privilege.redop option;  (* set once this rank deposits *)
  mutable contributions : (int * float) list;  (* own + children's *)
  mutable deposited : bool;
  mutable ups : int;  (* child Up frames received *)
  mutable up_sent : bool;
  mutable result : float option;
  mutable down_sent : bool;
}

type t = {
  rank : int;
  size : int;
  mutable next_seq : int;
  slots : (int, slot) Hashtbl.t;
}

let create ~rank ~size = { rank; size; next_seq = 0; slots = Hashtbl.create 8 }

let parent ~rank = if rank = 0 then None else Some ((rank - 1) / 2)

let children ~rank ~size =
  List.filter (fun c -> c < size) [ (2 * rank) + 1; (2 * rank) + 2 ]

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s =
        {
          op = None;
          contributions = [];
          deposited = false;
          ups = 0;
          up_sent = false;
          result = None;
          down_sent = false;
        }
      in
      Hashtbl.replace t.slots seq s;
      s

let begin_op t ~op ~values =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = slot t seq in
  s.op <- Some op;
  s.contributions <- values @ s.contributions;
  s.deposited <- true;
  seq

let on_up t ~seq values =
  let s = slot t seq in
  s.contributions <- Array.to_list values @ s.contributions;
  s.ups <- s.ups + 1

let on_down t ~seq result = (slot t seq).result <- Some result

let poll t ~seq =
  let s = slot t seq in
  let nchildren = List.length (children ~rank:t.rank ~size:t.size) in
  let acts = ref [] in
  if s.deposited && s.ups = nchildren && not s.up_sent then begin
    s.up_sent <- true;
    match parent ~rank:t.rank with
    | Some p -> acts := [ Send_up (p, Array.of_list s.contributions) ]
    | None ->
        (* Root: the global fold, in ascending color order — bitwise
           equal to the sequential interpreter and the shared-memory
           executor, independent of message arrival order. *)
        let op = Option.get s.op in
        let sorted =
          List.sort (fun (a, _) (b, _) -> Int.compare a b) s.contributions
        in
        s.result <-
          Some
            (List.fold_left
               (fun acc (_, v) -> Privilege.apply_redop op acc v)
               (Privilege.identity_of op)
               sorted)
  end;
  (match s.result with
  | Some r when not s.down_sent ->
      s.down_sent <- true;
      acts :=
        !acts
        @ List.map
            (fun c -> Send_down (c, r))
            (children ~rank:t.rank ~size:t.size)
  | _ -> ());
  (!acts, s.result)

let arrived t ~seq =
  let s = slot t seq in
  (if s.deposited then 1 else 0) + s.ups

let completed t ~seq = (slot t seq).result <> None

let finish t ~seq = Hashtbl.remove t.slots seq
