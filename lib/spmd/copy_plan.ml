open Regions

(* A compiled copy plan: the (src, dst, fields, intersection) of one
   ghost-exchange copy resolved into (src_off, dst_off, len) runs over the
   two instances' storage. Because instance storage is parallel to the
   sorted id array, any run of consecutive global ids contained in an
   instance maps to consecutive storage indices — so each run replays as
   one [Array.blit] per field (or one tight fused loop for reductions).
   Offsets depend only on the index spaces involved, never on instance
   identity, so a plan built once replays against any instances with the
   same layouts (e.g. the fresh staging snapshots of reduction copies). *)

type t = {
  fields : Field.t list;
  src_off : int array;
  dst_off : int array;
  len : int array;
  volume : int; (* total elements moved per field per replay *)
}

let volume t = t.volume
let nruns t = Array.length t.len
let fields t = t.fields

let build ?space ~(src : Physical.t) ~(dst : Physical.t) ~fields () =
  let space =
    match space with
    | Some s -> s
    | None -> Index_space.inter (Physical.ispace src) (Physical.ispace dst)
  in
  let runs = ref [] and n = ref 0 in
  Index_space.iter_id_runs
    (fun lo hi ->
      runs := (lo, hi) :: !runs;
      incr n)
    space;
  let src_off = Array.make !n 0
  and dst_off = Array.make !n 0
  and len = Array.make !n 0 in
  let vol = ref 0 in
  let k = ref (!n - 1) in
  (* [runs] is in reverse order; fill the arrays back to front. *)
  List.iter
    (fun (lo, hi) ->
      src_off.(!k) <- Physical.index_of src lo;
      dst_off.(!k) <- Physical.index_of dst lo;
      len.(!k) <- hi - lo + 1;
      vol := !vol + (hi - lo + 1);
      decr k)
    !runs;
  { fields; src_off; dst_off; len; volume = !vol }

let copy t ~src ~dst =
  List.iter
    (fun f ->
      let sc = Physical.column src f and dc = Physical.column dst f in
      for r = 0 to Array.length t.len - 1 do
        Array.blit sc t.src_off.(r) dc t.dst_off.(r) t.len.(r)
      done)
    t.fields

let reduce t ~op ~src ~dst =
  List.iter
    (fun f ->
      let sc = Physical.column src f and dc = Physical.column dst f in
      let nr = Array.length t.len in
      (* The operator is matched once; each arm is a fused run loop. *)
      match (op : Privilege.redop) with
      | Privilege.Sum ->
          for r = 0 to nr - 1 do
            let s = t.src_off.(r) and d = t.dst_off.(r) in
            for k = 0 to t.len.(r) - 1 do
              dc.(d + k) <- dc.(d + k) +. sc.(s + k)
            done
          done
      | Privilege.Prod ->
          for r = 0 to nr - 1 do
            let s = t.src_off.(r) and d = t.dst_off.(r) in
            for k = 0 to t.len.(r) - 1 do
              dc.(d + k) <- dc.(d + k) *. sc.(s + k)
            done
          done
      | Privilege.Min ->
          for r = 0 to nr - 1 do
            let s = t.src_off.(r) and d = t.dst_off.(r) in
            for k = 0 to t.len.(r) - 1 do
              dc.(d + k) <- Float.min dc.(d + k) sc.(s + k)
            done
          done
      | Privilege.Max ->
          for r = 0 to nr - 1 do
            let s = t.src_off.(r) and d = t.dst_off.(r) in
            for k = 0 to t.len.(r) - 1 do
              dc.(d + k) <- Float.max dc.(d + k) sc.(s + k)
            done
          done)
    t.fields

let execute t ~reduce:red ~src ~dst =
  match red with None -> copy t ~src ~dst | Some op -> reduce t ~op ~src ~dst

let dst_runs t =
  Array.init (Array.length t.len) (fun r -> (t.dst_off.(r), t.len.(r)))

let gather t ~src =
  let nf = List.length t.fields in
  let out = Array.make (nf * t.volume) 0. in
  List.iteri
    (fun fi f ->
      let col = Physical.column src f in
      let pos = ref (fi * t.volume) in
      for r = 0 to Array.length t.len - 1 do
        Array.blit col t.src_off.(r) out !pos t.len.(r);
        pos := !pos + t.len.(r)
      done)
    t.fields;
  out
