(* Dynamic computation of copy intersections (paper §3.3).

   Copies are issued between pairs of source and destination subregions, but
   only their intersections must move. The computation runs in two phases:

   - a *shallow* phase that finds candidate overlapping pairs from subregion
     bounds alone — an interval tree over identifier bounds for unstructured
     partitions, a bounding-volume hierarchy for structured ones — avoiding
     the O(N^2) all-pairs comparison;
   - a *complete* phase computing the exact element intersection of each
     candidate pair, discarding the empty ones.

   Both phases are timed; the per-phase totals reproduce Table 1. *)

open Geometry
open Regions

type stats = {
  mutable shallow_s : float; (* seconds in the shallow phase *)
  mutable complete_s : float; (* seconds in the complete phase *)
  mutable candidates : int; (* pairs surviving the shallow phase *)
  mutable nonempty : int; (* pairs surviving the complete phase *)
  mutable cache_hits : int; (* lookups served by the partition-pair cache *)
}

let fresh_stats () =
  { shallow_s = 0.; complete_s = 0.; candidates = 0; nonempty = 0; cache_hits = 0 }

(* The non-empty intersections between two partitions' subregions:
   (source color, destination color, shared elements). *)
type pairs = {
  src : Partition.t;
  dst : Partition.t;
  items : (int * int * Index_space.t) list;
}

let timed cell f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  cell := !cell +. (Unix.gettimeofday () -. t0);
  r

(* The index is built from every rectangle (structured) or identifier run
   (unstructured) of each destination subregion, not from whole-subregion
   bounds: halo subregions are unions of scattered pieces whose bounding
   box would overlap nearly everything. Queries deduplicate candidate
   colors through a seen-set keyed by the source color being queried. *)
(* Per-source-color query against the prebuilt index: dedup is local to
   the color, so colors can be queried independently (and in parallel). *)
let shallow_candidates ?pool ~(src : Partition.t) ~(dst : Partition.t) () =
  let n_src = Partition.color_count src
  and n_dst = Partition.color_count dst in
  let structured =
    n_dst > 0
    && Index_space.is_structured (Partition.sub dst 0).Region.ispace
  in
  let query =
    if structured then begin
      let items =
        List.concat_map
          (fun j ->
            List.map
              (fun r -> (r, j))
              (Index_space.rects (Partition.sub dst j).Region.ispace))
          (List.init n_dst Fun.id)
      in
      let bvh = Bvh.build items in
      fun i add ->
        List.iter
          (fun r -> Bvh.iter_overlapping bvh r (fun _ j -> add i j))
          (Index_space.rects (Partition.sub src i).Region.ispace)
    end
    else begin
      let items =
        List.concat_map
          (fun j ->
            List.map
              (fun run -> (run, j))
              (Index_space.id_runs (Partition.sub dst j).Region.ispace))
          (List.init n_dst Fun.id)
      in
      let tree = Interval_tree.build items in
      fun i add ->
        List.iter
          (fun run ->
            Interval_tree.iter_overlapping tree run (fun _ j -> add i j))
          (Index_space.id_runs (Partition.sub src i).Region.ispace)
    end
  in
  let one_color i =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    query i (fun i j ->
        if not (Hashtbl.mem seen j) then begin
          Hashtbl.add seen j ();
          out := (i, j) :: !out
        end);
    List.rev !out
  in
  let per_color =
    match pool with
    | Some p -> Taskpool.Pool.parallel_map_array p one_color (Array.init n_src Fun.id)
    | None -> Array.init n_src one_color
  in
  List.concat (Array.to_list per_color)

let complete_one ~(src : Partition.t) ~(dst : Partition.t) (i, j) =
  let inter =
    Index_space.inter
      (Partition.sub src i).Region.ispace
      (Partition.sub dst j).Region.ispace
  in
  if Index_space.is_empty inter then None else Some (i, j, inter)

let complete_pairs ?pool ~(src : Partition.t) ~(dst : Partition.t) candidates =
  match pool with
  | None -> List.filter_map (complete_one ~src ~dst) candidates
  | Some p ->
      Taskpool.Pool.parallel_map_array p
        (complete_one ~src ~dst)
        (Array.of_list candidates)
      |> Array.to_list
      |> List.filter_map Fun.id

let compute ?stats ?pool ~src ~dst () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let sh = ref 0. and co = ref 0. in
  let candidates = timed sh (fun () -> shallow_candidates ?pool ~src ~dst ()) in
  let items = timed co (fun () -> complete_pairs ?pool ~src ~dst candidates) in
  stats.shallow_s <- stats.shallow_s +. !sh;
  stats.complete_s <- stats.complete_s +. !co;
  stats.candidates <- stats.candidates + List.length candidates;
  stats.nonempty <- stats.nonempty + List.length items;
  { src; dst; items }

(* Partition-pair cache. Partitions are immutable and carry unique ids,
   so (src id, dst id) keys need no invalidation: a cached entry is valid
   forever. The table is bounded — long soaks (chaos) mint thousands of
   fresh partitions, and an unbounded cache would pin all their index
   spaces; blowing the whole table away at the cap keeps the common case
   (a program's copies recomputed every run/iteration) hot without a
   retention policy. *)
let cache : (int * int, pairs) Hashtbl.t = Hashtbl.create 64
let cache_mu = Mutex.create ()
let cache_cap = 512

let clear_cache () = Mutex.protect cache_mu (fun () -> Hashtbl.reset cache)

let compute_cached ?stats ?pool ~src ~dst () =
  let key = (src.Partition.id, dst.Partition.id) in
  match Mutex.protect cache_mu (fun () -> Hashtbl.find_opt cache key) with
  | Some p ->
      (match stats with Some s -> s.cache_hits <- s.cache_hits + 1 | None -> ());
      p
  | None ->
      let p = compute ?stats ?pool ~src ~dst () in
      Mutex.protect cache_mu (fun () ->
          if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
          Hashtbl.replace cache key p);
      p

(* The naive all-pairs computation (what §3.3 optimizes away) — kept for the
   ablation benchmark. *)
let compute_all_pairs ?stats ~src ~dst () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let n_src = Partition.color_count src
  and n_dst = Partition.color_count dst in
  let candidates =
    List.concat_map
      (fun i -> List.init n_dst (fun j -> (i, j)))
      (List.init n_src Fun.id)
  in
  let co = ref 0. in
  let items = timed co (fun () -> complete_pairs ~src ~dst candidates) in
  stats.complete_s <- stats.complete_s +. !co;
  stats.candidates <- stats.candidates + List.length candidates;
  stats.nonempty <- stats.nonempty + List.length items;
  { src; dst; items }
