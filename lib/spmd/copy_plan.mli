(** Compiled copy plans: the bulk data plane for ghost exchanges.

    The executor's copies act on the intersection of two instances' index
    spaces (paper §3.1/§4.3). Executed naively that is one address
    resolution per element per time step; the intersection, however, is
    loop-invariant — paper §3.3's whole point is that it is computed once
    and amortised. A plan extends that amortisation to the data movement
    itself: on first execution the (src, dst, fields, intersection) tuple
    is resolved into [(src_off, dst_off, len)] runs over the two storage
    layouts, and every subsequent execution replays the runs with
    [Array.blit] (plain copies) or a tight fused per-operator loop
    (reduction copies).

    Offsets are a function of the index spaces only, so a plan replays
    correctly against any instances sharing the build-time layouts — in
    particular the fresh staging snapshots reduction copies allocate each
    iteration. The executor memoises plans per (copy, src color, dst
    color, role); see {!Exec}. *)

open Regions

type t

val build :
  ?space:Index_space.t ->
  src:Physical.t ->
  dst:Physical.t ->
  fields:Field.t list ->
  unit ->
  t
(** Resolve the run list for moving [fields] from [src] to [dst] over
    [space] (default: the intersection of the two instances' index
    spaces). [space] must be contained in both instances. *)

val copy : t -> src:Physical.t -> dst:Physical.t -> unit
(** Replay as [Array.blit]s: [dst.f <- src.f] on every planned run. *)

val reduce : t -> op:Privilege.redop -> src:Physical.t -> dst:Physical.t -> unit
(** Replay as fused loops: [dst.f <- dst.f op src.f] on every planned run. *)

val execute :
  t -> reduce:Privilege.redop option -> src:Physical.t -> dst:Physical.t -> unit
(** {!copy} when [reduce] is [None], {!reduce} otherwise. *)

val volume : t -> int
(** Elements moved per field per replay. *)

val nruns : t -> int
(** Number of contiguous runs in the plan. *)

val fields : t -> Field.t list

val dst_runs : t -> (int * int) array
(** The plan's [(dst_off, len)] runs — destination-relative addressing
    for a receiver that holds the destination instance but not the plan
    (the wire protocol ships these alongside the payload). *)

val gather : t -> src:Physical.t -> float array
(** Serialize the planned source runs into a fresh field-major payload:
    [fields] in plan order, each contributing [volume] floats in run
    order. Together with {!dst_runs} this is the wire image of one copy
    fragment. *)
