(** Dynamic computation of copy intersections (paper §3.3).

    Copies are issued between pairs of source and destination subregions,
    but only their intersections must move. {!compute} runs in two timed
    phases: a {e shallow} phase finding candidate overlapping pairs from
    per-piece bounds (an interval tree over identifier runs for
    unstructured partitions, a bounding-volume hierarchy for structured
    ones), then a {e complete} phase computing each candidate's exact
    element intersection and discarding the empty ones. The per-phase
    totals reproduce Table 1. *)

type stats = {
  mutable shallow_s : float;  (** seconds in the shallow phase *)
  mutable complete_s : float;  (** seconds in the complete phase *)
  mutable candidates : int;  (** pairs surviving the shallow phase *)
  mutable nonempty : int;  (** pairs surviving the complete phase *)
  mutable cache_hits : int;
      (** lookups served by the partition-pair cache *)
}

val fresh_stats : unit -> stats
(** All counters zero — the only way to reset accounting. *)

(** The non-empty intersections between two partitions' subregions:
    [(source color, destination color, shared elements)]. *)
type pairs = {
  src : Regions.Partition.t;
  dst : Regions.Partition.t;
  items : (int * int * Regions.Index_space.t) list;
}

val compute :
  ?stats:stats ->
  ?pool:Taskpool.Pool.t ->
  src:Regions.Partition.t ->
  dst:Regions.Partition.t ->
  unit ->
  pairs
(** Shallow + complete phases; accumulates into [stats] when given, and
    fans both phases out over [pool] when given. *)

val compute_cached :
  ?stats:stats ->
  ?pool:Taskpool.Pool.t ->
  src:Regions.Partition.t ->
  dst:Regions.Partition.t ->
  unit ->
  pairs
(** [compute] behind a process-wide cache keyed on the two partitions'
    unique ids. Partitions are immutable, so entries never need
    invalidation; a hit bumps [stats.cache_hits] and touches no other
    counter. The table is bounded at {!cache_cap} entries and blown away
    wholesale when full (no retention policy — the common case is a
    program's copies recomputed every iteration, which stays hot). *)

val cache_cap : int
(** Entry bound of the {!compute_cached} table. *)

val clear_cache : unit -> unit
(** Drop every cached pair; subsequent lookups recompute. *)

val compute_all_pairs :
  ?stats:stats ->
  src:Regions.Partition.t ->
  dst:Regions.Partition.t ->
  unit ->
  pairs
(** The naive all-pairs computation (what §3.3 optimizes away) — kept for
    the ablation benchmark. Every [(i, j)] is a candidate; only the
    complete phase is timed. *)
