(** Dynamic race sanitizer for SPMD execution.

    An independent check that the compiler's sync insertion ([Cr.Sync])
    ordered every pair of conflicting cross-shard accesses: the executor,
    when armed with [~sanitize:true], reports each instruction's data
    footprint (per partition color, field and element) and each use of a
    synchronisation primitive (channel credits, barriers, the scalar
    collective) to this module, which maintains FastTrack-style vector
    clocks per shard and per sync object and raises {!Race} on the first
    conflicting access pair with no happens-before path through the
    executor's own primitives.

    Because privileges are strict (a task touches exactly what it
    declared — paper §2.1), declared footprints are sound stand-ins for
    the instructions' real accesses, and because all cross-shard data
    motion goes through copies guarded by credit channels, a dropped or
    misplaced sync op surfaces as a race {e on any schedule}: detection is
    happens-before based, not interleaving based.

    The detector itself is internally synchronised and adds no
    happens-before edges of its own: shard clocks only advance through
    the {!acquire}/{!release} calls mirroring the executor's primitives,
    so running it under the [`Domains] backend neither masks nor
    fabricates races. *)

type t

exception Race of string
(** Human-readable description of the two unsynchronised conflicting
    accesses: partition, color, field, element, shards and access kinds. *)

type access =
  | A_read
  | A_write
  | A_reduce of Regions.Privilege.redop
      (** reductions with the same operator commute and do not conflict *)

type sync_key =
  | K_war of int * int * int
      (** write-after-read credit of (copy id, src color, dst color) *)
  | K_raw of int * int * int
      (** read-after-write token of (copy id, src color, dst color) *)
  | K_barrier  (** the block's global barrier *)
  | K_ckpt  (** the checkpoint barrier *)
  | K_collective  (** the dynamic scalar-reduction collective *)

val create : nshards:int -> t

val access :
  t ->
  shard:int ->
  part:string ->
  color:int ->
  field:Regions.Field.t ->
  access ->
  Regions.Index_space.t ->
  unit
(** Record one instruction's footprint over every element of the given
    space, checking each element against the recorded epochs of other
    shards. Raises {!Race} on the first conflict. *)

val acquire : t -> shard:int -> sync_key -> unit
(** The shard passed a blocking point guarded by [key]: join the key's
    clock into the shard's clock. *)

val release : t -> shard:int -> sync_key -> unit
(** The shard published a signal on [key]: join the shard's clock into
    the key's clock, then advance the shard's epoch. *)
