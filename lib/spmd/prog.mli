(** The explicit-SPMD program representation control replication compiles
    to (paper Fig. 4d).

    A replicated block is executed by [shards] long-running shard tasks,
    each running the same instruction stream. Work is divided by
    ownership: launch-space colors are block-distributed over shards; a
    shard executes the iterations it owns, issues the copies whose
    {e source} subregion it owns (producer-issued copies, §3.4), and
    synchronises as consumer for the copies whose destination it owns.

    Under data replication (§3.1) every (partition, color) pair has its
    own physical instance, owned by the color's owner shard. Parent
    regions keep separate storage touched only by the initialization /
    finalization copies, which run before shards start and after they
    finish. *)

(** Operand of a copy: a whole region (init/finalize) or a partition. *)
type operand = Oregion of string | Opart of string

type copy = {
  copy_id : int;  (** unique within the program; keys sync channels *)
  src : operand;
  dst : operand;
  fields : Regions.Field.t list;
  reduce : Regions.Privilege.redop option;
      (** reduction-apply copy (§4.3) *)
  pairs : [ `Dense | `Sparse ];
      (** [`Dense]: all (i,j) color pairs are candidates, intersections
          computed per copy on the fly (the O(N²) behaviour §3.3
          removes). [`Sparse]: only the precomputed non-empty
          intersection pairs. *)
}

type instr =
  | Launch of { space : string; launch : Ir.Types.launch }
      (** for i in my colors of space: task(...) *)
  | Launch_collective of {
      space : string;
      launch : Ir.Types.launch;
      var : string;
      op : Regions.Privilege.redop;
    }  (** local partials + dynamic collective + broadcast (§4.4) *)
  | Copy of copy  (** producer side: issue owned copies, with p2p sync *)
  | Await of int  (** consumer side: wait for incoming copies [copy_id] *)
  | Release of int
      (** consumer side: grant write-after-read credit for [copy_id]'s
          next occurrence *)
  | Barrier  (** global barrier (naive sync mode, Fig. 4c) *)
  | Fill of {
      part : string;
      fields : Regions.Field.t list;
      op : Regions.Privilege.redop;
    }
      (** reset a reduction-temporary partition to the operator identity
          before the launch that reduces into it (§4.3) *)
  | Assign of string * Ir.Types.sexpr  (** replicated scalar state *)
  | For_time of { var : string; count : int; body : instr list }
  | Checkpoint of { var : string; every : int }
      (** resilience: when [(var + 1) mod every = 0], quiesce all shards
          on a dedicated barrier and serialize the block's state at this
          time-loop boundary; a no-op when the executor has no checkpoint
          sink configured *)

(** One control-replicated block. [init]/[finalize] run sequentially
    outside the shards. *)
type block = {
  shards : int;
  init : instr list;
  body : instr list;
  finalize : instr list;
  copies : copy list;  (** all copies appearing anywhere, by copy_id *)
  credits : (int * int) list;
      (** copy_id -> initial write-after-read credits: 1 when the copy's
          Release follows it in program order (the first occurrence may
          proceed), 0 when the Release precedes it within the same
          iteration. Missing entries default to 1. *)
}

(** A compiled program interleaves sequential statements (run by the
    master, shared-memory semantics) with replicated blocks. *)
type item = Seq of Ir.Types.stmt list | Replicated of block

type t = {
  source : Ir.Program.t;  (** environment: regions, partitions, tasks *)
  items : item list;
}

val owner_of_color : shards:int -> colors:int -> int -> int
(** Block distribution of [colors] over [shards] (§3.5); raises
    [Invalid_argument] on an out-of-range color. *)

val colors_of_shard : shards:int -> colors:int -> int -> int list
(** The colors shard [s] owns, ascending (empty when over-sharded). *)

val first_time_loop : block -> int option
(** Index in [body] of the first top-level [For_time] — the loop
    checkpoints attach to and restarts resume into. *)

val with_checkpoints : every:int -> block -> block
(** Append a [Checkpoint] to the first time loop's body; identity when
    the block has no time loop. Raises [Invalid_argument] when
    [every < 1]. *)

val map_blocks : (block -> block) -> t -> t

(** {1 Pretty printing} (golden tests, [crc inspect]) *)

val pp_operand : Format.formatter -> operand -> unit
val pp_copy : Format.formatter -> copy -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_instrs : Format.formatter -> instr list -> unit
val pp_block : Format.formatter -> block -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
