(** Functional execution of SPMD programs.

    Each replicated block runs as [shards] cooperative shard streams driven
    by a scheduler: round-robin, seeded-random (adversarial interleavings
    for the equivalence tests), or real OCaml domains. Synchronisation —
    write-after-read credits and read-after-write tokens per copy pair
    (§3.4), global barriers, and the dynamic collective for scalar
    reductions (§4.4) — is honoured exactly; a schedule in which every
    live shard is blocked raises {!Deadlock} (a control-replication bug by
    definition, so tests assert it never happens) carrying structured
    per-shard diagnostics: each shard's current instruction and what it is
    waiting on (channel war/raw counters, barrier generation, collective
    slot state).

    Execution is bitwise deterministic and equal to the sequential
    interpreter on the same inputs, for any schedule: plain copies never
    conflict (write-privileged partitions are disjoint), reduction copies
    are staged and applied in ascending source-color order, and the scalar
    collective folds per-color results in color order.

    Resilience (lib/resilience): a deterministic fault injector can be
    armed with [?fault] — injected transient leaf-task failures are
    retried with snapshot/rollback of the attempt's write set, injected
    stalls delay shards without affecting results. The [`Domains] backend
    runs a stall watchdog that turns a hang into {!Deadlock} with the same
    structured diagnostics. [?checkpoint_sink] + [Prog.with_checkpoints]
    serialize consistent cuts at time-loop boundaries; [?restore] resumes
    a run from such a cut. *)

exception Deadlock of Resilience.Diag.t

type sched =
  [ `Round_robin  (** deterministic cooperative stepper *)
  | `Random of int  (** seeded adversarial interleaving (same stepper) *)
  | `Domains
    (** one OCaml domain per shard with real mutex/condition-variable
        synchronisation — true parallel execution of the SPMD program.
        Use moderate shard counts (≲ 16); a sync bug is caught by the
        stall watchdog, which raises {!Deadlock} after [?watchdog]
        seconds without progress. *) ]

type stats = {
  isect : Intersections.stats;  (** dynamic intersection timings (§3.3) *)
  attempts : int Atomic.t;  (** leaf-task attempts (retries included) *)
  retries : int Atomic.t;  (** rollback re-executions after injected faults *)
  injected : int Atomic.t;  (** faults fired (all sites) *)
  checkpoints : int Atomic.t;  (** checkpoints taken *)
  plan_builds : int Atomic.t;  (** copy plans compiled (cache misses) *)
  plan_replays : int Atomic.t;  (** plan executions (incl. first) *)
  blit_volume : int Atomic.t;
      (** elements moved through plan replays, summed over fields *)
  msgs_sent : int Atomic.t;
      (** wire frames sent by the net backend (zero for shared memory) *)
  bytes_on_wire : int Atomic.t;
      (** encoded frame bytes sent by the net backend, length prefixes
          included *)
}

val fresh_stats : ?registry:Obs.Metrics.t -> unit -> stats
(** With [registry], the counter fields alias registry counters
    ([exec.attempts], [exec.retries], [exec.injected], [exec.checkpoints],
    [exec.net.msgs_sent], [exec.net.bytes_on_wire]) and the intersection
    timings surface as [exec.isect.*] gauge views — the record is then a
    compatibility view over the registry, and both read the same
    numbers. *)

val shard_tid : int -> int
(** Trace tid of a shard's per-shard track (tids 0..9 are reserved for
    driver and compile-pipeline spans). *)

val partitions_used : Ir.Program.t -> Prog.block -> (string * Regions.Partition.t) list
(** Partitions mentioned anywhere in a block (launches, copies, fills)
    — the set that needs per-(partition, color) instances (§3.1).
    Exposed for alternative backends (lib/net) so they allocate exactly
    the instances this executor would. *)

val fields_used_of_partition :
  Ir.Program.t -> Prog.block -> string -> Regions.Field.t list
(** Union of fields the block touches on the named partition — the
    instance width companion to {!partitions_used}. *)

val instr_label : Prog.instr -> string
(** Deterministic span label for an instruction — a function of the
    instruction only, never of scheduling. *)

val run :
  ?sched:sched ->
  ?stats:stats ->
  ?fault:Resilience.Fault.t ->
  ?watchdog:float ->
  ?checkpoint_sink:(Resilience.Checkpoint.t -> unit) ->
  ?restore:Resilience.Checkpoint.t ->
  ?trace:Obs.Trace.t ->
  ?data_plane:[ `Plans | `Scalar ] ->
  ?sanitize:bool ->
  Prog.t ->
  Interp.Run.context ->
  unit
(** Executes the whole compiled program against the context: [Seq] items via
    the sequential interpreter, [Replicated] blocks with the SPMD machinery
    (instances per (partition, color), dynamic intersections, shard
    streams). Root-region instances and scalars in the context hold the
    results afterwards.

    [watchdog] (seconds, default 60., [`Domains] only; [<= 0.] disables)
    bounds how long the run may sit with every shard blocked and no
    progress before raising {!Deadlock}.

    [checkpoint_sink] receives each checkpoint a [Prog.Checkpoint]
    instruction takes (see {!Prog.with_checkpoints}); without a sink the
    instruction is a no-op.

    [restore] resumes the program's first replicated block from a
    checkpoint: the sequential prefix and the block's initialization are
    skipped (their effects are part of the restored cut) and the block's
    time loop resumes at [restore.iter + 1].

    [trace] records one wall-clock span per executed instruction on each
    shard's track ({!shard_tid}), instant events for barrier arrivals,
    channel-credit releases and collective deposits, plus analyze/init/
    finalize spans on tid 0. The per-tid (phase, name) event sequences are
    identical across all three schedulers.

    [data_plane] selects how copies move bytes: [`Plans] (default)
    compiles each copy's intersection into (src_off, dst_off, len) runs on
    first execution and replays them with [Array.blit] / fused reduction
    loops ({!Copy_plan}), memoized per (copy, src color, dst color, role)
    and shared by all schedulers; [`Scalar] is the per-element ablation
    baseline ({!Physical.copy_into}/{!Physical.reduce_into}). Results are
    bitwise identical either way.

    [sanitize] (default [false]) arms the dynamic race detector
    ({!Sanitizer}): every instruction reports its declared per-element
    footprint and every synchronisation primitive its happens-before
    edge; two conflicting cross-shard accesses with no ordering through
    the executor's own primitives raise {!Sanitizer.Race}. Detection is
    happens-before based, so a dropped sync op is caught on any schedule,
    including the deterministic stepper. *)

val run_block :
  ?sched:sched ->
  ?stats:stats ->
  ?fault:Resilience.Fault.t ->
  ?watchdog:float ->
  ?checkpoint_sink:(Resilience.Checkpoint.t -> unit) ->
  ?restore:Resilience.Checkpoint.t ->
  ?trace:Obs.Trace.t ->
  ?data_plane:[ `Plans | `Scalar ] ->
  ?sanitize:bool ->
  source:Ir.Program.t ->
  Interp.Run.context ->
  Prog.block ->
  unit
(** Run a single replicated block (exposed for tests). *)
