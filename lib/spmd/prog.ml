(* The explicit-SPMD program representation control replication compiles to
   (paper Fig. 4d).

   A replicated block is executed by [shards] long-running shard tasks, each
   running the same instruction stream. Work is divided by ownership: launch
   -space colors are block-distributed over shards; a shard executes the
   iterations it owns, issues the copies whose *source* subregion it owns
   (producer-issued copies, §3.4), and synchronises as consumer for the
   copies whose destination it owns.

   Under data replication (§3.1) every (partition, color) pair has its own
   physical instance, owned by the color's owner shard. Parent regions keep
   separate storage touched only by the initialization / finalization
   copies, which run before shards start and after they finish (as in
   Fig. 4d, where init and finalization stay outside the shard task). *)

open Regions

(* Operand of a copy: a whole region (init/finalize) or a partition. *)
type operand = Oregion of string | Opart of string

type copy = {
  copy_id : int; (* unique within the program; keys sync channels *)
  src : operand;
  dst : operand;
  fields : Field.t list;
  reduce : Privilege.redop option; (* reduction-apply copy (§4.3) *)
  pairs : [ `Dense | `Sparse ];
      (* `Dense: all (i,j) color pairs are candidates, intersections
         computed per copy on the fly (the O(N^2) behaviour §3.3 removes).
         `Sparse: only the precomputed non-empty intersection pairs. *)
}

type instr =
  | Launch of { space : string; launch : Ir.Types.launch }
      (* for i in my colors of space: task(...) *)
  | Launch_collective of {
      space : string;
      launch : Ir.Types.launch;
      var : string;
      op : Privilege.redop;
    }
      (* local partials + dynamic collective + broadcast (§4.4) *)
  | Copy of copy (* producer side: issue owned copies, with p2p sync *)
  | Await of int (* consumer side: wait for incoming copies [copy_id] *)
  | Release of int
      (* consumer side: grant write-after-read credit for [copy_id]'s next
         occurrence *)
  | Barrier (* global barrier (naive sync mode, Fig. 4c) *)
  | Fill of { part : string; fields : Field.t list; op : Privilege.redop }
      (* reset a reduction-temporary partition to the operator identity
         before the launch that reduces into it (§4.3) *)
  | Assign of string * Ir.Types.sexpr (* replicated scalar state *)
  | For_time of { var : string; count : int; body : instr list }
  | Checkpoint of { var : string; every : int }
      (* resilience: when [(var + 1) mod every = 0], quiesce all shards on
         a dedicated barrier and serialize the block's state (instances +
         replicated scalars) at this time-loop boundary; a no-op when the
         executor has no checkpoint sink configured *)

(* One control-replicated block. [init]/[finalize] run sequentially outside
   the shards. *)
type block = {
  shards : int;
  init : instr list;
  body : instr list;
  finalize : instr list;
  copies : copy list; (* all copies appearing anywhere, by copy_id *)
  credits : (int * int) list;
      (* copy_id -> initial write-after-read credits: 1 when the copy's
         Release follows it in program order (the first occurrence may
         proceed), 0 when the Release precedes it within the same
         iteration. Missing entries default to 1. *)
}

(* A compiled program interleaves sequential statements (run by the master,
   shared-memory semantics) with replicated blocks. *)
type item = Seq of Ir.Types.stmt list | Replicated of block

type t = {
  source : Ir.Program.t; (* environment: regions, partitions, tasks *)
  items : item list;
}

(* Block distribution of [colors] over [shards] (§3.5: "a simple block
   partition of the iteration space"). *)
let owner_of_color ~shards ~colors c =
  if c < 0 || c >= colors then invalid_arg "owner_of_color: bad color";
  (* Inverse of Rect.block_1d's quotient-remainder blocking. *)
  let q = colors / shards and r = colors mod shards in
  if q = 0 then c
  else
    let boundary = r * (q + 1) in
    if c < boundary then c / (q + 1) else r + ((c - boundary) / q)

let colors_of_shard ~shards ~colors s =
  match Geometry.Rect.block_1d ~lo:0 ~hi:(colors - 1) ~pieces:shards ~index:s with
  | None -> []
  | Some (lo, hi) -> List.init (hi - lo + 1) (fun k -> lo + k)

(* ---------- resilience instrumentation ---------- *)

(* Index of the first top-level [For_time] of the body — the loop
   checkpoints attach to and restarts resume into. *)
let first_time_loop b =
  let rec go k = function
    | [] -> None
    | For_time _ :: _ -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 0 b.body

let with_checkpoints ~every b =
  if every < 1 then invalid_arg "Prog.with_checkpoints: every < 1";
  match first_time_loop b with
  | None -> b
  | Some k ->
      let body =
        List.mapi
          (fun i instr ->
            match instr with
            | For_time { var; count; body } when i = k ->
                For_time
                  { var; count; body = body @ [ Checkpoint { var; every } ] }
            | _ -> instr)
          b.body
      in
      { b with body }

let map_blocks f t =
  {
    t with
    items =
      List.map
        (function Replicated b -> Replicated (f b) | Seq _ as s -> s)
        t.items;
  }

(* ---------- pretty printing (golden tests, crc inspect) ---------- *)

let pp_operand ppf = function
  | Oregion r -> Format.fprintf ppf "%s" r
  | Opart p -> Format.fprintf ppf "%s[*]" p

let pp_copy ppf c =
  Format.fprintf ppf "copy#%d %a <- %a {%a}%s%s" c.copy_id pp_operand c.dst
    pp_operand c.src
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Field.pp)
    c.fields
    (match c.reduce with
    | Some op -> " reduce(" ^ Privilege.redop_to_string op ^ ")"
    | None -> "")
    (match c.pairs with `Dense -> " all-pairs" | `Sparse -> " intersections")

let rec pp_instr ppf = function
  | Launch { space; launch } ->
      Format.fprintf ppf "@[<h>for i in my(%s) do %a end@]" space
        Ir.Pretty.pp_launch launch
  | Launch_collective { space; launch; var; op } ->
      Format.fprintf ppf "@[<h>%s = collective(%s) for i in my(%s) of %a@]"
        var
        (Privilege.redop_to_string op)
        space Ir.Pretty.pp_launch launch
  | Copy c -> pp_copy ppf c
  | Await id -> Format.fprintf ppf "await copy#%d" id
  | Release id -> Format.fprintf ppf "release copy#%d" id
  | Barrier -> Format.pp_print_string ppf "barrier()"
  | Fill { part; fields; op } ->
      Format.fprintf ppf "fill %s[*] {%a} <- identity(%s)" part
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Field.pp)
        fields
        (Privilege.redop_to_string op)
  | Assign (v, e) -> Format.fprintf ppf "%s = %a" v Ir.Pretty.pp_sexpr e
  | Checkpoint { var; every } ->
      Format.fprintf ppf "checkpoint every %d of %s" every var
  | For_time { var; count; body } ->
      Format.fprintf ppf "@[<v 2>for %s = 0, %d do@,%a@]@,end" var count
        pp_instrs body

and pp_instrs ppf instrs =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_instr ppf instrs

let pp_block ppf b =
  Format.fprintf ppf
    "@[<v>-- %d shards@,@[<v 2>-- init:@,%a@]@,@[<v 2>-- body:@,%a@]@,@[<v \
     2>-- finalize:@,%a@]@]"
    b.shards pp_instrs b.init pp_instrs b.body pp_instrs b.finalize

let pp ppf t =
  Format.fprintf ppf "@[<v>-- spmd program (source %s)@," t.source.Ir.Program.name;
  List.iteri
    (fun k item ->
      match item with
      | Seq stmts ->
          Format.fprintf ppf "@[<v 2>-- item %d: sequential@,%a@]@," k
            Ir.Pretty.pp_stmts stmts
      | Replicated b ->
          Format.fprintf ppf "@[<v 2>-- item %d: replicated@,%a@]@," k
            pp_block b)
    t.items;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
