(* FastTrack-style vector-clock race detection over the executor's shard
   streams.

   Model: shard s carries a vector clock vc.(s) (vc.(s).(s) is its current
   epoch, starting at 1). Every synchronisation object the executor
   actually uses — a (copy, src color, dst color) credit channel in either
   direction, the block barrier, the checkpoint barrier, the scalar
   collective — is a key with its own clock. Passing a blocking point
   acquires the key (join key clock into shard clock); publishing a signal
   releases it (join shard clock into key clock, then tick the shard).
   An access epoch (u, t) happens-before shard s's current point iff
   u = s or t <= vc.(s).(u).

   Per-element state is keyed by (partition, color, field id, element id):
   instances are per (partition, color), so two accesses can only be the
   same memory when all four coordinates match. We keep the last write
   epoch, per-shard read times, and per-shard reduce times with the last
   operator (same-operator reductions commute; an operator change makes
   earlier reductions conflicting, so it is checked like a write and the
   slot is reset). All state sits behind one mutex — safe under the
   [`Domains] backend, and the lock introduces no happens-before edges of
   its own because shard clocks only advance via acquire/release. *)

type access = A_read | A_write | A_reduce of Regions.Privilege.redop

type sync_key =
  | K_war of int * int * int
  | K_raw of int * int * int
  | K_barrier
  | K_ckpt
  | K_collective

exception Race of string

type cell = {
  mutable w_shard : int; (* -1 = never written *)
  mutable w_time : int;
  r_times : int array; (* per shard; 0 = never read *)
  red_times : int array; (* per shard; 0 = no pending reduce *)
  mutable red_op : Regions.Privilege.redop option;
}

type t = {
  nshards : int;
  mu : Mutex.t;
  vcs : int array array;
  keys : (sync_key, int array) Hashtbl.t;
  cells : (string * int * int * int, cell) Hashtbl.t;
}

let create ~nshards =
  let vcs =
    Array.init nshards (fun s ->
        Array.init nshards (fun u -> if u = s then 1 else 0))
  in
  {
    nshards;
    mu = Mutex.create ();
    vcs;
    keys = Hashtbl.create 64;
    cells = Hashtbl.create 1024;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let key_clock t key =
  match Hashtbl.find_opt t.keys key with
  | Some c -> c
  | None ->
      let c = Array.make t.nshards 0 in
      Hashtbl.add t.keys key c;
      c

let acquire t ~shard key =
  locked t (fun () -> join t.vcs.(shard) (key_clock t key))

let release t ~shard key =
  locked t (fun () ->
      join (key_clock t key) t.vcs.(shard);
      t.vcs.(shard).(shard) <- t.vcs.(shard).(shard) + 1)

(* (u, time) happened-before shard s's current point? *)
let ordered t ~shard u time = u = shard || time <= t.vcs.(shard).(u)

let access_name = function
  | A_read -> "read"
  | A_write -> "write"
  | A_reduce op -> "reduce(" ^ Regions.Privilege.redop_to_string op ^ ")"

let race ~shard ~part ~color ~field ~elem kind other_shard other_kind =
  raise
    (Race
       (Printf.sprintf
          "data race on %s[%d].%s element %d: %s by shard %d not ordered \
           with %s by shard %d"
          part color
          (Regions.Field.name field)
          elem (access_name kind) shard other_kind other_shard))

let cell_of t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c =
        {
          w_shard = -1;
          w_time = 0;
          r_times = Array.make t.nshards 0;
          red_times = Array.make t.nshards 0;
          red_op = None;
        }
      in
      Hashtbl.add t.cells key c;
      c

(* Check every recorded epoch of a per-shard time table against the
   current shard, then visit. *)
let check_times t ~shard ~part ~color ~field ~elem kind times what =
  Array.iteri
    (fun u time ->
      if time > 0 && not (ordered t ~shard u time) then
        race ~shard ~part ~color ~field ~elem kind u what)
    times

let access t ~shard ~part ~color ~field access_kind space =
  locked t (fun () ->
      let now = t.vcs.(shard).(shard) in
      let fid = Regions.Field.id field in
      Regions.Index_space.iter_ids
        (fun elem ->
          let c = cell_of t (part, color, fid, elem) in
          let check_write () =
            if c.w_shard >= 0 && not (ordered t ~shard c.w_shard c.w_time)
            then
              race ~shard ~part ~color ~field ~elem access_kind c.w_shard
                "write"
          in
          let check_reads () =
            check_times t ~shard ~part ~color ~field ~elem access_kind
              c.r_times "read"
          in
          let check_reduces () =
            check_times t ~shard ~part ~color ~field ~elem access_kind
              c.red_times
              (match c.red_op with
              | Some op -> access_name (A_reduce op)
              | None -> "reduce")
          in
          match access_kind with
          | A_read ->
              check_write ();
              check_reduces ();
              c.r_times.(shard) <- now
          | A_write ->
              check_write ();
              check_reads ();
              check_reduces ();
              c.w_shard <- shard;
              c.w_time <- now;
              Array.fill c.r_times 0 t.nshards 0;
              Array.fill c.red_times 0 t.nshards 0;
              c.red_op <- None
          | A_reduce op ->
              check_write ();
              check_reads ();
              (match c.red_op with
              | Some prev when prev <> op ->
                  (* Operator change: earlier reductions conflict. *)
                  check_reduces ();
                  Array.fill c.red_times 0 t.nshards 0
              | _ -> ());
              c.red_op <- Some op;
              c.red_times.(shard) <- now)
        space)
