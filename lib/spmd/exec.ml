open Regions
open Ir

exception Deadlock of Resilience.Diag.t

let () =
  Printexc.register_printer (function
    | Deadlock d ->
        Some ("Spmd.Exec.Deadlock:\n" ^ Resilience.Diag.to_string d)
    | _ -> None)

type sched = [ `Round_robin | `Random of int | `Domains ]

(* Execution statistics: the intersection timings (paper Table 1) plus the
   resilience counters (leaf-task attempts, rollback retries, injected
   faults, checkpoints taken). Counters are atomic so the domains backend
   can bump them without the monitor lock. *)
type stats = {
  isect : Intersections.stats;
  attempts : int Atomic.t;
  retries : int Atomic.t;
  injected : int Atomic.t;
  checkpoints : int Atomic.t;
  plan_builds : int Atomic.t;
  plan_replays : int Atomic.t;
  blit_volume : int Atomic.t;
  msgs_sent : int Atomic.t;
  bytes_on_wire : int Atomic.t;
}

(* Without a registry the counters are plain private atomics; with one they
   *are* registry counters (the record fields alias the registered cells),
   so existing [Atomic.get stats.attempts] callers and `--metrics` dumps
   read the same numbers. The intersection timings stay mutable floats in
   [Intersections.stats] and surface as gauge views. *)
let fresh_stats ?registry () =
  match registry with
  | None ->
      {
        isect = Intersections.fresh_stats ();
        attempts = Atomic.make 0;
        retries = Atomic.make 0;
        injected = Atomic.make 0;
        checkpoints = Atomic.make 0;
        plan_builds = Atomic.make 0;
        plan_replays = Atomic.make 0;
        blit_volume = Atomic.make 0;
        msgs_sent = Atomic.make 0;
        bytes_on_wire = Atomic.make 0;
      }
  | Some reg ->
      let isect = Intersections.fresh_stats () in
      Obs.Metrics.gauge reg "exec.isect.shallow_s" (fun () ->
          isect.Intersections.shallow_s);
      Obs.Metrics.gauge reg "exec.isect.complete_s" (fun () ->
          isect.Intersections.complete_s);
      Obs.Metrics.gauge reg "exec.isect.candidates" (fun () ->
          float_of_int isect.Intersections.candidates);
      Obs.Metrics.gauge reg "exec.isect.nonempty" (fun () ->
          float_of_int isect.Intersections.nonempty);
      Obs.Metrics.gauge reg "exec.isect.cache_hits" (fun () ->
          float_of_int isect.Intersections.cache_hits);
      let cell name = Obs.Metrics.cell (Obs.Metrics.counter reg name) in
      {
        isect;
        attempts = cell "exec.attempts";
        retries = cell "exec.retries";
        injected = cell "exec.injected";
        checkpoints = cell "exec.checkpoints";
        plan_builds = cell "exec.plan.builds";
        plan_replays = cell "exec.plan.replays";
        blit_volume = cell "exec.plan.blit_volume";
        msgs_sent = cell "exec.net.msgs_sent";
        bytes_on_wire = cell "exec.net.bytes_on_wire";
      }

(* ---------- per-block runtime state ---------- *)

type chan = { mutable war : int; mutable raw : int }

(* One scalar collective (a Launch_collective instruction). A round: every
   shard deposits its per-color partial results; the last depositor folds
   them in ascending color order and publishes; every shard consumes; the
   last consumer resets the slot for the next loop iteration. A shard that
   races ahead to the next round blocks until the previous one is fully
   drained. *)
type collective_slot = {
  mutable values : (int * float) list; (* (color, local result) *)
  arrived : bool array; (* per shard, this round *)
  mutable result : float option;
  consumed : bool array;
}

type barrier_state = { mutable arrived : int; mutable generation : int }

type bstate = {
  source : Program.t;
  ctx : Interp.Run.context;
  block : Prog.block;
  insts : (string * int, Physical.t) Hashtbl.t; (* (partition, color) *)
  pairs : (int, Intersections.pairs) Hashtbl.t; (* copy_id -> pairs *)
  chans : (int * int * int, chan) Hashtbl.t; (* (copy_id, i, j) *)
  mailbox : (int * int, (int * Physical.t) list ref) Hashtbl.t;
      (* (copy_id, dst color) -> staged reduction payloads *)
  barrier : barrier_state;
  ckpt_barrier : barrier_state; (* dedicated barrier for Checkpoint instrs *)
  mutable collectives : (Prog.instr * collective_slot) list;
      (* keyed by the Launch_collective instruction itself, by physical
         identity — two distinct collectives can be structurally equal, but
         all shards share the same instruction values *)
  fault : Resilience.Fault.t option;
  rstats : stats option;
  ckpt_sink : (Resilience.Checkpoint.t -> unit) option;
  trace : Obs.Trace.t;
  data_plane : [ `Plans | `Scalar ];
  plans : (int * int * int * int, Copy_plan.t) Hashtbl.t;
      (* (role, copy_id, src color, dst color) -> compiled plan; role
         distinguishes the direct move, the reduction staging copy and the
         reduction apply of the same logical copy. -1 stands for "the root
         region" on master-side copies. *)
  plan_mu : Mutex.t;
      (* Guards [plans] only: under [`Domains] copies run outside the
         monitor (data movement off the lock), so the memo table needs its
         own mutual exclusion; per-pair plans themselves are single-owner. *)
  san : Sanitizer.t option;
      (* Armed by [~sanitize:true]: every instruction reports its declared
         footprint and every sync primitive its acquire/release edges. *)
}

(* Trace tids: one track per shard (tids 0..9 are reserved for the driver
   and compile pipeline). *)
let shard_tid sid = 10 + sid

(* Deterministic span label for an instruction — a function of the shard's
   instruction stream only, never of scheduling, so per-tid event
   sequences are identical across schedulers. *)
let instr_label = function
  | Prog.Assign (v, _) -> "assign:" ^ v
  | Prog.For_time _ -> "for_time"
  | Prog.Launch { launch; _ } -> "launch:" ^ launch.Types.task
  | Prog.Launch_collective { launch; _ } -> "collective:" ^ launch.Types.task
  | Prog.Fill { part; _ } -> "fill:" ^ part
  | Prog.Copy c -> Printf.sprintf "copy#%d" c.Prog.copy_id
  | Prog.Await id -> Printf.sprintf "await#%d" id
  | Prog.Release id -> Printf.sprintf "release#%d" id
  | Prog.Barrier -> "barrier"
  | Prog.Checkpoint _ -> "checkpoint"

let bump st f = match st.rstats with None -> () | Some s -> Atomic.incr (f s)

let part_of_operand source = function
  | Prog.Opart p -> Some (Program.find_partition source p)
  | Prog.Oregion _ -> None

let instance st pname color =
  match Hashtbl.find_opt st.insts (pname, color) with
  | Some inst -> inst
  | None ->
      invalid_arg
        (Printf.sprintf "Spmd.Exec: no instance for %s[%d]" pname color)

(* Partitions mentioned anywhere in the block (launch arguments, copies,
   fills) — each of their subregions gets its own storage (§3.1). *)
let partitions_used (source : Program.t) (b : Prog.block) =
  let acc = Hashtbl.create 16 in
  let add name = Hashtbl.replace acc name () in
  let add_operand = function
    | Prog.Opart p -> add p
    | Prog.Oregion _ -> ()
  in
  let add_launch (l : Types.launch) =
    List.iter
      (function Types.Part (p, _) -> add p | Types.Whole _ -> ())
      l.Types.rargs
  in
  let rec go instrs =
    List.iter
      (function
        | Prog.Launch { launch; _ } -> add_launch launch
        | Prog.Launch_collective { launch; _ } -> add_launch launch
        | Prog.Copy c ->
            add_operand c.Prog.src;
            add_operand c.Prog.dst
        | Prog.Fill { part; _ } -> add part
        | Prog.Await _ | Prog.Release _ | Prog.Barrier | Prog.Assign _
        | Prog.Checkpoint _ -> ()
        | Prog.For_time { body; _ } -> go body)
      instrs
  in
  go b.Prog.init;
  go b.Prog.body;
  go b.Prog.finalize;
  Hashtbl.fold
    (fun name () l -> (name, Program.find_partition source name) :: l)
    acc []

let fields_used_of_partition (source : Program.t) (b : Prog.block) pname =
  (* Union of fields the block touches on this partition, for sizing the
     replicated instances. *)
  let acc = ref [] in
  let add f = if not (List.exists (Field.equal f) !acc) then acc := f :: !acc in
  let add_launch (l : Types.launch) =
    let task = Program.find_task source l.Types.task in
    List.iteri
      (fun i rarg ->
        match rarg with
        | Types.Part (p, _) when p = pname ->
            List.iter
              (fun (pr : Privilege.t) -> add pr.Privilege.field)
              (Task.param_privs task i)
        | Types.Part _ | Types.Whole _ -> ())
      l.Types.rargs
  in
  let add_copy (c : Prog.copy) op =
    match op with
    | Prog.Opart p when p = pname -> List.iter add c.Prog.fields
    | Prog.Opart _ | Prog.Oregion _ -> ()
  in
  let rec go instrs =
    List.iter
      (function
        | Prog.Launch { launch; _ } -> add_launch launch
        | Prog.Launch_collective { launch; _ } -> add_launch launch
        | Prog.Copy c ->
            add_copy c c.Prog.src;
            add_copy c c.Prog.dst
        | Prog.Fill { part; fields; _ } ->
            if part = pname then List.iter add fields
        | Prog.Await _ | Prog.Release _ | Prog.Barrier | Prog.Assign _
        | Prog.Checkpoint _ -> ()
        | Prog.For_time { body; _ } -> go body)
      instrs
  in
  go b.Prog.init;
  go b.Prog.body;
  go b.Prog.finalize;
  !acc

let create_state ?stats ?fault ?ckpt_sink ?(trace = Obs.Trace.null)
    ?(data_plane = `Plans) ?(sanitize = false) ~(source : Program.t) ctx
    (b : Prog.block) =
  let isect = Option.map (fun s -> s.isect) stats in
  let st =
    {
      source;
      ctx;
      block = b;
      insts = Hashtbl.create 64;
      pairs = Hashtbl.create 16;
      chans = Hashtbl.create 64;
      mailbox = Hashtbl.create 16;
      barrier = { arrived = 0; generation = 0 };
      ckpt_barrier = { arrived = 0; generation = 0 };
      collectives = [];
      fault;
      rstats = stats;
      ckpt_sink;
      trace;
      data_plane;
      plans = Hashtbl.create 32;
      plan_mu = Mutex.create ();
      san =
        (if sanitize then Some (Sanitizer.create ~nshards:b.Prog.shards)
         else None);
    }
  in
  List.iter
    (fun (pname, (p : Partition.t)) ->
      let fields = fields_used_of_partition source b pname in
      for c = 0 to Partition.color_count p - 1 do
        let sub = Partition.sub p c in
        Hashtbl.replace st.insts (pname, c)
          (Physical.create_over sub.Region.ispace fields)
      done)
    (partitions_used source b);
  (* Dynamic analysis (§3.3): pair sets for partition-to-partition copies,
     plus one war/raw channel per non-empty pair. *)
  List.iter
    (fun (c : Prog.copy) ->
      match (part_of_operand source c.Prog.src, part_of_operand source c.Prog.dst) with
      | Some src, Some dst ->
          let pairs =
            match c.Prog.pairs with
            | `Sparse ->
                (* Cached per partition pair (partitions are immutable, so
                   re-running a program re-uses the analysis); big color
                   counts additionally fan the shallow queries and the
                   complete phase out across the shared pool. This runs on
                   the main domain before any shard spawns, satisfying the
                   pool's outside-only calling convention. *)
                let pool =
                  if
                    Partition.color_count src + Partition.color_count dst
                    >= 256
                  then Some (Taskpool.Pool.default ())
                  else None
                in
                Intersections.compute_cached ?stats:isect ?pool ~src ~dst ()
            | `Dense -> Intersections.compute_all_pairs ?stats:isect ~src ~dst ()
          in
          Hashtbl.replace st.pairs c.Prog.copy_id pairs;
          let war =
            Option.value ~default:1
              (List.assoc_opt c.Prog.copy_id b.Prog.credits)
          in
          List.iter
            (fun (i, j, _) ->
              Hashtbl.replace st.chans (c.Prog.copy_id, i, j) { war; raw = 0 })
            pairs.Intersections.items
      | _ -> ())
    b.Prog.copies;
  st

(* ---------- copy primitives ---------- *)

let root_inst st rname =
  Interp.Run.region_instance st.ctx (Program.find_region st.source rname)

(* Plan roles: the same logical copy pair can be moved three different
   ways — directly, staged into a snapshot, or applied from one — and
   each needs its own offset arrays. *)
let role_direct = 0
let role_stage = 1
let role_apply = 2

(* Execute one physical move of copy [cid] between colors [i] and [j]
   ([-1] = the root region side of a master copy). Under [`Plans] the
   (src_off, dst_off, len) runs are compiled on first execution, memoized
   in [st.plans] and replayed as blits / fused reduction loops; under
   [`Scalar] (the ablation baseline) every execution resolves addresses
   per element via {!Physical.transfer}. *)
let exec_copy st ~role ~cid ~i ~j ?space ~fields ~reduce ~src ~dst () =
  match st.data_plane with
  | `Scalar -> (
      match reduce with
      | None -> Physical.copy_into ~fields ~src ~dst ()
      | Some op -> Physical.reduce_into ~op ~fields ~src ~dst ())
  | `Plans ->
      let key = (role, cid, i, j) in
      let plan =
        match
          Mutex.protect st.plan_mu (fun () -> Hashtbl.find_opt st.plans key)
        with
        | Some p -> p
        | None ->
            let p = Copy_plan.build ?space ~src ~dst ~fields () in
            bump st (fun s -> s.plan_builds);
            Mutex.protect st.plan_mu (fun () ->
                Hashtbl.replace st.plans key p);
            p
      in
      bump st (fun s -> s.plan_replays);
      (match st.rstats with
      | None -> ()
      | Some s ->
          ignore
            (Atomic.fetch_and_add s.blit_volume
               (Copy_plan.volume plan * List.length fields)));
      Copy_plan.execute plan ~reduce ~src ~dst

(* Sequential (master-side) execution of an init/finalize copy: every color
   at once, no synchronisation. *)
let master_copy st (c : Prog.copy) =
  let cid = c.Prog.copy_id and fields = c.Prog.fields in
  let do_one ~i ~j ~src ~dst =
    exec_copy st ~role:role_direct ~cid ~i ~j ~fields ~reduce:c.Prog.reduce
      ~src ~dst ()
  in
  match (c.Prog.src, c.Prog.dst) with
  | Prog.Oregion rs, Prog.Opart pd ->
      let p = Program.find_partition st.source pd in
      let src = root_inst st rs in
      for color = 0 to Partition.color_count p - 1 do
        do_one ~i:(-1) ~j:color ~src ~dst:(instance st pd color)
      done
  | Prog.Opart ps, Prog.Oregion rd ->
      let p = Program.find_partition st.source ps in
      let dst = root_inst st rd in
      for color = 0 to Partition.color_count p - 1 do
        do_one ~i:color ~j:(-1) ~src:(instance st ps color) ~dst
      done
  | Prog.Opart ps, Prog.Opart pd ->
      let pairs = Hashtbl.find st.pairs c.Prog.copy_id in
      List.iter
        (fun (i, j, space) ->
          exec_copy st ~role:role_direct ~cid ~i ~j ~space ~fields
            ~reduce:c.Prog.reduce ~src:(instance st ps i)
            ~dst:(instance st pd j) ())
        pairs.Intersections.items
  | Prog.Oregion rs, Prog.Oregion rd ->
      do_one ~i:(-1) ~j:(-1) ~src:(root_inst st rs) ~dst:(root_inst st rd)

(* ---------- shard streams ---------- *)

type loop_info = { lvar : string; lcount : int; mutable liter : int }

type frame = {
  instrs : Prog.instr array;
  mutable idx : int;
  loop : loop_info option;
}

type wait_state =
  | Ready
  | In_barrier of int (* generation observed at arrival *)
  | In_collective of string (* deposited, waiting for the result *)
  | In_ckpt of int (* checkpoint-barrier generation observed at arrival *)

type shard = {
  sid : int;
  env : Eval.env;
  mutable frames : frame list;
  mutable wait : wait_state;
  mutable stall : int; (* injected delay: remaining blocked attempts *)
  mutable fault_drawn : bool; (* drew faults for the current instruction *)
  mutable resume : int option; (* restart: first iteration of the time loop *)
}

let shard_done s = s.frames = []

let owner st pname color =
  let p = Program.find_partition st.source pname in
  Prog.owner_of_color ~shards:st.block.Prog.shards
    ~colors:(Partition.color_count p) color

let owned_space_colors st sid space =
  let n = Program.find_space st.source space in
  Prog.colors_of_shard ~shards:st.block.Prog.shards ~colors:n sid

(* ---------- sanitizer hooks ----------

   When armed, every instruction reports its declared per-color footprint
   and every synchronisation primitive its acquire/release edge. Strict
   privileges (paper §2.1: a task touches exactly what it declared) make
   the declared footprint a sound stand-in for the kernel's real accesses;
   the sync edges mirror the executor's own primitives exactly, so any
   race report means the compiled sync ops do not order two conflicting
   accesses — independent of the schedule that happened to run. *)

let san_access st ~sid ~part ~color ~fields kind space =
  match st.san with
  | None -> ()
  | Some san ->
      List.iter
        (fun field ->
          Sanitizer.access san ~shard:sid ~part ~color ~field kind space)
        fields

let san_acquire st ~sid key =
  match st.san with
  | None -> ()
  | Some san -> Sanitizer.acquire san ~shard:sid key

let san_release st ~sid key =
  match st.san with
  | None -> ()
  | Some san -> Sanitizer.release san ~shard:sid key

(* Declared footprint of one color of a launch. *)
let san_launch st ~sid (l : Types.launch) c =
  match st.san with
  | None -> ()
  | Some san ->
      let task = Program.find_task st.source l.Types.task in
      List.iteri
        (fun k rarg ->
          match rarg with
          | Types.Part (pname, Types.Id) ->
              let inst = instance st pname c in
              let space = Physical.ispace inst in
              List.iter
                (fun (pr : Privilege.t) ->
                  let kind =
                    match pr.Privilege.mode with
                    | Privilege.Read -> Sanitizer.A_read
                    | Privilege.Read_write -> Sanitizer.A_write
                    | Privilege.Reduce op -> Sanitizer.A_reduce op
                  in
                  Sanitizer.access san ~shard:sid ~part:pname ~color:c
                    ~field:pr.Privilege.field kind space)
                (Task.param_privs task k)
          | Types.Part _ | Types.Whole _ -> ())
        l.Types.rargs

(* Instances (with their write/reduce-privileged fields) a launch color may
   mutate — the rollback set for a retryable attempt. *)
let written_instances st (task : Task.t) (l : Types.launch) c =
  l.Types.rargs
  |> List.mapi (fun k rarg ->
         match rarg with
         | Types.Part (pname, Types.Id) ->
             let wfields =
               List.filter_map
                 (fun (pr : Privilege.t) ->
                   match pr.Privilege.mode with
                   | Privilege.Read_write | Privilege.Reduce _ ->
                       Some pr.Privilege.field
                   | Privilege.Read -> None)
                 (Task.param_privs task k)
             in
             if wfields = [] then None
             else Some (instance st pname c, wfields)
         | Types.Part _ | Types.Whole _ -> None)
  |> List.filter_map Fun.id

(* Run one color of a launch against the replicated instances. Post-
   normalization, every argument uses the identity projection, so color [c]
   of the launch touches exactly color [c] of each argument partition.

   With fault injection armed, every attempt snapshots its write set first;
   an injected transient failure (raised *after* the kernel ran, the
   worst case: the attempt corrupted its writes before dying) rolls the
   snapshot back and re-executes, up to the policy's retry cap. Retried
   execution is safe precisely because of the privilege discipline: the
   kernel reads only read-privileged fields, which a failed attempt cannot
   have changed. *)
let run_launch_color st ~sid env (l : Types.launch) c =
  let task = Program.find_task st.source l.Types.task in
  san_launch st ~sid l c;
  let sargs = Array.map (Eval.sexpr env) l.Types.sargs in
  let accessors =
    Array.of_list
      (List.mapi
         (fun k rarg ->
           match rarg with
           | Types.Part (pname, Types.Id) ->
               let inst = instance st pname c in
               Accessor.make inst ~space:(Physical.ispace inst)
                 (Task.param_privs task k)
           | Types.Part (pname, Types.Fn (fname, _)) ->
               invalid_arg
                 (Printf.sprintf
                    "Spmd.Exec: non-normalized projection %s(%s) survived \
                     control replication"
                    fname pname)
           | Types.Whole r ->
               invalid_arg
                 (Printf.sprintf
                    "Spmd.Exec: whole-region argument %s in replicated code" r))
         l.Types.rargs)
  in
  let kernel () = task.Task.kernel accessors sargs in
  match st.fault with
  | None -> kernel ()
  | Some inj ->
      let site = Resilience.Fault.Leaf_task l.Types.task in
      let pol = Resilience.Fault.policy inj in
      let written = written_instances st task l c in
      let rec attempt n =
        bump st (fun s -> s.attempts);
        let snap = Resilience.Snapshot.capture written in
        let r = kernel () in
        if Resilience.Fault.draw inj site ~shard:sid then begin
          bump st (fun s -> s.injected);
          if n < pol.Resilience.Fault.leaf_retries then begin
            Resilience.Snapshot.restore snap;
            bump st (fun s -> s.retries);
            attempt (n + 1)
          end
          else
            raise
              (Resilience.Fault.Injected { site; shard = sid; occurrence = n })
        end
        else r
      in
      attempt 0

let chan st key = Hashtbl.find st.chans key

(* Pairs of a copy grouped by the role this shard plays. *)
let owned_src_pairs st sid (c : Prog.copy) =
  let pairs = Hashtbl.find st.pairs c.Prog.copy_id in
  let ps = match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
  List.filter (fun (i, _, _) -> owner st ps i = sid) pairs.Intersections.items

let owned_dst_pairs st sid copy_id =
  let c = List.find (fun (c : Prog.copy) -> c.Prog.copy_id = copy_id) st.block.Prog.copies in
  let pairs = Hashtbl.find st.pairs copy_id in
  let pd = match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
  (c, List.filter (fun (_, j, _) -> owner st pd j = sid) pairs.Intersections.items)

(* A shard-side copy: wait for all write-after-read credits on owned pairs,
   then move data (staging reduction payloads) and signal read-after-write
   tokens (§3.4: copies are issued by the producer). *)
let try_copy st s (c : Prog.copy) =
  let owned = owned_src_pairs st s.sid c in
  let all_credits =
    List.for_all (fun (i, j, _) -> (chan st (c.Prog.copy_id, i, j)).war > 0) owned
  in
  if not all_credits then `Blocked
  else begin
    let ps = match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
    let pd = match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
    List.iter
      (fun (i, j, space) ->
        let ch = chan st (c.Prog.copy_id, i, j) in
        ch.war <- ch.war - 1;
        san_acquire st ~sid:s.sid (Sanitizer.K_war (c.Prog.copy_id, i, j));
        san_access st ~sid:s.sid ~part:ps ~color:i ~fields:c.Prog.fields
          Sanitizer.A_read space;
        let src = instance st ps i and dst = instance st pd j in
        (match c.Prog.reduce with
        | None ->
            san_access st ~sid:s.sid ~part:pd ~color:j ~fields:c.Prog.fields
              Sanitizer.A_write space;
            exec_copy st ~role:role_direct ~cid:c.Prog.copy_id ~i ~j ~space
              ~fields:c.Prog.fields ~reduce:None ~src ~dst ()
        | Some _ ->
            (* Snapshot the payload now — the producer may overwrite the
               source before the consumer applies — and stage it; the
               consumer folds payloads in ascending source color for
               deterministic floating-point results. The staging plan is
               replayed against each iteration's fresh snapshot: offsets
               depend only on the (invariant) spaces, not the instance. *)
            let snapshot = Physical.create_over space c.Prog.fields in
            exec_copy st ~role:role_stage ~cid:c.Prog.copy_id ~i ~j ~space
              ~fields:c.Prog.fields ~reduce:None ~src ~dst:snapshot ();
            let key = (c.Prog.copy_id, j) in
            let box =
              match Hashtbl.find_opt st.mailbox key with
              | Some b -> b
              | None ->
                  let b = ref [] in
                  Hashtbl.replace st.mailbox key b;
                  b
            in
            box := (i, snapshot) :: !box);
        san_release st ~sid:s.sid (Sanitizer.K_raw (c.Prog.copy_id, i, j));
        ch.raw <- ch.raw + 1)
      owned;
    `Progress
  end

let try_await st s copy_id =
  let c, owned = owned_dst_pairs st s.sid copy_id in
  let ready =
    List.for_all (fun (i, j, _) -> (chan st (copy_id, i, j)).raw > 0) owned
  in
  if not ready then `Blocked
  else begin
    List.iter
      (fun (i, j, _) ->
        let ch = chan st (copy_id, i, j) in
        ch.raw <- ch.raw - 1;
        san_acquire st ~sid:s.sid (Sanitizer.K_raw (copy_id, i, j)))
      owned;
    (match c.Prog.reduce with
    | None -> ()
    | Some op ->
        let pd = match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
        List.iter
          (fun (_, j, _) ->
            match Hashtbl.find_opt st.mailbox (copy_id, j) with
            | None -> ()
            | Some box ->
                let staged =
                  List.sort (fun (a, _) (b, _) -> Int.compare a b) !box
                in
                box := [];
                List.iter
                  (fun (i, snapshot) ->
                    san_access st ~sid:s.sid ~part:pd ~color:j
                      ~fields:c.Prog.fields Sanitizer.A_write
                      (Physical.ispace snapshot);
                    exec_copy st ~role:role_apply ~cid:copy_id ~i ~j
                      ~fields:c.Prog.fields ~reduce:(Some op) ~src:snapshot
                      ~dst:(instance st pd j) ())
                  staged)
          owned);
    `Progress
  end

let do_release st s copy_id =
  let _, owned = owned_dst_pairs st s.sid copy_id in
  List.iter
    (fun (i, j, _) ->
      let ch = chan st (copy_id, i, j) in
      san_release st ~sid:s.sid (Sanitizer.K_war (copy_id, i, j));
      ch.war <- ch.war + 1)
    owned

let collective_slot st instr =
  match List.assq_opt instr st.collectives with
  | Some slot -> slot
  | None ->
      let n = st.block.Prog.shards in
      let slot =
        {
          values = [];
          arrived = Array.make n false;
          result = None;
          consumed = Array.make n false;
        }
      in
      st.collectives <- (instr, slot) :: st.collectives;
      slot

(* ---------- checkpoint capture ---------- *)

(* Build a consistent cut of the run. Callers guarantee quiescence: every
   shard is parked at the checkpoint barrier of the same time-loop
   boundary (stepper), or the capturing shard holds the monitor lock with
   all others blocked on the same barrier (domains). *)
let take_checkpoint st ~iter ~env sink =
  let insts =
    Hashtbl.fold
      (fun key inst acc -> (key, Resilience.Checkpoint.snapshot_inst inst) :: acc)
      st.insts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let roots =
    List.map
      (fun (id, inst) -> (id, Resilience.Checkpoint.snapshot_inst inst))
      (Interp.Run.root_instances st.ctx)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let scalars = List.sort compare (Eval.bindings env) in
  bump st (fun s -> s.checkpoints);
  sink { Resilience.Checkpoint.iter; insts; roots; scalars }

let restore_state st master_env (ck : Resilience.Checkpoint.t) =
  List.iter
    (fun ((pname, c), data) ->
      Resilience.Checkpoint.restore_inst (instance st pname c) data)
    ck.Resilience.Checkpoint.insts;
  let roots = Interp.Run.root_instances st.ctx in
  List.iter
    (fun (name, data) ->
      match List.assoc_opt name roots with
      | Some inst -> Resilience.Checkpoint.restore_inst inst data
      | None ->
          invalid_arg
            (Printf.sprintf "Spmd.Exec: checkpoint names unknown root %s" name))
    ck.Resilience.Checkpoint.roots;
  List.iter
    (fun (k, v) -> Eval.set master_env k v)
    ck.Resilience.Checkpoint.scalars

(* Where a restarted block resumes: the first top-level time loop. *)
let restart_point (b : Prog.block) (ck : Resilience.Checkpoint.t) =
  match Prog.first_time_loop b with
  | Some k -> (k, ck.Resilience.Checkpoint.iter + 1)
  | None ->
      invalid_arg "Spmd.Exec: cannot restore a block without a time loop"

(* ---------- the stepper ---------- *)

let push_loop ?(start = 0) s var count body =
  if start < count then begin
    Eval.set s.env var (float_of_int start);
    s.frames <-
      { instrs = Array.of_list body; idx = 0; loop = Some { lvar = var; lcount = count; liter = start } }
      :: s.frames
  end

(* Advance past exhausted frames, re-entering loops. *)
let rec normalize_frames s =
  match s.frames with
  | [] -> ()
  | f :: rest ->
      if f.idx >= Array.length f.instrs then (
        match f.loop with
        | Some li when li.liter + 1 < li.lcount ->
            li.liter <- li.liter + 1;
            Eval.set s.env li.lvar (float_of_int li.liter);
            f.idx <- 0
        | Some _ | None ->
            s.frames <- rest;
            normalize_frames s)
      else ()

(* Draw the scheduler-level fault sites for the shard's current instruction
   instance: a shard stall (any instruction) and a delayed channel release
   (Release only). Drawn exactly once per instruction *instance* — blocked
   re-attempts never re-draw — so the schedule is a function of the
   shard's deterministic instruction stream, not of scheduling. *)
let draw_instr_faults st s instr =
  match st.fault with
  | None -> ()
  | Some inj ->
      if not s.fault_drawn then begin
        s.fault_drawn <- true;
        let pol = Resilience.Fault.policy inj in
        if Resilience.Fault.draw inj Resilience.Fault.Shard_stall ~shard:s.sid
        then begin
          bump st (fun x -> x.injected);
          s.stall <- s.stall + pol.Resilience.Fault.stall_steps
        end;
        match instr with
        | Prog.Release id ->
            if
              Resilience.Fault.draw inj
                (Resilience.Fault.Release_delay id)
                ~shard:s.sid
            then begin
              bump st (fun x -> x.injected);
              s.stall <- s.stall + pol.Resilience.Fault.release_delay_steps
            end
        | _ -> ()
      end

(* Execute (or block on) the shard's current instruction. [`Stalled] means
   an injected delay is pending — the shard cannot move, but will without
   further events (so it never counts toward deadlock detection). *)
let step st s =
  normalize_frames s;
  match s.frames with
  | [] -> `Done
  | f :: _ -> (
      let instr = f.instrs.(f.idx) in
      draw_instr_faults st s instr;
      if s.stall > 0 then begin
        s.stall <- s.stall - 1;
        `Stalled
      end
      else
        let tr = st.trace in
        let tid = shard_tid s.sid in
        let t0 = if Obs.Trace.enabled tr then Obs.Trace.now_us tr else 0. in
        let advance () =
          f.idx <- f.idx + 1;
          s.fault_drawn <- false;
          normalize_frames s;
          if Obs.Trace.enabled tr then
            Obs.Trace.complete tr ~tid ~cat:"exec" ~ts:t0
              ~dur:(Obs.Trace.now_us tr -. t0)
              (instr_label instr);
          `Progress
        in
        match instr with
        | Prog.Assign (v, e) ->
            Eval.set s.env v (Eval.sexpr s.env e);
            advance ()
        | Prog.For_time { var; count; body } ->
            f.idx <- f.idx + 1;
            s.fault_drawn <- false;
            Obs.Trace.instant tr ~tid ~cat:"exec"
              ~args:[ ("count", Obs.Trace.Int count) ]
              "for_time";
            let start =
              match s.resume with
              | Some t0 ->
                  s.resume <- None;
                  t0
              | None -> 0
            in
            push_loop ~start s var count body;
            normalize_frames s;
            `Progress
        | Prog.Launch { space; launch } ->
            List.iter
              (fun c -> ignore (run_launch_color st ~sid:s.sid s.env launch c))
              (owned_space_colors st s.sid space);
            advance ()
        | Prog.Fill { part; fields; op } ->
            let p = Program.find_partition st.source part in
            List.iter
              (fun c ->
                let inst = instance st part c in
                san_access st ~sid:s.sid ~part ~color:c ~fields
                  Sanitizer.A_write (Physical.ispace inst);
                List.iter
                  (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
                  fields)
              (Prog.colors_of_shard ~shards:st.block.Prog.shards
                 ~colors:(Partition.color_count p) s.sid);
            advance ()
        | Prog.Copy c -> (
            match try_copy st s c with
            | `Blocked -> `Blocked
            | `Progress -> advance ())
        | Prog.Await id -> (
            match try_await st s id with
            | `Blocked -> `Blocked
            | `Progress -> advance ())
        | Prog.Release id ->
            do_release st s id;
            Obs.Trace.instant tr ~tid ~cat:"exec"
              ~args:[ ("copy_id", Obs.Trace.Int id) ]
              "credit.release";
            advance ()
        | Prog.Barrier -> (
            match s.wait with
            | In_barrier gen ->
                if st.barrier.generation > gen then begin
                  san_acquire st ~sid:s.sid Sanitizer.K_barrier;
                  s.wait <- Ready;
                  advance ()
                end
                else `Blocked
            | Ready | In_collective _ | In_ckpt _ ->
                (* Arrival mutates shared state, so it counts as progress even
                   though the shard then waits. *)
                let gen = st.barrier.generation in
                st.barrier.arrived <- st.barrier.arrived + 1;
                s.wait <- In_barrier gen;
                san_release st ~sid:s.sid Sanitizer.K_barrier;
                Obs.Trace.instant tr ~tid ~cat:"exec"
                  ~args:[ ("generation", Obs.Trace.Int gen) ]
                  "barrier.arrive";
                if st.barrier.arrived = st.block.Prog.shards then begin
                  st.barrier.arrived <- 0;
                  st.barrier.generation <- gen + 1;
                  san_acquire st ~sid:s.sid Sanitizer.K_barrier;
                  s.wait <- Ready;
                  ignore (advance ())
                end;
                `Progress)
        | Prog.Checkpoint { var; every } -> (
            match st.ckpt_sink with
            | None -> advance ()
            | Some sink -> (
                let t = int_of_float (Eval.get s.env var) in
                if (t + 1) mod every <> 0 then advance ()
                else
                  (* A dedicated barrier quiesces every shard at this loop
                     boundary; the last arriver serializes the cut. *)
                  match s.wait with
                  | In_ckpt gen ->
                      if st.ckpt_barrier.generation > gen then begin
                        san_acquire st ~sid:s.sid Sanitizer.K_ckpt;
                        s.wait <- Ready;
                        advance ()
                      end
                      else `Blocked
                  | Ready | In_barrier _ | In_collective _ ->
                      let gen = st.ckpt_barrier.generation in
                      st.ckpt_barrier.arrived <- st.ckpt_barrier.arrived + 1;
                      s.wait <- In_ckpt gen;
                      san_release st ~sid:s.sid Sanitizer.K_ckpt;
                      if st.ckpt_barrier.arrived = st.block.Prog.shards then begin
                        st.ckpt_barrier.arrived <- 0;
                        st.ckpt_barrier.generation <- gen + 1;
                        take_checkpoint st ~iter:t ~env:s.env sink;
                        san_acquire st ~sid:s.sid Sanitizer.K_ckpt;
                        s.wait <- Ready;
                        ignore (advance ())
                      end;
                      `Progress))
        | Prog.Launch_collective { space; launch; var; op } as instr -> (
            let slot = collective_slot st instr in
            let shards = st.block.Prog.shards in
            match s.wait with
            | In_collective _ -> (
                match slot.result with
                | None -> `Blocked
                | Some r ->
                    san_acquire st ~sid:s.sid Sanitizer.K_collective;
                    Eval.set s.env var r;
                    slot.consumed.(s.sid) <- true;
                    if Array.for_all Fun.id slot.consumed then begin
                      slot.values <- [];
                      Array.fill slot.arrived 0 shards false;
                      Array.fill slot.consumed 0 shards false;
                      slot.result <- None
                    end;
                    s.wait <- Ready;
                    advance ())
            | Ready | In_barrier _ | In_ckpt _ ->
                if slot.result <> None then
                  (* A previous round is still being drained by slower
                     shards; wait for the reset. *)
                  `Blocked
                else begin
                  (* Deposit per-color partial results; the last shard to
                     arrive folds them in ascending color order (bitwise
                     equal to the sequential fold) and publishes. *)
                  let mine =
                    List.map
                      (fun c ->
                        (c, run_launch_color st ~sid:s.sid s.env launch c))
                      (owned_space_colors st s.sid space)
                  in
                  slot.values <- mine @ slot.values;
                  slot.arrived.(s.sid) <- true;
                  san_release st ~sid:s.sid Sanitizer.K_collective;
                  s.wait <- In_collective var;
                  Obs.Trace.instant tr ~tid ~cat:"exec"
                    ~args:[ ("var", Obs.Trace.Str var) ]
                    "collective.deposit";
                  if Array.for_all Fun.id slot.arrived then begin
                    let sorted =
                      List.sort
                        (fun (a, _) (b, _) -> Int.compare a b)
                        slot.values
                    in
                    slot.result <-
                      Some
                        (List.fold_left
                           (fun acc (_, v) -> Privilege.apply_redop op acc v)
                           (Privilege.identity_of op)
                           sorted)
                  end;
                  (* The deposit itself is progress; the shard picks the
                     result up on a later step. *)
                  `Progress
                end))

(* ---------- stall/deadlock diagnostics ---------- *)

let chan_diag st (cid, i, j) =
  let ch = chan st (cid, i, j) in
  {
    Resilience.Diag.copy_id = cid;
    src = i;
    dst = j;
    war = ch.war;
    raw = ch.raw;
  }

let count_true a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a

(* The structured picture of a shard parked on [instr] (stepper side). *)
let wait_of_instr st sid wait instr =
  match instr with
  | Prog.Copy c ->
      Resilience.Diag.At_copy
        (List.map
           (fun (i, j, _) -> chan_diag st (c.Prog.copy_id, i, j))
           (owned_src_pairs st sid c))
  | Prog.Await id ->
      let _, owned = owned_dst_pairs st sid id in
      Resilience.Diag.At_await
        (List.map (fun (i, j, _) -> chan_diag st (id, i, j)) owned)
  | Prog.Barrier ->
      Resilience.Diag.At_barrier
        { arrived = st.barrier.arrived; generation = st.barrier.generation }
  | Prog.Checkpoint _ ->
      Resilience.Diag.At_checkpoint
        {
          arrived = st.ckpt_barrier.arrived;
          generation = st.ckpt_barrier.generation;
        }
  | Prog.Launch_collective { var; _ } ->
      let slot = collective_slot st instr in
      Resilience.Diag.At_collective
        {
          var;
          arrived = count_true slot.arrived;
          consumed = count_true slot.consumed;
          published = slot.result <> None;
        }
  | _ -> (
      (* Not a blocking instruction; report the wait state instead. *)
      match wait with
      | In_barrier _ ->
          Resilience.Diag.At_barrier
            { arrived = st.barrier.arrived; generation = st.barrier.generation }
      | _ -> Resilience.Diag.Running)

let diagnose st ~reason shards =
  let shard_diag s =
    match s.frames with
    | [] ->
        { Resilience.Diag.sid = s.sid; instr = None; wait = Resilience.Diag.Finished }
    | f :: _ ->
        let instr = f.instrs.(f.idx) in
        {
          Resilience.Diag.sid = s.sid;
          instr = Some (Format.asprintf "%a" Prog.pp_instr instr);
          wait = wait_of_instr st s.sid s.wait instr;
        }
  in
  {
    Resilience.Diag.reason;
    shards = List.map shard_diag shards;
    barrier_arrived = st.barrier.arrived;
    barrier_generation = st.barrier.generation;
  }

(* ---------- real-parallel execution on OCaml domains ----------

   One domain per shard. All synchronisation metadata (war/raw counters,
   reduction mailboxes, the barrier and collective slots) is protected by a
   single monitor; waits block on its condition variable. Data movement
   happens outside the lock — the war/raw protocol itself guarantees
   exclusive access, which is exactly the property this mode stress-tests:
   if the compiler's synchronisation insertion were wrong, domains would
   race or hang. A stall watchdog (lib/resilience) monitors per-shard
   heartbeats: when every live shard sits in a wait with no progress for
   the timeout, the run raises {!Deadlock} with per-shard diagnostics
   instead of hanging forever. *)

type domain_status = {
  mutable cur : Prog.instr option; (* instruction being executed *)
  mutable waiting : (unit -> Resilience.Diag.wait) option;
  mutable finished : bool;
}

let drive_domains st (b : Prog.block) master_env ~watchdog ~restore =
  let m = Mutex.create () and cv = Condition.create () in
  let shards = b.Prog.shards in
  let progress = ref 0 in
  let tripped = ref None in
  let status =
    Array.init shards (fun _ -> { cur = None; waiting = None; finished = false })
  in
  let locked f =
    Mutex.lock m;
    incr progress;
    (* Exception-safe: a checkpoint sink or kernel raising inside a
       critical section must not leave the monitor held (the other shards
       could then never reach the watchdog's trip path). *)
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  (* Pre-create collective slots so the lookup list is read-only while the
     domains run. *)
  let rec precreate instrs =
    List.iter
      (function
        | Prog.Launch_collective _ as i -> ignore (collective_slot st i)
        | Prog.For_time { body; _ } -> precreate body
        | _ -> ())
      instrs
  in
  precreate b.Prog.body;
  let body_arr = Array.of_list b.Prog.body in
  let restart =
    match restore with
    | None -> None
    | Some ck -> Some (restart_point b ck)
  in
  let shard_main sid () =
    let env = Eval.copy master_env in
    let tr = st.trace in
    let tid = shard_tid sid in
    (* Block until [pred], parking a description of the wait for the
       watchdog; raises once the watchdog has declared the run dead. *)
    let wait_until ~why pred =
      Mutex.lock m;
      status.(sid).waiting <- Some why;
      while not (pred ()) && !tripped = None do
        Condition.wait cv m
      done;
      status.(sid).waiting <- None;
      incr progress;
      let dead = !tripped in
      Mutex.unlock m;
      match dead with Some d -> raise (Deadlock d) | None -> ()
    in
    let sleep_faults instr =
      match st.fault with
      | None -> ()
      | Some inj ->
          let pol = Resilience.Fault.policy inj in
          if
            Resilience.Fault.draw inj Resilience.Fault.Shard_stall ~shard:sid
          then begin
            bump st (fun x -> x.injected);
            Unix.sleepf pol.Resilience.Fault.delay_seconds
          end;
          (match instr with
          | Prog.Release id ->
              if
                Resilience.Fault.draw inj
                  (Resilience.Fault.Release_delay id)
                  ~shard:sid
              then begin
                bump st (fun x -> x.injected);
                Unix.sleepf pol.Resilience.Fault.delay_seconds
              end
          | _ -> ())
    in
    let rec exec instr =
      locked (fun () -> status.(sid).cur <- Some instr);
      sleep_faults instr;
      match instr with
      | Prog.For_time { var; count; body } ->
          (* Matches the stepper: a loop header is an instant, not a span
             that would cover every iteration. *)
          Obs.Trace.instant tr ~tid ~cat:"exec"
            ~args:[ ("count", Obs.Trace.Int count) ]
            "for_time";
          exec_for ~var ~count ~body ~from:0
      | instr ->
          let t0 = if Obs.Trace.enabled tr then Obs.Trace.now_us tr else 0. in
          exec_instr instr;
          if Obs.Trace.enabled tr then
            Obs.Trace.complete tr ~tid ~cat:"exec" ~ts:t0
              ~dur:(Obs.Trace.now_us tr -. t0)
              (instr_label instr)
    and exec_instr instr =
      match instr with
      | Prog.For_time _ -> assert false (* handled in [exec] *)
      | Prog.Assign (v, e) -> Eval.set env v (Eval.sexpr env e)
      | Prog.Launch { space; launch } ->
          List.iter
            (fun c -> ignore (run_launch_color st ~sid env launch c))
            (owned_space_colors st sid space)
      | Prog.Fill { part; fields; op } ->
          let p = Program.find_partition st.source part in
          List.iter
            (fun c ->
              let inst = instance st part c in
              san_access st ~sid ~part ~color:c ~fields Sanitizer.A_write
                (Physical.ispace inst);
              List.iter
                (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
                fields)
            (Prog.colors_of_shard ~shards ~colors:(Partition.color_count p) sid)
      | Prog.Copy c ->
          let ps =
            match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false
          and pd =
            match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false
          in
          List.iter
            (fun (i, j, space) ->
              let ch = chan st (c.Prog.copy_id, i, j) in
              wait_until
                ~why:(fun () ->
                  Resilience.Diag.At_copy [ chan_diag st (c.Prog.copy_id, i, j) ])
                (fun () -> ch.war > 0);
              locked (fun () -> ch.war <- ch.war - 1);
              san_acquire st ~sid (Sanitizer.K_war (c.Prog.copy_id, i, j));
              san_access st ~sid ~part:ps ~color:i ~fields:c.Prog.fields
                Sanitizer.A_read space;
              let src = instance st ps i and dst = instance st pd j in
              (match c.Prog.reduce with
              | None ->
                  san_access st ~sid ~part:pd ~color:j ~fields:c.Prog.fields
                    Sanitizer.A_write space;
                  exec_copy st ~role:role_direct ~cid:c.Prog.copy_id ~i ~j
                    ~space ~fields:c.Prog.fields ~reduce:None ~src ~dst ()
              | Some _ ->
                  let snapshot = Physical.create_over space c.Prog.fields in
                  exec_copy st ~role:role_stage ~cid:c.Prog.copy_id ~i ~j
                    ~space ~fields:c.Prog.fields ~reduce:None ~src
                    ~dst:snapshot ();
                  locked (fun () ->
                      let key = (c.Prog.copy_id, j) in
                      let box =
                        match Hashtbl.find_opt st.mailbox key with
                        | Some b -> b
                        | None ->
                            let b = ref [] in
                            Hashtbl.replace st.mailbox key b;
                            b
                      in
                      box := (i, snapshot) :: !box));
              (* The release must precede making the token visible: a
                 consumer woken by the broadcast acquires [K_raw]
                 immediately, and must find this shard's accesses already
                 joined into the key's clock. *)
              san_release st ~sid (Sanitizer.K_raw (c.Prog.copy_id, i, j));
              locked (fun () ->
                  ch.raw <- ch.raw + 1;
                  Condition.broadcast cv))
            (owned_src_pairs st sid c)
      | Prog.Await copy_id ->
          let c, owned = owned_dst_pairs st sid copy_id in
          List.iter
            (fun (i, j, _) ->
              let ch = chan st (copy_id, i, j) in
              wait_until
                ~why:(fun () ->
                  Resilience.Diag.At_await [ chan_diag st (copy_id, i, j) ])
                (fun () -> ch.raw > 0);
              locked (fun () -> ch.raw <- ch.raw - 1);
              san_acquire st ~sid (Sanitizer.K_raw (copy_id, i, j)))
            owned;
          (match c.Prog.reduce with
          | None -> ()
          | Some op ->
              let pd =
                match c.Prog.dst with
                | Prog.Opart p -> p
                | Prog.Oregion _ -> assert false
              in
              List.iter
                (fun (_, j, _) ->
                  let staged =
                    locked (fun () ->
                        match Hashtbl.find_opt st.mailbox (copy_id, j) with
                        | None -> []
                        | Some box ->
                            let l = !box in
                            box := [];
                            l)
                  in
                  List.iter
                    (fun (i, snapshot) ->
                      san_access st ~sid ~part:pd ~color:j
                        ~fields:c.Prog.fields Sanitizer.A_write
                        (Physical.ispace snapshot);
                      exec_copy st ~role:role_apply ~cid:copy_id ~i ~j
                        ~fields:c.Prog.fields ~reduce:(Some op) ~src:snapshot
                        ~dst:(instance st pd j) ())
                    (List.sort (fun (a, _) (b, _) -> Int.compare a b) staged))
                owned)
      | Prog.Release copy_id ->
          let _, owned = owned_dst_pairs st sid copy_id in
          (* As with [K_raw] above: join this shard's reads into the key
             before any producer can observe the fresh credit. *)
          List.iter
            (fun (i, j, _) ->
              san_release st ~sid (Sanitizer.K_war (copy_id, i, j)))
            owned;
          locked (fun () ->
              List.iter
                (fun (i, j, _) ->
                  let ch = chan st (copy_id, i, j) in
                  ch.war <- ch.war + 1)
                owned;
              Condition.broadcast cv);
          Obs.Trace.instant tr ~tid ~cat:"exec"
            ~args:[ ("copy_id", Obs.Trace.Int copy_id) ]
            "credit.release"
      | Prog.Barrier ->
          let gen =
            locked (fun () ->
                let gen = st.barrier.generation in
                st.barrier.arrived <- st.barrier.arrived + 1;
                (* Inside the monitor: every arrival's release lands in the
                   key's clock before the last arriver bumps the generation
                   and wakes the departing shards. *)
                san_release st ~sid Sanitizer.K_barrier;
                if st.barrier.arrived = shards then begin
                  st.barrier.arrived <- 0;
                  st.barrier.generation <- gen + 1;
                  Condition.broadcast cv
                end;
                gen)
          in
          Obs.Trace.instant tr ~tid ~cat:"exec"
            ~args:[ ("generation", Obs.Trace.Int gen) ]
            "barrier.arrive";
          wait_until
            ~why:(fun () ->
              Resilience.Diag.At_barrier
                {
                  arrived = st.barrier.arrived;
                  generation = st.barrier.generation;
                })
            (fun () -> st.barrier.generation > gen);
          san_acquire st ~sid Sanitizer.K_barrier
      | Prog.Checkpoint { var; every } -> (
          match st.ckpt_sink with
          | None -> ()
          | Some sink ->
              let t = int_of_float (Eval.get env var) in
              if (t + 1) mod every = 0 then begin
                (* Quiesce all shards; the last arriver serializes the cut
                   while holding the monitor (everyone else is parked on
                   this barrier, so the data is stable). *)
                let gen =
                  locked (fun () ->
                      let gen = st.ckpt_barrier.generation in
                      st.ckpt_barrier.arrived <- st.ckpt_barrier.arrived + 1;
                      san_release st ~sid Sanitizer.K_ckpt;
                      if st.ckpt_barrier.arrived = shards then begin
                        st.ckpt_barrier.arrived <- 0;
                        take_checkpoint st ~iter:t ~env sink;
                        st.ckpt_barrier.generation <- gen + 1;
                        Condition.broadcast cv
                      end;
                      gen)
                in
                wait_until
                  ~why:(fun () ->
                    Resilience.Diag.At_checkpoint
                      {
                        arrived = st.ckpt_barrier.arrived;
                        generation = st.ckpt_barrier.generation;
                      })
                  (fun () -> st.ckpt_barrier.generation > gen);
                san_acquire st ~sid Sanitizer.K_ckpt
              end)
      | Prog.Launch_collective { space; launch; var; op } as instr ->
          let slot = collective_slot st instr in
          let why () =
            Resilience.Diag.At_collective
              {
                var;
                arrived = count_true slot.arrived;
                consumed = count_true slot.consumed;
                published = slot.result <> None;
              }
          in
          (* A previous round must have fully drained before depositing. *)
          wait_until ~why (fun () -> slot.result = None && not slot.arrived.(sid));
          let mine =
            List.map
              (fun c -> (c, run_launch_color st ~sid env launch c))
              (owned_space_colors st sid space)
          in
          locked (fun () ->
              slot.values <- mine @ slot.values;
              slot.arrived.(sid) <- true;
              san_release st ~sid Sanitizer.K_collective;
              if Array.for_all Fun.id slot.arrived then begin
                let sorted =
                  List.sort (fun (a, _) (b, _) -> Int.compare a b) slot.values
                in
                slot.result <-
                  Some
                    (List.fold_left
                       (fun acc (_, v) -> Privilege.apply_redop op acc v)
                       (Privilege.identity_of op)
                       sorted)
              end;
              Condition.broadcast cv);
          Obs.Trace.instant tr ~tid ~cat:"exec"
            ~args:[ ("var", Obs.Trace.Str var) ]
            "collective.deposit";
          wait_until ~why (fun () -> slot.result <> None);
          san_acquire st ~sid Sanitizer.K_collective;
          let r = locked (fun () -> Option.get slot.result) in
          Eval.set env var r;
          locked (fun () ->
              slot.consumed.(sid) <- true;
              if Array.for_all Fun.id slot.consumed then begin
                slot.values <- [];
                Array.fill slot.arrived 0 shards false;
                Array.fill slot.consumed 0 shards false;
                slot.result <- None
              end;
              Condition.broadcast cv)
    and exec_for ~var ~count ~body ~from =
      for t = from to count - 1 do
        Eval.set env var (float_of_int t);
        List.iter exec body
      done
    in
    let run_body () =
      match restart with
      | None -> Array.iter exec body_arr
      | Some (k, start) ->
          (* Resume: everything before the time loop already happened (its
             effects live in the restored checkpoint); the loop itself
             restarts at the checkpointed iteration + 1. *)
          for i = k to Array.length body_arr - 1 do
            match body_arr.(i) with
            | Prog.For_time { var; count; body } when i = k ->
                locked (fun () -> status.(sid).cur <- Some body_arr.(i));
                Obs.Trace.instant tr ~tid ~cat:"exec"
                  ~args:[ ("count", Obs.Trace.Int count) ]
                  "for_time";
                exec_for ~var ~count ~body ~from:start
            | instr -> exec instr
          done
    in
    Fun.protect
      ~finally:(fun () ->
        (* Mark the shard finished in *all* exit paths (including a leaf
           fault exhausting its retries) so the watchdog can still declare
           the survivors deadlocked instead of reporting them running. *)
        locked (fun () ->
            status.(sid).finished <- true;
            Condition.broadcast cv))
      (fun () ->
        run_body ();
        env)
  in
  (* The watchdog trips when every live shard sits in a wait with an
     unchanged progress counter for the full timeout. *)
  let dog =
    if watchdog <= 0. then None
    else
      let observe () =
        Mutex.lock m;
        let all_done = Array.for_all (fun s -> s.finished) status in
        let quiescent =
          Array.for_all (fun s -> s.finished || s.waiting <> None) status
        in
        let n = !progress in
        Mutex.unlock m;
        if all_done then `Done else if quiescent then `Quiescent n else `Running n
      in
      let trip () =
        Mutex.lock m;
        let shard_diags =
          Array.to_list
            (Array.mapi
               (fun sid s ->
                 if s.finished then
                   {
                     Resilience.Diag.sid;
                     instr = None;
                     wait = Resilience.Diag.Finished;
                   }
                 else
                   {
                     Resilience.Diag.sid;
                     instr =
                       Option.map
                         (Format.asprintf "%a" Prog.pp_instr)
                         s.cur;
                     wait =
                       (match s.waiting with
                       | Some why -> why ()
                       | None -> Resilience.Diag.Running);
                   })
               status)
        in
        tripped :=
          Some
            {
              Resilience.Diag.reason =
                Printf.sprintf
                  "stall watchdog: no progress for %.2fs with every live \
                   shard blocked"
                  watchdog;
              shards = shard_diags;
              barrier_arrived = st.barrier.arrived;
              barrier_generation = st.barrier.generation;
            };
        Condition.broadcast cv;
        Mutex.unlock m
      in
      let poll = Float.max 0.002 (Float.min 0.05 (watchdog /. 5.)) in
      Some (Resilience.Watchdog.start ~poll ~timeout:watchdog ~observe ~trip ())
  in
  let domains = Array.init shards (fun sid -> Domain.spawn (shard_main sid)) in
  let results =
    Array.map
      (fun d ->
        match Domain.join d with
        | env -> Ok env
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      domains
  in
  Option.iter Resilience.Watchdog.stop dog;
  (* Prefer a root-cause failure (e.g. a leaf fault past its retry cap)
     over the consequential Deadlock the survivors raised. *)
  let root_cause =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | Some _, _ | _, Ok _ -> acc
        | None, Error ((Deadlock _, _) as e) -> Some e
        | None, Error e -> Some e)
      None results
  in
  let first_non_deadlock =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | Some _, _ | _, Ok _ -> acc
        | None, Error (Deadlock _, _) -> None
        | None, Error e -> Some e)
      None results
  in
  (match (first_non_deadlock, root_cause) with
  | Some (e, bt), _ -> Printexc.raise_with_backtrace e bt
  | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None, None -> ());
  if shards > 0 then
    match results.(0) with
    | Ok env ->
        List.iter (fun (k, v) -> Eval.set master_env k v) (Eval.bindings env)
    | Error _ -> ()

let run_block ?(sched = `Round_robin) ?stats ?fault ?(watchdog = 60.)
    ?checkpoint_sink ?restore ?(trace = Obs.Trace.null) ?data_plane ?sanitize
    ~source ctx (b : Prog.block) =
  let st =
    Obs.Trace.with_span trace ~tid:0 ~cat:"exec" "exec.analyze" (fun () ->
        create_state ?stats ?fault ?ckpt_sink:checkpoint_sink ~trace
          ?data_plane ?sanitize ~source ctx b)
  in
  if Obs.Trace.enabled trace then
    for sid = 0 to b.Prog.shards - 1 do
      Obs.Trace.set_thread_name trace ~tid:(shard_tid sid)
        (Printf.sprintf "shard %d" sid)
    done;
  let master_env = Interp.Run.env ctx in
  (match restore with
  | Some ck ->
      (* Restart: the checkpoint replaces both the initialization copies
         and everything the time loop did up to [ck.iter]. *)
      restore_state st master_env ck
  | None ->
      (* Initialization runs sequentially, outside the shards (Fig. 4d). *)
      Obs.Trace.with_span trace ~tid:0 ~cat:"exec" "exec.init" (fun () ->
          List.iter
            (function
              | Prog.Copy c -> master_copy st c
              | Prog.Fill { part; fields; op } ->
                  let p = Program.find_partition source part in
                  for color = 0 to Partition.color_count p - 1 do
                    let inst = instance st part color in
                    List.iter
                      (fun fld ->
                        Physical.fill inst fld (Privilege.identity_of op))
                      fields
                  done
              | instr ->
                  invalid_arg
                    (Format.asprintf
                       "Spmd.Exec: unsupported init instruction %a"
                       Prog.pp_instr instr))
            b.Prog.init));
  (* Shard streams. *)
  let drive_stepper rng =
    let start_idx, resume =
      match restore with
      | None -> (0, None)
      | Some ck ->
          let k, start = restart_point b ck in
          (k, Some start)
    in
    let shards =
      Array.init b.Prog.shards (fun sid ->
          {
            sid;
            env = Eval.copy master_env;
            frames =
              [ { instrs = Array.of_list b.Prog.body; idx = start_idx; loop = None } ];
            wait = Ready;
            stall = 0;
            fault_drawn = false;
            resume;
          })
    in
    let live () =
      Array.to_list shards |> List.filter (fun s -> not (shard_done s))
    in
    let rr = ref 0 in
    let rec drive () =
      match live () with
      | [] -> ()
      | alive ->
          (* Sweep the shards from a scheduler-chosen point. If a full sweep
             makes no progress and no shard is merely serving an injected
             delay, every live shard is blocked on runtime state that no
             one can change: a deadlock, reported with per-shard
             diagnostics. *)
          let order =
            match rng with
            | Some state ->
                let arr = Array.of_list alive in
                for i = Array.length arr - 1 downto 1 do
                  let j = Random.State.int state (i + 1) in
                  let t = arr.(i) in
                  arr.(i) <- arr.(j);
                  arr.(j) <- t
                done;
                Array.to_list arr
            | None ->
                let n = List.length alive in
                let k = !rr mod n in
                incr rr;
                let arr = Array.of_list alive in
                List.init n (fun i -> arr.((i + k) mod n))
          in
          let progressed = ref false and stalled = ref false in
          List.iter
            (fun s ->
              match step st s with
              | `Progress | `Done -> progressed := true
              | `Stalled -> stalled := true
              | `Blocked -> ())
            order;
          if not !progressed && not !stalled then
            raise
              (Deadlock
                 (diagnose st
                    ~reason:
                      (Printf.sprintf "all %d live shards blocked"
                         (List.length alive))
                    alive));
          drive ()
    in
    drive ();
    (* Replicated scalar state is identical on all shards; fold it back. *)
    match shards with
    | [||] -> ()
    | _ ->
        List.iter
          (fun (k, v) -> Eval.set master_env k v)
          (Eval.bindings shards.(0).env)
  in
  (match sched with
  | `Round_robin -> drive_stepper None
  | `Random seed -> drive_stepper (Some (Random.State.make [| seed |]))
  | `Domains -> drive_domains st b master_env ~watchdog ~restore);
  (* Finalization, sequential again. *)
  Obs.Trace.with_span trace ~tid:0 ~cat:"exec" "exec.finalize" (fun () ->
      List.iter
        (function
          | Prog.Copy c -> master_copy st c
          | instr ->
              invalid_arg
                (Format.asprintf
                   "Spmd.Exec: unsupported finalize instruction %a"
                   Prog.pp_instr instr))
        b.Prog.finalize)

let run ?sched ?stats ?fault ?watchdog ?checkpoint_sink ?restore ?trace
    ?data_plane ?sanitize (t : Prog.t) ctx =
  (* A restore resumes the program at its first replicated block: the
     sequential prefix ran before the checkpoint was taken and its effects
     (root instances, scalars) are part of the restored cut. *)
  let restoring = ref (restore <> None) in
  List.iter
    (function
      | Prog.Seq stmts -> if not !restoring then Interp.Run.run_stmts ctx stmts
      | Prog.Replicated b ->
          let restore = if !restoring then restore else None in
          restoring := false;
          run_block ?sched ?stats ?fault ?watchdog ?checkpoint_sink ?restore
            ?trace ?data_plane ?sanitize ~source:t.Prog.source ctx b)
    t.Prog.items
