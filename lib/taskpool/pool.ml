(* A plain shared-queue pool: workers block on a condition variable and pull
   thunks FIFO. Queue contention is negligible at our task granularities
   (leaf tasks do kernel work over whole subregions). *)

type job = unit -> unit

type t = {
  mutable workers : unit Domain.t list;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  drained : Condition.t; (* signalled once the stopping->stopped edge is done *)
  mutable stopping : bool;
  mutable stopped : bool;
  size : int;
}

let size t = t.size

let worker_loop t () =
  let rec next () =
    Mutex.lock t.lock;
    let rec wait () =
      if Queue.is_empty t.queue then
        if t.stopping then begin
          Mutex.unlock t.lock;
          None
        end
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      else begin
        let job = Queue.pop t.queue in
        Mutex.unlock t.lock;
        Some job
      end
    in
    match wait () with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ?domains () =
  let n =
    match domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Pool.create: domains < 1"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      workers = [];
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      stopping = false;
      stopped = false;
      size = n;
    }
  in
  t.workers <- List.init n (fun _ -> Domain.spawn (worker_loop t));
  t

let submit t job =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool: submit after shutdown"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

(* The stopping->stopped transition is claimed atomically under [t.lock]:
   exactly one caller takes the worker list (emptying it in the same
   critical section, so a racing shutdown can never double-join a
   domain); late callers block until the winner signals [drained]. *)
let shutdown t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else if t.stopping then begin
    while not t.stopped do
      Condition.wait t.drained t.lock
    done;
    Mutex.unlock t.lock
  end
  else begin
    t.stopping <- true;
    let workers = t.workers in
    t.workers <- [];
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    List.iter Domain.join workers;
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.drained;
    Mutex.unlock t.lock
  end

(* Failures carry the backtrace captured at the raise site in the worker
   domain, so [await] can re-raise without erasing where the task
   actually died. *)
type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  flock : Mutex.t;
  fdone : Condition.t;
}

let async t f =
  let fut = { state = Pending; flock = Mutex.create (); fdone = Condition.create () } in
  submit t (fun () ->
      let result =
        try Done (f ())
        with e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock fut.flock;
      fut.state <- result;
      Condition.broadcast fut.fdone;
      Mutex.unlock fut.flock);
  fut

let await fut =
  Mutex.lock fut.flock;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fdone fut.flock;
        wait ()
    | Done v ->
        Mutex.unlock fut.flock;
        v
    | Failed (e, bt) ->
        Mutex.unlock fut.flock;
        Printexc.raise_with_backtrace e bt
  in
  wait ()

(* Quotient-remainder blocking of [lo..hi] into [pieces]; piece [index] as
   inclusive bounds, [None] when empty. *)
let block ~lo ~hi ~pieces ~index =
  let n = hi - lo + 1 in
  let q = n / pieces and r = n mod pieces in
  let start = lo + (index * q) + min index r in
  let len = q + if index < r then 1 else 0 in
  if len <= 0 then None else Some (start, start + len - 1)

let parallel_for t ~lo ~hi f =
  if hi >= lo then begin
    let n = hi - lo + 1 in
    let chunks = min n (4 * size t) in
    let futures =
      List.init chunks (fun c ->
          match block ~lo ~hi ~pieces:chunks ~index:c with
          | None -> None
          | Some (l, h) ->
              Some
                (async t (fun () ->
                     for i = l to h do
                       f i
                     done)))
    in
    let first_exn = ref None in
    List.iter
      (function
        | None -> ()
        | Some fut -> (
            try await fut
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              if !first_exn = None then first_exn := Some (e, bt)))
      futures;
    match !first_exn with
    | None -> ()
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  end

let parallel_map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    parallel_for t ~lo:1 ~hi:(n - 1) (fun i -> out.(i) <- f a.(i));
    out
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_pool = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.protect default_lock (fun () ->
      match !default_pool with
      | Some p -> p
      | None ->
          let p = create () in
          default_pool := Some p;
          p)
