(** A fixed pool of OCaml 5 domains executing submitted thunks.

    This is the intra-node parallelism substrate (the role Kokkos/OpenMP
    play for the paper's reference codes): the functional interpreter and
    the SPMD executor use it to run independent leaf tasks of an index
    launch in parallel.

    Restrictions: [await] and the [parallel_*] helpers must be called from
    outside the pool (typically the main domain), never from within a pooled
    task — a worker blocking on other workers can deadlock the pool. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to [Domain.recommended_domain_count () - 1], at
    least 1. The pool starts immediately. *)

val size : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Waits for queued work to drain, then joins all workers. Idempotent. *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
val await : 'a future -> 'a
(** Re-raises any exception the task raised, preserving the backtrace
    captured at the raise site in the worker domain. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for p ~lo ~hi f] runs [f i] for [lo <= i <= hi] (inclusive),
    split into chunks across the pool. Exceptions from any iteration are
    re-raised (one of them, arbitrarily) after all chunks finish. *)

val parallel_map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** Create a pool, run, always shut down. *)

val default : unit -> t
(** A lazily created shared pool, sized by the machine. *)
