open Regions
open Ir

type result = {
  per_step : float;
  total : float;
  tasks_run : int;
  copies_run : int;
  bytes_moved : float;
  timeline : Realm.Timeline.t;
}

(* Trace tids for timeline nodes: per-shard control thread, per-core
   execution, per-shard network lane, plus global sync tracks. *)
let ctl_track s = 100 * s
let core_track s core = (100 * s) + 1 + core
let net_track s = (100 * s) + 90
let barrier_track = 99_000
let collective_track = 99_001

let track_names ~shards ~cores =
  let per_shard s =
    (ctl_track s, Printf.sprintf "shard %d ctl" s)
    :: (net_track s, Printf.sprintf "shard %d net" s)
    :: List.init cores (fun c ->
           (core_track s c, Printf.sprintf "shard %d core %d" s c))
  in
  (barrier_track, "barriers")
  :: (collective_track, "collectives")
  :: List.concat (List.init shards per_shard)

type state = {
  machine : Realm.Machine.t;
  scale : Scale.t;
  source : Program.t;
  block : Spmd.Prog.block;
  tl : Realm.Timeline.t;
  ctl : float array; (* control-thread timestamp per shard *)
  ctl_pred : int array; (* node that last advanced the control thread *)
  scalar_ready : float array; (* per shard: when replicated scalars settle *)
  scalar_pred : int array;
  last_completion : float array; (* per shard: latest operation completion *)
  lc_pred : int array;
  pools : Realm.Cores.t array; (* per node *)
  core_op : int array array; (* per node, per core: last occupant node *)
  avail : (string * int, float * int) Hashtbl.t;
      (* (partition, color) data ready, with producing node *)
  readers_done : (string * int, float * int) Hashtbl.t;
  pairsets : (int, Spmd.Intersections.pairs) Hashtbl.t;
  arrival : (int * int * int, float * int) Hashtbl.t; (* copy pair arrival *)
  release : (int * int * int, float * int) Hashtbl.t; (* WAR release per pair *)
  mutable tasks_run : int;
  mutable copies_run : int;
  mutable bytes_moved : float;
}

let nil = Realm.Timeline.nil

let get tbl key = Option.value ~default:(0., nil) (Hashtbl.find_opt tbl key)

let bump tbl key (t, id) =
  let cur, _ = get tbl key in
  if t > cur then Hashtbl.replace tbl key (t, id)

let binding = Realm.Timeline.binding

let bump_shard times preds s (t, id) =
  if t > times.(s) then begin
    times.(s) <- t;
    preds.(s) <- id
  end

let owner st pname color =
  let p = Program.find_partition st.source pname in
  Spmd.Prog.owner_of_color ~shards:st.block.Spmd.Prog.shards
    ~colors:(Partition.color_count p) color

let owned_colors st s space =
  let n = Program.find_space st.source space in
  Spmd.Prog.colors_of_shard ~shards:st.block.Spmd.Prog.shards ~colors:n s

let scaled_size st n = int_of_float (float_of_int n *. st.scale.Scale.compute)

(* Advance shard [s]'s control thread by [overhead], recording the gap as
   an issue node chained on the previous control-thread op, so control
   serialization is attributable on the critical path. *)
let issue st s ~name ~overhead =
  let start = st.ctl.(s) in
  st.ctl.(s) <- start +. overhead;
  let id =
    Realm.Timeline.op st.tl ~cat:"ctl" ~name ~track:(ctl_track s) ~start
      ~finish:st.ctl.(s) ~pred:st.ctl_pred.(s) ()
  in
  st.ctl_pred.(s) <- id;
  id

(* Dispatch onto shard [s]'s core pool; if the task queued behind the
   core's previous occupant, that occupant is the binding predecessor. *)
let dispatch st s ~name ~cat ~args ~ready ~pred ~duration =
  let core, start, finish =
    Realm.Cores.execute_core st.pools.(s) ~ready ~duration
  in
  let pred = if start > ready then st.core_op.(s).(core) else pred in
  let id =
    Realm.Timeline.op st.tl ~cat ~args ~name ~track:(core_track s core) ~start
      ~finish ~pred ()
  in
  st.core_op.(s).(core) <- id;
  bump_shard st.last_completion st.lc_pred s (finish, id);
  id

(* One owned task of a launch: charge control overhead, wait for argument
   data, occupy a core. Returns the completion time and its node. *)
let run_task st s (launch : Types.launch) c =
  let task = Program.find_task st.source launch.Types.task in
  let iss =
    issue st s ~name:"issue"
      ~overhead:
        (st.machine.Realm.Machine.launch_overhead
        +. st.machine.Realm.Machine.local_analysis_overhead)
  in
  let cands = ref [ (st.ctl.(s), iss); (st.scalar_ready.(s), st.scalar_pred.(s)) ] in
  let sizes =
    Array.of_list
      (List.map
         (fun rarg ->
           match rarg with
           | Types.Part (pname, Types.Id) ->
               let p = Program.find_partition st.source pname in
               let card = Region.cardinal (Partition.sub p c) in
               cands := get st.avail (pname, c) :: !cands;
               cands := get st.readers_done (pname, c) :: !cands;
               scaled_size st card
           | Types.Part (_, Types.Fn _) | Types.Whole _ ->
               invalid_arg "Sim_spmd: non-normalized launch argument")
         launch.Types.rargs)
  in
  let ready, pred = binding !cands in
  let noise =
    Realm.Machine.jitter st.machine ~key:((c * 131) + st.tasks_run)
  in
  let id =
    dispatch st s
      ~name:(Printf.sprintf "%s#%d" launch.Types.task c)
      ~cat:"task"
      ~args:[ ("color", Obs.Trace.Int c) ]
      ~ready ~pred
      ~duration:(task.Task.cost sizes *. noise)
  in
  let completion = (Realm.Timeline.node st.tl id).Realm.Timeline.finish in
  st.tasks_run <- st.tasks_run + 1;
  let accs =
    List.map
      (fun (a : Summary.access) -> (a.Summary.part, a.Summary.mode))
      (Summary.launch_accesses st.source launch)
  in
  List.iter
    (fun (pname, mode) ->
      match mode with
      | Privilege.Read -> bump st.readers_done (pname, c) (completion, id)
      | Privilege.Read_write | Privilege.Reduce _ ->
          bump st.avail (pname, c) (completion, id);
          bump st.readers_done (pname, c) (completion, id))
    accs;
  (completion, id)

let copy_bytes st (c : Spmd.Prog.copy) inter_cardinal =
  float_of_int inter_cardinal *. st.scale.Scale.copy
  *. st.machine.Realm.Machine.bytes_per_element
  *. float_of_int (List.length c.Spmd.Prog.fields)

let part_name = function
  | Spmd.Prog.Opart p -> p
  | Spmd.Prog.Oregion r ->
      invalid_arg ("Sim_spmd: region operand " ^ r ^ " in replicated body")

let exec_instr st (instr : Spmd.Prog.instr) =
  let shards = st.block.Spmd.Prog.shards in
  match instr with
  | Spmd.Prog.Assign _ -> ()
  | Spmd.Prog.Launch { space; launch } ->
      for s = 0 to shards - 1 do
        List.iter
          (fun c -> ignore (run_task st s launch c))
          (owned_colors st s space)
      done
  | Spmd.Prog.Launch_collective { space; launch; _ } ->
      (* Local partials, then an asynchronous dynamic collective (§4.4):
         control threads do not block; dependent tasks wait for the
         result. *)
      let finish = ref 0. and fpred = ref nil in
      for s = 0 to shards - 1 do
        List.iter
          (fun c ->
            let completion, id = run_task st s launch c in
            if completion > !finish then begin
              finish := completion;
              fpred := id
            end)
          (owned_colors st s space)
      done;
      let result_at = !finish +. Realm.Machine.collective_time st.machine in
      let cnode =
        Realm.Timeline.op st.tl ~cat:"sync"
          ~name:("collective:" ^ launch.Types.task)
          ~track:collective_track ~start:!finish ~finish:result_at
          ~pred:!fpred ()
      in
      for s = 0 to shards - 1 do
        bump_shard st.scalar_ready st.scalar_pred s (result_at, cnode)
      done
  | Spmd.Prog.Fill { part; fields; _ } ->
      for s = 0 to shards - 1 do
        let p = Program.find_partition st.source part in
        List.iter
          (fun c ->
            let bytes =
              float_of_int
                (scaled_size st (Region.cardinal (Partition.sub p c)))
              *. st.machine.Realm.Machine.bytes_per_element
              *. float_of_int (List.length fields)
            in
            let iss =
              issue st s ~name:"issue"
                ~overhead:st.machine.Realm.Machine.launch_overhead
            in
            let ready, pred =
              binding
                [
                  (st.ctl.(s), iss);
                  get st.avail (part, c);
                  get st.readers_done (part, c);
                ]
            in
            let id =
              dispatch st s
                ~name:(Printf.sprintf "fill:%s#%d" part c)
                ~cat:"fill" ~args:[] ~ready ~pred
                ~duration:(bytes /. st.machine.Realm.Machine.memory_bandwidth)
            in
            let completion =
              (Realm.Timeline.node st.tl id).Realm.Timeline.finish
            in
            bump st.avail (part, c) (completion, id))
          (Spmd.Prog.colors_of_shard ~shards
             ~colors:(Partition.color_count p) s)
      done
  | Spmd.Prog.Copy c ->
      let ps = part_name c.Spmd.Prog.src and pd = part_name c.Spmd.Prog.dst in
      let pairs = Hashtbl.find st.pairsets c.Spmd.Prog.copy_id in
      List.iter
        (fun (i, j, inter) ->
          let s = owner st ps i in
          let key = (c.Spmd.Prog.copy_id, i, j) in
          let iss =
            issue st s ~name:"issue_copy"
              ~overhead:st.machine.Realm.Machine.copy_issue_overhead
          in
          let ready, pred =
            binding [ (st.ctl.(s), iss); get st.avail (ps, i); get st.release key ]
          in
          let bytes = copy_bytes st c (Index_space.cardinal inter) in
          let dur =
            Realm.Machine.transfer_time st.machine ~src_node:s
              ~dst_node:(owner st pd j) ~bytes
          in
          let completion = ready +. dur in
          let id =
            Realm.Timeline.op st.tl ~cat:"copy"
              ~name:(Printf.sprintf "copy%d:%d->%d" c.Spmd.Prog.copy_id i j)
              ~args:[ ("bytes", Obs.Trace.Float bytes) ]
              ~track:(net_track s) ~start:ready ~finish:completion ~pred ()
          in
          Hashtbl.replace st.arrival key (completion, id);
          st.copies_run <- st.copies_run + 1;
          st.bytes_moved <- st.bytes_moved +. bytes;
          bump_shard st.last_completion st.lc_pred s (completion, id))
        pairs.Spmd.Intersections.items
  | Spmd.Prog.Await copy_id ->
      (* Deferred precondition: destination data becomes ready at arrival,
         the control thread does not block. *)
      let c =
        List.find
          (fun (c : Spmd.Prog.copy) -> c.Spmd.Prog.copy_id = copy_id)
          st.block.Spmd.Prog.copies
      in
      let pd = part_name c.Spmd.Prog.dst in
      let pairs = Hashtbl.find st.pairsets copy_id in
      List.iter
        (fun (i, j, _) ->
          bump st.avail (pd, j) (get st.arrival (copy_id, i, j)))
        pairs.Spmd.Intersections.items
  | Spmd.Prog.Release copy_id ->
      let c =
        List.find
          (fun (c : Spmd.Prog.copy) -> c.Spmd.Prog.copy_id = copy_id)
          st.block.Spmd.Prog.copies
      in
      let pd = part_name c.Spmd.Prog.dst in
      let pairs = Hashtbl.find st.pairsets copy_id in
      List.iter
        (fun (i, j, _) ->
          Hashtbl.replace st.release (copy_id, i, j)
            (get st.readers_done (pd, j)))
        pairs.Spmd.Intersections.items
  | Spmd.Prog.Barrier ->
      (* Global barriers block the control threads (this is exactly what
         the §3.4 point-to-point refinement avoids). *)
      let arrive = ref 0. and apred = ref nil in
      for s = 0 to shards - 1 do
        let t, id =
          binding
            [
              (st.ctl.(s), st.ctl_pred.(s));
              (st.last_completion.(s), st.lc_pred.(s));
            ]
        in
        if t > !arrive then begin
          arrive := t;
          apred := id
        end
      done;
      let done_at = !arrive +. Realm.Machine.barrier_time st.machine in
      let bnode =
        Realm.Timeline.op st.tl ~cat:"sync" ~name:"barrier"
          ~track:barrier_track ~start:!arrive ~finish:done_at ~pred:!apred ()
      in
      for s = 0 to shards - 1 do
        st.ctl.(s) <- done_at;
        st.ctl_pred.(s) <- bnode
      done
  | Spmd.Prog.Checkpoint _ ->
      (* The performance model has no fault model; checkpoints cost
         nothing and move no simulated bytes. *)
      ()
  | Spmd.Prog.For_time _ ->
      invalid_arg "Sim_spmd: nested loop reached exec_instr"

let find_block (prog : Spmd.Prog.t) =
  match
    List.find_map
      (function Spmd.Prog.Replicated b -> Some b | Spmd.Prog.Seq _ -> None)
      prog.Spmd.Prog.items
  with
  | Some b -> b
  | None -> invalid_arg "Sim_spmd: no replicated block in program"

let simulate ~machine ?(scale = Scale.unit_scale) ?(steps = 10)
    ?(trace = Obs.Trace.null) (prog : Spmd.Prog.t) =
  let block = find_block prog in
  if block.Spmd.Prog.shards <> machine.Realm.Machine.nodes then
    invalid_arg "Sim_spmd: shard count differs from machine nodes";
  let cores = Realm.Machine.compute_cores machine in
  let st =
    {
      machine;
      scale;
      source = prog.Spmd.Prog.source;
      block;
      tl = Realm.Timeline.create ();
      ctl = Array.make block.Spmd.Prog.shards 0.;
      ctl_pred = Array.make block.Spmd.Prog.shards nil;
      scalar_ready = Array.make block.Spmd.Prog.shards 0.;
      scalar_pred = Array.make block.Spmd.Prog.shards nil;
      last_completion = Array.make block.Spmd.Prog.shards 0.;
      lc_pred = Array.make block.Spmd.Prog.shards nil;
      pools =
        Array.init machine.Realm.Machine.nodes (fun _ ->
            Realm.Cores.create ~cores);
      core_op =
        Array.init machine.Realm.Machine.nodes (fun _ -> Array.make cores nil);
      avail = Hashtbl.create 1024;
      readers_done = Hashtbl.create 1024;
      pairsets = Hashtbl.create 16;
      arrival = Hashtbl.create 1024;
      release = Hashtbl.create 1024;
      tasks_run = 0;
      copies_run = 0;
      bytes_moved = 0.;
    }
  in
  (* Dynamic intersections, computed once up front (§3.3; the paper lifts
     them to program start via loop-invariant code motion). *)
  Obs.Trace.with_span trace ~tid:0 ~cat:"sim" "sim_spmd.intersections"
    (fun () ->
      List.iter
        (fun (c : Spmd.Prog.copy) ->
          match (c.Spmd.Prog.src, c.Spmd.Prog.dst) with
          | Spmd.Prog.Opart ps, Spmd.Prog.Opart pd ->
              let src = Program.find_partition st.source ps
              and dst = Program.find_partition st.source pd in
              let pairs =
                match c.Spmd.Prog.pairs with
                | `Sparse -> Spmd.Intersections.compute ~src ~dst ()
                | `Dense -> Spmd.Intersections.compute_all_pairs ~src ~dst ()
              in
              Hashtbl.replace st.pairsets c.Spmd.Prog.copy_id pairs
          | _ -> ())
        block.Spmd.Prog.copies);
  (* The measured region: the block's time loop, re-run for [steps]
     simulated timesteps regardless of the source loop's count. *)
  let loop_body =
    match block.Spmd.Prog.body with
    | [ Spmd.Prog.For_time { body; _ } ] -> body
    | body -> body
  in
  let mark () =
    let m = ref 0. in
    for s = 0 to block.Spmd.Prog.shards - 1 do
      m := Float.max !m (Float.max st.ctl.(s) st.last_completion.(s))
    done;
    !m
  in
  let warmup = min 2 (steps - 1) in
  let warm_mark = ref 0. in
  Obs.Trace.with_span trace ~tid:0 ~cat:"sim" "sim_spmd.steps" (fun () ->
      for step = 1 to steps do
        List.iter (exec_instr st) loop_body;
        if step = warmup then warm_mark := mark ()
      done);
  let total = mark () in
  {
    per_step =
      (if steps > warmup then (total -. !warm_mark) /. float_of_int (steps - warmup)
       else total /. float_of_int steps);
    total;
    tasks_run = st.tasks_run;
    copies_run = st.copies_run;
    bytes_moved = st.bytes_moved;
    timeline = st.tl;
  }
