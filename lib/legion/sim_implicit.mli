(** Critical-path simulation of the {e implicit} (non-control-replicated)
    execution model.

    A single master control thread launches every subtask in the system,
    paying launch plus dynamic dependence-analysis overhead per task —
    O(total tasks) serial work per timestep, the bottleneck of paper
    Fig. 1c/§1. Launches are deferred (the master never blocks on task
    results); tasks start when the master has issued them, their
    dependences have resolved and their input data has arrived, and they
    occupy a core on their mapped node. Data movement between dependent
    tasks on different nodes pays the network model on the dynamic
    intersection of the producer and consumer subregions.

    The measured region is the program's first top-level time loop, re-run
    for [steps] iterations. *)

type result = {
  per_step : float;
  total : float;
  tasks_run : int;
  bytes_moved : float;
  timeline : Realm.Timeline.t;
      (* every simulated op with its binding predecessor; the critical
         path's contributions sum to [total] *)
}

val track_names : nodes:int -> cores:int -> (int * string) list
(** Thread names for {!Realm.Timeline.emit}: the master control track plus
    per-node core tracks. *)

val simulate :
  machine:Realm.Machine.t ->
  ?mapper:Mapper.t ->
  ?scale:Scale.t ->
  ?steps:int ->
  ?trace:Obs.Trace.t ->
  Ir.Program.t ->
  result
(** Handles [p\[f(i)\]] projections directly (no normalization needed).
    Raises [Invalid_argument] when the program has no top-level time
    loop. *)
