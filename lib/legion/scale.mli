(** Workload scaling between the instantiated problem and the simulated
    one.

    Structured applications can instantiate full-size partitions
    (rectangle algebra is O(1) in element count), so they use
    {!unit_scale}. Unstructured applications instantiate a reduced
    per-node problem — the partition topology (who neighbours whom) is
    size-invariant — and tell the simulator how many real elements each
    instantiated element stands for: [compute] scales task inputs,
    [copy] scales communication volumes. The two differ because compute
    scales with volume while halo traffic scales with surface. *)

type t = { compute : float; copy : float }

val unit_scale : t
(** [{ compute = 1.; copy = 1. }] — the instantiated problem is the
    simulated one. *)

val make : compute:float -> copy:float -> t
(** Raises [Invalid_argument] unless both factors are positive. *)
