(** Dynamic dependence analysis at launch granularity (paper §4.1).

    For each ordered pair of launch statements in a loop body, classify how
    color [j] of the later launch depends on colors of the earlier one:

    - [No_dep] — every access pair is non-conflicting or provably disjoint;
    - [Same_color] — conflicts only through the same disjoint partition, so
      color [j] depends on color [j] only (e.g. read-after-write on p\[i\]);
    - [All_colors of pairs] — conflicts through aliased partitions: color
      [j] may touch data any earlier color produced. The payload lists, per
      (writer partition, reader partition) pair, the dynamic intersections —
      which also price the data movement Legion would perform.

    This is what the single master thread computes task-by-task in the
    implicit model; the simulator charges [analysis_overhead] per task for
    it. *)

type aliased_pairs = {
  data : Spmd.Intersections.pairs list;
      (** the earlier statement produced the overlap — a real transfer *)
  order : Spmd.Intersections.pairs list;
      (** write-after-read ordering only — no data moves *)
}

type relation =
  | No_dep
  | Same_color
  | All_colors of aliased_pairs

val relate :
  ?trace:Obs.Trace.t ->
  ?tid:int ->
  Ir.Program.t -> Ir.Types.stmt -> Ir.Types.stmt -> relation
(** [relate prog earlier later]. Both statements must be index launches
    (possibly reducing). When [trace] is enabled, each call records a
    wall-clock [dep.relate] span (default [tid] 2000) whose [relation]
    arg names the resulting classification. *)

val relation_kind : relation -> string
(** Short human-readable tag ([no_dep], [same_color],
    [all_colors(data=_,order=_)]). *)

val conflicting_accesses :
  Ir.Program.t -> Ir.Types.stmt -> Ir.Types.stmt ->
  (string * string * Regions.Field.t) list
(** The (earlier partition, later partition, field) conflicts behind the
    relation — exposed for tests. *)
