open Regions
open Ir

type aliased_pairs = {
  data : Spmd.Intersections.pairs list;
      (* earlier statement produced (wrote/reduced) the overlap: charge a
         transfer of the intersection *)
  order : Spmd.Intersections.pairs list;
      (* pure ordering (the earlier statement only read): no data moves *)
}

type relation =
  | No_dep
  | Same_color
  | All_colors of aliased_pairs

(* Privilege-level conflict: must the two accesses be ordered? *)
let conflicts m1 m2 = Privilege.conflicts m1 m2

let launch_of = function
  | Types.Index_launch { launch; _ } | Types.Index_launch_reduce { launch; _ }
    ->
      launch
  | Types.Single_launch _ | Types.Assign _ | Types.For_time _ | Types.If _ ->
      invalid_arg "Dep: not an index launch"

(* (partition, field, mode) accesses where the mode can produce or consume
   data. *)
let accesses prog stmt =
  let accs = Summary.launch_accesses prog (launch_of stmt) in
  List.map
    (fun (a : Summary.access) -> (a.Summary.part, a.Summary.field, a.Summary.mode))
    accs

let conflicting_accesses_full prog earlier later =
  let e = accesses prog earlier and l = accesses prog later in
  List.concat_map
    (fun (p1, f1, m1) ->
      List.filter_map
        (fun (p2, f2, m2) ->
          if Field.equal f1 f2 && conflicts m1 m2 then Some (p1, p2, f1, m1)
          else None)
        l)
    e

let conflicting_accesses prog earlier later =
  List.map
    (fun (p1, p2, f, _) -> (p1, p2, f))
    (conflicting_accesses_full prog earlier later)

let relate_untraced (prog : Program.t) earlier later =
  let tree = prog.Program.tree in
  let pairs = conflicting_accesses_full prog earlier later in
  let same_color = ref false in
  let data = ref [] and order = ref [] in
  List.iter
    (fun (p1, p2, _, m1) ->
      if p1 = p2 then
        (* Same disjoint partition: the conflict is color-diagonal. Writes
           through aliased partitions are rejected upstream, so a
           same-partition conflict implies disjointness. *)
        same_color := true
      else
        let pa = Program.find_partition prog p1
        and pb = Program.find_partition prog p2 in
        if
          not
            (Region_tree.provably_disjoint tree pa.Partition.parent
               pb.Partition.parent)
        then begin
          let bucket =
            match m1 with
            | Privilege.Read_write | Privilege.Reduce _ -> data
            | Privilege.Read -> order
          in
          if not (List.mem (p1, p2) !bucket) then
            bucket := (p1, p2) :: !bucket
        end)
    pairs;
  let compute l =
    List.map
      (fun (p1, p2) ->
        Spmd.Intersections.compute
          ~src:(Program.find_partition prog p1)
          ~dst:(Program.find_partition prog p2)
          ())
      (List.rev l)
  in
  (* A pair that moves data subsumes its ordering constraint. *)
  let order_only =
    List.filter (fun pq -> not (List.mem pq !data)) !order
  in
  match (!data, order_only) with
  | [], [] -> if !same_color then Same_color else No_dep
  | d, o -> All_colors { data = compute d; order = compute o }

let relation_kind = function
  | No_dep -> "no_dep"
  | Same_color -> "same_color"
  | All_colors { data; order } ->
      Printf.sprintf "all_colors(data=%d,order=%d)" (List.length data)
        (List.length order)

let relate ?(trace = Obs.Trace.null) ?(tid = 2000) (prog : Program.t) earlier
    later =
  if not (Obs.Trace.enabled trace) then relate_untraced prog earlier later
  else begin
    let t0 = Obs.Trace.now_us trace in
    let r = relate_untraced prog earlier later in
    Obs.Trace.complete trace ~tid ~cat:"legion"
      ~args:[ ("relation", Obs.Trace.Str (relation_kind r)) ]
      ~ts:t0
      ~dur:(Obs.Trace.now_us trace -. t0)
      "dep.relate";
    r
  end
