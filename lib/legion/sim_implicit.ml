open Regions
open Ir

type result = {
  per_step : float;
  total : float;
  tasks_run : int;
  bytes_moved : float;
  timeline : Realm.Timeline.t;
}

(* Trace tids for timeline nodes: the single master control thread plus
   per-node cores. *)
let ctl_track = 0
let core_track node core = (100 * (node + 1)) + core

let track_names ~nodes ~cores =
  (ctl_track, "master ctl")
  :: List.concat
       (List.init nodes (fun n ->
            List.init cores (fun c ->
                (core_track n c, Printf.sprintf "node %d core %d" n c))))

(* Precomputed description of one launch statement in the loop body. *)
type stmt_info = {
  stmt : Types.stmt;
  launch : Types.launch;
  space_size : int;
  is_reduce : bool;
  has_scalar_args : bool;
  (* for each argument: partition name and the color projection *)
  args : (string * (int -> int)) list;
}

let stmt_info (prog : Program.t) stmt =
  match stmt with
  | Types.Index_launch { space; launch }
  | Types.Index_launch_reduce { space; launch; _ } ->
      let args =
        List.map
          (function
            | Types.Part (p, Types.Id) -> (p, Fun.id)
            | Types.Part (p, Types.Fn (_, f)) -> (p, f)
            | Types.Whole r ->
                invalid_arg
                  ("Sim_implicit: whole-region argument " ^ r
                 ^ " in an index launch"))
          launch.Types.rargs
      in
      Some
        {
          stmt;
          launch;
          space_size = Program.find_space prog space;
          is_reduce =
            (match stmt with Types.Index_launch_reduce _ -> true | _ -> false);
          has_scalar_args = Array.length launch.Types.sargs > 0;
          args;
        }
  | Types.Assign _ -> None
  | Types.Single_launch _ | Types.For_time _ | Types.If _ ->
      invalid_arg "Sim_implicit: unsupported statement in the time loop"

(* For an All_colors relation, index the intersection pairs by consumer
   color: j -> [(producer color, elements, is_data)]. *)
let index_pairs (rel : Dep.relation) =
  match rel with
  | Dep.No_dep | Dep.Same_color -> [||]
  | Dep.All_colors { data; order } ->
      let max_j = ref (-1) in
      List.iter
        (fun (ps : Spmd.Intersections.pairs) ->
          List.iter
            (fun (_, j, _) -> if j > !max_j then max_j := j)
            ps.Spmd.Intersections.items)
        (data @ order);
      let idx = Array.make (!max_j + 1) [] in
      let add is_data (ps : Spmd.Intersections.pairs) =
        List.iter
          (fun (i, j, inter) ->
            idx.(j) <- (i, Index_space.cardinal inter, is_data) :: idx.(j))
          ps.Spmd.Intersections.items
      in
      List.iter (add true) data;
      List.iter (add false) order;
      idx

let find_loop (prog : Program.t) =
  match
    List.find_map
      (function Types.For_time { body; _ } -> Some body | _ -> None)
      prog.Program.body
  with
  | Some body -> body
  | None -> invalid_arg "Sim_implicit: no top-level time loop"

let simulate ~machine ?mapper ?(scale = Scale.unit_scale) ?(steps = 10)
    ?(trace = Obs.Trace.null) (prog : Program.t) =
  let mapper =
    match mapper with
    | Some m -> m
    | None -> Mapper.block ~nodes:machine.Realm.Machine.nodes
  in
  let body = find_loop prog in
  let infos = List.filter_map (stmt_info prog) body in
  let n_stmts = List.length infos in
  let infos = Array.of_list infos in
  (* relations.(s1).(s2): how stmt s2 depends on the most recent execution
     of stmt s1 (s1 may follow s2 in body order — the loop back edge). *)
  let relations =
    Obs.Trace.with_span trace ~tid:0 ~cat:"sim" "sim_implicit.dep_analysis"
      (fun () ->
        Array.init n_stmts (fun s1 ->
            Array.init n_stmts (fun s2 ->
                Dep.relate ~trace prog infos.(s1).stmt infos.(s2).stmt)))
  in
  let pair_index =
    Array.init n_stmts (fun s1 ->
        Array.init n_stmts (fun s2 -> index_pairs relations.(s1).(s2)))
  in
  let node_of info c =
    mapper.Mapper.node_of_color ~colors:info.space_size c
  in
  let cores = Realm.Machine.compute_cores machine in
  let pools =
    Array.init machine.Realm.Machine.nodes (fun _ ->
        Realm.Cores.create ~cores)
  in
  let nil = Realm.Timeline.nil in
  let tl = Realm.Timeline.create () in
  let core_op =
    Array.init machine.Realm.Machine.nodes (fun _ -> Array.make cores nil)
  in
  (* completion.(s).(c): completion time of the latest execution of color c
     of stmt s (with the producing timeline node); comp_max.(s): max over
     colors. *)
  let completion = Array.map (fun i -> Array.make i.space_size 0.) infos in
  let completion_id =
    Array.map (fun i -> Array.make i.space_size nil) infos
  in
  let comp_max = Array.make n_stmts 0. in
  let comp_max_id = Array.make n_stmts nil in
  let ctl = ref 0. in
  let ctl_pred = ref nil in
  let scalar_ready = ref 0. in
  let scalar_pred = ref nil in
  let tasks_run = ref 0 and bytes_moved = ref 0. in
  let per_elem_bytes = machine.Realm.Machine.bytes_per_element in
  let run_stmt s2 =
    let info = infos.(s2) in
    let task = Program.find_task prog info.launch.Types.task in
    let new_completions = Array.make info.space_size 0. in
    let new_ids = Array.make info.space_size nil in
    for c = 0 to info.space_size - 1 do
      (* The master serially pays launch + analysis per subtask: the O(N)
         control bottleneck. Each issue is a node on the master track, so
         the critical path can walk back through the serialized chain. *)
      let issue_start = !ctl in
      ctl :=
        !ctl
        +. machine.Realm.Machine.launch_overhead
        +. machine.Realm.Machine.analysis_overhead;
      let iss =
        Realm.Timeline.op tl ~cat:"ctl" ~name:"issue" ~track:ctl_track
          ~start:issue_start ~finish:!ctl ~pred:!ctl_pred ()
      in
      ctl_pred := iss;
      let cands = ref [ (!ctl, iss) ] in
      if info.has_scalar_args then
        cands := (!scalar_ready, !scalar_pred) :: !cands;
      let dst_node = node_of info c in
      (* Dependences on every statement's most recent execution. *)
      for s1 = 0 to n_stmts - 1 do
        match relations.(s1).(s2) with
        | Dep.No_dep -> ()
        | Dep.Same_color ->
            if c < Array.length completion.(s1) then
              cands := (completion.(s1).(c), completion_id.(s1).(c)) :: !cands
        | Dep.All_colors _ ->
            let idx = pair_index.(s1).(s2) in
            if c < Array.length idx then
              List.iter
                (fun (i, elems, is_data) ->
                  let t_prod = completion.(s1).(i) in
                  let t =
                    if is_data then begin
                      let src_node = node_of infos.(s1) i in
                      let bytes =
                        float_of_int elems *. scale.Scale.copy *. per_elem_bytes
                      in
                      if src_node <> dst_node then
                        bytes_moved := !bytes_moved +. bytes;
                      t_prod
                      +. Realm.Machine.transfer_time machine ~src_node
                           ~dst_node ~bytes
                    end
                    else t_prod
                  in
                  cands := (t, completion_id.(s1).(i)) :: !cands)
                idx.(c)
      done;
      let ready, pred = Realm.Timeline.binding !cands in
      let sizes =
        Array.of_list
          (List.map
             (fun (pname, proj) ->
               let p = Program.find_partition prog pname in
               let card = Region.cardinal (Partition.sub p (proj c)) in
               int_of_float (float_of_int card *. scale.Scale.compute))
             info.args)
      in
      let noise =
        Realm.Machine.jitter machine ~key:((c * 131) + !tasks_run)
      in
      let core, start, finish =
        Realm.Cores.execute_core pools.(dst_node) ~ready
          ~duration:(task.Task.cost sizes *. noise)
      in
      let pred = if start > ready then core_op.(dst_node).(core) else pred in
      let id =
        Realm.Timeline.op tl ~cat:"task"
          ~name:(Printf.sprintf "%s#%d" info.launch.Types.task c)
          ~args:[ ("color", Obs.Trace.Int c) ]
          ~track:(core_track dst_node core) ~start ~finish ~pred ()
      in
      core_op.(dst_node).(core) <- id;
      incr tasks_run;
      new_completions.(c) <- finish;
      new_ids.(c) <- id
    done;
    Array.blit new_completions 0 completion.(s2) 0 info.space_size;
    Array.blit new_ids 0 completion_id.(s2) 0 info.space_size;
    comp_max.(s2) <- 0.;
    comp_max_id.(s2) <- nil;
    Array.iteri
      (fun c t ->
        if t > comp_max.(s2) then begin
          comp_max.(s2) <- t;
          comp_max_id.(s2) <- new_ids.(c)
        end)
      new_completions;
    if info.is_reduce then begin
      (* The master folds the returned futures; dependent launches wait for
         the result but the control thread itself does not block. *)
      if comp_max.(s2) > !scalar_ready then begin
        scalar_ready := comp_max.(s2);
        scalar_pred := comp_max_id.(s2)
      end
    end
  in
  let mark () =
    Array.fold_left Float.max !ctl comp_max
  in
  let warmup = min 2 (steps - 1) in
  let warm_mark = ref 0. in
  Obs.Trace.with_span trace ~tid:0 ~cat:"sim" "sim_implicit.steps" (fun () ->
      for step = 1 to steps do
        for s = 0 to n_stmts - 1 do
          run_stmt s
        done;
        if step = warmup then warm_mark := mark ()
      done);
  let total = mark () in
  {
    per_step =
      (if steps > warmup then
         (total -. !warm_mark) /. float_of_int (steps - warmup)
       else total /. float_of_int steps);
    total;
    tasks_run = !tasks_run;
    bytes_moved = !bytes_moved;
    timeline = tl;
  }
