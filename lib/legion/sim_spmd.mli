(** Critical-path simulation of a control-replicated program on a machine
    model.

    One shard per node. Each shard's control thread issues its owned tasks
    and copies, paying launch and analysis overhead per operation but never
    blocking on their results (Legion's deferred execution model, §4.1);
    data dependencies, copy arrivals, write-after-read releases, global
    barriers and the scalar collective advance per-entity timestamps
    instead. Tasks occupy node cores; copies pay the network model.

    The simulated duration covers the first replicated block's time loop
    re-run for [steps] iterations (initialization and finalization sit
    outside the measured region, as in the paper's methodology). *)

type result = {
  per_step : float; (* seconds per timestep, steady state *)
  total : float;
  tasks_run : int;
  copies_run : int;
  bytes_moved : float;
  timeline : Realm.Timeline.t;
      (* every simulated op with its binding predecessor; the critical
         path's contributions sum to [total] *)
}

val track_names : shards:int -> cores:int -> (int * string) list
(** Thread names for {!Realm.Timeline.emit}: per-shard ctl/net/core
    tracks plus the global barrier and collective tracks. *)

val simulate :
  machine:Realm.Machine.t ->
  ?scale:Scale.t ->
  ?steps:int ->
  ?trace:Obs.Trace.t ->
  Spmd.Prog.t ->
  result
(** The block's shard count must equal [machine.nodes]. Raises
    [Invalid_argument] if the program has no replicated block. [trace]
    receives wall-clock spans for the simulator's own work (intersection
    precomputation, stepping); the simulated-time timeline is returned in
    the result for the caller to emit. *)
