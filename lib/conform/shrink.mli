(** Greedy spec minimisation for failing conformance cases.

    Candidate moves: drop a body statement, shorten the time loop, shrink
    an index space, reduce the launch-color count, simplify a partition
    (ghost/grid/coloring → block) or projection (rotation → identity),
    clear a structural flag — each followed by garbage collection of
    now-unreferenced tasks, partitions and regions. *)

val candidates : Spec.t -> Spec.t list
(** All one-step reductions of a spec (not necessarily smaller — the
    driver filters by {!Spec.size}). *)

val run : (Spec.t -> bool) -> Spec.t -> Spec.t
(** [run still_fails spec] descends first-accept: repeatedly move to the
    first strictly [Spec.size]-smaller candidate that [still_fails]
    accepts, until none is. [still_fails] must be total — return [false]
    on a candidate that crashes the build rather than raise — and should
    accept only candidates failing with the {e same kind} as the original
    (otherwise the shrinker chases unrelated bugs). Terminates because
    every accepted step strictly decreases {!Spec.size}. *)
