(** Differential conformance oracle.

    A spec runs once under the implicit shared-memory semantics
    ({!Interp.Run} — the reference control replication must preserve) and
    once per executor configuration: every scheduler crossed with both
    data planes, race sanitizer armed. Final root-region contents and
    scalars must be bitwise equal everywhere (the paper's equivalence
    claim, §3); the first divergence, race, deadlock, or crash is
    reported with its configuration. *)

type kind =
  | Mismatch  (** final state differs from the reference *)
  | Race  (** the sanitizer found unsynchronised conflicting accesses *)
  | Deadlock  (** every live shard blocked ({!Spmd.Exec.Deadlock}) *)
  | Crash  (** any other exception *)

type failure = { config : string; kind : kind; detail : string }

val kind_to_string : kind -> string
val kind_of_string : string -> kind
val pp_failure : Format.formatter -> failure -> unit

val stepper_scheds : (string * Spmd.Exec.sched) list
(** The two deterministic cooperative schedulers — mutation tests use
    these so a dropped sync op fails identically on every run. *)

val all_scheds : (string * Spmd.Exec.sched) list
(** [stepper_scheds] plus [`Domains]. *)

val check :
  ?shards:int ->
  ?mutate:int ->
  ?scheds:(string * Spmd.Exec.sched) list ->
  ?watchdog:float ->
  ?net:bool ->
  Spec.t ->
  failure option
(** [check spec] is [None] when every configuration reproduces the
    reference bitwise, and the first failure otherwise. Each
    configuration rebuilds the program from the spec (compilation and
    execution mutate derived state). [?mutate] drops the [k]-th sync op
    from each compiled program first — the harness's negative control.
    [?watchdog] (seconds) bounds [`Domains] stalls; defaults to [10.].
    [?net] (default [true]) appends the [net/loopback] column: the same
    program once more through the distributed backend's deterministic
    loopback driver ({!Net.Launch.run_loopback}, sanitizer armed), with
    the identical failure classification. *)
