(* The differential oracle: one spec, run once under the implicit
   shared-memory semantics (the reference) and once per executor
   configuration — every scheduler crossed with both data planes, race
   sanitizer armed — asserting bitwise-equal final region contents and
   scalars. Each configuration rebuilds the program from the spec: the
   compile pipeline and the executors mutate derived state (partition ids,
   physical instances), so sharing one build across runs would alias
   results. *)

type kind = Mismatch | Race | Deadlock | Crash

type failure = { config : string; kind : kind; detail : string }

let kind_to_string = function
  | Mismatch -> "mismatch"
  | Race -> "race"
  | Deadlock -> "deadlock"
  | Crash -> "crash"

let kind_of_string = function
  | "mismatch" -> Mismatch
  | "race" -> Race
  | "deadlock" -> Deadlock
  | "crash" -> Crash
  | s -> invalid_arg ("Oracle.kind_of_string: " ^ s)

let pp_failure ppf f =
  Format.fprintf ppf "%s under %s: %s" (kind_to_string f.kind) f.config
    f.detail

(* Final observable state, keyed by names only: field and region values
   are minted fresh on every [Gen.build], so identity does not transfer
   across builds but names do. Polymorphic [compare] handles NaN (equal to
   itself), unlike [=]. *)
type state =
  (string * float) list * (string * (string * (int * float) list) list) list

let snapshot ctx : state =
  let scalars = List.sort compare (Interp.Run.scalars ctx) in
  let regions =
    List.map
      (fun (name, inst) ->
        ( name,
          List.sort compare
            (List.map
               (fun f ->
                 (Regions.Field.name f, Regions.Physical.to_alist inst f))
               (Regions.Physical.fields inst)) ))
      (Interp.Run.root_instances ctx)
    |> List.sort compare
  in
  (scalars, regions)

(* First coordinate at which two states differ, for the failure report. *)
let first_diff (exp_s, exp_r) (got_s, got_r) =
  let scalar_diff =
    List.find_map
      (fun (k, v) ->
        match List.assoc_opt k got_s with
        | Some v' when compare v v' = 0 -> None
        | Some v' -> Some (Printf.sprintf "scalar %s: %.17g vs %.17g" k v v')
        | None -> Some (Printf.sprintf "scalar %s missing" k))
      exp_s
  in
  match scalar_diff with
  | Some d -> d
  | None -> (
      let region_diff =
        List.find_map
          (fun (rname, fields) ->
            match List.assoc_opt rname got_r with
            | None -> Some (Printf.sprintf "region %s missing" rname)
            | Some fields' ->
                List.find_map
                  (fun (fname, cells) ->
                    match List.assoc_opt fname fields' with
                    | None ->
                        Some
                          (Printf.sprintf "region %s field %s missing" rname
                             fname)
                    | Some cells' ->
                        List.find_map
                          (fun (id, v) ->
                            match List.assoc_opt id cells' with
                            | Some v' when compare v v' = 0 -> None
                            | Some v' ->
                                Some
                                  (Printf.sprintf
                                     "region %s.%s[%d]: %.17g vs %.17g" rname
                                     fname id v v')
                            | None ->
                                Some
                                  (Printf.sprintf "region %s.%s[%d] missing"
                                     rname fname id))
                          cells)
                  fields)
          exp_r
      in
      match region_diff with
      | Some d -> d
      | None -> "states differ (structure)")

let stepper_scheds = [ ("round_robin", `Round_robin); ("random", `Random 1) ]
let all_scheds = stepper_scheds @ [ ("domains", `Domains) ]
let planes = [ ("plans", `Plans); ("scalar", `Scalar) ]

(* Run the compiled program under one configuration and snapshot. *)
let run_config ~shards ~sched ~plane ~watchdog ?mutate spec =
  let prog = Gen.build spec in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
  (* The context comes from the *compiled* source: normalization registers
     derived projection partitions there. *)
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  let compiled, mutated =
    match mutate with
    | None -> (compiled, false)
    | Some k -> (
        match Mutate.drop_nth_sync compiled k with
        | Some (p, _) -> (p, true)
        | None -> (compiled, false))
  in
  Spmd.Exec.run ~sched ~data_plane:plane ~sanitize:true ~watchdog compiled
    ctx;
  (snapshot ctx, mutated)

(* The message-passing backend column: the same compiled program driven
   through [Net.Launch.run_loopback] — every shard a simulated rank,
   copies and credits as wire frames, collectives over the tree. Deadlock
   detection is exact under loopback (no queued frame and no engine can
   step), so no watchdog is needed. *)
let run_net_config ~shards ?mutate spec =
  let prog = Gen.build spec in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  let compiled, mutated =
    match mutate with
    | None -> (compiled, false)
    | Some k -> (
        match Mutate.drop_nth_sync compiled k with
        | Some (p, _) -> (p, true)
        | None -> (compiled, false))
  in
  Net.Launch.run_loopback ~sanitize:true compiled ctx;
  (snapshot ctx, mutated)

(* Differential check: [None] when every configuration matches the
   reference, the first failure otherwise. With [?mutate], the named sync
   op is dropped from each compiled program before execution — a passing
   result then means the harness failed its negative control.

   [scheds] defaults to all three schedulers; mutation tests that want
   deterministic failure modes can restrict to the stepper ones. [net]
   appends the [net/loopback] column: the same program once more through
   the distributed backend's deterministic loopback driver. *)
let check ?(shards = 3) ?mutate ?(scheds = all_scheds) ?(watchdog = 10.)
    ?(net = true) (spec : Spec.t) =
  let reference =
    try
      let prog = Gen.build spec in
      let ctx = Interp.Run.create prog in
      Interp.Run.run ctx;
      Ok (snapshot ctx)
    with e ->
      Error
        { config = "reference"; kind = Crash; detail = Printexc.to_string e }
  in
  match reference with
  | Error f -> Some f
  | Ok expected -> (
      let exec_failure =
        List.fold_left
          (fun acc (sname, sched) ->
          match acc with
          | Some _ -> acc
          | None ->
              List.fold_left
                (fun acc (pname, plane) ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      let config = sname ^ "/" ^ pname in
                      match
                        run_config ~shards ~sched ~plane ~watchdog ?mutate
                          spec
                      with
                      | got, _ when compare got expected = 0 -> None
                      | got, _ ->
                          Some
                            {
                              config;
                              kind = Mismatch;
                              detail = first_diff expected got;
                            }
                      | exception Spmd.Sanitizer.Race msg ->
                          Some { config; kind = Race; detail = msg }
                      | exception Spmd.Exec.Deadlock d ->
                          Some
                            {
                              config;
                              kind = Deadlock;
                              detail = d.Resilience.Diag.reason;
                            }
                      | exception e ->
                          Some
                            {
                              config;
                              kind = Crash;
                              detail = Printexc.to_string e;
                            }))
                acc planes)
          None scheds
      in
      match exec_failure with
      | Some _ -> exec_failure
      | None when not net -> None
      | None -> (
          let config = "net/loopback" in
          match run_net_config ~shards ?mutate spec with
          | got, _ when compare got expected = 0 -> None
          | got, _ ->
              Some { config; kind = Mismatch; detail = first_diff expected got }
          | exception Spmd.Sanitizer.Race msg ->
              Some { config; kind = Race; detail = msg }
          | exception Spmd.Exec.Deadlock d ->
              Some
                { config; kind = Deadlock; detail = d.Resilience.Diag.reason }
          | exception e ->
              Some { config; kind = Crash; detail = Printexc.to_string e }))
