(* Pure-data program specifications: the generator draws one of these from
   a seed, the builder elaborates it into an Ir.Program.t, the shrinker
   rewrites it, and repro files serialize it. No closures anywhere — that
   is the whole point. *)

type space_spec =
  | Dense of int
  | Sparse of { universe : int; period : int; keep : int }
  | Grid of { nx : int; ny : int }

type part_spec =
  | Pblock
  | Pgrid of { gx : int; gy : int }
  | Pcolor of { mul : int; add : int }
  | Pimage of { src : string; mul : int; add : int; width : int }
  | Phalo of { src : string }

type pdecl = { pname : string; preg : string; pspec : part_spec }

type task_kind =
  | KWriter of { wf : string; rf : string; mul : int; add : int; modn : int }
  | KStencil of { wf : string; rf : string }
  | KReduce of { op : Regions.Privilege.redop; df : string; sf : string }
  | KScalarRed of { op : Regions.Privilege.redop; rf : string }

type tdecl = { tname : string; kind : task_kind }
type proj_spec = PId | PRot of int

type stmt_spec =
  | SForall of {
      task : string;
      out : string;
      inp : string;
      inp_proj : proj_spec;
    }
  | SReduceRegion of {
      task : string;
      dst : string;
      src : string;
      src_proj : proj_spec;
    }
  | SScalarRed of { task : string; arg : string; arg_proj : proj_spec }
  | SAssign of { mulc : float; addc : float }

type t = {
  name : string;
  nt : int;
  steps : int;
  regions : (string * space_spec) list;
  parts : pdecl list;
  tasks : tdecl list;
  body : stmt_spec list;
  seq_if : bool;
  loop_if : bool;
  tail_assign : bool;
}

let space_size = function
  | Dense n -> n
  | Sparse { universe; _ } -> universe
  | Grid { nx; ny } -> nx * ny

let size s =
  s.nt + s.steps
  + List.fold_left (fun a (_, sp) -> a + 1 + space_size sp) 0 s.regions
  + List.fold_left
      (fun a (p : pdecl) ->
        a + match p.pspec with Pblock -> 1 | _ -> 2)
      0 s.parts
  + List.length s.tasks
  + List.fold_left
      (fun a st ->
        a
        + 2
        +
        match st with
        | SForall { inp_proj = PRot _; _ }
        | SReduceRegion { src_proj = PRot _; _ }
        | SScalarRed { arg_proj = PRot _; _ } ->
            1
        | _ -> 0)
      0 s.body
  + (if s.seq_if then 1 else 0)
  + (if s.loop_if then 1 else 0)
  + if s.tail_assign then 1 else 0

let task_count s =
  List.length
    (List.filter (function SAssign _ -> false | _ -> true) s.body)

let equal a b = a = b

(* ---------- JSON ---------- *)

module J = Obs.Json

let redop_to_string = function
  | Regions.Privilege.Sum -> "sum"
  | Prod -> "prod"
  | Min -> "min"
  | Max -> "max"

let redop_of_string = function
  | "sum" -> Regions.Privilege.Sum
  | "prod" -> Regions.Privilege.Prod
  | "min" -> Regions.Privilege.Min
  | "max" -> Regions.Privilege.Max
  | s -> invalid_arg ("Spec.redop_of_string: " ^ s)

let space_to_json = function
  | Dense n -> J.Obj [ ("kind", J.Str "dense"); ("n", J.Int n) ]
  | Sparse { universe; period; keep } ->
      J.Obj
        [
          ("kind", J.Str "sparse");
          ("universe", J.Int universe);
          ("period", J.Int period);
          ("keep", J.Int keep);
        ]
  | Grid { nx; ny } ->
      J.Obj [ ("kind", J.Str "grid"); ("nx", J.Int nx); ("ny", J.Int ny) ]

let part_to_json (p : pdecl) =
  let spec =
    match p.pspec with
    | Pblock -> [ ("kind", J.Str "block") ]
    | Pgrid { gx; gy } ->
        [ ("kind", J.Str "grid"); ("gx", J.Int gx); ("gy", J.Int gy) ]
    | Pcolor { mul; add } ->
        [ ("kind", J.Str "color"); ("mul", J.Int mul); ("add", J.Int add) ]
    | Pimage { src; mul; add; width } ->
        [
          ("kind", J.Str "image");
          ("src", J.Str src);
          ("mul", J.Int mul);
          ("add", J.Int add);
          ("width", J.Int width);
        ]
    | Phalo { src } -> [ ("kind", J.Str "halo"); ("src", J.Str src) ]
  in
  J.Obj ([ ("name", J.Str p.pname); ("region", J.Str p.preg) ] @ spec)

let task_to_json (td : tdecl) =
  let kind =
    match td.kind with
    | KWriter { wf; rf; mul; add; modn } ->
        [
          ("kind", J.Str "writer");
          ("wf", J.Str wf);
          ("rf", J.Str rf);
          ("mul", J.Int mul);
          ("add", J.Int add);
          ("modn", J.Int modn);
        ]
    | KStencil { wf; rf } ->
        [ ("kind", J.Str "stencil"); ("wf", J.Str wf); ("rf", J.Str rf) ]
    | KReduce { op; df; sf } ->
        [
          ("kind", J.Str "reduce");
          ("op", J.Str (redop_to_string op));
          ("df", J.Str df);
          ("sf", J.Str sf);
        ]
    | KScalarRed { op; rf } ->
        [
          ("kind", J.Str "scalar_red");
          ("op", J.Str (redop_to_string op));
          ("rf", J.Str rf);
        ]
  in
  J.Obj (("name", J.Str td.tname) :: kind)

let proj_to_json = function PId -> J.Int 0 | PRot k -> J.Int k

let stmt_to_json = function
  | SForall { task; out; inp; inp_proj } ->
      J.Obj
        [
          ("kind", J.Str "forall");
          ("task", J.Str task);
          ("out", J.Str out);
          ("inp", J.Str inp);
          ("inp_proj", proj_to_json inp_proj);
        ]
  | SReduceRegion { task; dst; src; src_proj } ->
      J.Obj
        [
          ("kind", J.Str "reduce_region");
          ("task", J.Str task);
          ("dst", J.Str dst);
          ("src", J.Str src);
          ("src_proj", proj_to_json src_proj);
        ]
  | SScalarRed { task; arg; arg_proj } ->
      J.Obj
        [
          ("kind", J.Str "scalar_red");
          ("task", J.Str task);
          ("arg", J.Str arg);
          ("arg_proj", proj_to_json arg_proj);
        ]
  | SAssign { mulc; addc } ->
      J.Obj
        [
          ("kind", J.Str "assign");
          ("mulc", J.Float mulc);
          ("addc", J.Float addc);
        ]

let to_json s =
  J.Obj
    [
      ("name", J.Str s.name);
      ("nt", J.Int s.nt);
      ("steps", J.Int s.steps);
      ( "regions",
        J.List
          (List.map
             (fun (rn, sp) ->
               J.Obj [ ("name", J.Str rn); ("space", space_to_json sp) ])
             s.regions) );
      ("parts", J.List (List.map part_to_json s.parts));
      ("tasks", J.List (List.map task_to_json s.tasks));
      ("body", J.List (List.map stmt_to_json s.body));
      ("seq_if", J.Bool s.seq_if);
      ("loop_if", J.Bool s.loop_if);
      ("tail_assign", J.Bool s.tail_assign);
    ]

(* -- decoding -- *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let str_field name j =
  match J.member name j with
  | Some (J.Str s) -> s
  | _ -> fail "Spec.of_json: missing string field %S" name

let int_field name j =
  match J.member name j with
  | Some (J.Int n) -> n
  | Some (J.Float f) -> int_of_float f
  | _ -> fail "Spec.of_json: missing int field %S" name

let float_field name j =
  match Option.bind (J.member name j) J.number with
  | Some f -> f
  | None -> fail "Spec.of_json: missing number field %S" name

let bool_field name j =
  match J.member name j with
  | Some (J.Bool b) -> b
  | _ -> fail "Spec.of_json: missing bool field %S" name

let list_field name j =
  match Option.bind (J.member name j) J.to_list with
  | Some l -> l
  | None -> fail "Spec.of_json: missing list field %S" name

let space_of_json j =
  match str_field "kind" j with
  | "dense" -> Dense (int_field "n" j)
  | "sparse" ->
      Sparse
        {
          universe = int_field "universe" j;
          period = int_field "period" j;
          keep = int_field "keep" j;
        }
  | "grid" -> Grid { nx = int_field "nx" j; ny = int_field "ny" j }
  | k -> fail "Spec.of_json: unknown space kind %S" k

let part_of_json j =
  let pspec =
    match str_field "kind" j with
    | "block" -> Pblock
    | "grid" -> Pgrid { gx = int_field "gx" j; gy = int_field "gy" j }
    | "color" -> Pcolor { mul = int_field "mul" j; add = int_field "add" j }
    | "image" ->
        Pimage
          {
            src = str_field "src" j;
            mul = int_field "mul" j;
            add = int_field "add" j;
            width = int_field "width" j;
          }
    | "halo" -> Phalo { src = str_field "src" j }
    | k -> fail "Spec.of_json: unknown partition kind %S" k
  in
  { pname = str_field "name" j; preg = str_field "region" j; pspec }

let task_of_json j =
  let kind =
    match str_field "kind" j with
    | "writer" ->
        KWriter
          {
            wf = str_field "wf" j;
            rf = str_field "rf" j;
            mul = int_field "mul" j;
            add = int_field "add" j;
            modn = int_field "modn" j;
          }
    | "stencil" -> KStencil { wf = str_field "wf" j; rf = str_field "rf" j }
    | "reduce" ->
        KReduce
          {
            op = redop_of_string (str_field "op" j);
            df = str_field "df" j;
            sf = str_field "sf" j;
          }
    | "scalar_red" ->
        KScalarRed
          { op = redop_of_string (str_field "op" j); rf = str_field "rf" j }
    | k -> fail "Spec.of_json: unknown task kind %S" k
  in
  { tname = str_field "name" j; kind }

let proj_of_json name j =
  match int_field name j with 0 -> PId | k -> PRot k

let stmt_of_json j =
  match str_field "kind" j with
  | "forall" ->
      SForall
        {
          task = str_field "task" j;
          out = str_field "out" j;
          inp = str_field "inp" j;
          inp_proj = proj_of_json "inp_proj" j;
        }
  | "reduce_region" ->
      SReduceRegion
        {
          task = str_field "task" j;
          dst = str_field "dst" j;
          src = str_field "src" j;
          src_proj = proj_of_json "src_proj" j;
        }
  | "scalar_red" ->
      SScalarRed
        {
          task = str_field "task" j;
          arg = str_field "arg" j;
          arg_proj = proj_of_json "arg_proj" j;
        }
  | "assign" ->
      SAssign { mulc = float_field "mulc" j; addc = float_field "addc" j }
  | k -> fail "Spec.of_json: unknown statement kind %S" k

let of_json j =
  {
    name = str_field "name" j;
    nt = int_field "nt" j;
    steps = int_field "steps" j;
    regions =
      List.map
        (fun rj ->
          ( str_field "name" rj,
            match J.member "space" rj with
            | Some sj -> space_of_json sj
            | None -> fail "Spec.of_json: region without space" ))
        (list_field "regions" j);
    parts = List.map part_of_json (list_field "parts" j);
    tasks = List.map task_of_json (list_field "tasks" j);
    body = List.map stmt_of_json (list_field "body" j);
    seq_if = bool_field "seq_if" j;
    loop_if = bool_field "loop_if" j;
    tail_assign = bool_field "tail_assign" j;
  }
