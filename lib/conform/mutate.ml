(* Seeded sync-op deletion: the negative control for the conformance
   harness. Dropping one Await/Release/Barrier from a compiled program
   must be *caught* — by the race sanitizer, a value mismatch against the
   interpreter, or a deadlock — or the oracle is vacuous. *)

let is_sync = function
  | Spmd.Prog.Await _ | Spmd.Prog.Release _ | Spmd.Prog.Barrier -> true
  | _ -> false

let rec count_instrs instrs =
  List.fold_left
    (fun n instr ->
      match instr with
      | Spmd.Prog.For_time { body; _ } -> n + count_instrs body
      | i -> if is_sync i then n + 1 else n)
    0 instrs

let sync_count (p : Spmd.Prog.t) =
  List.fold_left
    (fun n item ->
      match item with
      | Spmd.Prog.Seq _ -> n
      | Spmd.Prog.Replicated b -> n + count_instrs b.Spmd.Prog.body)
    0 p.Spmd.Prog.items

(* Remove the [n]-th sync op (in program order over replicated bodies,
   descending into time loops). Returns the mutated program and a
   description of what was dropped; [None] when the program has no sync
   ops at all. [n] is taken modulo the sync-op count, so any seed value
   names a valid mutation. *)
let drop_nth_sync (p : Spmd.Prog.t) n =
  let total = sync_count p in
  if total = 0 then None
  else begin
    let target = ((n mod total) + total) mod total in
    let seen = ref 0 in
    let dropped = ref None in
    let rec go instrs =
      List.filter_map
        (fun instr ->
          match instr with
          | Spmd.Prog.For_time { var; count; body } ->
              Some (Spmd.Prog.For_time { var; count; body = go body })
          | i when is_sync i ->
              let k = !seen in
              incr seen;
              if k = target then begin
                dropped :=
                  Some (Format.asprintf "%a" Spmd.Prog.pp_instr i);
                None
              end
              else Some i
          | i -> Some i)
        instrs
    in
    let items =
      List.map
        (function
          | Spmd.Prog.Seq _ as s -> s
          | Spmd.Prog.Replicated b ->
              Spmd.Prog.Replicated { b with Spmd.Prog.body = go b.Spmd.Prog.body })
        p.Spmd.Prog.items
    in
    match !dropped with
    | Some desc -> Some ({ p with Spmd.Prog.items }, desc)
    | None -> None
  end
