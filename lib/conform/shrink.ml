(* Greedy spec minimisation. Candidates are hand-rolled structural
   reductions (drop a statement, shorten the time loop, shrink an index
   space, simplify a partition or projection, clear a flag, then garbage-
   collect unreferenced declarations); the caller's predicate decides
   whether a candidate still fails *the same way*. First-accept descent to
   a fixpoint: every accepted candidate strictly decreases [Spec.size], so
   termination is by well-founded measure, and the result is 1-minimal
   with respect to the candidate moves. *)

open Spec

(* Partitions referenced by the body, transitively through image/halo
   sources. *)
let used_parts (s : t) =
  let direct =
    List.concat_map
      (function
        | SForall { out; inp; _ } -> [ out; inp ]
        | SReduceRegion { dst; src; _ } -> [ dst; src ]
        | SScalarRed { arg; _ } -> [ arg ]
        | SAssign _ -> [])
      s.body
  in
  let tbl = Hashtbl.create 16 in
  let rec add name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.add tbl name ();
      match List.find_opt (fun p -> p.pname = name) s.parts with
      | Some { pspec = Pimage { src; _ }; _ } | Some { pspec = Phalo { src }; _ }
        ->
          add src
      | _ -> ()
    end
  in
  List.iter add direct;
  tbl

(* Drop declarations nothing references (tasks, partitions, regions). *)
let gc (s : t) =
  let tasks_used =
    List.filter_map
      (function
        | SForall { task; _ } | SReduceRegion { task; _ }
        | SScalarRed { task; _ } ->
            Some task
        | SAssign _ -> None)
      s.body
  in
  let tasks = List.filter (fun td -> List.mem td.tname tasks_used) s.tasks in
  let parts_used = used_parts s in
  let parts = List.filter (fun p -> Hashtbl.mem parts_used p.pname) s.parts in
  let regions_used =
    List.fold_left
      (fun acc p -> if List.mem p.preg acc then acc else p.preg :: acc)
      [] parts
  in
  let regions =
    List.filter (fun (rname, _) -> List.mem rname regions_used) s.regions
  in
  { s with tasks; parts; regions }

let shrink_space = function
  | Dense n when n > 4 -> Some (Dense (max 4 (n / 2)))
  | Dense _ -> None
  | Sparse { universe; _ } -> Some (Dense (max 4 (universe / 2)))
  | Grid { nx; ny } when nx > 3 || ny > 3 ->
      Some (Grid { nx = max 3 (nx / 2); ny = max 3 (ny / 2) })
  | Grid _ -> None

(* All one-step reductions of [s], already garbage-collected. *)
let candidates (s : t) : t list =
  let acc = ref [] in
  let push c = acc := gc c :: !acc in
  (* Drop one body statement (keep at least one). *)
  if List.length s.body > 1 then
    List.iteri
      (fun i _ -> push { s with body = List.filteri (fun j _ -> j <> i) s.body })
      s.body;
  (* Shorten the time loop. *)
  if s.steps > 1 then begin
    push { s with steps = 1 };
    push { s with steps = s.steps - 1 }
  end;
  (* Fewer launch colors. Grid-shaped partitions tile exactly [nt] pieces,
     so they degrade to colorings when the count changes. *)
  if s.nt > 2 then begin
    let parts =
      List.map
        (fun p ->
          match p.pspec with
          | Pgrid _ -> { p with pspec = Pcolor { mul = 1; add = 0 } }
          | _ -> p)
        s.parts
    in
    push { s with nt = s.nt - 1; parts }
  end;
  (* Shrink one region's index space. *)
  List.iteri
    (fun i (rname, sp) ->
      match shrink_space sp with
      | None -> ()
      | Some sp' ->
          push
            {
              s with
              regions =
                List.mapi
                  (fun j r -> if j = i then (rname, sp') else r)
                  s.regions;
            })
    s.regions;
  (* Simplify one partition: ghosts and grids become plain blocks,
     colorings lose their offset. *)
  List.iteri
    (fun i p ->
      let simpler =
        match p.pspec with
        | Pblock -> None
        | Pgrid _ | Pcolor _ | Pimage _ | Phalo _ -> Some Pblock
      in
      match simpler with
      | None -> ()
      | Some pspec ->
          push
            {
              s with
              parts =
                List.mapi
                  (fun j q -> if j = i then { p with pspec } else q)
                  s.parts;
            })
    s.parts;
  (* Identity projections. *)
  List.iteri
    (fun i stmt ->
      let simpler =
        match stmt with
        | SForall ({ inp_proj = PRot _; _ } as f) ->
            Some (SForall { f with inp_proj = PId })
        | SReduceRegion ({ src_proj = PRot _; _ } as r) ->
            Some (SReduceRegion { r with src_proj = PId })
        | SScalarRed ({ arg_proj = PRot _; _ } as r) ->
            Some (SScalarRed { r with arg_proj = PId })
        | _ -> None
      in
      match simpler with
      | None -> ()
      | Some stmt' ->
          push
            { s with body = List.mapi (fun j x -> if j = i then stmt' else x) s.body })
    s.body;
  (* Clear structural flags. *)
  if s.seq_if then push { s with seq_if = false };
  if s.loop_if then push { s with loop_if = false };
  if s.tail_assign then push { s with tail_assign = false };
  List.rev !acc

(* Greedy first-accept descent: take the first strictly smaller candidate
   the predicate accepts, repeat from it, stop when none is accepted. The
   predicate must be total (return [false] rather than raise). *)
let run (still_fails : t -> bool) (s0 : t) =
  let rec fix s =
    let smaller = List.filter (fun c -> size c < size s) (candidates s) in
    match List.find_opt still_fails smaller with
    | Some c -> fix c
    | None -> s
  in
  fix s0
