(** Fuzzing campaign driver for the conformance harness.

    Cases are generated seed-deterministically ([seed + i] for case [i],
    shard count cycling 2–4), checked with the differential oracle
    (sanitizer armed, all schedulers × both data planes), and on the
    first failure shrunk to a minimal spec written as a replayable repro
    file. *)

type report = {
  tested : int;  (** cases that ran before stopping *)
  repro : (Repro.t * string) option;
      (** the saved minimal repro and its path, when a case failed *)
}

val shards_of_case : int -> int
(** Shard count of case [i]: cycles 2, 3, 4. *)

val campaign :
  ?out:string ->
  ?max_tasks:int ->
  ?mutate:int ->
  ?shards:int ->
  ?net:bool ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run [count] cases starting at [seed]; stop at the first failure,
    shrink it against the failing configuration and save the repro to
    [out] (default ["fuzz-repro.json"]). [?mutate] arms the negative
    control: every compiled case has its [k]-th sync op dropped, so a
    completed campaign means the oracle missed the bug. [?net] (default
    [true]) controls the [net/loopback] backend column. *)

val replay : string -> Oracle.failure option
(** Re-run a saved repro file; [None] means it no longer fails. *)
