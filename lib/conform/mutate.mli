(** Seeded sync-op deletion over compiled SPMD programs — the negative
    control proving the oracle can actually catch synchronisation bugs:
    a program with one Await/Release/Barrier removed must fail the
    differential check (race, mismatch, or deadlock). *)

val sync_count : Spmd.Prog.t -> int
(** Number of sync ops (Await, Release, Barrier) in the program's
    replicated bodies, descending into time loops. *)

val drop_nth_sync : Spmd.Prog.t -> int -> (Spmd.Prog.t * string) option
(** [drop_nth_sync p n] removes the [n mod sync_count p]-th sync op in
    program order and returns the mutated program with a description of
    the dropped instruction; [None] when the program has no sync ops. *)
