(* The fuzzing campaign: seed-deterministic case generation, the
   differential oracle on every case, and on failure a greedy shrink to a
   minimal spec saved as a replayable repro file. *)

type report = {
  tested : int; (* cases that ran before stopping *)
  repro : (Repro.t * string) option; (* saved minimal repro, its path *)
}

let shards_of_case i = 2 + (i mod 3)

let sched_of_config config =
  match String.index_opt config '/' with
  | None -> None
  | Some k ->
      let sname = String.sub config 0 k in
      List.find_opt (fun (n, _) -> n = sname) Oracle.all_scheds

(* Shrink against the configuration that failed, with a short watchdog:
   deadlock-kind failures re-run on every candidate, and the sanitizer
   catches dropped syncs long before a 60 s stall would. A [net/loopback]
   failure shrinks on the loopback backend alone (no executor configs);
   any other config shrinks with the net column off. *)
let shrink_failure ~shards ~mutate (f : Oracle.failure) spec =
  let scheds, net =
    if f.Oracle.config = "net/loopback" then ([], true)
    else
      ( (match sched_of_config f.Oracle.config with
        | Some s -> [ s ]
        | None -> Oracle.stepper_scheds),
        false )
  in
  let still_fails candidate =
    match Oracle.check ~shards ?mutate ~scheds ~watchdog:2. ~net candidate with
    | Some f' -> f'.Oracle.kind = f.Oracle.kind
    | None -> false
    | exception _ -> false
  in
  let shrunk = Shrink.run still_fails spec in
  let failure =
    match Oracle.check ~shards ?mutate ~scheds ~watchdog:2. ~net shrunk with
    | Some f' -> f'
    | None | (exception _) -> f
  in
  (shrunk, failure)

(* Run [count] cases from [seed]; stop at the first failure, shrink it and
   save the repro to [out]. [log] receives one line per event. *)
let campaign ?(out = "fuzz-repro.json") ?max_tasks ?mutate ?shards ?net
    ?(log = fun _ -> ()) ~seed ~count () =
  let rec go i =
    if i >= count then { tested = count; repro = None }
    else begin
      let case_seed = seed + i in
      let nshards =
        match shards with Some s -> s | None -> shards_of_case i
      in
      let spec = Gen.spec ?max_tasks case_seed in
      match Oracle.check ~shards:nshards ?mutate ?net spec with
      | None ->
          if (i + 1) mod 25 = 0 then
            log (Printf.sprintf "%d/%d cases passed" (i + 1) count);
          go (i + 1)
      | Some f ->
          log
            (Printf.sprintf "case %d (seed %d, %d shards) failed: %s"
               i case_seed nshards
               (Format.asprintf "%a" Oracle.pp_failure f));
          log
            (Printf.sprintf "shrinking (initial size %d)..."
               (Spec.size spec));
          let shrunk, failure = shrink_failure ~shards:nshards ~mutate f spec in
          log
            (Printf.sprintf "shrunk to size %d (%d tasks)" (Spec.size shrunk)
               (Spec.task_count shrunk));
          let r =
            {
              Repro.seed = Some case_seed;
              shards = nshards;
              mutate;
              failure;
              spec = shrunk;
            }
          in
          Repro.save out r;
          log (Printf.sprintf "repro written to %s" out);
          { tested = i + 1; repro = Some (r, out) }
    end
  in
  go 0

(* Re-run a saved repro; [None] means it no longer fails. *)
let replay path =
  let r = Repro.load path in
  Oracle.check ~shards:r.Repro.shards ?mutate:r.Repro.mutate r.Repro.spec
