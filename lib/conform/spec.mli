(** Pure-data specifications of conformance programs.

    A [Spec.t] is a first-order description of one randomly generated
    implicit-parallel program: regions and their index-space shapes,
    partitions (block / grid / coloring / aliased image and halo ghosts),
    tasks (element-wise writers, stencils, region reductions, scalar
    reductions) and the time-loop body. {!Gen.build} elaborates a spec
    into an {!Ir.Program.t}; because a spec contains no closures it
    round-trips through JSON, which is what makes fuzzing repro files
    replayable and the shrinker a pure spec-to-spec transformation. *)

type space_spec =
  | Dense of int  (** unstructured [{0..n-1}] *)
  | Sparse of { universe : int; period : int; keep : int }
      (** unstructured subset: ids [e] with [e mod period < keep] *)
  | Grid of { nx : int; ny : int }  (** structured [nx x ny] rectangle *)

type part_spec =
  | Pblock  (** contiguous block partition, [nt] pieces, disjoint *)
  | Pgrid of { gx : int; gy : int }
      (** structured tiling, [gx * gy = nt] colors, disjoint *)
  | Pcolor of { mul : int; add : int }
      (** coloring [e -> (e * mul + add) mod nt], disjoint, non-contiguous *)
  | Pimage of { src : string; mul : int; add : int; width : int }
      (** aliased ghost: image of partition [src] under
          [e -> {(e * mul + add + k) mod universe | k < width}] *)
  | Phalo of { src : string }
      (** structured aliased ghost: each rect of [src] expanded by one in
          every direction, clipped to the universe *)

type pdecl = { pname : string; preg : string; pspec : part_spec }

type task_kind =
  | KWriter of { wf : string; rf : string; mul : int; add : int; modn : int }
      (** writes [wf] of arg 0, reads [rf] of arg 1 at
          [(id * mul + add) mod modn], guarded by membership *)
  | KStencil of { wf : string; rf : string }
      (** writes [wf] of arg 0 from [rf] of arg 1 at [id - 1, id, id + 1] *)
  | KReduce of { op : Regions.Privilege.redop; df : string; sf : string }
      (** reduces into [df] of arg 0 a fold over [sf] of arg 1 *)
  | KScalarRed of { op : Regions.Privilege.redop; rf : string }
      (** returns a fold of [rf] over arg 0 (for [forall_reduce]) *)

type tdecl = { tname : string; kind : task_kind }

type proj_spec = PId | PRot of int  (** [i -> (i + k) mod nt] *)

type stmt_spec =
  | SForall of {
      task : string;
      out : string;  (** disjoint write partition, identity projection *)
      inp : string;
      inp_proj : proj_spec;
    }
  | SReduceRegion of {
      task : string;
      dst : string;  (** possibly-aliased reduce target, identity proj *)
      src : string;
      src_proj : proj_spec;
    }
  | SScalarRed of { task : string; arg : string; arg_proj : proj_spec }
      (** folds into scalar [dt] with the task's operator *)
  | SAssign of { mulc : float; addc : float }  (** [dt = dt * mulc + addc] *)

type t = {
  name : string;
  nt : int;  (** launch-space size = partition color count *)
  steps : int;  (** time-loop trip count *)
  regions : (string * space_spec) list;
  parts : pdecl list;
  tasks : tdecl list;
  body : stmt_spec list;  (** the time-loop body *)
  seq_if : bool;  (** scalar [If] before the loop (sequential prologue) *)
  loop_if : bool;
      (** wrap the last loop statement in an [If] — makes the loop
          ineligible for replication, exercising the sequential fallback *)
  tail_assign : bool;  (** scalar assign after the loop *)
}

val space_size : space_spec -> int
(** Universe size: elements for [Dense], [universe] for [Sparse],
    [nx * ny] for [Grid]. *)

val size : t -> int
(** Monotonic size measure: every shrinking transformation strictly
    decreases it, so greedy minimization terminates. *)

val task_count : t -> int
(** Number of task-launching statements in the loop body (the measure the
    acceptance criterion bounds after shrinking). *)

val equal : t -> t -> bool

val redop_to_string : Regions.Privilege.redop -> string
val redop_of_string : string -> Regions.Privilege.redop

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> t
(** Raises [Invalid_argument] on malformed input. [of_json (to_json s)]
    is structurally equal to [s]. *)
