(* Spec generation and elaboration.

   The generator only ever emits programs inside the replicable fragment
   (modulo the deliberate [loop_if] escape hatch): every partition has
   exactly [nt] colors, writes and region-reduction targets use identity
   projections, write targets are disjoint partitions, and the two region
   arguments of any one launch touch different fields — with two fields
   per region that is enough to rule out intra-launch conflicts without
   consulting the alias analysis. Kernels bound every intermediate value
   (contractive writers, decaying scalar updates, at most three time
   steps), so no run ever produces an infinity or a NaN and bitwise
   comparison of final state is meaningful. *)

open Geometry
open Regions
open Ir
module Syn = Program.Syntax

let fv = Field.make "v"
let fw = Field.make "w"
let field_of = function "w" -> fw | _ -> fv
let other_field = function "w" -> "v" | _ -> "w"

(* ---------- spec generation ---------- *)

let spec ?(max_tasks = 8) seed =
  let st = Random.State.make [| 0xC04F02; seed |] in
  let int n = Random.State.int st n in
  let nt = 2 + int 3 in
  let steps = 1 + int 3 in
  let nregions = 1 + int 2 in
  let mk_space () =
    match int 3 with
    | 0 -> Spec.Dense (8 + int 17)
    | 1 ->
        let period = 2 + int 4 in
        let keep = 1 + int (period - 1) in
        Spec.Sparse { universe = 20 + int 29; period; keep }
    | _ -> Spec.Grid { nx = 3 + int 4; ny = 3 + int 4 }
  and names = [ "Ra"; "Rb" ] in
  let regions =
    List.map (fun rn -> (rn, mk_space ())) (List.filteri (fun i _ -> i < nregions) names)
  in
  let uni_of rn = Spec.space_size (List.assoc rn regions) in
  let structured rn =
    match List.assoc rn regions with Spec.Grid _ -> true | _ -> false
  in
  (* Base (disjoint) partitions: one block per region, plus sometimes a
     grid tiling or a modular coloring. *)
  let base = ref [] in
  List.iter
    (fun (rn, sp) ->
      base := { Spec.pname = "Pb" ^ rn; preg = rn; pspec = Spec.Pblock } :: !base;
      if int 2 = 0 then begin
        let extra =
          if structured rn then begin
            let nx, ny =
              match sp with Spec.Grid { nx; ny } -> (nx, ny) | _ -> assert false
            in
            let grids =
              List.filter
                (fun (gx, gy) -> gx * gy = nt && gx <= nx && gy <= ny)
                [ (1, nt); (nt, 1); (2, 2) ]
            in
            match grids with
            | [] -> Spec.Pcolor { mul = 1 + int 6; add = int nt }
            | gs ->
                let gx, gy = List.nth gs (int (List.length gs)) in
                Spec.Pgrid { gx; gy }
          end
          else Spec.Pcolor { mul = 1 + int 6; add = int nt }
        in
        base := { Spec.pname = "Pc" ^ rn; preg = rn; pspec = extra } :: !base
      end)
    regions;
  let base = List.rev !base in
  let pick l = List.nth l (int (List.length l)) in
  (* Ghost (aliased) partitions: images / halos over the base partitions. *)
  let ghosts =
    List.concat_map
      (fun (rn, _) ->
        if int 4 = 0 then []
        else if structured rn then
          let srcs =
            List.filter (fun (p : Spec.pdecl) -> p.preg = rn) base
          in
          [ { Spec.pname = "Q" ^ rn; preg = rn;
              pspec = Spec.Phalo { src = (pick srcs).Spec.pname } } ]
        else
          let uni = uni_of rn in
          [ { Spec.pname = "Q" ^ rn; preg = rn;
              pspec =
                Spec.Pimage
                  { src = (pick base).Spec.pname;
                    mul = 1 + int (uni - 1);
                    add = int uni;
                    width = 1 + int 2 } } ])
      regions
  in
  let parts = base @ ghosts in
  let disjoint_parts =
    List.filter
      (fun (p : Spec.pdecl) ->
        match p.pspec with
        | Spec.Pblock | Spec.Pgrid _ | Spec.Pcolor _ -> true
        | _ -> false)
      parts
  in
  let region_of pn =
    (List.find (fun (p : Spec.pdecl) -> p.pname = pn) parts).Spec.preg
  in
  let pick_proj () =
    if nt > 1 && int 3 = 0 then Spec.PRot (1 + int (nt - 1)) else Spec.PId
  in
  let pick_field () = if int 2 = 0 then "v" else "w" in
  let nstmts = 2 + int 3 in
  let tasks = ref [] in
  let stmts =
    List.init nstmts (fun k ->
        let tname = Printf.sprintf "t%d" k in
        match int 6 with
        | 0 | 1 ->
            let out = (pick disjoint_parts).Spec.pname in
            let inp = (pick parts).Spec.pname in
            let wf = pick_field () in
            tasks :=
              { Spec.tname;
                kind =
                  Spec.KWriter
                    { wf; rf = other_field wf; mul = 1 + int 7; add = int 11;
                      modn = uni_of (region_of inp) } }
              :: !tasks;
            Spec.SForall { task = tname; out; inp; inp_proj = pick_proj () }
        | 2 ->
            let out = (pick disjoint_parts).Spec.pname in
            let inp = (pick parts).Spec.pname in
            let wf = pick_field () in
            tasks :=
              { Spec.tname; kind = Spec.KStencil { wf; rf = other_field wf } }
              :: !tasks;
            Spec.SForall { task = tname; out; inp; inp_proj = pick_proj () }
        | 3 ->
            let dst = (pick parts).Spec.pname in
            let src = (pick parts).Spec.pname in
            let df = pick_field () in
            let op =
              match int 3 with
              | 0 -> Privilege.Sum
              | 1 -> Privilege.Min
              | _ -> Privilege.Max
            in
            tasks :=
              { Spec.tname;
                kind = Spec.KReduce { op; df; sf = other_field df } }
              :: !tasks;
            Spec.SReduceRegion
              { task = tname; dst; src; src_proj = pick_proj () }
        | 4 ->
            let arg = (pick parts).Spec.pname in
            let op =
              match int 3 with
              | 0 -> Privilege.Min
              | 1 -> Privilege.Max
              | _ -> Privilege.Sum
            in
            tasks :=
              { Spec.tname; kind = Spec.KScalarRed { op; rf = pick_field () } }
              :: !tasks;
            Spec.SScalarRed { task = tname; arg; arg_proj = pick_proj () }
        | _ ->
            (* Literal tables, not arithmetic: every value here has a short
               decimal form, so specs survive the repro file's %.12g. *)
            let mulcs = [| 0.5; 0.55; 0.6; 0.65; 0.7; 0.75; 0.8; 0.85 |] in
            let addcs = [| 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.07 |] in
            Spec.SAssign
              { mulc = mulcs.(int (Array.length mulcs));
                addc = addcs.(int (Array.length addcs)) })
  in
  (* Cap the number of task launches, turning the excess into assigns. *)
  let launches = ref 0 in
  let body =
    List.map
      (fun s ->
        match s with
        | Spec.SAssign _ -> s
        | _ ->
            incr launches;
            if !launches <= max_tasks then s
            else Spec.SAssign { mulc = 0.9; addc = 0.01 })
      stmts
  in
  let used t = List.exists (fun (s : Spec.stmt_spec) ->
      match s with
      | Spec.SForall { task; _ } | Spec.SReduceRegion { task; _ }
      | Spec.SScalarRed { task; _ } -> task = t
      | Spec.SAssign _ -> false)
      body
  in
  let tasks = List.filter (fun (t : Spec.tdecl) -> used t.Spec.tname)
      (List.rev !tasks)
  in
  {
    Spec.name = Printf.sprintf "conform%d" seed;
    nt;
    steps;
    regions;
    parts;
    tasks;
    body;
    seq_if = int 4 = 0;
    loop_if = int 8 = 0;
    tail_assign = int 3 = 0;
  }

(* ---------- elaboration ---------- *)

let universe_size sp =
  match Index_space.universe sp with
  | Index_space.Structured r -> Rect.volume r
  | Index_space.Unstructured n -> n

let mk_space = function
  | Spec.Dense n -> Index_space.of_range n
  | Spec.Sparse { universe; period; keep } ->
      let elems =
        List.filter
          (fun e -> e mod period < keep)
          (List.init universe (fun i -> i))
      in
      Index_space.of_iset ~universe_size:universe (Sorted_iset.of_list elems)
  | Spec.Grid { nx; ny } ->
      Index_space.of_rect (Rect.make2 ~lo:(0, 0) ~hi:(nx - 1, ny - 1))

let mk_task (td : Spec.tdecl) =
  match td.Spec.kind with
  | Spec.KWriter { wf; rf; mul; add; modn } ->
      let wf = field_of wf and rf = field_of rf in
      Task.make ~name:td.Spec.tname
        ~params:
          [
            { Task.pname = "out"; privs = [ Privilege.writes wf ] };
            { Task.pname = "inp"; privs = [ Privilege.reads rf ] };
          ]
        ~nscalars:1
        (fun accs sargs ->
          let out = accs.(0) and inp = accs.(1) in
          let u = universe_size (Accessor.space inp) in
          Accessor.iter out (fun id ->
              let src = ((id * mul) + add) mod modn in
              let x =
                if src < u && Accessor.mem inp src then Accessor.get inp rf src
                else 0.
              in
              Accessor.set out wf id
                ((Accessor.get out wf id *. 0.5) +. (x *. 0.25)
                +. (sargs.(0) *. 0.125)));
          0.)
  | Spec.KStencil { wf; rf } ->
      let wf = field_of wf and rf = field_of rf in
      Task.make ~name:td.Spec.tname
        ~params:
          [
            { Task.pname = "out"; privs = [ Privilege.writes wf ] };
            { Task.pname = "inp"; privs = [ Privilege.reads rf ] };
          ]
        ~nscalars:1
        (fun accs sargs ->
          let out = accs.(0) and inp = accs.(1) in
          let u = universe_size (Accessor.space inp) in
          Accessor.iter out (fun id ->
              let nb d =
                let j = id + d in
                if j >= 0 && j < u && Accessor.mem inp j then
                  Accessor.get inp rf j
                else 0.
              in
              let s = nb (-1) +. nb 0 +. nb 1 in
              Accessor.set out wf id
                ((Accessor.get out wf id *. 0.4) +. (s *. 0.15)
                +. (sargs.(0) *. 0.1)));
          0.)
  | Spec.KReduce { op; df; sf } ->
      let df = field_of df and sf = field_of sf in
      Task.make ~name:td.Spec.tname
        ~params:
          [
            { Task.pname = "dst"; privs = [ Privilege.reduces op df ] };
            { Task.pname = "src"; privs = [ Privilege.reads sf ] };
          ]
        (fun accs _ ->
          let dst = accs.(0) and src = accs.(1) in
          let base =
            Index_space.fold_ids
              (fun acc j -> acc +. (Accessor.get src sf j *. 0.001))
              0. (Accessor.space src)
          in
          Accessor.iter dst (fun id ->
              Accessor.reduce dst df id
                (base +. (float_of_int id *. 0.01)));
          0.)
  | Spec.KScalarRed { op; rf } ->
      let rf = field_of rf in
      Task.make ~name:td.Spec.tname
        ~params:[ { Task.pname = "x"; privs = [ Privilege.reads rf ] } ]
        (fun accs _ ->
          Index_space.fold_ids
            (fun acc j ->
              Privilege.apply_redop op acc
                (1. +. (0.25 *. Float.abs (Accessor.get accs.(0) rf j))))
            (Privilege.identity_of op)
            (Accessor.space accs.(0)))

let setup_task =
  Task.make ~name:"setup"
    ~params:
      [
        { Task.pname = "r";
          privs = [ Privilege.writes fv; Privilege.writes fw ] };
      ]
    (fun accs _ ->
      Accessor.iter accs.(0) (fun id ->
          Accessor.set accs.(0) fv id (float_of_int ((id * 7) mod 5) +. 0.5);
          Accessor.set accs.(0) fw id (float_of_int ((id * 3) mod 4) -. 1.));
      0.)

let build (s : Spec.t) =
  let b = Program.Builder.create ~name:s.Spec.name in
  let regions =
    List.map
      (fun (rn, sp) ->
        (rn, Program.Builder.region b ~name:rn (mk_space sp) [ fv; fw ]))
      s.Spec.regions
  in
  let find_reg rn = List.assoc rn regions in
  let uni_of rn = Spec.space_size (List.assoc rn s.Spec.regions) in
  Program.Builder.space b ~name:"I" s.Spec.nt;
  Program.Builder.scalar b ~name:"dt" 1.0;
  let built = Hashtbl.create 8 in
  List.iter
    (fun (pd : Spec.pdecl) ->
      let r = find_reg pd.Spec.preg in
      let p =
        Program.Builder.partition b ~name:pd.Spec.pname (fun ~name ->
            match pd.Spec.pspec with
            | Spec.Pblock -> Partition.block ~name r ~pieces:s.Spec.nt
            | Spec.Pgrid { gx; gy } ->
                Partition.block_grid ~name r ~grid:[| gx; gy |]
            | Spec.Pcolor { mul; add } ->
                Partition.of_coloring ~name r ~colors:s.Spec.nt (fun e ->
                    ((e * mul) + add) mod s.Spec.nt)
            | Spec.Pimage { src; mul; add; width } ->
                let srcp = Hashtbl.find built src in
                let uni = uni_of pd.Spec.preg in
                Partition.image ~name ~target:r ~src:srcp (fun e ->
                    List.init width (fun k -> ((e * mul) + add + k) mod uni))
            | Spec.Phalo { src } ->
                let srcp = Hashtbl.find built src in
                Partition.image_rects ~name ~target:r ~src:srcp (fun rc ->
                    [
                      Rect.make
                        (Array.map (fun c -> c - 1) rc.Rect.lo)
                        (Array.map (fun c -> c + 1) rc.Rect.hi);
                    ]))
      in
      Hashtbl.add built pd.Spec.pname p)
    s.Spec.parts;
  List.iter (fun td -> Program.Builder.task b (mk_task td)) s.Spec.tasks;
  Program.Builder.task b setup_task;
  let op_of_task tn =
    match
      (List.find (fun (t : Spec.tdecl) -> t.Spec.tname = tn) s.Spec.tasks)
        .Spec.kind
    with
    | Spec.KScalarRed { op; _ } -> op
    | _ -> invalid_arg ("Gen.build: " ^ tn ^ " is not a scalar reduction")
  in
  let rot k i = (i + k) mod s.Spec.nt in
  let parg pn = function
    | Spec.PId -> Syn.part pn
    | Spec.PRot k -> Syn.part_fn pn (Printf.sprintf "rot%d" k) (rot k)
  in
  let stmt_of = function
    | Spec.SForall { task; out; inp; inp_proj } ->
        Syn.forall "I"
          (Syn.call task
             ~scalars:[ Syn.sv "dt" ]
             [ Syn.part out; parg inp inp_proj ])
    | Spec.SReduceRegion { task; dst; src; src_proj } ->
        Syn.forall "I" (Syn.call task [ Syn.part dst; parg src src_proj ])
    | Spec.SScalarRed { task; arg; arg_proj } ->
        Syn.forall_reduce "I"
          (Syn.call task [ parg arg arg_proj ])
          ~into:"dt" (op_of_task task)
    | Spec.SAssign { mulc; addc } ->
        Syn.assign "dt" Syn.((sv "dt" *. !.mulc) +. !.addc)
  in
  let loop_body0 = List.map stmt_of s.Spec.body in
  let loop_body =
    if s.Spec.loop_if then
      match List.rev loop_body0 with
      | last :: rest_rev ->
          List.rev rest_rev
          @ [
              Types.If
                {
                  test =
                    { Types.cmp = Types.Ge; lhs = Syn.sv "dt"; rhs = Syn.( !. ) 0. };
                  then_ = [ last ];
                  else_ = [ Syn.assign "dt" Syn.(sv "dt" *. !.0.5) ];
                };
            ]
      | [] -> loop_body0
    else loop_body0
  in
  let prologue =
    List.map
      (fun (rn, _) -> Syn.run (Syn.call "setup" [ Syn.whole rn ]))
      s.Spec.regions
    @
    if s.Spec.seq_if then
      [
        Types.If
          {
            test =
              { Types.cmp = Types.Lt; lhs = Syn.sv "dt"; rhs = Syn.( !. ) 10. };
            then_ = [ Syn.assign "dt" Syn.(sv "dt" *. !.1.5) ];
            else_ = [ Syn.assign "dt" Syn.(sv "dt" *. !.0.5) ];
          };
      ]
    else []
  in
  let epilogue =
    if s.Spec.tail_assign then
      [ Syn.assign "dt" Syn.((sv "dt" *. !.0.5) +. !.0.25) ]
    else []
  in
  Program.Builder.body b
    (prologue @ [ Syn.for_time "t" s.Spec.steps loop_body ] @ epilogue);
  Program.Builder.finish b

let program ?max_tasks seed = build (spec ?max_tasks seed)

(* ---------- random index-space pairs (shared universe) ---------- *)

let random_space_pair st =
  let int n = Random.State.int st n in
  if Random.State.bool st then begin
    (* Unstructured: two random sparse id sets in one universe. *)
    let uni = 50 + int 150 in
    let sparse () =
      let p = 0.1 +. Random.State.float st 0.8 in
      let elems =
        List.filter
          (fun _ -> Random.State.float st 1.0 < p)
          (List.init uni (fun i -> i))
      in
      Index_space.of_iset ~universe_size:uni (Sorted_iset.of_list elems)
    in
    (sparse (), sparse ())
  end
  else begin
    (* Structured: unions of random subrectangles of one universe rect. *)
    let w = 4 + int 12 and h = 4 + int 12 in
    let universe = Rect.make2 ~lo:(0, 0) ~hi:(w - 1, h - 1) in
    let subrect () =
      let x0 = int w and y0 = int h in
      let x1 = x0 + int (w - x0) and y1 = y0 + int (h - y0) in
      Rect.make2 ~lo:(x0, y0) ~hi:(x1, y1)
    in
    let rects () = List.init (1 + int 3) (fun _ -> subrect ()) in
    ( Index_space.of_rects ~universe (rects ()),
      Index_space.of_rects ~universe (rects ()) )
  end
