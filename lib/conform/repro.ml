(* Replayable repro files. A failing fuzz case is saved as JSON carrying
   the (shrunk) spec itself — not just the seed — so the repro stays
   valid even when the generator's distribution changes between
   versions. *)

let version = "crc-fuzz/1"

type t = {
  seed : int option; (* generator seed, when the spec came from one *)
  shards : int;
  mutate : int option;
  failure : Oracle.failure;
  spec : Spec.t;
}

let to_json (r : t) =
  Obs.Json.Obj
    [
      ("version", Obs.Json.Str version);
      ( "seed",
        match r.seed with None -> Obs.Json.Null | Some s -> Obs.Json.Int s );
      ("shards", Obs.Json.Int r.shards);
      ( "mutate",
        match r.mutate with None -> Obs.Json.Null | Some k -> Obs.Json.Int k
      );
      ( "failure",
        Obs.Json.Obj
          [
            ("config", Obs.Json.Str r.failure.Oracle.config);
            ("kind", Obs.Json.Str (Oracle.kind_to_string r.failure.Oracle.kind));
            ("detail", Obs.Json.Str r.failure.Oracle.detail);
          ] );
      ("spec", Spec.to_json r.spec);
    ]

let get name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> invalid_arg ("Repro: missing field " ^ name)

let str j =
  match Obs.Json.string_value j with
  | Some s -> s
  | None -> invalid_arg "Repro: expected string"

let int_opt j =
  match j with
  | Obs.Json.Null -> None
  | _ -> (
      match Obs.Json.number j with
      | Some f -> Some (int_of_float f)
      | None -> invalid_arg "Repro: expected int or null")

let of_json j =
  let v = str (get "version" j) in
  if v <> version then invalid_arg ("Repro: unsupported version " ^ v);
  let fj = get "failure" j in
  {
    seed = int_opt (get "seed" j);
    shards =
      (match int_opt (get "shards" j) with
      | Some s -> s
      | None -> invalid_arg "Repro: shards is null");
    mutate = int_opt (get "mutate" j);
    failure =
      {
        Oracle.config = str (get "config" fj);
        kind = Oracle.kind_of_string (str (get "kind" fj));
        detail = str (get "detail" fj);
      };
    spec = Spec.of_json (get "spec" j);
  }

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Obs.Json.to_channel ~indent:2 oc (to_json r);
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_json (Obs.Json.of_string_exn (In_channel.input_all ic)))
