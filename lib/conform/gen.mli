(** Seed-deterministic generation of well-privileged conformance programs.

    {!spec} draws a {!Spec.t} from a seed; {!build} elaborates a spec into
    an {!Ir.Program.t}. Every generated program passes [Ir.Check] and every
    time-loop body without a [loop_if] is eligible for control replication
    {e by construction}: writes go through identity projections on disjoint
    partitions whose color counts equal the launch space, and within one
    launch the written and read (region, field) pairs never conflict.

    [build] is referentially transparent per spec — each call constructs a
    fresh region tree, so callers can build one copy for the implicit
    reference run and another for the compile-and-execute run without the
    pipeline's registered partitions leaking between them. *)

val spec : ?max_tasks:int -> int -> Spec.t
(** [spec seed] is deterministic in [seed]; at most [max_tasks]
    (default 8) task-launching statements in the loop body. *)

val build : Spec.t -> Ir.Program.t

val program : ?max_tasks:int -> int -> Ir.Program.t
(** [build (spec seed)]. *)

val random_space_pair :
  Random.State.t -> Regions.Index_space.t * Regions.Index_space.t
(** Two random index spaces over one shared universe — structured
    (unions of random rectangles) or unstructured (random sparse id
    sets) — for intersection / copy-plan properties. *)
