(** Replayable repro files for failing conformance cases.

    The file carries the (shrunk) spec itself, not just the generator
    seed, so a repro stays valid across changes to the generator's
    distribution. Format: JSON, versioned ["crc-fuzz/1"]. *)

type t = {
  seed : int option;  (** generator seed, when the spec came from one *)
  shards : int;
  mutate : int option;  (** sync op dropped by {!Mutate.drop_nth_sync} *)
  failure : Oracle.failure;  (** what the original case failed with *)
  spec : Spec.t;
}

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> t

val save : string -> t -> unit
val load : string -> t
