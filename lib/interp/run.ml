open Regions
open Ir

type context = {
  prog : Program.t;
  roots : (int, Physical.t) Hashtbl.t; (* root region id -> instance *)
  env : Eval.env;
}

let create (prog : Program.t) =
  let roots = Hashtbl.create 8 in
  List.iter
    (fun (_, d) ->
      match d with
      | Types.Dregion r ->
          let root = Region_tree.root_of prog.Program.tree r in
          if not (Hashtbl.mem roots root.Region.id) then
            Hashtbl.replace roots root.Region.id (Physical.create root)
      | Types.Dpartition _ | Types.Dspace _ | Types.Dscalar _ -> ())
    prog.Program.decls;
  { prog; roots; env = Eval.env_of_list (Program.initial_scalars prog) }

let root_instance_of ctx (r : Region.t) =
  let root = Region_tree.root_of ctx.prog.Program.tree r in
  match Hashtbl.find_opt ctx.roots root.Region.id with
  | Some inst -> inst
  | None ->
      invalid_arg
        (Printf.sprintf "Interp: region %s has no backing instance"
           r.Region.name)

let instance ctx name = root_instance_of ctx (Program.find_region ctx.prog name)
let region_instance = root_instance_of
let env ctx = ctx.env

let root_instances ctx =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (_, d) ->
      match d with
      | Types.Dregion r ->
          let root = Region_tree.root_of ctx.prog.Program.tree r in
          if Hashtbl.mem seen root.Region.id then None
          else begin
            Hashtbl.add seen root.Region.id ();
            Option.map
              (fun inst -> (root.Region.name, inst))
              (Hashtbl.find_opt ctx.roots root.Region.id)
          end
      | Types.Dpartition _ | Types.Dspace _ | Types.Dscalar _ -> None)
    ctx.prog.Program.decls
  |> List.sort compare

let scalars ctx =
  List.sort compare (Eval.bindings ctx.env)

let scalar ctx n = Eval.get ctx.env n

type order = [ `Seq | `Random of int | `Pool of Taskpool.Pool.t ]

let shuffle seed a =
  let st = Random.State.make [| seed; Array.length a |] in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* Everything needed to run color [c] of an index launch: build accessors
   against root instances (shared-memory semantics), except reduce args,
   which target a caller-provided temporary. *)
let run_color ctx (task : Task.t) (launch : Types.launch) ~sargs
    ~(reduction_temps : Physical.t option array array) c =
  let accessors =
    Array.of_list
      (List.mapi
         (fun i rarg ->
           let sub =
             match rarg with
             | Types.Part (pname, proj) ->
                 let p = Program.find_partition ctx.prog pname in
                 let color =
                   match proj with Types.Id -> c | Types.Fn (_, f) -> f c
                 in
                 Partition.sub p color
             | Types.Whole rname -> Program.find_region ctx.prog rname
           in
           match Task.reduces_param task i with
           | Some _ ->
               let temp =
                 match reduction_temps.(c).(i) with
                 | Some t -> t
                 | None -> assert false
               in
               Accessor.make temp ~space:sub.Region.ispace
                 (Task.param_privs task i)
           | None ->
               Accessor.make (root_instance_of ctx sub)
                 ~space:sub.Region.ispace (Task.param_privs task i))
         launch.Types.rargs)
  in
  task.Task.kernel accessors sargs

(* Per-color temporaries for reduce-privileged parameters, so results do
   not depend on execution order (Legion's reduction instances, §4.3). *)
let make_reduction_temps ctx (task : Task.t) (launch : Types.launch) n =
  Array.init n (fun c ->
      Array.of_list
        (List.mapi
           (fun i rarg ->
             match Task.reduces_param task i with
             | None -> None
             | Some op ->
                 let sub =
                   match rarg with
                   | Types.Part (pname, proj) ->
                       let p = Program.find_partition ctx.prog pname in
                       let color =
                         match proj with
                         | Types.Id -> c
                         | Types.Fn (_, f) -> f c
                       in
                       Partition.sub p color
                   | Types.Whole rname -> Program.find_region ctx.prog rname
                 in
                 Some
                   (Physical.create_over
                      ~init:(Privilege.identity_of op)
                      sub.Region.ispace
                      (Task.reduced_fields task i)))
           launch.Types.rargs))

let fold_reduction_temps ctx (task : Task.t) (launch : Types.launch)
    ~(reduction_temps : Physical.t option array array) =
  (* Ascending color order keeps floating-point folding deterministic. *)
  Array.iter
    (fun temps ->
      List.iteri
        (fun i rarg ->
          match (Task.reduces_param task i, temps.(i)) with
          | Some op, Some temp ->
              let dst =
                match rarg with
                | Types.Part (pname, _) ->
                    root_instance_of ctx
                      (Program.find_partition ctx.prog pname).Partition.parent
                | Types.Whole rname ->
                    root_instance_of ctx (Program.find_region ctx.prog rname)
              in
              Physical.reduce_into ~op ~src:temp ~dst ()
          | _ -> ())
        launch.Types.rargs)
    reduction_temps

let index_launch ?(order = `Seq) ctx ~space (launch : Types.launch) =
  let n = Program.find_space ctx.prog space in
  let task = Program.find_task ctx.prog launch.Types.task in
  let sargs = Array.map (Eval.sexpr ctx.env) launch.Types.sargs in
  let reduction_temps = make_reduction_temps ctx task launch n in
  let results = Array.make n 0. in
  (match order with
  | `Seq ->
      for c = 0 to n - 1 do
        results.(c) <- run_color ctx task launch ~sargs ~reduction_temps c
      done
  | `Random seed ->
      let colors = Array.init n (fun c -> c) in
      shuffle seed colors;
      Array.iter
        (fun c ->
          results.(c) <- run_color ctx task launch ~sargs ~reduction_temps c)
        colors
  | `Pool pool ->
      Taskpool.Pool.parallel_for pool ~lo:0 ~hi:(n - 1) (fun c ->
          results.(c) <- run_color ctx task launch ~sargs ~reduction_temps c));
  fold_reduction_temps ctx task launch ~reduction_temps;
  results

let single_launch ctx (launch : Types.launch) =
  let task = Program.find_task ctx.prog launch.Types.task in
  let sargs = Array.map (Eval.sexpr ctx.env) launch.Types.sargs in
  let reduction_temps = make_reduction_temps ctx task launch 1 in
  let r = run_color ctx task launch ~sargs ~reduction_temps 0 in
  fold_reduction_temps ctx task launch ~reduction_temps;
  r

let rec exec_stmt ?order ctx = function
  | Types.Index_launch { space; launch } ->
      ignore (index_launch ?order ctx ~space launch)
  | Types.Index_launch_reduce { space; launch; var; op } ->
      let results = index_launch ?order ctx ~space launch in
      (* Seed the fold with the operator identity: the reduction replaces
         the previous value rather than accumulating into it, matching
         Regent's [var = reduce(...)] and the collective in §4.4. *)
      let v =
        Array.fold_left
          (Privilege.apply_redop op)
          (Privilege.identity_of op)
          results
      in
      Eval.set ctx.env var v
  | Types.Single_launch { launch } -> ignore (single_launch ctx launch)
  | Types.Assign (v, e) -> Eval.set ctx.env v (Eval.sexpr ctx.env e)
  | Types.For_time { var; count; body } ->
      for t = 0 to count - 1 do
        Eval.set ctx.env var (float_of_int t);
        exec_stmts ?order ctx body
      done
  | Types.If { test; then_; else_ } ->
      if Eval.stest ctx.env test then exec_stmts ?order ctx then_
      else exec_stmts ?order ctx else_

and exec_stmts ?order ctx stmts = List.iter (exec_stmt ?order ctx) stmts

let run_stmts ?order ctx stmts = exec_stmts ?order ctx stmts

let run ?order ctx =
  Check.check_exn ctx.prog;
  exec_stmts ?order ctx ctx.prog.Program.body
