(** Functional execution of implicit programs under shared-memory region
    semantics (paper §3: "a subregion is literally a subset of its parent" —
    one physical instance per root region, with every subregion argument a
    privilege-checked view into it).

    This is the reference semantics control replication must preserve: the
    equivalence tests compare {!Spmd} execution against [run ~order:`Seq].

    Reduce-privileged arguments always go through per-color temporary
    instances folded back in color order, so results are bitwise identical
    across all execution orders — including [`Pool], which runs the
    independent iterations of each index launch on a domain pool. *)

type context

val create : Ir.Program.t -> context
(** Allocates one zero-filled instance per root region and initialises the
    scalar environment. *)

val instance : context -> string -> Regions.Physical.t
(** The instance backing a named region ({e its root's} instance — named
    subregions share their root's storage). Use it to set up inputs and to
    read results. *)

val region_instance : context -> Regions.Region.t -> Regions.Physical.t
(** Like {!instance}, for a region value (the root's instance). *)

val env : context -> Ir.Eval.env
(** The mutable scalar environment (the SPMD executor replicates it into
    per-shard copies and writes results back). *)

val root_instances : context -> (string * Regions.Physical.t) list
(** All root-region instances, as (root region name, instance) pairs in
    ascending name order — the checkpoint/restart machinery serializes and
    restores these wholesale (names, unlike region ids, are stable across
    program instances and processes). *)

val scalars : context -> (string * float) list
val scalar : context -> string -> float

type order =
  [ `Seq  (** colors in ascending order *)
  | `Random of int  (** a seeded shuffle of each launch's colors *)
  | `Pool of Taskpool.Pool.t  (** iterations in parallel on the pool *) ]

val run : ?order:order -> context -> unit
(** Executes the whole program body. Raises on privilege violations or
    checker-detectable malformations ({!Ir.Check} is run first). *)

val run_stmts : ?order:order -> context -> Ir.Types.stmt list -> unit
(** Executes given statements in the context (no checking) — used by the
    SPMD executor for the sequential prologue/epilogue around replicated
    blocks. *)
