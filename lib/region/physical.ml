open Geometry

(* Addressing mode, fixed at creation. [Contiguous] when the ids are a
   dense range; [Dense] when the id span is close enough to the element
   count that a direct id->index table is cheap; [Search] (binary search
   over the cached sorted id array) otherwise. All three are chosen once
   in [create_over] — the per-access path allocates nothing. *)
type addressing =
  | Contiguous of { base : int }
  | Dense of { base : int; table : int array } (* table.(id - base) = idx | -1 *)
  | Search of { arr : int array } (* the sorted id array itself *)

type t = {
  ispace : Index_space.t;
  flds : Field.t list;
  ids : Sorted_iset.t; (* sorted global ids; data arrays are parallel *)
  n : int;
  addr : addressing;
  data : (int, float array) Hashtbl.t; (* field id -> values *)
}

let ispace t = t.ispace
let fields t = t.flds
let cardinal t = t.n

(* A dense table costs one word per id in the span; build it whenever the
   span is within a small factor of the element count, so sparse-but-
   clustered instances (ghost sets, halos) get O(1) addressing without
   blowing up memory on pathologically wide spans. *)
let dense_span_budget n = (4 * n) + 64

let create_over ?(init = 0.) ispace flds =
  let ids = Index_space.ids ispace in
  let n = Sorted_iset.cardinal ids in
  let addr =
    if n = 0 then Contiguous { base = 0 }
    else
      let lo = Sorted_iset.min_elt ids and hi = Sorted_iset.max_elt ids in
      let span = hi - lo + 1 in
      if span = n then Contiguous { base = lo }
      else if span <= dense_span_budget n then begin
        let table = Array.make span (-1) in
        let k = ref 0 in
        Sorted_iset.iter
          (fun id ->
            table.(id - lo) <- !k;
            incr k)
          ids;
        Dense { base = lo; table }
      end
      else Search { arr = Sorted_iset.to_array ids }
  in
  let data = Hashtbl.create (List.length flds) in
  List.iter
    (fun f -> Hashtbl.replace data (Field.id f) (Array.make n init))
    flds;
  { ispace; flds; ids; n; addr; data }

let create ?init (r : Region.t) =
  create_over ?init r.Region.ispace r.Region.fields

(* [index_of_opt t id] is the index of [id] in the instance's storage, or
   [-1] when absent. O(1) for [Contiguous]/[Dense], O(log n) for [Search];
   never allocates. *)
let index_of_opt t id =
  match t.addr with
  | Contiguous { base } ->
      let k = id - base in
      if k >= 0 && k < t.n then k else -1
  | Dense { base; table } ->
      let k = id - base in
      if k >= 0 && k < Array.length table then table.(k) else -1
  | Search { arr } ->
      let lo = ref 0 and hi = ref (Array.length arr - 1) and res = ref (-1) in
      while !res < 0 && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if arr.(mid) = id then res := mid
        else if arr.(mid) < id then lo := mid + 1
        else hi := mid - 1
      done;
      !res

let mem t id = index_of_opt t id >= 0

let index_of t id =
  let k = index_of_opt t id in
  if k < 0 then
    invalid_arg (Printf.sprintf "Physical: element %d not in instance" id);
  k

let column t f =
  match Hashtbl.find_opt t.data (Field.id f) with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Physical: no field %s in instance" (Field.name f))

let get t f id = (column t f).(index_of t id)
let set t f id v = (column t f).(index_of t id) <- v

let update t f id g =
  let a = column t f and k = index_of t id in
  a.(k) <- g a.(k)

let fill t f v = Array.fill (column t f) 0 t.n v
let fill_all t v = List.iter (fun f -> fill t f v) t.flds

let shared_fields ?fields src dst =
  match fields with
  | Some fl -> fl
  | None -> List.filter (fun f -> List.exists (Field.equal f) dst.flds) src.flds

let transfer ~f ?fields ~src ~dst () =
  let fl = shared_fields ?fields src dst in
  let common = Index_space.inter src.ispace dst.ispace in
  List.iter
    (fun fld ->
      let sc = column src fld and dc = column dst fld in
      Index_space.iter_ids
        (fun id ->
          let si = index_of src id and di = index_of dst id in
          dc.(di) <- f dc.(di) sc.(si))
        common)
    fl

let copy_into ?fields ~src ~dst () =
  transfer ~f:(fun _old v -> v) ?fields ~src ~dst ()

let reduce_into ~op ?fields ~src ~dst () =
  transfer ~f:(Privilege.apply_redop op) ?fields ~src ~dst ()

let copy_volume ~src ~dst =
  Index_space.cardinal (Index_space.inter src.ispace dst.ispace)

exception Unequal

let equal_on a b space fl =
  try
    List.iter
      (fun f ->
        Index_space.iter_ids
          (fun id -> if get a f id <> get b f id then raise_notrace Unequal)
          space)
      fl;
    true
  with Unequal -> false

let to_alist t f =
  List.rev
    (Sorted_iset.fold (fun acc id -> (id, get t f id) :: acc) [] t.ids)
