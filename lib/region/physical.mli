(** Physical instances: actual storage for a region's data.

    Regent decouples region declaration from allocation (paper §2.1); an
    instance materialises one region's index space with one [float] per
    element per field. Control replication's data-replication stage (§3.1)
    turns the shared-memory picture — one instance per tree — into the
    distributed one, where every subregion has its own instance and copies
    keep them coherent. The copy operations here are the primitive those
    inserted copies compile to: they act on the {e intersection} of the two
    instances' index spaces. *)

type t

val create : ?init:float -> Region.t -> t
(** Storage for the region's index space and fields, filled with [init]
    (default [0.]). *)

val create_over : ?init:float -> Index_space.t -> Field.t list -> t

val ispace : t -> Index_space.t
val fields : t -> Field.t list

val cardinal : t -> int
(** Number of elements the instance stores. O(1). *)

val mem : t -> int -> bool
(** Whether the element with global identifier [id] is stored here.
    O(1) for contiguous and dense-span instances, O(log n) otherwise;
    never allocates. *)

val index_of : t -> int -> int
(** Storage index of a global identifier; the addressing mode (contiguous
    offset, dense id→index table, or binary search over the cached sorted
    id array) is fixed at creation, so no per-access allocation happens.
    Raises [Invalid_argument] when the element is not in the instance. *)

val index_of_opt : t -> int -> int
(** Like {!index_of} but returns [-1] instead of raising. *)

val column : t -> Field.t -> float array
(** The raw storage of one field, parallel to the sorted id array (element
    with storage index [k] lives at position [k]). Exposed for the bulk
    data plane ({!Accessor} closures, copy plans); mutate only through an
    index obtained from {!index_of}. Raises [Invalid_argument] when [f] is
    not a field of the instance. *)

val get : t -> Field.t -> int -> float
(** [get inst f id] reads field [f] of the element with global identifier
    [id]. Raises [Invalid_argument] when [id] is not in the instance or [f]
    not a field of it. *)

val set : t -> Field.t -> int -> float -> unit

val update : t -> Field.t -> int -> (float -> float) -> unit

val fill : t -> Field.t -> float -> unit
val fill_all : t -> float -> unit

val copy_into : ?fields:Field.t list -> src:t -> dst:t -> unit -> unit
(** Copy the shared fields (or [?fields]) on the intersection of the two
    index spaces: for each element of [ispace src ∩ ispace dst],
    [dst.f <- src.f]. The R1 <- R2 assignment of paper §3.1. *)

val reduce_into :
  op:Privilege.redop -> ?fields:Field.t list -> src:t -> dst:t -> unit -> unit
(** Like {!copy_into} but folds with the reduction operator:
    [dst.f <- dst.f op src.f] (the reduction copies of paper §4.3). *)

val copy_volume : src:t -> dst:t -> int
(** Number of elements {!copy_into} would touch. *)

val equal_on : t -> t -> Index_space.t -> Field.t list -> bool
(** Exact equality of the two instances on the given elements and fields
    (test support). *)

val to_alist : t -> Field.t -> (int * float) list
(** All (id, value) pairs of one field, id-ascending (test support). *)
