(** Index spaces: the sets of element indices regions are defined over.

    An index space lives in a {e universe} — either a structured
    (1–3 dimensional) rectangle of lattice points or an unstructured range of
    dense integer identifiers — and denotes a subset of that universe.
    Subregions produced by partitioning share their parent's universe, which
    gives every element a stable global identifier: the row-major rank within
    the universe rectangle for structured spaces, the identifier itself for
    unstructured ones. Physical instances and copies are keyed by these
    global identifiers. *)

open Geometry

type universe = Structured of Rect.t | Unstructured of int

type t

val universe : t -> universe

val of_rect : Rect.t -> t
(** The full structured space over universe [r]. *)

val of_rects : universe:Rect.t -> Rect.t list -> t
(** A structured subset given as rectangles (need not be disjoint; they are
    normalised). Raises [Invalid_argument] if a rectangle is outside the
    universe. *)

val of_range : int -> t
(** [of_range n] is the full unstructured space [{0..n-1}]. *)

val of_iset : universe_size:int -> Sorted_iset.t -> t

val empty_like : t -> t
(** The empty subset of the same universe. *)

val full : t -> t
(** The full space of [t]'s universe. *)

val same_universe : t -> t -> bool

val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
(** Membership by global identifier. *)

val equal : t -> t -> bool
val disjoint : t -> t -> bool
val subset : t -> t -> bool

(** Set algebra. Raises [Invalid_argument] when universes differ. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val iter_ids : (int -> unit) -> t -> unit
(** Iterate global identifiers in increasing order. *)

val fold_ids : ('a -> int -> 'a) -> 'a -> t -> 'a
val ids : t -> Sorted_iset.t
(** Materialise the global identifier set. *)

val rects : t -> Rect.t list
(** The disjoint rectangle decomposition of a structured space. Raises
    [Invalid_argument] on unstructured spaces. *)

val bounds_interval : t -> Interval.t option
(** Inclusive bounds of the global identifiers; [None] when empty. *)

val id_runs : t -> Interval.t list
(** Maximal runs of consecutive global identifiers, ascending. For
    unstructured spaces these are the element-set runs (the shallow
    intersection index of §3.3 is built from them); for structured spaces
    each rectangle contributes one run per row (last axis varies fastest
    under row-major linearization), merged across rectangles where
    id-adjacent. *)

val iter_id_runs : (int -> int -> unit) -> t -> unit
(** [iter_id_runs k t] calls [k lo hi] for each maximal run of consecutive
    global identifiers, ascending — same decomposition as {!id_runs}
    without materialising the list. Copy plans and bulk accessors are
    built from these runs. *)

val bounding_rect : t -> Rect.t option
(** Bounding rectangle of a structured space; [None] when empty. Raises
    [Invalid_argument] on unstructured spaces. *)

val is_structured : t -> bool

val pp : Format.formatter -> t -> unit
