(** Privilege-checked views of physical instances.

    Task kernels never touch {!Physical} instances directly: they receive
    accessors that enforce the task's declared privileges — Regent's
    strictness property (paper §2.1), which is what lets control replication
    ignore task bodies entirely. An access outside the declared privileges
    raises {!Privilege_violation} (and tests assert this fires). Accessors
    also restrict the view to the task argument's index space, so a kernel
    cannot reach elements of the parent region outside its subregion. *)

exception Privilege_violation of string

type t

val make : Physical.t -> space:Index_space.t -> Privilege.t list -> t
(** A view of [inst] restricted to [space] under the given privileges.
    [space] must be a subset of the instance's index space. *)

val space : t -> Index_space.t
val privileges : t -> Privilege.t list

val get : t -> Field.t -> int -> float
(** Requires [Read] or [Read_write] on the field. *)

val set : t -> Field.t -> int -> float -> unit
(** Requires [Read_write] on the field. *)

val reduce : t -> Field.t -> int -> float -> unit
(** Folds the value with the declared operator; requires [Reduce _] or
    [Read_write] on the field (under [Read_write] the caller passes the
    operator explicitly via {!reduce_op}). *)

val reduce_op : t -> op:Privilege.redop -> Field.t -> int -> float -> unit

val mem : t -> int -> bool
(** Whether a global identifier is in the accessor's view. O(1) when the
    view covers the whole instance (the executor's per-color instances);
    falls back to the index-space membership test for strict subviews. *)

(** {2 Bulk access}

    The per-element entry points above re-resolve the privilege and the
    field column on every call. The closure constructors below do that
    work once: the privilege is checked at construction (raising
    {!Privilege_violation} immediately on a mode mismatch), the storage
    column and addressing mode are hoisted, and the returned closure only
    performs the containment check and the array access. Kernels iterate
    with {!iter_runs} and one closure per field. *)

val reader : t -> Field.t -> int -> float
(** [reader t f] requires [Read] or [Read_write] on [f]; the closure
    raises {!Privilege_violation} on elements outside the view. *)

val writer : t -> Field.t -> int -> float -> unit
(** Requires [Read_write]. *)

val reducer : t -> Field.t -> int -> float -> unit
(** Requires [Reduce _]; folds with the declared operator. *)

val reducer_op : t -> op:Privilege.redop -> Field.t -> int -> float -> unit
(** Like {!reducer} but for [Read_write] arguments (or a matching
    [Reduce] declaration), naming the operator explicitly. *)

val iter : t -> (int -> unit) -> unit
(** Iterate the accessor's index space (global identifiers). *)

val iter_runs : t -> (int -> int -> unit) -> unit
(** [iter_runs t k] calls [k lo hi] per maximal run of consecutive global
    identifiers in the view, ascending — the bulk counterpart of {!iter}. *)

val cardinal : t -> int
