open Geometry

type universe = Structured of Rect.t | Unstructured of int

(* Structured spaces hold a pairwise-disjoint rectangle decomposition;
   unstructured spaces hold the sorted identifier set. *)
type t =
  | S of { u : Rect.t; rects : Rect.t list }
  | U of { n : int; elts : Sorted_iset.t }

let universe = function
  | S { u; _ } -> Structured u
  | U { n; _ } -> Unstructured n

(* [rect_diff r s] is r \ s as a list of disjoint rectangles, carved one
   axis-aligned slab at a time. *)
let rect_diff (r : Rect.t) (s : Rect.t) : Rect.t list =
  match Rect.intersect r s with
  | None -> [ r ]
  | Some _ ->
      let d = Rect.dim r in
      let pieces = ref [] in
      let cur_lo = ref r.Rect.lo and cur_hi = ref r.Rect.hi in
      for i = 0 to d - 1 do
        if !cur_lo.(i) < s.Rect.lo.(i) then begin
          let hi = Array.copy !cur_hi in
          hi.(i) <- s.Rect.lo.(i) - 1;
          pieces := Rect.make !cur_lo hi :: !pieces;
          let lo = Array.copy !cur_lo in
          lo.(i) <- s.Rect.lo.(i);
          cur_lo := lo
        end;
        if !cur_hi.(i) > s.Rect.hi.(i) then begin
          let lo = Array.copy !cur_lo in
          lo.(i) <- s.Rect.hi.(i) + 1;
          pieces := Rect.make lo !cur_hi :: !pieces;
          let hi = Array.copy !cur_hi in
          hi.(i) <- s.Rect.hi.(i);
          cur_hi := hi
        end
      done;
      !pieces

let rects_diff ra rb =
  List.concat_map
    (fun a -> List.fold_left (fun acc b -> List.concat_map (fun p -> rect_diff p b) acc) [ a ] rb)
    ra

let rect_diff_list r acc =
  List.fold_left (fun ps b -> List.concat_map (fun p -> rect_diff p b) ps) [ r ] acc

(* Normalise an arbitrary rectangle list into a disjoint one. *)
let disjointify rl =
  List.fold_left (fun acc r -> acc @ rect_diff_list r acc) [] rl

let of_rect r = S { u = r; rects = [ r ] }

let of_rects ~universe rl =
  List.iter
    (fun r ->
      if not (Rect.contains_rect universe r) then
        invalid_arg
          (Printf.sprintf "Index_space.of_rects: %s outside universe %s"
             (Rect.to_string r) (Rect.to_string universe)))
    rl;
  S { u = universe; rects = disjointify rl }

let of_range n =
  if n < 0 then invalid_arg "Index_space.of_range";
  U { n; elts = Sorted_iset.range 0 (n - 1) }

let of_iset ~universe_size elts =
  if (not (Sorted_iset.is_empty elts))
     && (Sorted_iset.min_elt elts < 0
        || Sorted_iset.max_elt elts >= universe_size)
  then invalid_arg "Index_space.of_iset: element outside universe";
  U { n = universe_size; elts }

let empty_like = function
  | S { u; _ } -> S { u; rects = [] }
  | U { n; _ } -> U { n; elts = Sorted_iset.empty }

let full = function
  | S { u; _ } -> S { u; rects = [ u ] }
  | U { n; _ } -> U { n; elts = Sorted_iset.range 0 (n - 1) }

let same_universe a b =
  match (a, b) with
  | S { u = ua; _ }, S { u = ub; _ } -> Rect.equal ua ub
  | U { n = na; _ }, U { n = nb; _ } -> na = nb
  | _ -> false

let check_same a b =
  if not (same_universe a b) then
    invalid_arg "Index_space: universe mismatch"

let cardinal = function
  | S { rects; _ } -> List.fold_left (fun n r -> n + Rect.volume r) 0 rects
  | U { elts; _ } -> Sorted_iset.cardinal elts

let is_empty t = cardinal t = 0

let mem t id =
  match t with
  | S { u; rects } ->
      id >= 0 && id < Rect.volume u
      &&
      let p = Rect.delinearize u id in
      List.exists (fun r -> Rect.contains r p) rects
  | U { elts; _ } -> Sorted_iset.mem elts id

let inter a b =
  check_same a b;
  match (a, b) with
  | S { u; rects = ra }, S { rects = rb; _ } ->
      let rs =
        List.concat_map
          (fun x -> List.filter_map (fun y -> Rect.intersect x y) rb)
          ra
      in
      S { u; rects = rs }
  | U { n; elts = ea }, U { elts = eb; _ } ->
      U { n; elts = Sorted_iset.inter ea eb }
  | _ -> assert false

let diff a b =
  check_same a b;
  match (a, b) with
  | S { u; rects = ra }, S { rects = rb; _ } ->
      S { u; rects = rects_diff ra rb }
  | U { n; elts = ea }, U { elts = eb; _ } ->
      U { n; elts = Sorted_iset.diff ea eb }
  | _ -> assert false

let union a b =
  check_same a b;
  match (a, b) with
  | S { u; rects = ra }, (S _ as b') -> (
      match diff b' a with
      | S { rects = extra; _ } -> S { u; rects = ra @ extra }
      | U _ -> assert false)
  | U { n; elts = ea }, U { elts = eb; _ } ->
      U { n; elts = Sorted_iset.union ea eb }
  | _ -> assert false

let disjoint a b =
  check_same a b;
  match (a, b) with
  | S { rects = ra; _ }, S { rects = rb; _ } ->
      not (List.exists (fun x -> List.exists (Rect.overlap x) rb) ra)
  | U { elts = ea; _ }, U { elts = eb; _ } -> Sorted_iset.disjoint ea eb
  | _ -> assert false

let subset a b = is_empty (diff a b)
let equal a b = cardinal a = cardinal b && subset a b

let ids = function
  | U { elts; _ } -> elts
  | S { u; rects } ->
      let total = List.fold_left (fun n r -> n + Rect.volume r) 0 rects in
      let out = Array.make total 0 in
      let w = ref 0 in
      List.iter
        (fun r ->
          Rect.iter
            (fun p ->
              out.(!w) <- Rect.linearize u p;
              incr w)
            r)
        rects;
      Array.sort Int.compare out;
      Sorted_iset.of_sorted_array_unchecked out

let iter_ids f t =
  match t with
  | U { elts; _ } -> Sorted_iset.iter f elts
  | S { u; rects = [ r ]; _ } -> Rect.iter (fun p -> f (Rect.linearize u p)) r
  | S _ -> Sorted_iset.iter f (ids t)

let fold_ids f init t =
  let acc = ref init in
  iter_ids (fun id -> acc := f !acc id) t;
  !acc

let rects = function
  | S { rects; _ } -> rects
  | U _ -> invalid_arg "Index_space.rects: unstructured space"

let bounds_interval t =
  match t with
  | U { elts; _ } ->
      if Sorted_iset.is_empty elts then None
      else Some (Interval.make (Sorted_iset.min_elt elts) (Sorted_iset.max_elt elts))
  | S { u; rects } -> (
      match rects with
      | [] -> None
      | r0 :: rest ->
          let lo = ref (Rect.linearize u r0.Rect.lo)
          and hi = ref (Rect.linearize u r0.Rect.hi) in
          List.iter
            (fun (r : Rect.t) ->
              lo := min !lo (Rect.linearize u r.Rect.lo);
              hi := max !hi (Rect.linearize u r.Rect.hi))
            rest;
          Some (Interval.make !lo !hi))

(* Runs of consecutive global identifiers. Structured spaces decompose
   into rows: with row-major linearization the last axis varies fastest,
   so each rectangle contributes one run per combination of its outer
   coordinates. Rows of a single rectangle come out in ascending id
   order already; multiple (disjoint) rectangles interleave in id space
   but never overlap, so a sort + adjacent-merge restores maximality. *)
let iter_id_runs k t =
  match t with
  | U { elts; _ } ->
      let a = Sorted_iset.to_array elts in
      let n = Array.length a in
      let i = ref 0 in
      while !i < n do
        let lo = a.(!i) in
        let j = ref !i in
        while !j + 1 < n && a.(!j + 1) = a.(!j) + 1 do
          incr j
        done;
        k lo a.(!j);
        i := !j + 1
      done
  | S { u; rects } ->
      let rows_of (r : Rect.t) emit =
        let d = Rect.dim r in
        let len = Rect.extent r (d - 1) in
        if d = 1 then emit (Rect.linearize u r.Rect.lo) len
        else begin
          let outer =
            Rect.make (Array.sub r.Rect.lo 0 (d - 1)) (Array.sub r.Rect.hi 0 (d - 1))
          in
          let p = Array.make d 0 in
          p.(d - 1) <- r.Rect.lo.(d - 1);
          Rect.iter
            (fun q ->
              Array.blit q 0 p 0 (d - 1);
              emit (Rect.linearize u p) len)
            outer
        end
      in
      let emit_merged =
        (* Fuse id-adjacent rows into maximal runs as they stream by. *)
        let pend_lo = ref 0 and pend_hi = ref (-1) in
        let push lo len =
          if !pend_hi + 1 = lo then pend_hi := lo + len - 1
          else begin
            if !pend_hi >= !pend_lo then k !pend_lo !pend_hi;
            pend_lo := lo;
            pend_hi := lo + len - 1
          end
        in
        let flush () = if !pend_hi >= !pend_lo then k !pend_lo !pend_hi in
        (push, flush)
      in
      let push, flush = emit_merged in
      (match rects with
      | [] -> ()
      | [ r ] -> rows_of r push
      | rs ->
          let acc = ref [] in
          List.iter (fun r -> rows_of r (fun lo len -> acc := (lo, len) :: !acc)) rs;
          let rows = List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc in
          List.iter (fun (lo, len) -> push lo len) rows);
      flush ()

let id_runs t =
  match t with
  | U { elts; _ } -> Sorted_iset.runs elts
  | S _ ->
      let acc = ref [] in
      iter_id_runs (fun lo hi -> acc := Interval.make lo hi :: !acc) t;
      List.rev !acc

let bounding_rect = function
  | U _ -> invalid_arg "Index_space.bounding_rect: unstructured space"
  | S { rects = []; _ } -> None
  | S { rects = r0 :: rest; _ } ->
      Some (List.fold_left Rect.union_bbox r0 rest)

let is_structured = function S _ -> true | U _ -> false

let pp ppf = function
  | S { rects; _ } ->
      Format.fprintf ppf "@[<h>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Rect.pp)
        rects
  | U { elts; _ } ->
      if Sorted_iset.cardinal elts > 16 then
        Format.fprintf ppf "{%d elements in [%d..%d]}"
          (Sorted_iset.cardinal elts) (Sorted_iset.min_elt elts)
          (Sorted_iset.max_elt elts)
      else Sorted_iset.pp ppf elts
