exception Privilege_violation of string

type t = {
  inst : Physical.t;
  space : Index_space.t;
  privs : Privilege.t list;
  full : bool; (* the view covers the whole instance *)
  modes : Privilege.mode option array; (* indexed by Field.id *)
}

let make inst ~space privs =
  if not (Index_space.subset space (Physical.ispace inst)) then
    invalid_arg "Accessor.make: space not contained in instance";
  (* Subset + equal cardinality means the view is the whole instance, so
     membership checks can use the instance's O(1) addressing. *)
  let full = Index_space.cardinal space = Physical.cardinal inst in
  let width =
    List.fold_left
      (fun w (p : Privilege.t) -> max w (Field.id p.Privilege.field + 1))
      0 privs
  in
  let modes = Array.make width None in
  (* First declaration of a field wins, matching the old list scan. *)
  List.iter
    (fun (p : Privilege.t) ->
      let k = Field.id p.Privilege.field in
      if modes.(k) = None then modes.(k) <- Some p.Privilege.mode)
    (List.rev privs);
  { inst; space; privs; full; modes }

let space t = t.space
let privileges t = t.privs

let violation fmt = Format.kasprintf (fun s -> raise (Privilege_violation s)) fmt

let mode_of t f =
  let k = Field.id f in
  if k < Array.length t.modes then t.modes.(k) else None

let mem t id =
  if t.full then Physical.mem t.inst id else Index_space.mem t.space id

let check_elt t id =
  if not (mem t id) then
    violation "access to element %d outside the argument's index space" id

let get t f id =
  check_elt t id;
  match mode_of t f with
  | Some (Privilege.Read | Privilege.Read_write) -> Physical.get t.inst f id
  | Some (Privilege.Reduce _) ->
      violation "read of field %s under a reduce-only privilege" (Field.name f)
  | None -> violation "read of undeclared field %s" (Field.name f)

let set t f id v =
  check_elt t id;
  match mode_of t f with
  | Some Privilege.Read_write -> Physical.set t.inst f id v
  | Some Privilege.Read ->
      violation "write to field %s under a read-only privilege" (Field.name f)
  | Some (Privilege.Reduce _) ->
      violation "write to field %s under a reduce-only privilege" (Field.name f)
  | None -> violation "write to undeclared field %s" (Field.name f)

let reduce_with t ~op f id v =
  check_elt t id;
  Physical.update t.inst f id (fun old -> Privilege.apply_redop op old v)

let reduce t f id v =
  match mode_of t f with
  | Some (Privilege.Reduce op) -> reduce_with t ~op f id v
  | Some Privilege.Read_write ->
      violation
        "reduce to field %s under reads-writes: use reduce_op to name the \
         operator"
        (Field.name f)
  | Some Privilege.Read ->
      violation "reduce to field %s under a read-only privilege" (Field.name f)
  | None -> violation "reduce to undeclared field %s" (Field.name f)

let reduce_op t ~op f id v =
  match mode_of t f with
  | Some (Privilege.Reduce op') when op' = op -> reduce_with t ~op f id v
  | Some Privilege.Read_write -> reduce_with t ~op f id v
  | Some (Privilege.Reduce _) ->
      violation "reduce to field %s with a mismatched operator" (Field.name f)
  | Some Privilege.Read ->
      violation "reduce to field %s under a read-only privilege" (Field.name f)
  | None -> violation "reduce to undeclared field %s" (Field.name f)

(* Bulk access: privileges are checked once, at closure creation, and the
   closure body is the hoisted fast path — column and addressing resolved
   up front, the per-element work reduced to an index lookup plus the
   array access. View containment is still enforced per element (it is
   what keeps a kernel inside its subregion), but through the instance's
   O(1) addressing whenever the view is full. *)

let read_idx t col id =
  let k = Physical.index_of_opt t.inst id in
  if k >= 0 && (t.full || Index_space.mem t.space id) then Array.get col k
  else
    violation "access to element %d outside the argument's index space" id

let write_idx t col id v =
  let k = Physical.index_of_opt t.inst id in
  if k >= 0 && (t.full || Index_space.mem t.space id) then Array.set col k v
  else
    violation "access to element %d outside the argument's index space" id

let reader t f =
  match mode_of t f with
  | Some (Privilege.Read | Privilege.Read_write) ->
      let col = Physical.column t.inst f in
      fun id -> read_idx t col id
  | Some (Privilege.Reduce _) ->
      violation "read of field %s under a reduce-only privilege" (Field.name f)
  | None -> violation "read of undeclared field %s" (Field.name f)

let writer t f =
  match mode_of t f with
  | Some Privilege.Read_write ->
      let col = Physical.column t.inst f in
      fun id v -> write_idx t col id v
  | Some Privilege.Read ->
      violation "write to field %s under a read-only privilege" (Field.name f)
  | Some (Privilege.Reduce _) ->
      violation "write to field %s under a reduce-only privilege" (Field.name f)
  | None -> violation "write to undeclared field %s" (Field.name f)

let reducer_with t ~op f =
  let col = Physical.column t.inst f in
  let app = Privilege.apply_redop op in
  fun id v ->
    let k = Physical.index_of_opt t.inst id in
    if k >= 0 && (t.full || Index_space.mem t.space id) then
      col.(k) <- app col.(k) v
    else
      violation "access to element %d outside the argument's index space" id

let reducer t f =
  match mode_of t f with
  | Some (Privilege.Reduce op) -> reducer_with t ~op f
  | Some Privilege.Read_write ->
      violation
        "reduce to field %s under reads-writes: use reducer_op to name the \
         operator"
        (Field.name f)
  | Some Privilege.Read ->
      violation "reduce to field %s under a read-only privilege" (Field.name f)
  | None -> violation "reduce to undeclared field %s" (Field.name f)

let reducer_op t ~op f =
  match mode_of t f with
  | Some (Privilege.Reduce op') when op' = op -> reducer_with t ~op f
  | Some Privilege.Read_write -> reducer_with t ~op f
  | Some (Privilege.Reduce _) ->
      violation "reduce to field %s with a mismatched operator" (Field.name f)
  | Some Privilege.Read ->
      violation "reduce to field %s under a read-only privilege" (Field.name f)
  | None -> violation "reduce to undeclared field %s" (Field.name f)

let iter t f = Index_space.iter_ids f t.space
let iter_runs t k = Index_space.iter_id_runs k t.space
let cardinal t = Index_space.cardinal t.space
