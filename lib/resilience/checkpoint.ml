(* Checkpoint/restart state for a replicated block.

   A checkpoint is taken at a time-loop boundary with every shard
   quiescent, so it is a consistent cut: the contents of every
   (partition, color) instance, the root-region instances, and the
   replicated scalar environment, tagged with the completed iteration.
   The representation is plain ints/floats/strings, so [Marshal] round-
   trips it safely across processes (the kill-and-resume path). *)

open Regions

type inst_data = (string * (int * float) list) list

type t = {
  iter : int;
  insts : ((string * int) * inst_data) list;
  roots : (string * inst_data) list;
      (* keyed by root region *name*: region ids are process-global and
         differ between the checkpointing run and a restarted one *)
  scalars : (string * float) list;
}

let snapshot_inst inst =
  List.map (fun f -> (Field.name f, Physical.to_alist inst f)) (Physical.fields inst)

let restore_inst inst data =
  List.iter
    (fun (fname, cells) ->
      let f = Field.make fname in
      List.iter (fun (id, v) -> Physical.set inst f id v) cells)
    data

let magic = "ctrlrep-ckpt-v1"

let save t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  Marshal.to_channel oc t [];
  close_out oc;
  Sys.rename tmp path

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then
        invalid_arg
          (Printf.sprintf "Checkpoint.load: %s is not a checkpoint file" path);
      (Marshal.from_channel ic : t))
