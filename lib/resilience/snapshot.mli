(** Rollback snapshots for retryable leaf tasks.

    Before a leaf-task attempt runs with fault injection armed, the
    executor captures the instances (restricted to the fields the task
    holds write or reduce privilege on) the attempt may mutate; an
    injected failure restores them and the attempt re-executes. The
    privilege restriction is what makes re-execution safe: a leaf task
    reads only read-privileged fields (unchanged by the failed attempt)
    and writes only the snapshotted ones. *)

type t

val capture : (Regions.Physical.t * Regions.Field.t list) list -> t
(** Save the listed fields of each instance. *)

val restore : t -> unit
(** Copy every saved field back into its original instance. *)
