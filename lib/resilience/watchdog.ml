(* A stall watchdog for the domains backend: a monitor domain polls an
   [observe] closure and trips once the observed system has been
   quiescent — every shard blocked in a wait — with an unchanged
   progress counter for the full timeout. Quiescence is part of the
   predicate so a slow shard (long kernel, injected stall) that is
   *running* while others wait never trips the dog; only the state in
   which nobody can move does. *)

type observation = [ `Done | `Running of int | `Quiescent of int ]

type t = { stop : bool Atomic.t; dog : unit Domain.t }

let start ?(poll = 0.01) ~timeout ~observe ~trip () =
  let stop = Atomic.make false in
  let dog =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        let since = ref (Unix.gettimeofday ()) in
        let rec loop () =
          if not (Atomic.get stop) then begin
            Unix.sleepf poll;
            if not (Atomic.get stop) then begin
              let now = Unix.gettimeofday () in
              match observe () with
              | `Done -> ()
              | `Running n ->
                  last := n;
                  since := now;
                  loop ()
              | `Quiescent n ->
                  if n <> !last then begin
                    last := n;
                    since := now;
                    loop ()
                  end
                  else if now -. !since >= timeout then trip ()
                  else loop ()
            end
          end
        in
        loop ())
  in
  { stop; dog }

let stop t =
  Atomic.set t.stop true;
  Domain.join t.dog
