type site =
  | Leaf_task of string
  | Release_delay of int
  | Shard_stall
  | Net_send of int

let site_to_string = function
  | Leaf_task t -> Printf.sprintf "leaf-task(%s)" t
  | Release_delay id -> Printf.sprintf "release-delay(copy#%d)" id
  | Shard_stall -> "shard-stall"
  | Net_send dst -> Printf.sprintf "net-send(->%d)" dst

exception Injected of { site : site; shard : int; occurrence : int }

let () =
  Printexc.register_printer (function
    | Injected { site; shard; occurrence } ->
        Some
          (Printf.sprintf "Resilience.Fault.Injected(%s, shard %d, #%d)"
             (site_to_string site) shard occurrence)
    | _ -> None)

type policy = {
  leaf_fail_rate : float;
  leaf_retries : int;
  release_delay_rate : float;
  release_delay_steps : int;
  stall_rate : float;
  stall_steps : int;
  net_fail_rate : float;
  net_retries : int;
  delay_seconds : float;
  max_faults : int;
}

let default_policy =
  {
    leaf_fail_rate = 0.05;
    leaf_retries = 3;
    release_delay_rate = 0.02;
    release_delay_steps = 3;
    stall_rate = 0.02;
    stall_steps = 4;
    net_fail_rate = 0.02;
    net_retries = 5;
    delay_seconds = 0.001;
    max_faults = 1000;
  }

let no_faults =
  {
    default_policy with
    leaf_fail_rate = 0.;
    release_delay_rate = 0.;
    stall_rate = 0.;
    net_fail_rate = 0.;
  }

type t = {
  pol : policy;
  fseed : int;
  lock : Mutex.t;
  counts : (site * int, int) Hashtbl.t; (* (site, shard) -> occurrences *)
  mutable fired : (site * int * int) list;
  mutable nfired : int;
}

let create ?(policy = default_policy) ~seed () =
  {
    pol = policy;
    fseed = seed;
    lock = Mutex.create ();
    counts = Hashtbl.create 64;
    fired = [];
    nfired = 0;
  }

let policy t = t.pol
let seed t = t.fseed

(* splitmix64 finalizer: full-avalanche mix of the decision coordinates. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

(* Tags 1..4 are distinct mod 4, so shifting the payload by 2 keeps the
   codes collision-free and leaves pre-existing sites' schedules stable. *)
let site_code = function
  | Leaf_task name -> 1 + (Hashtbl.hash name lsl 2)
  | Release_delay id -> 2 + (id lsl 2)
  | Shard_stall -> 3
  | Net_send dst -> 4 + (dst lsl 2)

(* Uniform draw in [0,1) from (seed, site, shard, occurrence). *)
let u01 ~seed ~site ~shard ~occurrence =
  let h =
    Int64.of_int
      ((seed * 0x2545F491) lxor (site_code site * 0x9E3779B9)
      lxor (shard * 0x85EBCA6B) lxor (occurrence * 0xC2B2AE35))
  in
  let bits = Int64.shift_right_logical (splitmix64 h) 11 in
  Int64.to_float bits /. 9007199254740992. (* 2^53 *)

let rate_of t = function
  | Leaf_task _ -> t.pol.leaf_fail_rate
  | Release_delay _ -> t.pol.release_delay_rate
  | Shard_stall -> t.pol.stall_rate
  | Net_send _ -> t.pol.net_fail_rate

let draw t site ~shard =
  let rate = rate_of t site in
  if rate <= 0. then false
  else begin
    Mutex.lock t.lock;
    let key = (site, shard) in
    let occurrence =
      match Hashtbl.find_opt t.counts key with Some n -> n | None -> 0
    in
    Hashtbl.replace t.counts key (occurrence + 1);
    let fire =
      t.nfired < t.pol.max_faults
      && u01 ~seed:t.fseed ~site ~shard ~occurrence < rate
    in
    if fire then begin
      t.fired <- (site, shard, occurrence) :: t.fired;
      t.nfired <- t.nfired + 1
    end;
    Mutex.unlock t.lock;
    fire
  end

let injected t =
  Mutex.lock t.lock;
  let n = t.nfired in
  Mutex.unlock t.lock;
  n

let schedule t =
  Mutex.lock t.lock;
  let l = t.fired in
  Mutex.unlock t.lock;
  List.sort compare l
