(* Structured stall/deadlock diagnostics: a per-shard picture of what the
   SPMD executor was doing when the watchdog (or the stepper's
   no-progress sweep) declared the run stuck. *)

type chan = { copy_id : int; src : int; dst : int; war : int; raw : int }

type wait =
  | Running  (** executing, not blocked on runtime state *)
  | At_copy of chan list  (** producer waiting for WAR credits *)
  | At_await of chan list  (** consumer waiting for RAW tokens *)
  | At_barrier of { arrived : int; generation : int }
  | At_collective of {
      var : string;
      arrived : int;
      consumed : int;
      published : bool;
    }
  | At_checkpoint of { arrived : int; generation : int }
  | Finished

type shard = { sid : int; instr : string option; wait : wait }

type t = {
  reason : string;
  shards : shard list;
  barrier_arrived : int;
  barrier_generation : int;
}

let pp_chan ppf c =
  Format.fprintf ppf "copy#%d (%d->%d) war=%d raw=%d" c.copy_id c.src c.dst
    c.war c.raw

let pp_chans ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_chan ppf l

let pp_wait ppf = function
  | Running -> Format.pp_print_string ppf "running"
  | At_copy l -> Format.fprintf ppf "blocked issuing copy on [%a]" pp_chans l
  | At_await l -> Format.fprintf ppf "blocked awaiting copy on [%a]" pp_chans l
  | At_barrier { arrived; generation } ->
      Format.fprintf ppf "in barrier (arrived %d, generation %d)" arrived
        generation
  | At_collective { var; arrived; consumed; published } ->
      Format.fprintf ppf
        "in collective for %s (arrived %d, consumed %d, published %b)" var
        arrived consumed published
  | At_checkpoint { arrived; generation } ->
      Format.fprintf ppf "in checkpoint barrier (arrived %d, generation %d)"
        arrived generation
  | Finished -> Format.pp_print_string ppf "finished"

let pp_shard ppf s =
  Format.fprintf ppf "shard %d: %a" s.sid pp_wait s.wait;
  match s.instr with
  | None -> ()
  | Some i -> Format.fprintf ppf "@,  at: %s" i

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s@,barrier: arrived %d, generation %d@,%a@]" t.reason
    t.barrier_arrived t.barrier_generation
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_shard)
    t.shards

let to_string t = Format.asprintf "%a" pp t
