(** Stall watchdog for truly parallel (domains) execution.

    The cooperative stepper can prove a deadlock by sweeping every live
    shard once; real domains cannot, so a monitor domain polls the run's
    state instead. The client supplies [observe], which must report
    (cheaply, typically under the run's monitor lock):

    - [`Done] — the run completed; the watchdog exits.
    - [`Running n] — at least one shard is executing (not blocked in a
      wait); [n] is the run's monotonic progress counter.
    - [`Quiescent n] — every live shard is blocked in a wait.

    The watchdog trips — calls [trip] exactly once, from the monitor
    domain — when the run stays [`Quiescent] with an unchanged progress
    counter for [timeout] seconds. [trip] should record a diagnostic and
    wake all waiters so they can raise. *)

type observation = [ `Done | `Running of int | `Quiescent of int ]

type t

val start :
  ?poll:float ->
  timeout:float ->
  observe:(unit -> observation) ->
  trip:(unit -> unit) ->
  unit ->
  t
(** [poll] defaults to 10ms (clamped by callers as needed). *)

val stop : t -> unit
(** Signal the monitor domain to exit and join it. Safe to call whether
    or not the dog has tripped. *)
