(** Checkpoint/restart state for a replicated SPMD block.

    Taken at a time-loop boundary with every shard quiescent (the
    executor synchronises shards on a dedicated checkpoint barrier), a
    checkpoint is a consistent cut of the run:

    - every (partition, color) physical instance of the block,
    - the root-region instances of the context (so a restart into a
      fresh context needs no replay of the sequential prefix),
    - the replicated scalar environment,
    - the completed iteration number of the block's time loop.

    A restart ([Spmd.Exec.run_block ?restore] / [Spmd.Exec.run ?restore])
    restores all of the above, skips the block's initialization copies,
    and resumes the time loop at [iter + 1]. *)

type inst_data = (string * (int * float) list) list
(** Field name -> (element id, value) pairs, id-ascending. *)

type t = {
  iter : int;  (** completed iterations of the block's time loop *)
  insts : ((string * int) * inst_data) list;
      (** (partition name, color) -> instance contents *)
  roots : (string * inst_data) list;
      (** root region name -> contents (names, unlike region ids, are
          stable across program instances and processes) *)
  scalars : (string * float) list;  (** replicated scalar environment *)
}

val snapshot_inst : Regions.Physical.t -> inst_data
val restore_inst : Regions.Physical.t -> inst_data -> unit

val save : t -> path:string -> unit
(** Marshal to [path] via a temporary file and atomic rename, so a crash
    mid-save never corrupts the latest checkpoint. *)

val load : path:string -> t
(** Raises [Invalid_argument] when [path] is not a checkpoint file. *)
