(** Structured per-shard stall/deadlock diagnostics.

    When the SPMD executor declares a run stuck — immediately in the
    cooperative stepper (a sweep in which every live shard is blocked),
    or after the watchdog timeout under real domains — it raises
    [Spmd.Exec.Deadlock] carrying one of these instead of a one-line
    string: the blocked instruction of every shard, the synchronisation
    channel counters it is waiting on, barrier generation and collective
    slot state. *)

type chan = { copy_id : int; src : int; dst : int; war : int; raw : int }
(** One point-to-point channel [(copy_id, src color, dst color)] with its
    current write-after-read credit and read-after-write token counts. *)

type wait =
  | Running
  | At_copy of chan list
  | At_await of chan list
  | At_barrier of { arrived : int; generation : int }
  | At_collective of {
      var : string;
      arrived : int;
      consumed : int;
      published : bool;
    }
  | At_checkpoint of { arrived : int; generation : int }
  | Finished

type shard = { sid : int; instr : string option; wait : wait }

type t = {
  reason : string;
  shards : shard list;
  barrier_arrived : int;
  barrier_generation : int;
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string
