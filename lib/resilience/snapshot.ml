(* Rollback snapshots for retryable leaf tasks: a saved copy of the
   fields a task attempt may write, restorable after an injected fault.
   Capture and restore use the physical-layer copy primitives, so a
   snapshot is exactly the data a re-executed attempt must not observe. *)

open Regions

type entry = { target : Physical.t; fields : Field.t list; saved : Physical.t }
type t = entry list

let capture targets =
  List.map
    (fun (target, fields) ->
      let saved = Physical.create_over (Physical.ispace target) fields in
      Physical.copy_into ~fields ~src:target ~dst:saved ();
      { target; fields; saved })
    targets

let restore t =
  List.iter
    (fun { target; fields; saved } ->
      Physical.copy_into ~fields ~src:saved ~dst:target ())
    t
