(** Deterministic, seed-driven fault injection.

    Failures in a parallel runtime are only debuggable if they are
    reproducible. Every injection decision here is a pure function of
    [(seed, site, shard, occurrence)] — the occurrence counter advances
    once per *program point executed* by a shard, never per scheduler
    retry — so a shard's fault schedule depends only on its deterministic
    instruction stream, not on how the scheduler happened to interleave
    it. The same seed therefore produces the same fault schedule under
    the cooperative stepper, the seeded-random stepper, and real OCaml
    domains.

    Fault sites (the names used by tests, the chaos tool and diagnostics):

    - {!Leaf_task}: a leaf-task kernel attempt raises {!Injected} after
      running (simulating a fault that corrupted its writes); the
      executor rolls the written instances back and retries up to the
      policy cap.
    - {!Release_delay}: a consumer delays granting a write-after-read
      credit — the producer of the next copy stalls on the channel.
    - {!Shard_stall}: a whole shard pauses between instructions (a slow
      node). Exercises the stall watchdog's ability to tell a slow shard
      from a deadlocked one.
    - {!Net_send}: a transport send to the given destination rank fails
      transiently; the sender retries (reconnecting on stream
      transports) up to the policy cap before declaring the peer down. *)

type site =
  | Leaf_task of string  (** task name *)
  | Release_delay of int  (** copy_id whose Release is delayed *)
  | Shard_stall
  | Net_send of int  (** destination rank of the failed send *)

val site_to_string : site -> string

exception Injected of { site : site; shard : int; occurrence : int }

type policy = {
  leaf_fail_rate : float;  (** probability a leaf-task attempt fails *)
  leaf_retries : int;  (** rollback/re-execute cap per leaf attempt *)
  release_delay_rate : float;
  release_delay_steps : int;  (** stepper: blocked scheduler attempts *)
  stall_rate : float;
  stall_steps : int;  (** stepper: blocked scheduler attempts *)
  net_fail_rate : float;  (** probability a transport send fails *)
  net_retries : int;  (** resend/reconnect cap per message *)
  delay_seconds : float;  (** domains: sleep per injected delay/stall *)
  max_faults : int;  (** total injection cap (safety valve) *)
}

val default_policy : policy
(** Moderate rates suited to the chaos soak: transient leaf failures with
    retries, occasional release delays and shard stalls. *)

val no_faults : policy
(** All rates zero (an armed injector that never fires). *)

type t

val create : ?policy:policy -> seed:int -> unit -> t
(** Thread-safe: one injector may be shared by all shards of a run. *)

val policy : t -> policy
val seed : t -> int

val draw : t -> site -> shard:int -> bool
(** Advance the [(site, shard)] occurrence counter and decide whether the
    fault fires. Fired faults are recorded in {!schedule}. *)

val injected : t -> int
(** Number of faults fired so far. *)

val schedule : t -> (site * int * int) list
(** The fired faults as [(site, shard, occurrence)], sorted — a
    deterministic fingerprint of the run's fault schedule (sorting makes
    it independent of domain interleaving). *)
