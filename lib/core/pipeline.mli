(** The control replication pipeline (paper §3).

    [compile] turns an implicitly parallel program into an SPMD one:

    + well-formedness check ({!Ir.Check});
    + projection normalization — every launch argument becomes [q\[i\]]
      ({!Normalize}, §2.2);
    + block selection — each outer [For_time] loop whose body is made of
      index launches and scalar statements is replicated; everything else
      stays sequential (control replication is a local transformation,
      §2.2);
    + data replication with reduction temporaries ({!Replicate}, §3.1,
      §4.3–4.4);
    + copy placement ({!Placement}, §3.2);
    + synchronization insertion ({!Sync}, §3.4);
    + shard creation — the block records the shard count; ownership of
      colors is the block distribution of §3.5, applied by the executor
      and the simulator.

    The copy intersection optimization (§3.3) is a runtime analysis: the
    pipeline only marks copies [`Sparse] (shallow + complete intersections)
    or [`Dense] (all pairs) for {!Spmd.Intersections} to compute. *)

type config = {
  shards : int;
  sync : [ `P2p | `Barrier ]; (* §3.4 point-to-point vs naive barriers *)
  intersections : [ `Sparse | `Dense ]; (* §3.3 on / off *)
  placement : bool; (* §3.2 on / off *)
  hierarchical : bool; (* §4.5 on / off *)
}

val default : shards:int -> config
(** All optimizations on: [`P2p], [`Sparse], placement, hierarchical. *)

type ineligible = { stmt : Ir.Types.stmt; reason : string }

val block_eligible : Ir.Program.t -> Ir.Types.stmt list -> ineligible option
(** [None] when a [For_time] body can be replicated; otherwise the first
    offending statement and why. *)

val compile : ?trace:Obs.Trace.t -> config -> Ir.Program.t -> Spmd.Prog.t
(** Raises [Invalid_argument] when {!Ir.Check} fails. Programs with no
    eligible block compile to a fully sequential [Spmd.Prog.t].

    [trace] records one wall-clock span per pipeline phase (cr.check,
    cr.normalize, then cr.replicate / cr.placement / cr.sync / cr.shard
    per replicated block, tid 1000) with copy and sync-op counts as
    args. *)

(** Intermediate artifacts of one replicated block — the Fig. 4 stages. *)
type staged = {
  replicated : Spmd.Prog.instr list;
      (** loop body after data replication (Fig. 4a) *)
  placed : Spmd.Prog.instr list;  (** after copy placement (§3.2) *)
  synced : Spmd.Prog.instr list;
      (** after synchronization insertion (Fig. 4c / the shard body of
          Fig. 4d) *)
}

val stage_blocks : config -> Ir.Program.t -> staged list
(** The staged artifacts of every eligible block, in program order (for
    inspection and golden tests; [compile] is the production path). *)
