open Regions
open Ir

type config = {
  shards : int;
  sync : [ `P2p | `Barrier ];
  intersections : [ `Sparse | `Dense ];
  placement : bool;
  hierarchical : bool;
}

let default ~shards =
  { shards; sync = `P2p; intersections = `Sparse; placement = true;
    hierarchical = true }

type ineligible = { stmt : Types.stmt; reason : string }

(* A For_time body is replicable when it consists of index launches (plain
   or scalar-reducing) over identity projections and scalar assignments,
   with write arguments independent across iterations and partition color
   counts equal to their launch space — the §2.2 target-program conditions
   plus what the block ownership mapping needs. *)
let block_eligible (prog : Program.t) stmts =
  let problem = ref None in
  let report stmt reason =
    match !problem with
    | None -> problem := Some { stmt; reason }
    | Some _ -> ()
  in
  let check_launch stmt space (l : Types.launch) =
    let task = Program.find_task prog l.Types.task in
    let n = Program.find_space prog space in
    (* (partition, field, mode) triples of this launch, by argument. *)
    let accesses = ref [] in
    List.iteri
      (fun i rarg ->
        match rarg with
        | Types.Whole r ->
            report stmt
              (Printf.sprintf "whole-region argument %s in an index launch" r)
        | Types.Part (pname, proj) ->
            (match proj with
            | Types.Id -> ()
            | Types.Fn (f, _) ->
                report stmt
                  (Printf.sprintf
                     "non-normalized projection %s on %s (run Normalize \
                      first)"
                     f pname));
            let p = Program.find_partition prog pname in
            if Partition.color_count p <> n then
              report stmt
                (Printf.sprintf
                   "partition %s has %d colors but launch space %s has %d \
                    points (block ownership needs them equal)"
                   pname (Partition.color_count p) space n);
            if
              Task.writes_param task i
              && p.Partition.disjointness <> Partition.Disjoint
            then
              report stmt
                (Printf.sprintf "write to aliased partition %s" pname);
            List.iter
              (fun (pr : Privilege.t) ->
                accesses :=
                  (i, pname, pr.Privilege.field, pr.Privilege.mode)
                  :: !accesses)
              (Task.param_privs task i))
      l.Types.rargs;
    (* Iterations must be independent (§2.2: no loop-carried dependencies
       except reductions): two conflicting accesses to the same field
       through different, possibly-overlapping partitions would let
       iteration i touch data iteration j uses. Accesses through the same
       partition are diagonal (identity projections) and safe. *)
    let conflicting m1 m2 =
      match (m1, m2) with
      | Privilege.Read, Privilege.Read -> false
      | Privilege.Reduce a, Privilege.Reduce b -> a <> b
      | _ -> true
    in
    List.iter
      (fun (i, p, f, m) ->
        List.iter
          (fun (i', p', f', m') ->
            if
              i < i' && p <> p'
              && Regions.Field.equal f f'
              && conflicting m m'
              && Alias.may_alias ~hierarchical:true prog.Program.tree
                   (Program.find_partition prog p)
                   (Program.find_partition prog p')
            then
              report stmt
                (Printf.sprintf
                   "arguments %s and %s conflict on field %s and may alias \
                    (loop-carried dependency)"
                   p p' (Regions.Field.name f)))
          !accesses)
      !accesses
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Types.Index_launch { space; launch } ->
          check_launch stmt space launch
      | Types.Index_launch_reduce { space; launch; _ } ->
          check_launch stmt space launch
      | Types.Assign _ -> ()
      | Types.Single_launch _ ->
          report stmt "single task launch inside the loop"
      | Types.For_time _ -> report stmt "nested time loop"
      | Types.If _ -> report stmt "data-dependent control flow in the loop")
    stmts;
  !problem

let collect_copies instrs =
  let rec go acc = function
    | [] -> acc
    | Spmd.Prog.Copy c :: rest -> go (acc @ [ c ]) rest
    | Spmd.Prog.For_time { body; _ } :: rest -> go (go acc body) rest
    | _ :: rest -> go acc rest
  in
  go [] instrs

type staged = {
  replicated : Spmd.Prog.instr list;
  placed : Spmd.Prog.instr list;
  synced : Spmd.Prog.instr list;
}

(* Tid for the compile pipeline's wall-clock phase spans. *)
let pipeline_tid = 1000

let rec count_copies instrs =
  List.fold_left
    (fun n i ->
      n
      +
      match i with
      | Spmd.Prog.Copy _ -> 1
      | Spmd.Prog.For_time { body; _ } -> count_copies body
      | _ -> 0)
    0 instrs

let rec count_sync_ops instrs =
  List.fold_left
    (fun n i ->
      n
      +
      match i with
      | Spmd.Prog.Await _ | Spmd.Prog.Release _ | Spmd.Prog.Barrier -> 1
      | Spmd.Prog.For_time { body; _ } -> count_sync_ops body
      | _ -> 0)
    0 instrs

(* A phase span whose args come from the phase's result (copy and sync-op
   counts are only known after the transformation ran). *)
let phase trace name args_of f =
  if not (Obs.Trace.enabled trace) then f ()
  else begin
    let t0 = Obs.Trace.now_us trace in
    let r = f () in
    Obs.Trace.complete trace ~tid:pipeline_tid ~cat:"cr" ~args:(args_of r)
      ~ts:t0
      ~dur:(Obs.Trace.now_us trace -. t0)
      name;
    r
  end

(* Shared skeleton of [compile] and [stage_blocks]: run the staged
   transformation on one eligible block body. *)
let transform_block ?(trace = Obs.Trace.null) (config : config) prog
    ~fresh_copy_id body =
  let r =
    phase trace "cr.replicate"
      (fun r ->
        [
          ( "copies",
            Obs.Trace.Int
              (count_copies
                 (r.Replicate.init @ r.Replicate.loop_body
                @ r.Replicate.finalize)) );
        ])
      (fun () ->
        Replicate.block ~prog ~pairs_mode:config.intersections
          ~hierarchical:config.hierarchical ~fresh_copy_id body)
  in
  let finalize_sources =
    List.filter_map
      (function
        | Spmd.Prog.Copy { src = Spmd.Prog.Opart p; _ } -> Some p
        | _ -> None)
      r.Replicate.finalize
  in
  let placed =
    phase trace "cr.placement"
      (fun placed -> [ ("copies", Obs.Trace.Int (count_copies placed)) ])
      (fun () ->
        if config.placement then
          Placement.optimize ~prog:r.Replicate.prog ~finalize_sources
            r.Replicate.loop_body
        else r.Replicate.loop_body)
  in
  let synced, credits =
    phase trace "cr.sync"
      (fun (synced, credits) ->
        [
          ("sync_ops", Obs.Trace.Int (count_sync_ops synced));
          ("credits", Obs.Trace.Int (List.length credits));
        ])
      (fun () -> Sync.insert ~prog:r.Replicate.prog ~mode:config.sync placed)
  in
  (r, placed, synced, credits)

let compile ?(trace = Obs.Trace.null) (config : config) (prog : Program.t) =
  phase trace "cr.check" (fun _ -> []) (fun () -> Check.check_exn prog);
  let prog =
    phase trace "cr.normalize"
      (fun _ -> [])
      (fun () -> Normalize.program prog)
  in
  let counter = ref 0 in
  let fresh_copy_id () =
    let id = !counter in
    incr counter;
    id
  in
  (* Thread the program through: replication adds temporary partitions. *)
  let cur = ref prog in
  let items = ref [] in
  let pending_seq = ref [] in
  let flush_seq () =
    match !pending_seq with
    | [] -> ()
    | stmts ->
        items := Spmd.Prog.Seq (List.rev stmts) :: !items;
        pending_seq := []
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Types.For_time { var; count; body }
        when block_eligible !cur body = None ->
          flush_seq ();
          let r, _, loop_body, credits =
            transform_block ~trace config !cur ~fresh_copy_id body
          in
          cur := r.Replicate.prog;
          let block =
            phase trace "cr.shard"
              (fun (b : Spmd.Prog.block) ->
                [
                  ("shards", Obs.Trace.Int b.Spmd.Prog.shards);
                  ("copies", Obs.Trace.Int (List.length b.Spmd.Prog.copies));
                ])
              (fun () ->
                let body_instrs =
                  [ Spmd.Prog.For_time { var; count; body = loop_body } ]
                in
                {
                  Spmd.Prog.shards = config.shards;
                  init = r.Replicate.init;
                  body = body_instrs;
                  finalize = r.Replicate.finalize;
                  copies =
                    collect_copies
                      (r.Replicate.init @ loop_body @ r.Replicate.finalize);
                  credits;
                })
          in
          items := Spmd.Prog.Replicated block :: !items
      | _ -> pending_seq := stmt :: !pending_seq)
    prog.Program.body;
  flush_seq ();
  { Spmd.Prog.source = !cur; items = List.rev !items }


let stage_blocks (config : config) (prog : Program.t) =
  Check.check_exn prog;
  let prog = Normalize.program prog in
  let counter = ref 0 in
  let fresh_copy_id () =
    let id = !counter in
    incr counter;
    id
  in
  let cur = ref prog in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Types.For_time { body; _ } when block_eligible !cur body = None ->
          let r, placed, synced, _ =
            transform_block config !cur ~fresh_copy_id body
          in
          cur := r.Replicate.prog;
          Some { replicated = r.Replicate.loop_body; placed; synced }
      | _ -> None)
    prog.Program.body
