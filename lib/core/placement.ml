open Regions
open Ir

let subset_fields a b = List.for_all (fun f -> List.exists (Field.equal f) b) a
let overlap_fields a b = List.exists (fun f -> List.exists (Field.equal f) b) a

(* Does [instr] read or write any of [fields] of partition [part]? *)
let uses_partition prog part fields instr =
  match instr with
  | Spmd.Prog.Launch { launch; _ } | Spmd.Prog.Launch_collective { launch; _ }
    ->
      let accs = Summary.launch_accesses prog launch in
      List.exists
        (fun (a : Summary.access) ->
          a.Summary.part = part
          && List.exists (Field.equal a.Summary.field) fields
          &&
          match a.Summary.mode with
          | Privilege.Read | Privilege.Read_write -> true
          | Privilege.Reduce _ -> false)
        accs
  | Spmd.Prog.Copy c ->
      (* A copy reads its source and writes its destination. *)
      (match c.Spmd.Prog.src with
      | Spmd.Prog.Opart p -> p = part && overlap_fields fields c.Spmd.Prog.fields
      | Spmd.Prog.Oregion _ -> false)
      || (match c.Spmd.Prog.dst with
         | Spmd.Prog.Opart p ->
             p = part && overlap_fields fields c.Spmd.Prog.fields
         | Spmd.Prog.Oregion _ -> false)
  | Spmd.Prog.Fill { part = p; fields = fl; _ } ->
      p = part && overlap_fields fields fl
  | Spmd.Prog.Await _ | Spmd.Prog.Release _ | Spmd.Prog.Barrier
  | Spmd.Prog.Assign _ | Spmd.Prog.Checkpoint _ ->
      false
  | Spmd.Prog.For_time _ ->
      invalid_arg "Placement: nested loop in replicated body"

let optimize ~prog ?(finalize_sources = []) instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let removed = Array.make n false in
  for k = 0 to n - 1 do
    match arr.(k) with
    | Spmd.Prog.Copy c when c.Spmd.Prog.reduce = None -> (
        let dst_part =
          match c.Spmd.Prog.dst with
          | Spmd.Prog.Opart p -> Some p
          | Spmd.Prog.Oregion _ -> None
        in
        match dst_part with
        | None -> ()
        | Some dp ->
            (* Scan forward — cyclically around the loop back edge, unless
               the destination flows into finalization, in which case its
               last value is observable after the final iteration — for an
               identical copy shadowing this one. *)
            let cyclic = not (List.mem dp finalize_sources) in
            let limit = if cyclic then n - 1 else n - 1 - k in
            let rec scan step =
              if step > limit then ()
              else
                let j = (k + step) mod n in
                if removed.(j) then scan (step + 1)
                else
                  match arr.(j) with
                  | Spmd.Prog.Copy c'
                    when c'.Spmd.Prog.reduce = None
                         && c'.Spmd.Prog.src = c.Spmd.Prog.src
                         && c'.Spmd.Prog.dst = c.Spmd.Prog.dst
                         && subset_fields c.Spmd.Prog.fields
                              c'.Spmd.Prog.fields ->
                      removed.(k) <- true
                  | instr ->
                      (* Stop if the destination's copied fields are used in
                         between: the earlier copy is observable. *)
                      if uses_partition prog dp c.Spmd.Prog.fields instr then
                        ()
                      else scan (step + 1)
            in
            scan 1)
    | _ -> ()
  done;
  List.filteri (fun k _ -> not removed.(k)) (Array.to_list arr)
