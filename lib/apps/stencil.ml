open Geometry
open Regions
open Ir
module Syn = Program.Syntax

type config = {
  nodes : int;
  points_per_node : int;
  tiles_per_node : int;
  radius : int;
  timesteps : int;
}

(* Per-point kernel times calibrated so a 40000^2-per-node problem runs at
   the paper's ~1500 x 10^6 points/s/node with 11 tiles on the node's 11
   compute cores (Fig. 6): one step is 1.6e9 points/node at ~6.67 ns/point
   of combined stencil + increment work per core. *)
let stencil_seconds_per_point = 6.6e-9
let increment_seconds_per_point = 0.73e-9

let default ~nodes =
  {
    nodes;
    points_per_node = 40_000 * 40_000;
    tiles_per_node = 11;
    radius = 2;
    timesteps = 10;
  }

let test_config ~nodes =
  { nodes; points_per_node = 24 * 24; tiles_per_node = 4; radius = 2; timesteps = 3 }

let fin = Field.make "in"
let fout = Field.make "out"

(* Near-square factorization a*b = n with a <= b. *)
let near_square n =
  let a = ref 1 in
  for d = 1 to int_of_float (sqrt (float_of_int n)) do
    if n mod d = 0 then a := d
  done;
  (!a, n / !a)

(* The geometry of an instance: node grid, per-node tile grid, side
   lengths. *)
type geom = {
  side : int; (* per-node square side *)
  nx : int; (* node grid *)
  ny : int;
  tx : int; (* tile grid within a node *)
  ty : int;
  width : int;
  height : int;
}

let geometry cfg =
  let side =
    let s = int_of_float (Float.round (sqrt (float_of_int cfg.points_per_node))) in
    max s 1
  in
  let nx, ny = near_square cfg.nodes in
  let tx, ty = near_square cfg.tiles_per_node in
  { side; nx; ny; tx; ty; width = nx * side; height = ny * side }

(* Tile rectangle for node (inx, iny), local tile (jx, jy): per-node block
   of the global grid, sub-blocked into tiles. *)
let tile_rect g cfg ~inx ~iny ~jx ~jy =
  ignore cfg;
  let x0 = inx * g.side and y0 = iny * g.side in
  match
    ( Rect.block_1d ~lo:x0 ~hi:(x0 + g.side - 1) ~pieces:g.tx ~index:jx,
      Rect.block_1d ~lo:y0 ~hi:(y0 + g.side - 1) ~pieces:g.ty ~index:jy )
  with
  | Some (xl, xh), Some (yl, yh) -> Rect.make2 ~lo:(xl, yl) ~hi:(xh, yh)
  | _ -> invalid_arg "Stencil: tile grid larger than per-node side"

(* Star-shaped halo: four arm slabs of depth [radius] around the tile (no
   corners — the PRK star stencil reads none — and no tile interior: own
   data is read through the tile argument, so only genuinely remote data is
   ever copied). *)
let star_halo radius (r : Rect.t) =
  let x0 = r.Rect.lo.(0)
  and y0 = r.Rect.lo.(1)
  and x1 = r.Rect.hi.(0)
  and y1 = r.Rect.hi.(1) in
  [
    Rect.make2 ~lo:(x0 - radius, y0) ~hi:(x0 - 1, y1);
    Rect.make2 ~lo:(x1 + 1, y0) ~hi:(x1 + radius, y1);
    Rect.make2 ~lo:(x0, y0 - radius) ~hi:(x1, y0 - 1);
    Rect.make2 ~lo:(x0, y1 + 1) ~hi:(x1, y1 + radius);
  ]

let program cfg =
  let g = geometry cfg in
  let b = Program.Builder.create ~name:"stencil" in
  let grid_rect = Rect.make2 ~lo:(0, 0) ~hi:(g.width - 1, g.height - 1) in
  let grid =
    Program.Builder.region b ~name:"grid" (Index_space.of_rect grid_rect)
      [ fin; fout ]
  in
  let colors = cfg.nodes * cfg.tiles_per_node in
  (* Colors are node-major so the shard block distribution gives each node
     exactly its own tiles. *)
  let tile_space c =
    let node = c / cfg.tiles_per_node and local = c mod cfg.tiles_per_node in
    let inx = node mod g.nx and iny = node / g.nx in
    let jx = local mod g.tx and jy = local / g.tx in
    Index_space.of_rects ~universe:grid_rect
      [ tile_rect g cfg ~inx ~iny ~jx ~jy ]
  in
  let tiles =
    Program.Builder.partition b ~name:"tiles" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true grid
          (Array.init colors tile_space))
  in
  let _halos =
    Program.Builder.partition b ~name:"halos" (fun ~name ->
        Partition.image_rects ~name ~target:grid ~src:tiles
          (star_halo cfg.radius))
  in
  Program.Builder.space b ~name:"T" colors;
  let r = cfg.radius in
  (* Per arm-point weight w/r with w = 0.25: the stencil of a linear field
     is the field itself (see expected_output). *)
  let w = 0.25 in
  let interior x y =
    x >= r && x < g.width - r && y >= r && y < g.height - r
  in
  let u = grid_rect in
  let stencil_task =
    Task.make ~name:"stencil"
      ~params:
        [
          { Task.pname = "out_tile"; privs = [ Privilege.writes fout ] };
          { Task.pname = "in_tile"; privs = [ Privilege.reads fin ] };
          { Task.pname = "in_halo"; privs = [ Privilege.reads fin ] };
        ]
      ~cost:(fun sizes ->
        float_of_int sizes.(0) *. stencil_seconds_per_point)
      (fun accs _ ->
        let out = accs.(0) and own = accs.(1) and halo = accs.(2) in
        let rout = Accessor.reader out fout
        and wout = Accessor.writer out fout
        and rown = Accessor.reader own fin
        and rhalo = Accessor.reader halo fin in
        (* Runs vary the fastest axis (y; x only on a row carry), so the
           coordinates are tracked incrementally instead of delinearizing
           every point. *)
        Accessor.iter_runs out (fun lo hi ->
            let p = Rect.delinearize u lo in
            let x = ref p.(0) and y = ref p.(1) in
            for id = lo to hi do
              if interior !x !y then begin
                let acc = ref (rout id) in
                for k = 1 to r do
                  let at dx dy =
                    let nid =
                      Rect.linearize u (Point.make2 (!x + dx) (!y + dy))
                    in
                    if Accessor.mem own nid then rown nid else rhalo nid
                  in
                  acc :=
                    !acc
                    +. (w /. float_of_int r)
                       *. (at k 0 +. at (-k) 0 +. at 0 k +. at 0 (-k))
                done;
                wout id !acc
              end;
              incr y;
              if !y = g.height then begin
                y := 0;
                incr x
              end
            done);
        0.)
  in
  let increment =
    Task.make ~name:"increment"
      ~params:[ { Task.pname = "in_tile"; privs = [ Privilege.writes fin ] } ]
      ~cost:(fun sizes ->
        float_of_int sizes.(0) *. increment_seconds_per_point)
      (fun accs _ ->
        let rin = Accessor.reader accs.(0) fin
        and win = Accessor.writer accs.(0) fin in
        Accessor.iter_runs accs.(0) (fun lo hi ->
            for id = lo to hi do
              win id (rin id +. 1.)
            done);
        0.)
  in
  let init_grid =
    Task.make ~name:"init_grid"
      ~params:
        [ { Task.pname = "grid"; privs = [ Privilege.writes fin; Privilege.writes fout ] } ]
      (fun accs _ ->
        let win = Accessor.writer accs.(0) fin
        and wout = Accessor.writer accs.(0) fout in
        Accessor.iter_runs accs.(0) (fun lo hi ->
            let p = Rect.delinearize u lo in
            let x = ref p.(0) and y = ref p.(1) in
            for id = lo to hi do
              win id (float_of_int (!x + !y));
              wout id 0.;
              incr y;
              if !y = g.height then begin
                y := 0;
                incr x
              end
            done);
        0.)
  in
  Program.Builder.task b stencil_task;
  Program.Builder.task b increment;
  Program.Builder.task b init_grid;
  Program.Builder.body b
    [
      Syn.run (Syn.call "init_grid" [ Syn.whole "grid" ]);
      Syn.for_time "t" cfg.timesteps
        [
          Syn.forall "T"
            (Syn.call "stencil"
               [ Syn.part "tiles"; Syn.part "tiles"; Syn.part "halos" ]);
          Syn.forall "T" (Syn.call "increment" [ Syn.part "tiles" ]);
        ];
    ];
  Program.Builder.finish b

let scale _cfg = Legion.Scale.unit_scale

let interior_checksum ctx prog =
  let grid = Program.find_region prog "grid" in
  let inst = Interp.Run.region_instance ctx grid in
  Index_space.fold_ids
    (fun acc id -> acc +. Physical.get inst fout id)
    0. grid.Region.ispace

(* With per-arm-point weight w/r and four arms, the star stencil of the
   linear initial field in(x,y) = x + y is (4 * r * w/r) * in = in for
   w = 0.25. Each step t contributes in_0(p) + t, so after T steps:
   out(p) = T*(x + y) + T*(T-1)/2 at points at least [radius] from the
   boundary. *)
let expected_output cfg ~x ~y =
  let t = float_of_int cfg.timesteps in
  (t *. float_of_int (x + y)) +. (t *. (t -. 1.) /. 2.)

module Reference = struct
  type variant = Mpi | Mpi_openmp

  (* Single-node work matches the Regent version (Fig. 6 shows comparable
     absolute performance); scaling subtracts halo exchange and a
     slowest-rank imbalance term that grows with sqrt(log ranks). The
     reference codes use all 12 cores (no dedicated analysis core). *)
  let per_step machine cfg variant =
    let g = geometry cfg in
    (* Calibrated to match the Regent single-node step by construction: the
       references use all 12 cores but lack Legion's data layout
       optimizations, which Fig. 6 shows roughly cancelling out. *)
    let base =
      float_of_int cfg.points_per_node
      *. (stencil_seconds_per_point +. increment_seconds_per_point)
      /. float_of_int (Realm.Machine.compute_cores machine)
    in
    let ranks =
      match variant with
      | Mpi -> machine.Realm.Machine.nodes * machine.Realm.Machine.cores_per_node
      | Mpi_openmp -> machine.Realm.Machine.nodes
    in
    let halo =
      if machine.Realm.Machine.nodes = 1 then 0.
      else
        let bytes =
          float_of_int (g.side * cfg.radius)
          *. machine.Realm.Machine.bytes_per_element
        in
        4.
        *. (machine.Realm.Machine.network_latency
           +. (bytes /. machine.Realm.Machine.network_bandwidth))
    in
    let imbalance =
      if ranks <= 1 then 0.
      else 0.004 *. base *. sqrt (log (float_of_int ranks))
    in
    base +. halo +. imbalance
end
