open Regions
open Ir
module Syn = Program.Syntax

type config = {
  nodes : int;
  pieces_per_node : int;
  piece_cells : int * int * int;
  timesteps : int;
}

(* Calibrated to the paper's ~1.5 x 10^6 cells/s/node (Fig. 7): 512k
   cells/node, 13 launches per step (save + 4 RK stages of flux, residual,
   update), ~0.34 s per step. *)
let flux_seconds_per_face = 0.30e-6
let residual_seconds_per_face = 0.20e-6
let update_seconds_per_cell = 0.13e-6
let save_seconds_per_cell = 0.10e-6
let rk_alphas = [| 0.25; 1. /. 3.; 0.5; 1. |]
let dt = 1e-3

let default ~nodes =
  { nodes; pieces_per_node = 10; piece_cells = (40, 40, 32); timesteps = 10 }

let sim_config ~nodes =
  (* 6x6x6 pieces keep the 1024-node instance (10240 pieces, ~6.6M faces)
     within a small memory budget; scale factors bridge to paper size. *)
  { nodes; pieces_per_node = 10; piece_cells = (6, 6, 6); timesteps = 10 }

let test_config ~nodes =
  { nodes; pieces_per_node = 2; piece_cells = (3, 3, 2); timesteps = 2 }

let cells_per_piece cfg =
  let x, y, z = cfg.piece_cells in
  x * y * z

let scale cfg =
  let full = default ~nodes:cfg.nodes in
  let compute =
    float_of_int (cells_per_piece full) /. float_of_int (cells_per_piece cfg)
  in
  let surface (x, y, z) = 2 * ((x * y) + (y * z) + (x * z)) in
  let copy =
    float_of_int (surface full.piece_cells)
    /. float_of_int (surface cfg.piece_cells)
  in
  Legion.Scale.make ~compute ~copy

let frho = Field.make "rho"
let fe = Field.make "energy"
let frho0 = Field.make "rho0"
let fe0 = Field.make "energy0"
let frrho = Field.make "res_rho"
let fre = Field.make "res_energy"
let fflux_rho = Field.make "flux_rho"
let fflux_e = Field.make "flux_energy"
let flc = Field.make "left_cell"
let frc = Field.make "right_cell"

(* Near-cubic factorization for the global piece grid. *)
let factor3 n =
  let best = ref (1, 1, n) and best_s = ref max_int in
  let lim = int_of_float (Float.cbrt (float_of_int n)) + 1 in
  for a = 1 to lim do
    if n mod a = 0 then begin
      let m = n / a in
      for b = a to int_of_float (sqrt (float_of_int m)) + 1 do
        if b >= 1 && m mod b = 0 then begin
          let c = m / b in
          let s = (a * b) + (b * c) + (a * c) in
          if s < !best_s then begin
            best := (a, b, c);
            best_s := s
          end
        end
      done
    end
  done;
  !best

(* The generated mesh: per-piece cell and face sets, halos, and face
   endpoints. *)
type mesh = {
  pieces : int;
  n_cells : int;
  n_faces : int;
  face_lc : int array;
  face_rc : int array;
  cell_sets : Geometry.Sorted_iset.t array;
  face_sets : Geometry.Sorted_iset.t array; (* faces owned by piece *)
  cell_halos : Geometry.Sorted_iset.t array;
      (* remote cells read by owned faces *)
  face_halos : Geometry.Sorted_iset.t array;
      (* remote faces touching own cells *)
}

let generate cfg =
  let pieces = cfg.nodes * cfg.pieces_per_node in
  let bx, by, bz = cfg.piece_cells in
  let gx, gy, gz = factor3 pieces in
  let cpp = bx * by * bz in
  let cx = gx * bx and cy = gy * by and cz = gz * bz in
  let n_cells = pieces * cpp in
  (* Global cell coordinates -> piece-major id. *)
  let cell_id x y z =
    let px = x / bx and py = y / by and pz = z / bz in
    let piece = px + (gx * (py + (gy * pz))) in
    let lx = x mod bx and ly = y mod by and lz = z mod bz in
    (piece * cpp) + lx + (bx * (ly + (by * lz)))
  in
  let piece_of_cell c = c / cpp in
  (* Faces are owned by the piece of their left (lower) cell; ids are
     assigned piece-major. The mesh is periodic, so every cell has exactly
     three owned faces and weak scaling is free of boundary artifacts. *)
  let per_piece_faces = Array.make pieces [] in
  let add_face c1 c2 =
    per_piece_faces.(piece_of_cell c1) <- (c1, c2) :: per_piece_faces.(piece_of_cell c1)
  in
  for z = 0 to cz - 1 do
    for y = 0 to cy - 1 do
      for x = 0 to cx - 1 do
        let c = cell_id x y z in
        if cx > 1 then add_face c (cell_id ((x + 1) mod cx) y z);
        if cy > 1 then add_face c (cell_id x ((y + 1) mod cy) z);
        if cz > 1 then add_face c (cell_id x y ((z + 1) mod cz))
      done
    done
  done;
  let n_faces = Array.fold_left (fun a l -> a + List.length l) 0 per_piece_faces in
  let face_lc = Array.make n_faces 0 and face_rc = Array.make n_faces 0 in
  let face_sets = Array.make pieces Geometry.Sorted_iset.empty in
  let next = ref 0 in
  Array.iteri
    (fun p faces ->
      let first = !next in
      List.iter
        (fun (c1, c2) ->
          face_lc.(!next) <- c1;
          face_rc.(!next) <- c2;
          incr next)
        (List.rev faces);
      face_sets.(p) <- Geometry.Sorted_iset.range first (!next - 1))
    per_piece_faces;
  let cell_sets =
    Array.init pieces (fun p ->
        Geometry.Sorted_iset.range (p * cpp) (((p + 1) * cpp) - 1))
  in
  (* Halos. *)
  let cell_halo_extra = Array.make pieces []
  and face_halo_extra = Array.make pieces [] in
  for f = 0 to n_faces - 1 do
    let p = piece_of_cell face_lc.(f) in
    let q = piece_of_cell face_rc.(f) in
    if q <> p then begin
      (* The owner reads the remote right cell; the right cell's piece
         reads this remotely-owned face. *)
      cell_halo_extra.(p) <- face_rc.(f) :: cell_halo_extra.(p);
      face_halo_extra.(q) <- f :: face_halo_extra.(q)
    end
  done;
  (* Halos hold only remote elements: own data is read through the
     disjoint partitions, so copies move exactly the boundary exchange. *)
  let cell_halos =
    Array.init pieces (fun p ->
        Geometry.Sorted_iset.of_list cell_halo_extra.(p))
  and face_halos =
    Array.init pieces (fun p ->
        Geometry.Sorted_iset.of_list face_halo_extra.(p))
  in
  { pieces; n_cells; n_faces; face_lc; face_rc; cell_sets; face_sets;
    cell_halos; face_halos }

let program cfg =
  let m = generate cfg in
  let b = Program.Builder.create ~name:"miniaero" in
  let cells =
    Program.Builder.region b ~name:"cells"
      (Index_space.of_range m.n_cells)
      [ frho; fe; frho0; fe0; frrho; fre ]
  in
  let faces =
    Program.Builder.region b ~name:"faces"
      (Index_space.of_range m.n_faces)
      [ fflux_rho; fflux_e; flc; frc ]
  in
  let ciset s = Index_space.of_iset ~universe_size:m.n_cells s in
  let fiset s = Index_space.of_iset ~universe_size:m.n_faces s in
  let _cells_p =
    Program.Builder.partition b ~name:"cells_p" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true cells
          (Array.map ciset m.cell_sets))
  in
  let _chalo =
    Program.Builder.partition b ~name:"chalo" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:false cells
          (Array.map ciset m.cell_halos))
  in
  let _faces_p =
    Program.Builder.partition b ~name:"faces_p" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true faces
          (Array.map fiset m.face_sets))
  in
  let _fhalo =
    Program.Builder.partition b ~name:"fhalo" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:false faces
          (Array.map fiset m.face_halos))
  in
  Program.Builder.space b ~name:"P" m.pieces;
  let compute_flux =
    Task.make ~name:"compute_flux"
      ~params:
        [
          {
            Task.pname = "faces";
            privs =
              [
                Privilege.writes fflux_rho;
                Privilege.writes fflux_e;
                Privilege.reads flc;
                Privilege.reads frc;
              ];
          };
          { Task.pname = "cells"; privs = [ Privilege.reads frho; Privilege.reads fe ] };
          { Task.pname = "chalo"; privs = [ Privilege.reads frho; Privilege.reads fe ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. flux_seconds_per_face)
      (fun accs _ ->
        let fs = accs.(0) and own = accs.(1) and halo = accs.(2) in
        let rlc = Accessor.reader fs flc
        and rrc = Accessor.reader fs frc
        and wfrho = Accessor.writer fs fflux_rho
        and wfe = Accessor.writer fs fflux_e in
        let rho_own = Accessor.reader own frho
        and rho_halo = Accessor.reader halo frho
        and e_own = Accessor.reader own fe
        and e_halo = Accessor.reader halo fe in
        let rho c = if Accessor.mem own c then rho_own c else rho_halo c
        and energy c = if Accessor.mem own c then e_own c else e_halo c in
        Accessor.iter_runs fs (fun lo hi ->
            for f = lo to hi do
              let lc = int_of_float (rlc f) and rc = int_of_float (rrc f) in
              (* Central flux: conservative by construction. *)
              wfrho f (0.5 *. (rho lc +. rho rc));
              wfe f (0.5 *. (energy lc +. energy rc))
            done);
        0.)
  in
  let residual =
    let face_privs =
      [
        Privilege.reads fflux_rho;
        Privilege.reads fflux_e;
        Privilege.reads flc;
        Privilege.reads frc;
      ]
    in
    Task.make ~name:"residual"
      ~params:
        [
          {
            Task.pname = "cells";
            privs = [ Privilege.writes frrho; Privilege.writes fre ];
          };
          { Task.pname = "faces"; privs = face_privs };
          { Task.pname = "fhalo"; privs = face_privs };
        ]
      (* Cost from own faces only: halo faces are a few percent and scale
         with surface, not volume, so including them would distort the
         reduced-instance extrapolation. *)
      ~cost:(fun sizes -> float_of_int sizes.(1) *. residual_seconds_per_face)
      (fun accs _ ->
        let cs = accs.(0) in
        let rrrho = Accessor.reader cs frrho
        and rre = Accessor.reader cs fre
        and wrrho = Accessor.writer cs frrho
        and wre = Accessor.writer cs fre in
        Accessor.iter_runs cs (fun lo hi ->
            for c = lo to hi do
              wrrho c 0.;
              wre c 0.
            done);
        let gather fs =
          let rlc = Accessor.reader fs flc
          and rrc = Accessor.reader fs frc
          and rfrho = Accessor.reader fs fflux_rho
          and rfe = Accessor.reader fs fflux_e in
          Accessor.iter_runs fs (fun lo hi ->
              for f = lo to hi do
                let lc = int_of_float (rlc f) and rc = int_of_float (rrc f) in
                let fr = rfrho f and fen = rfe f in
                if Accessor.mem cs lc then begin
                  wrrho lc (rrrho lc -. fr);
                  wre lc (rre lc -. fen)
                end;
                if Accessor.mem cs rc then begin
                  wrrho rc (rrrho rc +. fr);
                  wre rc (rre rc +. fen)
                end
              done)
        in
        gather accs.(1);
        gather accs.(2);
        0.)
  in
  let rk_update k =
    let alpha = rk_alphas.(k) in
    Task.make ~name:(Printf.sprintf "rk_update%d" k)
      ~params:
        [
          {
            Task.pname = "cells";
            privs =
              [
                Privilege.writes frho;
                Privilege.writes fe;
                Privilege.reads frho0;
                Privilege.reads fe0;
                Privilege.reads frrho;
                Privilege.reads fre;
              ];
          };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. update_seconds_per_cell)
      (fun accs _ ->
        let cs = accs.(0) in
        let rrho0 = Accessor.reader cs frho0
        and re0 = Accessor.reader cs fe0
        and rrrho = Accessor.reader cs frrho
        and rre = Accessor.reader cs fre
        and wrho = Accessor.writer cs frho
        and we = Accessor.writer cs fe in
        Accessor.iter_runs cs (fun lo hi ->
            for c = lo to hi do
              wrho c (rrho0 c +. (alpha *. dt *. rrrho c));
              we c (re0 c +. (alpha *. dt *. rre c))
            done);
        0.)
  in
  let save_state =
    Task.make ~name:"save_state"
      ~params:
        [
          {
            Task.pname = "cells";
            privs =
              [
                Privilege.writes frho0;
                Privilege.writes fe0;
                Privilege.reads frho;
                Privilege.reads fe;
              ];
          };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. save_seconds_per_cell)
      (fun accs _ ->
        let cs = accs.(0) in
        let rrho = Accessor.reader cs frho
        and re = Accessor.reader cs fe
        and wrho0 = Accessor.writer cs frho0
        and we0 = Accessor.writer cs fe0 in
        Accessor.iter_runs cs (fun lo hi ->
            for c = lo to hi do
              wrho0 c (rrho c);
              we0 c (re c)
            done);
        0.)
  in
  let init_cells =
    Task.make ~name:"init_cells"
      ~params:
        [
          {
            Task.pname = "cells";
            privs =
              [
                Privilege.writes frho;
                Privilege.writes fe;
                Privilege.writes frho0;
                Privilege.writes fe0;
                Privilege.writes frrho;
                Privilege.writes fre;
              ];
          };
        ]
      (fun accs _ ->
        let cs = accs.(0) in
        let w = Array.map (Accessor.writer cs) [| frho; fe; frho0; fe0; frrho; fre |] in
        Accessor.iter_runs cs (fun lo hi ->
            for c = lo to hi do
              w.(0) c (1. +. (0.1 *. float_of_int ((c * 13) mod 17) /. 17.));
              w.(1) c (2.5 +. (0.2 *. float_of_int ((c * 7) mod 23) /. 23.));
              w.(2) c 0.;
              w.(3) c 0.;
              w.(4) c 0.;
              w.(5) c 0.
            done);
        0.)
  in
  let init_faces =
    Task.make ~name:"init_faces"
      ~params:
        [
          {
            Task.pname = "faces";
            privs =
              [
                Privilege.writes fflux_rho;
                Privilege.writes fflux_e;
                Privilege.writes flc;
                Privilege.writes frc;
              ];
          };
        ]
      (fun accs _ ->
        let fs = accs.(0) in
        let wfrho = Accessor.writer fs fflux_rho
        and wfe = Accessor.writer fs fflux_e
        and wlc = Accessor.writer fs flc
        and wrc = Accessor.writer fs frc in
        Accessor.iter_runs fs (fun lo hi ->
            for f = lo to hi do
              wfrho f 0.;
              wfe f 0.;
              wlc f (float_of_int m.face_lc.(f));
              wrc f (float_of_int m.face_rc.(f))
            done);
        0.)
  in
  Program.Builder.task b compute_flux;
  Program.Builder.task b residual;
  Array.iteri (fun k _ -> Program.Builder.task b (rk_update k)) rk_alphas;
  Program.Builder.task b save_state;
  Program.Builder.task b init_cells;
  Program.Builder.task b init_faces;
  let stage k =
    [
      Syn.forall "P"
        (Syn.call "compute_flux"
           [ Syn.part "faces_p"; Syn.part "cells_p"; Syn.part "chalo" ]);
      Syn.forall "P"
        (Syn.call "residual"
           [ Syn.part "cells_p"; Syn.part "faces_p"; Syn.part "fhalo" ]);
      Syn.forall "P" (Syn.call (Printf.sprintf "rk_update%d" k) [ Syn.part "cells_p" ]);
    ]
  in
  Program.Builder.body b
    [
      Syn.run (Syn.call "init_cells" [ Syn.whole "cells" ]);
      Syn.run (Syn.call "init_faces" [ Syn.whole "faces" ]);
      Syn.for_time "t" cfg.timesteps
        (Syn.forall "P" (Syn.call "save_state" [ Syn.part "cells_p" ])
        :: List.concat_map stage [ 0; 1; 2; 3 ]);
    ];
  Program.Builder.finish b

let total_mass ctx prog =
  let cells = Program.find_region prog "cells" in
  let inst = Interp.Run.region_instance ctx cells in
  Index_space.fold_ids
    (fun acc id -> acc +. Physical.get inst frho id)
    0. cells.Region.ispace

module Reference = struct
  type variant = Rank_per_core | Rank_per_node

  (* The MPI+Kokkos reference: the Regent version is faster per node
     (Legion's hybrid data layouts, §5.2) — modelled as a layout penalty on
     the reference kernels. Rank-per-node starts better than rank-per-core
     (fewer, larger messages and no intra-node MPI), but a surface-growth
     penalty with scale pulls it to the rank-per-core level, as in
     Fig. 7. *)
  let per_step machine cfg variant =
    let cpp = cells_per_piece cfg in
    let cells_per_node = cfg.pieces_per_node * cpp in
    let faces_per_node = 3 * cells_per_node in
    let layout_penalty = 1.25 in
    let core_seconds =
      layout_penalty
      *. ((float_of_int faces_per_node
          *. (flux_seconds_per_face +. residual_seconds_per_face)
          *. 4.)
         +. (float_of_int cells_per_node
            *. ((update_seconds_per_cell *. 4.) +. save_seconds_per_cell)))
    in
    let base = core_seconds /. float_of_int machine.Realm.Machine.cores_per_node in
    let nodes = machine.Realm.Machine.nodes in
    let x, y, z = cfg.piece_cells in
    let surface_cells = 2 * ((x * y) + (y * z) + (x * z)) in
    match variant with
    | Rank_per_core ->
        (* Many small messages every stage: latency-dominated. *)
        let msgs = 4. *. 6. *. float_of_int machine.Realm.Machine.cores_per_node in
        let bytes =
          float_of_int surface_cells *. machine.Realm.Machine.bytes_per_element
        in
        let comm =
          if nodes = 1 then 0.
          else
            msgs
            *. (machine.Realm.Machine.network_latency
               +. (bytes /. machine.Realm.Machine.network_bandwidth))
        in
        base +. comm +. (0.004 *. base *. sqrt (log (float_of_int (max 2 (nodes * 12)))))
    | Rank_per_node ->
        (* Fewer larger messages, but a synchronisation-imbalance term that
           grows with node count erodes the initial advantage. *)
        let bytes =
          float_of_int (surface_cells * cfg.pieces_per_node)
          *. machine.Realm.Machine.bytes_per_element
        in
        let comm =
          if nodes = 1 then 0.
          else
            24.
            *. (machine.Realm.Machine.network_latency
               +. (bytes /. machine.Realm.Machine.network_bandwidth))
        in
        (base /. 1.12) +. comm
        +. (0.045 *. base *. sqrt (log (float_of_int (max 2 nodes))))
  end
