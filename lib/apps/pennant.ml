open Regions
open Ir
module Syn = Program.Syntax

type config = {
  nodes : int;
  pieces_per_node : int;
  piece_zones : int * int;
  timesteps : int;
}

(* Calibrated to the paper's ~20 x 10^6 zones/s/node (Fig. 8): 7.4M
   zones/node in 11 pieces on the 11 compute cores gives a ~0.27 s step.
   The reference codes use all 12 cores and are correspondingly faster on
   a single node. *)
let eos_seconds_per_zone = 0.0825e-6
let forces_seconds_per_zone = 0.165e-6
let move_seconds_per_point = 0.11e-6
let update_seconds_per_zone = 0.1375e-6
let dt_seconds_per_zone = 0.055e-6
let task_noise = 0.025

let default ~nodes =
  { nodes; pieces_per_node = 11; piece_zones = (819, 819); timesteps = 10 }

let sim_config ~nodes =
  { nodes; pieces_per_node = 11; piece_zones = (24, 24); timesteps = 10 }

let test_config ~nodes =
  { nodes; pieces_per_node = 2; piece_zones = (4, 3); timesteps = 3 }

let zones_per_piece cfg =
  let x, y = cfg.piece_zones in
  x * y

let scale cfg =
  let full = default ~nodes:cfg.nodes in
  let compute =
    float_of_int (zones_per_piece full) /. float_of_int (zones_per_piece cfg)
  in
  let copy =
    float_of_int (fst full.piece_zones) /. float_of_int (fst cfg.piece_zones)
  in
  Legion.Scale.make ~compute ~copy

let fzp = Field.make "zp"
let fzrho = Field.make "zrho"
let fze = Field.make "ze"
let fzvol = Field.make "zvol"
let fzm = Field.make "zm"
let fpt = Array.init 4 (fun k -> Field.make (Printf.sprintf "zpt%d" k))
let fppx = Field.make "ppx"
let fppy = Field.make "ppy"
let fpvx = Field.make "pvx"
let fpvy = Field.make "pvy"
let fpfx = Field.make "pfx"
let fpfy = Field.make "pfy"
let fpm = Field.make "pm"

let near_square n =
  let a = ref 1 in
  for d = 1 to int_of_float (sqrt (float_of_int n)) do
    if n mod d = 0 then a := d
  done;
  (!a, n / !a)

type mesh = {
  pieces : int;
  n_zones : int;
  n_points : int;
  zone_pts : int array array; (* zone -> 4 corner point ids *)
  private_sets : Geometry.Sorted_iset.t array;
  shared_sets : Geometry.Sorted_iset.t array;
  ghost_sets : Geometry.Sorted_iset.t array;
  all_private : Geometry.Sorted_iset.t;
  all_shared : Geometry.Sorted_iset.t;
}

let generate cfg =
  let pieces = cfg.nodes * cfg.pieces_per_node in
  let zx, zy = cfg.piece_zones in
  let gx, gy = near_square pieces in
  let w = gx * zx and h = gy * zy in
  let n_zones = pieces * zx * zy in
  let n_points = (w + 1) * (h + 1) in
  let point_id x y = (y * (w + 1)) + x in
  (* Zone ids are piece-major. *)
  let zone_id gx_ gy_ =
    let px = gx_ / zx and py = gy_ / zy in
    let piece = px + (gx * py) in
    (piece * zx * zy) + (gx_ mod zx) + (zx * (gy_ mod zy))
  in
  let zone_pts = Array.make n_zones [||] in
  for gy_ = 0 to h - 1 do
    for gx_ = 0 to w - 1 do
      zone_pts.(zone_id gx_ gy_) <-
        [|
          point_id gx_ gy_;
          point_id (gx_ + 1) gy_;
          point_id gx_ (gy_ + 1);
          point_id (gx_ + 1) (gy_ + 1);
        |]
    done
  done;
  (* Pieces touching a point: the pieces of its up-to-four adjacent
     zones. *)
  let pieces_of_point x y =
    let acc = ref [] in
    List.iter
      (fun (dx, dy) ->
        let zx_ = x + dx and zy_ = y + dy in
        if zx_ >= 0 && zx_ < w && zy_ >= 0 && zy_ < h then begin
          let p = (zx_ / zx) + (gx * (zy_ / zy)) in
          if not (List.mem p !acc) then acc := p :: !acc
        end)
      [ (-1, -1); (0, -1); (-1, 0); (0, 0) ];
    List.sort compare !acc
  in
  let private_l = Array.make pieces []
  and shared_l = Array.make pieces []
  and ghost_l = Array.make pieces [] in
  for y = 0 to h do
    for x = 0 to w do
      let id = point_id x y in
      match pieces_of_point x y with
      | [] -> ()
      | [ p ] -> private_l.(p) <- id :: private_l.(p)
      | owner :: others ->
          shared_l.(owner) <- id :: shared_l.(owner);
          List.iter (fun q -> ghost_l.(q) <- id :: ghost_l.(q)) others
    done
  done;
  let private_sets = Array.map Geometry.Sorted_iset.of_list private_l
  and shared_sets = Array.map Geometry.Sorted_iset.of_list shared_l
  and ghost_sets = Array.map Geometry.Sorted_iset.of_list ghost_l in
  {
    pieces;
    n_zones;
    n_points;
    zone_pts;
    private_sets;
    shared_sets;
    ghost_sets;
    all_private = Geometry.Sorted_iset.union_many private_sets;
    all_shared = Geometry.Sorted_iset.union_many shared_sets;
  }

let program cfg =
  let m = generate cfg in
  let zx, _zy = cfg.piece_zones in
  let gx, _gy = near_square m.pieces in
  let w = gx * zx in
  let b = Program.Builder.create ~name:"pennant" in
  let zones =
    Program.Builder.region b ~name:"zones"
      (Index_space.of_range m.n_zones)
      ([ fzp; fzrho; fze; fzvol; fzm ] @ Array.to_list fpt)
  in
  let points =
    Program.Builder.region b ~name:"points"
      (Index_space.of_range m.n_points)
      [ fppx; fppy; fpvx; fpvy; fpfx; fpfy; fpm ]
  in
  let piset s = Index_space.of_iset ~universe_size:m.n_points s in
  let pvs =
    Program.Builder.partition b ~name:"pvs" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true points
          [| piset m.all_private; piset m.all_shared |])
  in
  let all_private = Partition.sub pvs 0
  and all_shared = Partition.sub pvs 1 in
  let _pvt =
    Program.Builder.partition b ~name:"pvt" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true all_private
          (Array.map piset m.private_sets))
  in
  let _shr =
    Program.Builder.partition b ~name:"shr" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true all_shared
          (Array.map piset m.shared_sets))
  in
  let _ghost =
    Program.Builder.partition b ~name:"ghost" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:false all_shared
          (Array.map piset m.ghost_sets))
  in
  let _zones_p =
    Program.Builder.partition b ~name:"zones_p" (fun ~name ->
        Partition.block ~name zones ~pieces:m.pieces)
  in
  Program.Builder.space b ~name:"P" m.pieces;
  Program.Builder.scalar b ~name:"dt" 1e-3;
  let corner_sign = [| (-1., -1.); (1., -1.); (-1., 1.); (1., 1.) |] in
  (* Point dispatch through pvt, shr or ghost (arguments 1-3): hoisted
     per-field closures selected by O(1) membership probes. *)
  let covering accs f n =
    if Accessor.mem accs.(1) n then f.(0) n
    else if Accessor.mem accs.(2) n then f.(1) n
    else if Accessor.mem accs.(3) n then f.(2) n
    else invalid_arg (Printf.sprintf "pennant: point %d not covered" n)
  in
  let calc_dt =
    Task.make ~name:"calc_dt"
      ~params:
        [
          {
            Task.pname = "zones";
            privs = [ Privilege.reads fzvol; Privilege.reads fzp ];
          };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. dt_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        let rvol = Accessor.reader zs fzvol and rp = Accessor.reader zs fzp in
        let acc = ref Float.infinity in
        Accessor.iter_runs zs (fun lo hi ->
            for z = lo to hi do
              acc :=
                Float.min !acc
                  (0.05 *. sqrt (Float.abs (rvol z))
                  /. (1. +. Float.abs (rp z)))
            done);
        !acc)
  in
  let zone_eos =
    Task.make ~name:"zone_eos"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              [ Privilege.writes fzp; Privilege.reads fzrho; Privilege.reads fze ];
          };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. eos_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        let wp = Accessor.writer zs fzp
        and rrho = Accessor.reader zs fzrho
        and re = Accessor.reader zs fze in
        Accessor.iter_runs zs (fun lo hi ->
            for z = lo to hi do
              wp z (0.4 *. rrho z *. re z)
            done);
        0.)
  in
  let point_forces =
    Task.make ~name:"point_forces"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              Privilege.reads fzp
              :: List.map Privilege.reads (Array.to_list fpt);
          };
          { Task.pname = "pvt"; privs = [ Privilege.reduces Privilege.Sum fpfx; Privilege.reduces Privilege.Sum fpfy ] };
          { Task.pname = "shr"; privs = [ Privilege.reduces Privilege.Sum fpfx; Privilege.reduces Privilege.Sum fpfy ] };
          { Task.pname = "ghost"; privs = [ Privilege.reduces Privilege.Sum fpfx; Privilege.reduces Privilege.Sum fpfy ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. forces_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        let rp = Accessor.reader zs fzp in
        let rpt = Array.map (Accessor.reader zs) fpt in
        let dfx =
          Array.map (fun k -> Accessor.reducer accs.(k) fpfx) [| 1; 2; 3 |]
        and dfy =
          Array.map (fun k -> Accessor.reducer accs.(k) fpfy) [| 1; 2; 3 |]
        in
        Accessor.iter_runs zs (fun lo hi ->
            for z = lo to hi do
              let p = rp z in
              Array.iteri
                (fun k (sx, sy) ->
                  let pt = int_of_float (rpt.(k) z) in
                  covering accs dfx pt (0.5 *. sx *. p);
                  covering accs dfy pt (0.5 *. sy *. p))
                corner_sign
            done);
        0.)
  in
  let move_points =
    let privs =
      [
        Privilege.writes fppx;
        Privilege.writes fppy;
        Privilege.writes fpvx;
        Privilege.writes fpvy;
        Privilege.writes fpfx;
        Privilege.writes fpfy;
        Privilege.reads fpm;
      ]
    in
    Task.make ~name:"move_points"
      ~params:[ { Task.pname = "pvt"; privs }; { Task.pname = "shr"; privs } ]
      ~nscalars:1
      ~cost:(fun sizes ->
        float_of_int (sizes.(0) + sizes.(1)) *. move_seconds_per_point)
      (fun accs sargs ->
        let dt = sargs.(0) in
        Array.iter
          (fun acc ->
            let rm = Accessor.reader acc fpm
            and rvx = Accessor.reader acc fpvx
            and rvy = Accessor.reader acc fpvy
            and rfx = Accessor.reader acc fpfx
            and rfy = Accessor.reader acc fpfy
            and rpx = Accessor.reader acc fppx
            and rpy = Accessor.reader acc fppy
            and wvx = Accessor.writer acc fpvx
            and wvy = Accessor.writer acc fpvy
            and wpx = Accessor.writer acc fppx
            and wpy = Accessor.writer acc fppy
            and wfx = Accessor.writer acc fpfx
            and wfy = Accessor.writer acc fpfy in
            Accessor.iter_runs acc (fun lo hi ->
                for p = lo to hi do
                  let minv = 1. /. rm p in
                  let vx = rvx p +. (dt *. rfx p *. minv)
                  and vy = rvy p +. (dt *. rfy p *. minv) in
                  wvx p vx;
                  wvy p vy;
                  wpx p (rpx p +. (dt *. vx));
                  wpy p (rpy p +. (dt *. vy));
                  wfx p 0.;
                  wfy p 0.
                done))
          [| accs.(0); accs.(1) |];
        0.)
  in
  let zone_update =
    Task.make ~name:"zone_update"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              [
                Privilege.writes fzvol;
                Privilege.writes fzrho;
                Privilege.writes fze;
                Privilege.reads fzp;
                Privilege.reads fzm;
              ]
              @ List.map Privilege.reads (Array.to_list fpt);
          };
          { Task.pname = "pvt"; privs = [ Privilege.reads fppx; Privilege.reads fppy ] };
          { Task.pname = "shr"; privs = [ Privilege.reads fppx; Privilege.reads fppy ] };
          { Task.pname = "ghost"; privs = [ Privilege.reads fppx; Privilege.reads fppy ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. update_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        let rzp = Accessor.reader zs fzp
        and rzm = Accessor.reader zs fzm
        and rze = Accessor.reader zs fze
        and rzvol = Accessor.reader zs fzvol
        and wze = Accessor.writer zs fze
        and wzvol = Accessor.writer zs fzvol
        and wzrho = Accessor.writer zs fzrho in
        let rpt = Array.map (Accessor.reader zs) fpt in
        let ppx =
          Array.map (fun k -> Accessor.reader accs.(k) fppx) [| 1; 2; 3 |]
        and ppy =
          Array.map (fun k -> Accessor.reader accs.(k) fppy) [| 1; 2; 3 |]
        in
        Accessor.iter_runs zs (fun zlo zhi ->
          for z = zlo to zhi do
            let px k = covering accs ppx (int_of_float (rpt.(k) z))
            and py k = covering accs ppy (int_of_float (rpt.(k) z)) in
            (* Shoelace area of the quad with corners 0,1,3,2 (ccw). *)
            let order = [| 0; 1; 3; 2 |] in
            let vol = ref 0. in
            for k = 0 to 3 do
              let a = order.(k) and b = order.((k + 1) mod 4) in
              vol := !vol +. ((px a *. py b) -. (px b *. py a))
            done;
            let vol = 0.5 *. Float.abs !vol in
            let old_vol = rzvol z in
            let zm = rzm z in
            wze z (rze z -. (rzp z *. (vol -. old_vol) /. zm));
            wzvol z vol;
            wzrho z (zm /. Float.max vol 1e-12)
          done);
        0.)
  in
  let init_zones =
    Task.make ~name:"init_zones"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              [
                Privilege.writes fzp;
                Privilege.writes fzrho;
                Privilege.writes fze;
                Privilege.writes fzvol;
                Privilege.writes fzm;
              ]
              @ List.map Privilege.writes (Array.to_list fpt);
          };
        ]
      (fun accs _ ->
        let zs = accs.(0) in
        let wrho = Accessor.writer zs fzrho
        and we = Accessor.writer zs fze
        and wp = Accessor.writer zs fzp
        and wvol = Accessor.writer zs fzvol
        and wm = Accessor.writer zs fzm in
        let wpt = Array.map (Accessor.writer zs) fpt in
        Accessor.iter_runs zs (fun lo hi ->
            for z = lo to hi do
              wrho z 1.;
              (* A central "Sedov-like" energy concentration. *)
              we z (if z = m.n_zones / 2 then 10. else 1.);
              wp z 0.;
              wvol z 1.;
              wm z 1.;
              Array.iteri
                (fun k w -> w z (float_of_int m.zone_pts.(z).(k)))
                wpt
            done);
        0.)
  in
  let init_points =
    Task.make ~name:"init_points"
      ~params:
        [
          {
            Task.pname = "points";
            privs =
              [
                Privilege.writes fppx;
                Privilege.writes fppy;
                Privilege.writes fpvx;
                Privilege.writes fpvy;
                Privilege.writes fpfx;
                Privilege.writes fpfy;
                Privilege.writes fpm;
              ];
          };
        ]
      (fun accs _ ->
        let wpx = Accessor.writer accs.(0) fppx
        and wpy = Accessor.writer accs.(0) fppy
        and wvx = Accessor.writer accs.(0) fpvx
        and wvy = Accessor.writer accs.(0) fpvy
        and wfx = Accessor.writer accs.(0) fpfx
        and wfy = Accessor.writer accs.(0) fpfy
        and wm = Accessor.writer accs.(0) fpm in
        Accessor.iter_runs accs.(0) (fun lo hi ->
            for p = lo to hi do
              wpx p (float_of_int (p mod (w + 1)));
              wpy p (float_of_int (p / (w + 1)));
              wvx p 0.;
              wvy p 0.;
              wfx p 0.;
              wfy p 0.;
              wm p 1.
            done);
        0.)
  in
  List.iter (Program.Builder.task b)
    [ calc_dt; zone_eos; point_forces; move_points; zone_update; init_zones;
      init_points ];
  Program.Builder.body b
    [
      Syn.run (Syn.call "init_zones" [ Syn.whole "zones" ]);
      Syn.run (Syn.call "init_points" [ Syn.whole "points" ]);
      Syn.for_time "t" cfg.timesteps
        [
          Syn.forall_reduce "P"
            (Syn.call "calc_dt" [ Syn.part "zones_p" ])
            ~into:"dt" Privilege.Min;
          Syn.forall "P" (Syn.call "zone_eos" [ Syn.part "zones_p" ]);
          Syn.forall "P"
            (Syn.call "point_forces"
               [ Syn.part "zones_p"; Syn.part "pvt"; Syn.part "shr"; Syn.part "ghost" ]);
          Syn.forall "P"
            (Syn.call "move_points"
               ~scalars:[ Syn.sv "dt" ]
               [ Syn.part "pvt"; Syn.part "shr" ]);
          Syn.forall "P"
            (Syn.call "zone_update"
               [ Syn.part "zones_p"; Syn.part "pvt"; Syn.part "shr"; Syn.part "ghost" ]);
        ];
    ];
  Program.Builder.finish b

let total_momentum ctx prog =
  let points = Program.find_region prog "points" in
  let inst = Interp.Run.region_instance ctx points in
  Index_space.fold_ids
    (fun (mx, my) id ->
      let m = Physical.get inst fpm id in
      ( mx +. (m *. Physical.get inst fpvx id),
        my +. (m *. Physical.get inst fpvy id) ))
    (0., 0.) points.Region.ispace

module Reference = struct
  type variant = Mpi | Mpi_openmp

  let per_step machine cfg variant =
    let zones_per_node = cfg.pieces_per_node * zones_per_piece cfg in
    let points_per_node = zones_per_node in
    let core_seconds =
      (float_of_int zones_per_node
      *. (eos_seconds_per_zone +. forces_seconds_per_zone
         +. update_seconds_per_zone +. dt_seconds_per_zone))
      +. (float_of_int points_per_node *. move_seconds_per_point)
    in
    let base = core_seconds /. float_of_int machine.Realm.Machine.cores_per_node in
    let nodes = machine.Realm.Machine.nodes in
    (* Per-step blocking dt allreduce: heavy-tailed noise amplified with
       rank count. Coefficients calibrated to the paper's 82% (MPI) and
       64% (MPI+OpenMP) parallel efficiencies at 1024 nodes; MPI+OpenMP
       overlaps communication worse (§5.3). *)
    match variant with
    | Mpi ->
        let ranks = nodes * machine.Realm.Machine.cores_per_node in
        let steps_log = Float.max 0. (Float.log2 (float_of_int ranks) -. Float.log2 12.) in
        base *. (1. +. (0.022 *. steps_log))
    | Mpi_openmp ->
        let steps_log = Float.max 0. (Float.log2 (float_of_int (max 1 nodes))) in
        base *. (1. +. (0.056 *. steps_log))
end
