open Geometry
open Regions
open Ir
module Syn = Program.Syntax

type config = {
  nodes : int;
  pieces_per_node : int;
  cnodes_per_piece : int;
  wires_per_piece : int;
  pct_cross : float;
  timesteps : int;
  seed : int;
}

(* Per-element kernel times calibrated to the paper's ~80 x 10^3 circuit
   nodes/s/node (Fig. 9): 25000 nodes/node in 10 pieces across the 11
   compute cores gives a ~0.31 s step. *)
let currents_seconds_per_wire = 18e-6
let charge_seconds_per_wire = 12e-6
let update_seconds_per_cnode = 5e-6
let dt = 1e-2

let default ~nodes =
  {
    nodes;
    pieces_per_node = 10;
    cnodes_per_piece = 2_500;
    wires_per_piece = 10_000;
    pct_cross = 0.05;
    timesteps = 10;
    seed = 42;
  }

let sim_config ~nodes =
  { (default ~nodes) with cnodes_per_piece = 100; wires_per_piece = 400 }

let test_config ~nodes =
  {
    nodes;
    pieces_per_node = 2;
    cnodes_per_piece = 16;
    wires_per_piece = 64;
    pct_cross = 0.2;
    timesteps = 3;
    seed = 7;
  }

let scale cfg =
  let full = default ~nodes:cfg.nodes in
  let m =
    float_of_int full.cnodes_per_piece /. float_of_int cfg.cnodes_per_piece
  in
  Legion.Scale.make ~compute:m ~copy:m

let fvolt = Field.make "voltage"
let fcharge = Field.make "charge"
let fcap = Field.make "capacitance"
let fcur = Field.make "current"
let fres = Field.make "resistance"
let fnin = Field.make "in_node"
let fnout = Field.make "out_node"

(* The generated graph: endpoints per wire and the private / shared-owned /
   ghost node sets per piece. *)
type graph = {
  pieces : int;
  n_cnodes : int;
  n_wires : int;
  win : int array; (* wire -> in node *)
  wout : int array; (* wire -> out node *)
  private_sets : Sorted_iset.t array;
  shared_sets : Sorted_iset.t array;
  ghost_sets : Sorted_iset.t array;
  all_private : Sorted_iset.t;
  all_shared : Sorted_iset.t;
}

let generate cfg =
  let pieces = cfg.nodes * cfg.pieces_per_node in
  let npp = cfg.cnodes_per_piece and wpp = cfg.wires_per_piece in
  let n_cnodes = pieces * npp and n_wires = pieces * wpp in
  let st = Random.State.make [| 0xC19C; cfg.seed; pieces; npp; wpp |] in
  let win = Array.make n_wires 0 and wout = Array.make n_wires 0 in
  let piece_of_cnode n = n / npp in
  for w = 0 to n_wires - 1 do
    let p = w / wpp in
    let local () = (p * npp) + Random.State.int st npp in
    win.(w) <- local ();
    wout.(w) <-
      (if pieces > 1 && Random.State.float st 1.0 < cfg.pct_cross then begin
         (* Ring locality: remote endpoints live in an adjacent piece, so
            every piece talks to O(1) neighbours (§3.3's sparsity). *)
         let q =
           if Random.State.bool st then (p + 1) mod pieces
           else (p + pieces - 1) mod pieces
         in
         (q * npp) + Random.State.int st npp
       end
       else local ())
  done;
  let shared = Array.make n_cnodes false in
  let ghosts = Array.make pieces [] in
  for w = 0 to n_wires - 1 do
    let p = w / wpp in
    List.iter
      (fun n ->
        if piece_of_cnode n <> p then begin
          shared.(n) <- true;
          ghosts.(p) <- n :: ghosts.(p)
        end)
      [ win.(w); wout.(w) ]
  done;
  let private_sets =
    Array.init pieces (fun p ->
        Sorted_iset.of_list
          (List.filter
             (fun n -> not shared.(n))
             (List.init npp (fun k -> (p * npp) + k))))
  and shared_sets =
    Array.init pieces (fun p ->
        Sorted_iset.of_list
          (List.filter
             (fun n -> shared.(n))
             (List.init npp (fun k -> (p * npp) + k))))
  and ghost_sets = Array.map Sorted_iset.of_list ghosts in
  let all_private = Sorted_iset.union_many private_sets
  and all_shared = Sorted_iset.union_many shared_sets in
  {
    pieces;
    n_cnodes;
    n_wires;
    win;
    wout;
    private_sets;
    shared_sets;
    ghost_sets;
    all_private;
    all_shared;
  }

let program cfg =
  let g = generate cfg in
  let b = Program.Builder.create ~name:"circuit" in
  let rn =
    Program.Builder.region b ~name:"cnodes"
      (Index_space.of_range g.n_cnodes)
      [ fvolt; fcharge; fcap ]
  in
  let rw =
    Program.Builder.region b ~name:"wires"
      (Index_space.of_range g.n_wires)
      [ fcur; fres; fnin; fnout ]
  in
  let iset s = Index_space.of_iset ~universe_size:g.n_cnodes s in
  (* Hierarchical region tree (§4.5): private vs shared at the top. *)
  let pvs =
    Program.Builder.partition b ~name:"pvs" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true rn
          [| iset g.all_private; iset g.all_shared |])
  in
  let all_private = Partition.sub pvs 0
  and all_shared = Partition.sub pvs 1 in
  let _pvt =
    Program.Builder.partition b ~name:"pvt" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true all_private
          (Array.map iset g.private_sets))
  in
  let _shr =
    Program.Builder.partition b ~name:"shr" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true all_shared
          (Array.map iset g.shared_sets))
  in
  let _ghost =
    Program.Builder.partition b ~name:"ghost" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:false all_shared
          (Array.map iset g.ghost_sets))
  in
  let _wires_p =
    Program.Builder.partition b ~name:"wires_p" (fun ~name ->
        Partition.block ~name rw ~pieces:g.pieces)
  in
  Program.Builder.space b ~name:"P" g.pieces;
  (* Endpoint dispatch through whichever node argument covers it: the three
     per-field closures are hoisted per task execution, so the per-wire
     work is the O(1) membership probes plus one closure call. *)
  let covering accs f n =
    if Accessor.mem accs.(1) n then f.(0) n
    else if Accessor.mem accs.(2) n then f.(1) n
    else if Accessor.mem accs.(3) n then f.(2) n
    else invalid_arg (Printf.sprintf "circuit: node %d not covered" n)
  in
  let calc_new_currents =
    Task.make ~name:"calc_new_currents"
      ~params:
        [
          {
            Task.pname = "wires";
            privs =
              [
                Privilege.writes fcur;
                Privilege.reads fres;
                Privilege.reads fnin;
                Privilege.reads fnout;
              ];
          };
          { Task.pname = "pvt"; privs = [ Privilege.reads fvolt ] };
          { Task.pname = "shr"; privs = [ Privilege.reads fvolt ] };
          { Task.pname = "ghost"; privs = [ Privilege.reads fvolt ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. currents_seconds_per_wire)
      (fun accs _ ->
        let w = accs.(0) in
        let rnin = Accessor.reader w fnin
        and rnout = Accessor.reader w fnout
        and rres = Accessor.reader w fres
        and wcur = Accessor.writer w fcur in
        let volt =
          Array.map (fun k -> Accessor.reader accs.(k) fvolt) [| 1; 2; 3 |]
        in
        Accessor.iter_runs w (fun lo hi ->
            for id = lo to hi do
              let nin = int_of_float (rnin id)
              and nout = int_of_float (rnout id) in
              let vin = covering accs volt nin
              and vout = covering accs volt nout in
              wcur id ((vin -. vout) /. rres id)
            done);
        0.)
  in
  let distribute_charge =
    Task.make ~name:"distribute_charge"
      ~params:
        [
          {
            Task.pname = "wires";
            privs =
              [ Privilege.reads fcur; Privilege.reads fnin; Privilege.reads fnout ];
          };
          { Task.pname = "pvt"; privs = [ Privilege.reduces Privilege.Sum fcharge ] };
          { Task.pname = "shr"; privs = [ Privilege.reduces Privilege.Sum fcharge ] };
          { Task.pname = "ghost"; privs = [ Privilege.reduces Privilege.Sum fcharge ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. charge_seconds_per_wire)
      (fun accs _ ->
        let w = accs.(0) in
        let rnin = Accessor.reader w fnin
        and rnout = Accessor.reader w fnout
        and rcur = Accessor.reader w fcur in
        let dep =
          Array.map (fun k -> Accessor.reducer accs.(k) fcharge) [| 1; 2; 3 |]
        in
        Accessor.iter_runs w (fun lo hi ->
            for id = lo to hi do
              let nin = int_of_float (rnin id)
              and nout = int_of_float (rnout id) in
              let dq = dt *. rcur id in
              covering accs dep nin (-.dq);
              covering accs dep nout dq
            done);
        0.)
  in
  let update_voltage =
    Task.make ~name:"update_voltage"
      ~params:
        [
          {
            Task.pname = "pvt";
            privs =
              [ Privilege.writes fvolt; Privilege.writes fcharge; Privilege.reads fcap ];
          };
          {
            Task.pname = "shr";
            privs =
              [ Privilege.writes fvolt; Privilege.writes fcharge; Privilege.reads fcap ];
          };
        ]
      ~cost:(fun sizes ->
        float_of_int (sizes.(0) + sizes.(1)) *. update_seconds_per_cnode)
      (fun accs _ ->
        Array.iter
          (fun acc ->
            let rvolt = Accessor.reader acc fvolt
            and wvolt = Accessor.writer acc fvolt
            and rq = Accessor.reader acc fcharge
            and wq = Accessor.writer acc fcharge
            and rcap = Accessor.reader acc fcap in
            Accessor.iter_runs acc (fun lo hi ->
                for id = lo to hi do
                  wvolt id (rvolt id +. (rq id /. rcap id));
                  wq id 0.
                done))
          accs;
        0.)
  in
  let init_nodes =
    Task.make ~name:"init_nodes"
      ~params:
        [
          {
            Task.pname = "cnodes";
            privs =
              [ Privilege.writes fvolt; Privilege.writes fcharge; Privilege.writes fcap ];
          };
        ]
      (fun accs _ ->
        let wvolt = Accessor.writer accs.(0) fvolt
        and wq = Accessor.writer accs.(0) fcharge
        and wcap = Accessor.writer accs.(0) fcap in
        Accessor.iter_runs accs.(0) (fun lo hi ->
            for id = lo to hi do
              wvolt id (float_of_int ((id * 37) mod 101) /. 101.);
              wq id 0.;
              wcap id (1. +. (float_of_int (id mod 7) *. 0.1))
            done);
        0.)
  in
  let init_wires =
    Task.make ~name:"init_wires"
      ~params:
        [
          {
            Task.pname = "wires";
            privs =
              [
                Privilege.writes fcur;
                Privilege.writes fres;
                Privilege.writes fnin;
                Privilege.writes fnout;
              ];
          };
        ]
      (fun accs _ ->
        let wcur = Accessor.writer accs.(0) fcur
        and wres = Accessor.writer accs.(0) fres
        and wnin = Accessor.writer accs.(0) fnin
        and wnout = Accessor.writer accs.(0) fnout in
        Accessor.iter_runs accs.(0) (fun lo hi ->
            for id = lo to hi do
              wcur id 0.;
              wres id (1. +. (float_of_int (id mod 13) *. 0.05));
              wnin id (float_of_int g.win.(id));
              wnout id (float_of_int g.wout.(id))
            done);
        0.)
  in
  Program.Builder.task b calc_new_currents;
  Program.Builder.task b distribute_charge;
  Program.Builder.task b update_voltage;
  Program.Builder.task b init_nodes;
  Program.Builder.task b init_wires;
  Program.Builder.body b
    [
      Syn.run (Syn.call "init_nodes" [ Syn.whole "cnodes" ]);
      Syn.run (Syn.call "init_wires" [ Syn.whole "wires" ]);
      Syn.for_time "t" cfg.timesteps
        [
          Syn.forall "P"
            (Syn.call "calc_new_currents"
               [ Syn.part "wires_p"; Syn.part "pvt"; Syn.part "shr"; Syn.part "ghost" ]);
          Syn.forall "P"
            (Syn.call "distribute_charge"
               [ Syn.part "wires_p"; Syn.part "pvt"; Syn.part "shr"; Syn.part "ghost" ]);
          Syn.forall "P"
            (Syn.call "update_voltage" [ Syn.part "pvt"; Syn.part "shr" ]);
        ];
    ];
  Program.Builder.finish b

let total_node_charge ctx prog =
  let rn = Program.find_region prog "cnodes" in
  let inst = Interp.Run.region_instance ctx rn in
  Index_space.fold_ids
    (fun acc id ->
      acc
      +. (Physical.get inst fcap id *. Physical.get inst fvolt id)
      +. Physical.get inst fcharge id)
    0. rn.Region.ispace

module Reference = struct
  (* An idealised hand-written SPMD equivalent: perfect core usage plus a
     ghost-voltage exchange per step. The paper has no reference code for
     circuit (Fig. 9 compares Regent with and without CR only). *)
  let per_step machine cfg =
    let wires_per_node = cfg.pieces_per_node * cfg.wires_per_piece in
    let cnodes_per_node = cfg.pieces_per_node * cfg.cnodes_per_piece in
    let core_seconds =
      (float_of_int wires_per_node
      *. (currents_seconds_per_wire +. charge_seconds_per_wire))
      +. (float_of_int cnodes_per_node *. update_seconds_per_cnode)
    in
    let ghost_elems =
      float_of_int wires_per_node *. cfg.pct_cross
    in
    let halo_bytes = ghost_elems *. machine.Realm.Machine.bytes_per_element in
    let halo =
      if machine.Realm.Machine.nodes = 1 then 0.
      else
        2.
        *. (machine.Realm.Machine.network_latency
           +. (halo_bytes /. machine.Realm.Machine.network_bandwidth))
    in
    (core_seconds /. float_of_int machine.Realm.Machine.cores_per_node) +. halo
end
