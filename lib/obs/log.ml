(* Level-filtered logging for runtime diagnostics.

   Everything that used to go straight to stdout/stderr from the executor
   and the chaos/soak tools routes through here, so `dune runtest` is
   quiet by default and a capturing sink can record the noise. Thread-safe:
   the domains backend logs concurrently. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 3 | Warn -> 2 | Info -> 1 | Debug -> 0

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

(* Default level: warnings and errors only, overridable via CRC_LOG. *)
let default_level () =
  match Option.bind (Sys.getenv_opt "CRC_LOG") of_string with
  | Some l -> l
  | None -> Warn

let current = Atomic.make (default_level ())
let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = severity l >= severity (Atomic.get current)

type sink = level -> string -> unit

let mutex = Mutex.create ()

let stderr_sink lvl msg =
  Mutex.lock mutex;
  Printf.eprintf "[%s] %s\n%!" (level_name lvl) msg;
  Mutex.unlock mutex

let sink : sink Atomic.t = Atomic.make stderr_sink
let set_sink s = Atomic.set sink s
let reset_sink () = Atomic.set sink stderr_sink

let log lvl fmt =
  Printf.ksprintf
    (fun msg -> if enabled lvl then (Atomic.get sink) lvl msg)
    fmt

let err fmt = log Error fmt
let warn fmt = log Warn fmt
let info fmt = log Info fmt
let debug fmt = log Debug fmt
