(** Minimal dependency-free JSON: enough to write the Chrome trace-event
    and bench artifacts and to re-parse them in schema-checking tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:int -> t -> string
(** [indent = 0] (default) is compact; [indent = 2] pretty-prints.
    Non-finite floats serialize as [null]. *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit
val to_channel : ?indent:int -> out_channel -> t -> unit

val of_string : string -> (t, string) result
val of_string_exn : string -> t

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on any other constructor. *)

val to_list : t -> t list option
val number : t -> float option
(** [Int] and [Float] both read as numbers. *)

val string_value : t -> string option
