(** Span/instant tracing with pluggable sinks and two clocks.

    Wall-clock helpers stamp microseconds since trace creation; virtual
    helpers take explicit simulated-seconds timestamps from the machine
    simulator. Both clocks share one trace: wall events default to process
    {!wall_pid}, virtual events to {!virtual_pid}, so a single Chrome
    trace-event file shows real execution and simulated time side by side
    in Perfetto. *)

type arg =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type phase =
  | B  (** span begin *)
  | E  (** span end *)
  | I  (** instant *)
  | X of float  (** complete span; payload is duration in microseconds *)
  | M  (** metadata (process/thread names) *)

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;  (** microseconds *)
  pid : int;
  tid : int;
  args : (string * arg) list;
}

val wall_pid : int
(** Default pid (0) for wall-clock events — the real process. *)

val virtual_pid : int
(** Default pid (1) for virtual-time events — the simulated machine. *)

type t

val null : t
(** Discards everything; {!enabled} is [false], so instrumented code pays
    only a branch. The default sink everywhere. *)

val memory : ?capacity:int -> unit -> t
(** In-memory ring buffer (default capacity 2^20 events; oldest events are
    overwritten past capacity — see {!dropped}). *)

val stream : Buffer.t -> t
(** Serializes each event into [buf] as Chrome trace JSON as it arrives;
    call {!finish} to close the JSON document. *)

val finish : t -> unit
(** Close a {!stream} trace's JSON document. No-op for other sinks. *)

val enabled : t -> bool
val now_us : t -> float
(** Microseconds since the trace was created. *)

(** {1 Wall-clock events} (timestamped with {!now_us}, default pid
    {!wall_pid}) *)

val begin_span :
  t -> ?pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  string -> unit

val end_span :
  t -> ?pid:int -> tid:int -> ?args:(string * arg) list -> string -> unit

val with_span :
  t -> ?pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  string -> (unit -> 'a) -> 'a
(** Runs [f] inside a complete (X) span; exception-safe. *)

val instant :
  t -> ?pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  string -> unit

val complete :
  t -> ?pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  ts:float -> dur:float -> string -> unit
(** Explicit complete span; [ts]/[dur] in microseconds. *)

(** {1 Virtual-time events} (explicit simulated seconds, default pid
    {!virtual_pid}) *)

val complete_v :
  t -> ?pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  ts_s:float -> dur_s:float -> string -> unit

val instant_v :
  t -> ?pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  ts_s:float -> string -> unit

(** {1 Metadata} *)

val set_process_name : t -> pid:int -> string -> unit
val set_thread_name : t -> ?pid:int -> tid:int -> string -> unit

(** {1 Inspection and export} *)

val events : t -> event list
(** Events in emission order. Empty for null and stream sinks. *)

val dropped : t -> int
(** Events overwritten by ring wraparound (memory sink only). *)

val to_chrome_json : t -> Json.t
val to_chrome_string : t -> string
val write_chrome_file : t -> string -> unit
