(* Span/instant tracing with pluggable sinks and two clocks.

   Clocks. Wall-clock helpers ([begin_span]/[end_span]/[with_span]/
   [instant]) stamp events with microseconds since the trace was created,
   so a compile phase and the execution it feeds start near t=0. Virtual
   helpers ([complete_v]/[instant_v]) take explicit simulated-seconds
   timestamps from the machine simulator. Both land in the same trace —
   wall events default to process [wall_pid], virtual events to
   [virtual_pid], so a Chrome/Perfetto viewer shows real execution and
   simulated time as two process groups of one file.

   Sinks. [null] (the default everywhere; every emit is a cheap branch),
   an in-memory ring buffer (structured events for tests and post-run
   export), and a streaming Chrome trace-event JSON writer (serializes
   each event as it arrives, for runs too big to retain). *)

type arg =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type phase = B | E | I | X of float | M

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float; (* microseconds *)
  pid : int;
  tid : int;
  args : (string * arg) list;
}

let wall_pid = 0
let virtual_pid = 1

(* ---------- sinks ---------- *)

type ring = {
  cap : int;
  mutable arr : event array; (* empty until the first event *)
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
}

type stream_state = { buf : Buffer.t; mutable count : int }

type sink = Null | Memory of ring | Stream of stream_state

type t = { sink : sink; mutex : Mutex.t; epoch : float }

let null = { sink = Null; mutex = Mutex.create (); epoch = 0. }

let memory ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.memory: capacity <= 0";
  {
    sink =
      Memory { cap = capacity; arr = [||]; start = 0; len = 0; dropped = 0 };
    mutex = Mutex.create ();
    epoch = Unix.gettimeofday ();
  }

let enabled t = t.sink <> Null

let now_us t = (Unix.gettimeofday () -. t.epoch) *. 1e6

(* ---------- Chrome trace-event serialization ---------- *)

let arg_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s

let event_json e =
  let ph, extra =
    match e.ph with
    | B -> ("B", [])
    | E -> ("E", [])
    | I -> ("I", [ ("s", Json.Str "t") ])
    | X dur -> ("X", [ ("dur", Json.Float dur) ])
    | M -> ("M", [])
  in
  let args =
    match e.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Json.Obj
    ([
       ("name", Json.Str e.name);
       ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
       ("ph", Json.Str ph);
       ("ts", Json.Float e.ts);
       ("pid", Json.Int e.pid);
       ("tid", Json.Int e.tid);
     ]
    @ extra @ args)

let stream buf =
  Buffer.add_string buf "{\"traceEvents\":[";
  {
    sink = Stream { buf; count = 0 };
    mutex = Mutex.create ();
    epoch = Unix.gettimeofday ();
  }

let finish t =
  match t.sink with
  | Null | Memory _ -> ()
  | Stream s ->
      Mutex.lock t.mutex;
      Buffer.add_string s.buf "],\"displayTimeUnit\":\"ms\"}";
      Mutex.unlock t.mutex

(* ---------- emission ---------- *)

let emit t e =
  match t.sink with
  | Null -> ()
  | Memory r ->
      Mutex.lock t.mutex;
      if Array.length r.arr = 0 then r.arr <- Array.make r.cap e;
      if r.len < r.cap then begin
        r.arr.((r.start + r.len) mod r.cap) <- e;
        r.len <- r.len + 1
      end
      else begin
        (* Ring full: overwrite the oldest event. *)
        r.arr.(r.start) <- e;
        r.start <- (r.start + 1) mod r.cap;
        r.dropped <- r.dropped + 1
      end;
      Mutex.unlock t.mutex
  | Stream s ->
      Mutex.lock t.mutex;
      if s.count > 0 then Buffer.add_char s.buf ',';
      s.count <- s.count + 1;
      Json.to_buffer s.buf (event_json e);
      Mutex.unlock t.mutex

let events t =
  match t.sink with
  | Null | Stream _ -> []
  | Memory r ->
      Mutex.lock t.mutex;
      let out = List.init r.len (fun i -> r.arr.((r.start + i) mod r.cap)) in
      Mutex.unlock t.mutex;
      out

let dropped t =
  match t.sink with Memory r -> r.dropped | Null | Stream _ -> 0

(* ---------- wall-clock helpers ---------- *)

let begin_span t ?(pid = wall_pid) ~tid ?(cat = "") ?(args = []) name =
  if enabled t then
    emit t { name; cat; ph = B; ts = now_us t; pid; tid; args }

let end_span t ?(pid = wall_pid) ~tid ?(args = []) name =
  if enabled t then
    emit t { name; cat = ""; ph = E; ts = now_us t; pid; tid; args }

let complete t ?(pid = wall_pid) ~tid ?(cat = "") ?(args = []) ~ts ~dur name =
  if enabled t then emit t { name; cat; ph = X dur; ts; pid; tid; args }

let with_span t ?pid ~tid ?cat ?(args = []) name f =
  if not (enabled t) then f ()
  else begin
    let t0 = now_us t in
    Fun.protect
      ~finally:(fun () ->
        complete t ?pid ~tid ?cat ~args ~ts:t0 ~dur:(now_us t -. t0) name)
      f
  end

let instant t ?(pid = wall_pid) ~tid ?(cat = "") ?(args = []) name =
  if enabled t then
    emit t { name; cat; ph = I; ts = now_us t; pid; tid; args }

(* ---------- virtual-clock helpers (simulated seconds) ---------- *)

let complete_v t ?(pid = virtual_pid) ~tid ?(cat = "") ?(args = []) ~ts_s
    ~dur_s name =
  if enabled t then
    emit t { name; cat; ph = X (dur_s *. 1e6); ts = ts_s *. 1e6; pid; tid; args }

let instant_v t ?(pid = virtual_pid) ~tid ?(cat = "") ?(args = []) ~ts_s name =
  if enabled t then
    emit t { name; cat; ph = I; ts = ts_s *. 1e6; pid; tid; args }

(* ---------- metadata ---------- *)

let set_process_name t ~pid name =
  if enabled t then
    emit t
      {
        name = "process_name";
        cat = "__metadata";
        ph = M;
        ts = 0.;
        pid;
        tid = 0;
        args = [ ("name", Str name) ];
      }

let set_thread_name t ?(pid = wall_pid) ~tid name =
  if enabled t then
    emit t
      {
        name = "thread_name";
        cat = "__metadata";
        ph = M;
        ts = 0.;
        pid;
        tid;
        args = [ ("name", Str name) ];
      }

(* ---------- export ---------- *)

let to_chrome_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (events t)));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_chrome_string t = Json.to_string (to_chrome_json t)

let write_chrome_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_chrome_json t))
