(* Counter/gauge registry.

   Counters are atomic ints (the domains executor bumps them without a
   lock); gauges are read-on-dump views — a closure over whatever mutable
   state owns the number — so existing mutable stats records (e.g.
   [Spmd.Intersections.stats]) can surface through the registry without
   changing their representation. Registration is idempotent by name. *)

type counter = { cname : string; cell : int Atomic.t }

type entry = Counter of counter | Gauge of (unit -> float)

type t = { mutex : Mutex.t; entries : (string, entry) Hashtbl.t }

let create () = { mutex = Mutex.create (); entries = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Counter c) -> c
      | Some (Gauge _) ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics.counter: %s is a gauge" name)
      | None ->
          let c = { cname = name; cell = Atomic.make 0 } in
          Hashtbl.replace t.entries name (Counter c);
          c)

let cell c = c.cell
let name c = c.cname
let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let get c = Atomic.get c.cell

let gauge t name read =
  locked t (fun () -> Hashtbl.replace t.entries name (Gauge read))

let set t name v = gauge t name (fun () -> v)

type value = [ `Counter of int | `Gauge of float ]

let dump t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name entry acc ->
          let v =
            match entry with
            | Counter c -> `Counter (Atomic.get c.cell)
            | Gauge read -> `Gauge (read ())
          in
          (name, v) :: acc)
        t.entries [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Counter c) -> Some (`Counter (Atomic.get c.cell))
      | Some (Gauge read) -> Some (`Gauge (read ()))
      | None -> None)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | `Counter n -> Json.Int n
           | `Gauge f -> Json.Float f ))
       (dump t))

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter n -> Format.fprintf ppf "%-48s %12d@." name n
      | `Gauge f -> Format.fprintf ppf "%-48s %12.6g@." name f)
    (dump t)

let to_string t = Format.asprintf "%a" pp t
