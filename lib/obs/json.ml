(* A minimal JSON value with a printer and a recursive-descent parser.

   Kept dependency-free on purpose: the observability layer must be usable
   from every library in the tree (and from tests validating the artifacts
   it writes) without pulling an external JSON package into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no NaN/Infinity; map them to null rather than emit garbage. *)
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* Keep floats recognizable as floats on re-parse. *)
    if String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec add buf ~indent ~level v =
  let nl pad =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          add buf ~indent ~level:(level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent > 0 then Buffer.add_char buf ' ';
          add buf ~indent ~level:(level + 1) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_buffer ?(indent = 0) buf v = add buf ~indent ~level:0 v

let to_string ?(indent = 0) v =
  let buf = Buffer.create 1024 in
  to_buffer ~indent buf v;
  Buffer.contents buf

let to_channel ?(indent = 0) oc v =
  let buf = Buffer.create 65536 in
  to_buffer ~indent buf v;
  Buffer.output_buffer oc buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.s
    && match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if cur.pos >= String.length cur.s then fail cur "unterminated string";
    let c = cur.s.[cur.pos] in
    cur.pos <- cur.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if cur.pos >= String.length cur.s then fail cur "bad escape";
        let e = cur.s.[cur.pos] in
        cur.pos <- cur.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char buf e;
            go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
            if cur.pos + 4 > String.length cur.s then fail cur "bad \\u escape";
            let hex = String.sub cur.s cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail cur "bad \\u escape"
            in
            (* Decode to UTF-8; surrogate pairs are not needed for the
               artifacts this layer produces. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail cur "bad escape")
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    cur.pos < String.length cur.s && is_num_char cur.s.[cur.pos]
  do
    cur.pos <- cur.pos + 1
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  let is_float =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some '[' ->
      expect cur '[';
      skip_ws cur;
      if peek cur = Some ']' then begin
        cur.pos <- cur.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          cur.pos <- cur.pos + 1;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      expect cur '{';
      skip_ws cur;
      if peek cur = Some '}' then begin
        cur.pos <- cur.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          cur.pos <- cur.pos + 1;
          fields := field () :: !fields;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number cur

let of_string s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> raise (Parse_error msg)

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let string_value = function Str s -> Some s | _ -> None
