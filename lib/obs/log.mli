(** Level-filtered logger.

    Default level is [Warn] (overridable with the [CRC_LOG] environment
    variable: error/warn/info/debug), so routine progress chatter from the
    executor and the chaos tools is invisible in `dune runtest` while
    failures still print. The sink is replaceable for capture. *)

type level = Error | Warn | Info | Debug

val of_string : string -> level option
val level_name : level -> string

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

type sink = level -> string -> unit

val set_sink : sink -> unit
(** Replace the stderr sink (e.g. to capture chaos-soak noise). The sink
    only receives messages passing the level filter. *)

val reset_sink : unit -> unit

val err : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a
