(** Counter/gauge registry.

    Counters are atomic ints, safe to bump from OCaml domains without a
    lock; gauges are read-on-dump closures, letting existing mutable stats
    records surface through the registry as views. Registration is
    idempotent by name within one registry. *)

type t

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Find or create. Raises [Invalid_argument] if [name] is registered as a
    gauge. *)

val cell : counter -> int Atomic.t
(** The underlying atomic — the compatibility bridge that lets
    [Spmd.Exec.stats] expose registry counters as plain [int Atomic.t]
    record fields. *)

val name : counter -> string
val incr : counter -> unit
val add : counter -> int -> unit
val get : counter -> int

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) a gauge view; [read] runs at dump time. *)

val set : t -> string -> float -> unit
(** A constant gauge: [set t name v] = [gauge t name (fun () -> v)]. *)

type value = [ `Counter of int | `Gauge of float ]

val dump : t -> (string * value) list
(** Sorted by name. *)

val find : t -> string -> value option
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
