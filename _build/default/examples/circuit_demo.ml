(* Circuit demo: the sparse circuit simulation (paper §5.4), showing the
   hierarchical private/shared region tree of §4.5 at work: which copies
   control replication generates, what the dynamic intersections find, and
   the conservation invariant surviving a replicated run.

   Run with: dune exec examples/circuit_demo.exe *)

open Regions

let () =
  let cfg = Apps.Circuit.test_config ~nodes:4 in
  let prog = Apps.Circuit.program cfg in

  (* The hierarchical tree: private provably disjoint from ghost. *)
  let pvt = Ir.Program.find_partition prog "pvt"
  and shr = Ir.Program.find_partition prog "shr"
  and ghost = Ir.Program.find_partition prog "ghost" in
  Printf.printf "private vs ghost may alias (hierarchical): %b\n"
    (Cr.Alias.may_alias ~hierarchical:true prog.Ir.Program.tree pvt ghost);
  Printf.printf "shared  vs ghost may alias (hierarchical): %b\n"
    (Cr.Alias.may_alias ~hierarchical:true prog.Ir.Program.tree shr ghost);
  Printf.printf "private vs ghost may alias (flat tree):    %b\n\n"
    (Cr.Alias.may_alias ~hierarchical:false prog.Ir.Program.tree pvt ghost);

  (* Compile and show the copies CR generated: no private-partition
     copies. *)
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:4) prog in
  List.iter
    (function
      | Spmd.Prog.Replicated b ->
          print_endline "generated copies:";
          List.iter
            (fun c -> Format.printf "  %a@." Spmd.Prog.pp_copy c)
            b.Spmd.Prog.copies
      | Spmd.Prog.Seq _ -> ())
    compiled.Spmd.Prog.items;

  (* Dynamic intersections: the communication pattern. *)
  let stats = Spmd.Intersections.fresh_stats () in
  let pairs = Spmd.Intersections.compute ~stats ~src:shr ~dst:ghost () in
  Printf.printf
    "\nshr -> ghost exchange: %d non-empty intersections (of %d pieces^2 \
     possible), shallow %.3f ms, complete %.3f ms\n"
    (List.length pairs.Spmd.Intersections.items)
    (Partition.color_count shr * Partition.color_count ghost)
    (stats.Spmd.Intersections.shallow_s *. 1e3)
    (stats.Spmd.Intersections.complete_s *. 1e3);

  (* Replicated execution conserves total charge bitwise. *)
  let initial =
    let p0 = Apps.Circuit.program { cfg with Apps.Circuit.timesteps = 0 } in
    let c0 = Interp.Run.create p0 in
    Interp.Run.run c0;
    Apps.Circuit.total_node_charge c0 p0
  in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run compiled ctx;
  let final = Apps.Circuit.total_node_charge ctx prog in
  Printf.printf "\ntotal charge: initial %.12f, after %d steps %.12f (drift %.2e)\n"
    initial cfg.Apps.Circuit.timesteps final
    (Float.abs (final -. initial))
