(* Quickstart: write an implicitly parallel program, control-replicate it,
   execute both versions, and inspect the generated SPMD code.

   This is the paper's Fig. 1/2 example end to end:

     for t = 0, T do
       for i in I do TF(PB[i], PA[i]) end    -- B[i] = F(A[i])
       for j in I do TG(PA[j], QB[j]) end    -- A[j] = G(B[h(j)])
     end

   with PA, PB disjoint block partitions and QB the aliased image of h.

   Run with: dune exec examples/quickstart.exe *)

open Regions
open Ir
module Syn = Program.Syntax

let v = Field.make "v"

let () =
  let n = 32 (* elements *) and pieces = 4 and steps = 5 in
  let h e = ((e * 3) + 1) mod n in

  (* 1. Declare regions and partitions (nothing is allocated yet). *)
  let b = Program.Builder.create ~name:"quickstart" in
  let ra = Program.Builder.region b ~name:"A" (Index_space.of_range n) [ v ] in
  let rb = Program.Builder.region b ~name:"B" (Index_space.of_range n) [ v ] in
  let pa =
    Program.Builder.partition b ~name:"PA" (fun ~name ->
        Partition.block ~name ra ~pieces)
  in
  let _pb =
    Program.Builder.partition b ~name:"PB" (fun ~name ->
        Partition.block ~name rb ~pieces)
  in
  (* QB names exactly the elements TG reads: the image of h over each
     piece. h is arbitrary, so QB is aliased — this is the partition that
     drives the halo exchange control replication generates. *)
  let _qb =
    Program.Builder.partition b ~name:"QB" (fun ~name ->
        Partition.image ~name ~target:rb ~src:pa (fun e -> [ h e ]))
  in
  Program.Builder.space b ~name:"I" pieces;

  (* 2. Declare tasks: privileges + an executable kernel. *)
  let tf =
    Task.make ~name:"TF"
      ~params:
        [
          { Task.pname = "Bsub"; privs = [ Privilege.writes v ] };
          { Task.pname = "Asub"; privs = [ Privilege.reads v ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) v i ((Accessor.get accs.(1) v i *. 0.9) +. 1.));
        0.)
  in
  let tg =
    Task.make ~name:"TG"
      ~params:
        [
          { Task.pname = "Asub"; privs = [ Privilege.writes v ] };
          { Task.pname = "Bhalo"; privs = [ Privilege.reads v ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun j ->
            Accessor.set accs.(0) v j (Accessor.get accs.(1) v (h j) *. 0.95));
        0.)
  in
  let init =
    Task.make ~name:"init"
      ~params:[ { Task.pname = "r"; privs = [ Privilege.writes v ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) v i (float_of_int (i mod 5)));
        0.)
  in
  List.iter (Program.Builder.task b) [ tf; tg; init ];

  (* 3. The implicitly parallel main loop. *)
  Program.Builder.body b
    [
      Syn.run (Syn.call "init" [ Syn.whole "A" ]);
      Syn.for_time "t" steps
        [
          Syn.forall "I" (Syn.call "TF" [ Syn.part "PB"; Syn.part "PA" ]);
          Syn.forall "I" (Syn.call "TG" [ Syn.part "PA"; Syn.part "QB" ]);
        ];
    ];
  let prog = Program.Builder.finish b in

  print_endline "---- implicit program ----";
  print_endline (Pretty.program_to_string prog);

  (* 4. Sequential reference execution. *)
  let seq = Interp.Run.create prog in
  Interp.Run.run seq;

  (* 5. Control replication: compile to SPMD with 4 shards and execute. *)
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:4) prog in
  print_endline "\n---- control-replicated program ----";
  print_endline (Spmd.Prog.to_string compiled);
  let spmd = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run compiled spmd;

  (* 6. The two executions agree bitwise. *)
  let dump ctx =
    let inst = Interp.Run.instance ctx "A" in
    List.map snd (Physical.to_alist inst v)
  in
  let a_seq = dump seq and a_spmd = dump spmd in
  Printf.printf "\nA (sequential) = [%s ...]\n"
    (String.concat "; "
       (List.map (Printf.sprintf "%.4f") (List.filteri (fun i _ -> i < 8) a_seq)));
  Printf.printf "A (spmd)       = [%s ...]\n"
    (String.concat "; "
       (List.map (Printf.sprintf "%.4f") (List.filteri (fun i _ -> i < 8) a_spmd)));
  Printf.printf "bitwise equal  = %b\n" (a_seq = a_spmd);

  (* 7. And the point of it all: simulated weak scaling of this program's
     control overhead with and without replication. *)
  print_endline "\n---- why control replication matters (simulated) ----";
  Printf.printf "%8s %16s %16s\n" "nodes" "CR step (ms)" "no-CR step (ms)";
  List.iter
    (fun nodes ->
      let machine = Realm.Machine.piz_daint ~nodes in
      let cr =
        Cr.Pipeline.compile (Cr.Pipeline.default ~shards:nodes) prog
      in
      let t_cr =
        (Legion.Sim_spmd.simulate ~machine ~steps:5 cr).Legion.Sim_spmd.per_step
      in
      let t_nocr =
        (Legion.Sim_implicit.simulate ~machine ~steps:5 prog)
          .Legion.Sim_implicit.per_step
      in
      Printf.printf "%8d %16.3f %16.3f\n" nodes (t_cr *. 1e3) (t_nocr *. 1e3))
    [ 1; 2; 4 ]
