(* Stencil demo: the PRK star stencil (paper §5.1) run functionally at
   small scale — validating against its closed-form answer — and then swept
   through the machine simulator to reproduce the shape of Figure 6.

   Run with: dune exec examples/stencil_demo.exe *)

let () =
  (* Functional run: a 4-node instance with real kernels. *)
  let cfg = Apps.Stencil.test_config ~nodes:4 in
  let prog = Apps.Stencil.program cfg in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:4) prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run compiled ctx;
  let x = 10 and y = 7 in
  Printf.printf "out(%d,%d) after %d steps: %.6f (closed form %.6f)\n" x y
    cfg.Apps.Stencil.timesteps
    (let grid = Ir.Program.find_region prog "grid" in
     let inst = Interp.Run.region_instance ctx grid in
     let u = Option.get (Regions.Index_space.bounding_rect grid.Regions.Region.ispace) in
     Regions.Physical.get inst (Regions.Field.make "out")
       (Geometry.Rect.linearize u (Geometry.Point.make2 x y)))
    (Apps.Stencil.expected_output cfg ~x ~y);
  Printf.printf "checksum: %.3f\n\n" (Apps.Stencil.interior_checksum ctx prog);

  (* Simulated weak scaling at paper scale (40000^2 points per node). *)
  Printf.printf "%6s %14s %14s %14s   (10^6 points/s per node)\n" "nodes"
    "Regent+CR" "Regent-noCR" "MPI";
  List.iter
    (fun n ->
      let cfg = Apps.Stencil.default ~nodes:n in
      let machine = Realm.Machine.piz_daint ~nodes:n in
      let prog = Apps.Stencil.program cfg in
      let cr =
        (Legion.Sim_spmd.simulate ~machine ~steps:6
           (Cr.Pipeline.compile (Cr.Pipeline.default ~shards:n) prog))
          .Legion.Sim_spmd.per_step
      in
      let nocr =
        (Legion.Sim_implicit.simulate ~machine ~steps:6 prog)
          .Legion.Sim_implicit.per_step
      in
      let mpi = Apps.Stencil.Reference.per_step machine cfg Apps.Stencil.Reference.Mpi in
      let tput t = float_of_int cfg.Apps.Stencil.points_per_node /. t /. 1e6 in
      Printf.printf "%6d %14.1f %14.1f %14.1f\n%!" n (tput cr) (tput nocr)
        (tput mpi))
    [ 1; 4; 16; 64; 256 ]
