examples/quickstart.mli:
