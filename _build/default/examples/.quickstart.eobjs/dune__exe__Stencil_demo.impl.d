examples/stencil_demo.ml: Apps Cr Geometry Interp Ir Legion List Option Printf Realm Regions Spmd
