examples/pennant_demo.ml: Apps Cr Interp Legion List Printf Realm Spmd
