examples/quickstart.ml: Accessor Array Cr Field Index_space Interp Ir Legion List Partition Physical Pretty Printf Privilege Program Realm Regions Spmd String Task
