examples/circuit_demo.ml: Apps Cr Float Format Interp Ir List Partition Printf Regions Spmd
