examples/pennant_demo.mli:
