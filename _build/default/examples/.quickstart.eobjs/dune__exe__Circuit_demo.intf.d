examples/circuit_demo.mli:
