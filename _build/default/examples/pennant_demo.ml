(* PENNANT demo: Lagrangian hydrodynamics (paper §5.3) with the per-step
   global dt min-reduction — the scalar collective of §4.4. Runs the same
   program sequentially and control-replicated under an adversarial random
   schedule, then shows the simulated effect of the dt dependence under
   machine noise (the mechanism behind Figure 8).

   Run with: dune exec examples/pennant_demo.exe *)

let () =
  let cfg = Apps.Pennant.test_config ~nodes:3 in
  let prog = Apps.Pennant.program cfg in
  let seq = Interp.Run.create prog in
  Interp.Run.run seq;
  Printf.printf "sequential: dt = %.8f, momentum = (%.2e, %.2e)\n"
    (Interp.Run.scalar seq "dt")
    (fst (Apps.Pennant.total_momentum seq prog))
    (snd (Apps.Pennant.total_momentum seq prog));

  let prog2 = Apps.Pennant.program cfg in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) prog2 in
  let spmd = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run ~sched:(`Random 2024) compiled spmd;
  Printf.printf "replicated: dt = %.8f, momentum = (%.2e, %.2e)\n"
    (Interp.Run.scalar spmd "dt")
    (fst (Apps.Pennant.total_momentum spmd prog2))
    (snd (Apps.Pennant.total_momentum spmd prog2));
  Printf.printf "dt bitwise equal: %b\n\n"
    (Interp.Run.scalar seq "dt" = Interp.Run.scalar spmd "dt");

  (* The Fig. 8 mechanism: under heavy-tailed task noise, the per-step dt
     collective makes everyone wait for the slowest task. Compare the
     simulated per-step time with and without noise. *)
  Printf.printf "%6s %18s %18s\n" "nodes" "quiet (ms/step)" "noisy (ms/step)";
  List.iter
    (fun n ->
      let scfg = Apps.Pennant.sim_config ~nodes:n in
      let scale = Apps.Pennant.scale scfg in
      let compiled =
        Cr.Pipeline.compile
          (Cr.Pipeline.default ~shards:n)
          (Apps.Pennant.program scfg)
      in
      let run noise =
        (Legion.Sim_spmd.simulate
           ~machine:(Realm.Machine.make ~nodes:n ~task_noise:noise ())
           ~scale ~steps:8 compiled)
          .Legion.Sim_spmd.per_step
      in
      Printf.printf "%6d %18.2f %18.2f\n%!" n
        (run 0. *. 1e3)
        (run Apps.Pennant.task_noise *. 1e3))
    [ 1; 4; 16; 64 ]
