(* Tests for the region data model: index-space algebra, partitioning
   operators, region trees (static disjointness), physical instances and
   privilege-checked accessors. *)

open Geometry
open Regions

let check = Alcotest.check
let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- index spaces ---------- *)

let u2 = Rect.make2 ~lo:(0, 0) ~hi:(9, 9)

let gen_structured =
  QCheck2.Gen.(
    let gen_subrect =
      let* x0 = int_range 0 9 in
      let* y0 = int_range 0 9 in
      let* x1 = int_range x0 9 in
      let* y1 = int_range y0 9 in
      return (Rect.make2 ~lo:(x0, y0) ~hi:(x1, y1))
    in
    let* rl = list_size (int_range 0 4) gen_subrect in
    return (Index_space.of_rects ~universe:u2 rl))

let gen_unstructured =
  QCheck2.Gen.(
    let* l = list_size (int_range 0 50) (int_range 0 79) in
    return (Index_space.of_iset ~universe_size:80 (Sorted_iset.of_list l)))

module IS = Set.Make (Int)

let ids_model s = IS.of_list (Array.to_list (Sorted_iset.to_array (Index_space.ids s)))

let algebra_props name gen =
  qtest (name ^ ": algebra matches id-set model")
    QCheck2.Gen.(pair gen gen)
    (fun (a, b) ->
      let ma = ids_model a and mb = ids_model b in
      IS.equal (ids_model (Index_space.inter a b)) (IS.inter ma mb)
      && IS.equal (ids_model (Index_space.union a b)) (IS.union ma mb)
      && IS.equal (ids_model (Index_space.diff a b)) (IS.diff ma mb)
      && Index_space.disjoint a b = IS.disjoint ma mb
      && Index_space.subset a b = IS.subset ma mb
      && Index_space.cardinal a = IS.cardinal ma)

let prop_structured_algebra = algebra_props "structured" gen_structured
let prop_unstructured_algebra = algebra_props "unstructured" gen_unstructured

let prop_structured_mem =
  qtest "structured mem agrees with ids"
    QCheck2.Gen.(pair gen_structured (int_range 0 99))
    (fun (s, id) -> Index_space.mem s id = IS.mem id (ids_model s))

let prop_structured_disjoint_rects =
  qtest "rect decomposition is pairwise disjoint" gen_structured (fun s ->
      let rl = Index_space.rects s in
      let rec pairwise = function
        | [] -> true
        | r :: rest ->
            (not (List.exists (Rect.overlap r) rest)) && pairwise rest
      in
      pairwise rl)

let test_bounds_interval () =
  let s = Index_space.of_rects ~universe:u2 [ Rect.make2 ~lo:(1, 1) ~hi:(2, 2) ] in
  (match Index_space.bounds_interval s with
  | Some iv -> check Alcotest.(pair int int) "bounds" (11, 22) (iv.Interval.lo, iv.Interval.hi)
  | None -> Alcotest.fail "bounds of non-empty space");
  check Alcotest.bool "empty bounds" true
    (Index_space.bounds_interval (Index_space.empty_like s) = None)

(* ---------- partitions ---------- *)

let fields1 = [ Field.make "val" ]

let test_block_structured () =
  let r = Region.create ~name:"grid" (Index_space.of_rect u2) fields1 in
  let p = Partition.block ~name:"blk" r ~pieces:3 in
  check Alcotest.int "colors" 3 (Partition.color_count p);
  check Alcotest.bool "disjoint" true (Partition.verify_disjoint p);
  let total =
    Array.fold_left
      (fun acc c -> acc + Region.cardinal (Partition.sub p c))
      0
      (Array.init 3 (fun i -> i))
  in
  check Alcotest.int "covers" 100 total

let test_block_grid () =
  let r = Region.create ~name:"grid" (Index_space.of_rect u2) fields1 in
  let p = Partition.block_grid ~name:"tiles" r ~grid:[| 2; 5 |] in
  check Alcotest.int "colors" 10 (Partition.color_count p);
  check Alcotest.bool "disjoint" true (Partition.verify_disjoint p);
  Array.iter
    (fun c ->
      check Alcotest.int "tile size" 10 (Region.cardinal (Partition.sub p c)))
    (Array.init 10 (fun i -> i))

let test_block_unstructured () =
  let r = Region.create ~name:"graph" (Index_space.of_range 11) fields1 in
  let p = Partition.block ~name:"blk" r ~pieces:4 in
  let sizes =
    List.init 4 (fun c -> Region.cardinal (Partition.sub p c))
  in
  check Alcotest.(list int) "sizes" [ 3; 3; 3; 2 ] sizes;
  check Alcotest.bool "disjoint" true (Partition.verify_disjoint p)

let test_coloring () =
  let r = Region.create ~name:"elts" (Index_space.of_range 20) fields1 in
  let p = Partition.of_coloring ~name:"mod3" r ~colors:3 (fun e -> e mod 3) in
  check Alcotest.bool "disjoint" true (Partition.verify_disjoint p);
  check Alcotest.int "color1 size" 7 (Region.cardinal (Partition.sub p 1));
  check Alcotest.bool "member" true
    (Index_space.mem (Partition.sub p 1).Region.ispace 4)

let test_image_preimage () =
  (* src: 12 elements in 3 blocks; h(e) = e/2 into a 6-element target. *)
  let src_r = Region.create ~name:"edges" (Index_space.of_range 12) fields1 in
  let tgt_r = Region.create ~name:"nodes" (Index_space.of_range 6) fields1 in
  let psrc = Partition.block ~name:"psrc" src_r ~pieces:3 in
  let h e = e / 2 in
  let img = Partition.image ~name:"img" ~target:tgt_r ~src:psrc (fun e -> [ h e ]) in
  check Alcotest.int "img colors" 3 (Partition.color_count img);
  (* block 0 = {0..3} -> {0,1}; block 1 = {4..7} -> {2,3}; block 2 -> {4,5} *)
  check Alcotest.bool "img c0" true
    (Index_space.equal (Partition.sub img 0).Region.ispace
       (Index_space.of_iset ~universe_size:6 (Sorted_iset.of_list [ 0; 1 ])));
  check Alcotest.bool "aliased flag" true
    (img.Partition.disjointness = Partition.Aliased);
  let pre =
    Partition.preimage ~name:"pre" ~src:src_r ~target:psrc h
  in
  (* preimage of psrc under h within a 12-elt src: h(e) in psrc[c].
     psrc[0]={0..3} -> e/2 in {0..3} -> e in {0..7}; clipped to src. *)
  check Alcotest.bool "pre c0" true
    (Index_space.equal (Partition.sub pre 0).Region.ispace
       (Index_space.of_iset ~universe_size:12 (Sorted_iset.range 0 7)));
  check Alcotest.bool "pre disjoint" true
    (pre.Partition.disjointness = Partition.Disjoint)

let test_image_rects () =
  let u = Rect.make1 0 99 in
  let r = Region.create ~name:"line" (Index_space.of_rect u) fields1 in
  let p = Partition.block ~name:"blk" r ~pieces:4 in
  (* Halo: grow each block by 1 on both sides (radius-1 stencil). *)
  let grow (rc : Rect.t) =
    [ Rect.make1 (rc.Rect.lo.(0) - 1) (rc.Rect.hi.(0) + 1) ]
  in
  let halo = Partition.image_rects ~name:"halo" ~target:r ~src:p grow in
  check Alcotest.int "halo c0 size" 26 (Region.cardinal (Partition.sub halo 0));
  check Alcotest.int "halo c1 size" 27 (Region.cardinal (Partition.sub halo 1));
  check Alcotest.bool "aliased" true
    (halo.Partition.disjointness = Partition.Aliased)

let prop_explicit_disjointness =
  qtest "of_explicit detects disjointness"
    QCheck2.Gen.(
      let* spaces = array_size (int_range 1 4) gen_unstructured in
      return spaces)
    (fun spaces ->
      let r = Region.create ~name:"r" (Index_space.of_range 80) fields1 in
      let p = Partition.of_explicit ~name:"p" r spaces in
      (p.Partition.disjointness = Partition.Disjoint)
      = Partition.verify_disjoint p)

let prop_image_preimage_adjoint =
  (* e is in preimage(target)[c] exactly when h(e) is in target[c]; and
     x is in image(src)[c] exactly when some e in src[c] maps to it. *)
  qtest "image/preimage adjunction"
    QCheck2.Gen.(
      let* stride = int_range 1 19 in
      let* pieces = int_range 1 5 in
      return (stride, pieces))
    (fun (stride, pieces) ->
      let n = 20 in
      let h e = (e * stride) mod n in
      let src_r = Region.create ~name:"s" (Index_space.of_range n) fields1 in
      let tgt_r = Region.create ~name:"t" (Index_space.of_range n) fields1 in
      let tgt_p = Partition.block ~name:"tp" tgt_r ~pieces in
      let img =
        Partition.image ~name:"img" ~target:tgt_r
          ~src:(Partition.block ~name:"sp" src_r ~pieces)
          (fun e -> [ h e ])
      in
      let pre = Partition.preimage ~name:"pre" ~src:src_r ~target:tgt_p h in
      let ok = ref true in
      for c = 0 to pieces - 1 do
        for e = 0 to n - 1 do
          let in_pre = Index_space.mem (Partition.sub pre c).Region.ispace e in
          let h_in_tgt =
            Index_space.mem (Partition.sub tgt_p c).Region.ispace (h e)
          in
          if in_pre <> h_in_tgt then ok := false
        done;
        (* image of block c = { h(e) | e in block c } *)
        let sp = Partition.block ~name:"sp2" src_r ~pieces in
        let expected =
          Index_space.fold_ids
            (fun acc e -> h e :: acc)
            []
            (Partition.sub sp c).Region.ispace
        in
        if
          not
            (Index_space.equal (Partition.sub img c).Region.ispace
               (Index_space.of_iset ~universe_size:n (Sorted_iset.of_list expected)))
        then ok := false
      done;
      !ok)

let prop_intersect_region_preserves_disjointness =
  qtest "intersect_region keeps disjointness and shrinks subregions"
    QCheck2.Gen.(pair (int_range 1 6) gen_unstructured)
    (fun (pieces, space) ->
      let r = Region.create ~name:"r" (Index_space.of_range 80) fields1 in
      let p = Partition.block ~name:"p" r ~pieces in
      let q = Partition.intersect_region ~name:"q" p space in
      q.Partition.disjointness = p.Partition.disjointness
      && List.for_all
           (fun c ->
             Index_space.subset (Partition.sub q c).Region.ispace
               (Index_space.inter (Partition.sub p c).Region.ispace space)
             && Index_space.subset (Partition.sub q c).Region.ispace
                  (Partition.sub p c).Region.ispace)
           (List.init pieces Fun.id))

let prop_copy_volume =
  qtest "copy_volume counts the intersection"
    QCheck2.Gen.(pair gen_unstructured gen_unstructured)
    (fun (sa, sb) ->
      let f = Field.make "val" in
      let src = Physical.create_over sa [ f ]
      and dst = Physical.create_over sb [ f ] in
      Physical.copy_volume ~src ~dst
      = Index_space.cardinal (Index_space.inter sa sb))

(* ---------- region tree ---------- *)

let make_paper_tree () =
  (* The Fig. 3 region tree: A with disjoint PA; B with disjoint PB and
     aliased QB. *)
  let tree = Region_tree.create () in
  let a = Region.create ~name:"A" (Index_space.of_range 16) fields1 in
  let b = Region.create ~name:"B" (Index_space.of_range 16) fields1 in
  Region_tree.register_root tree a;
  Region_tree.register_root tree b;
  let pa = Partition.block ~name:"PA" a ~pieces:4 in
  let pb = Partition.block ~name:"PB" b ~pieces:4 in
  let qb =
    Partition.image ~name:"QB" ~target:b ~src:pb (fun e ->
        [ (e + 3) mod 16 ])
  in
  Region_tree.register_partition tree pa;
  Region_tree.register_partition tree pb;
  Region_tree.register_partition tree qb;
  (tree, a, b, pa, pb, qb)

let test_tree_lca () =
  let tree, a, b, pa, pb, qb = make_paper_tree () in
  let sub = Partition.sub in
  check Alcotest.bool "PA[0] vs PA[1] disjoint" true
    (Region_tree.provably_disjoint tree (sub pa 0) (sub pa 1));
  check Alcotest.bool "PA[0] vs PA[0] same region aliases" false
    (Region_tree.provably_disjoint tree (sub pa 0) (sub pa 0));
  check Alcotest.bool "PB[0] vs QB[1] may alias" false
    (Region_tree.provably_disjoint tree (sub pb 0) (sub qb 1));
  check Alcotest.bool "QB[0] vs QB[1] may alias" false
    (Region_tree.provably_disjoint tree (sub qb 0) (sub qb 1));
  check Alcotest.bool "PA[0] vs PB[0] different trees" true
    (Region_tree.provably_disjoint tree (sub pa 0) (sub pb 0));
  check Alcotest.bool "B vs QB[0] ancestor aliases" false
    (Region_tree.provably_disjoint tree b (sub qb 0));
  check Alcotest.bool "root of QB[0]" true
    (Region.equal (Region_tree.root_of tree (sub qb 0)) b);
  check Alcotest.bool "ancestors of PA[2]" true
    (Region_tree.ancestor_regions tree (sub pa 2) = [ a ])

let test_tree_soundness () =
  (* provably_disjoint within one tree implies actually-disjoint ispaces
     (regions with different roots have unrelated storage, so only
     same-rooted pairs are meaningful). *)
  let tree, _, _, pa, pb, qb = make_paper_tree () in
  let regions =
    List.concat_map
      (fun p -> List.init (Partition.color_count p) (Partition.sub p))
      [ pa; pb; qb ]
  in
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if
            Region.equal (Region_tree.root_of tree r1)
              (Region_tree.root_of tree r2)
            && Region_tree.provably_disjoint tree r1 r2
          then
            check Alcotest.bool
              (Printf.sprintf "%s vs %s actually disjoint" r1.Region.name
                 r2.Region.name)
              true
              (Index_space.disjoint r1.Region.ispace r2.Region.ispace))
        regions)
    regions

let test_hierarchical_tree () =
  (* The §4.5 private/ghost idiom: top-level disjoint split proves the
     private partition disjoint from ghost partitions. *)
  let tree = Region_tree.create () in
  let b = Region.create ~name:"B" (Index_space.of_range 100) fields1 in
  Region_tree.register_root tree b;
  let split =
    Partition.of_coloring ~name:"private_v_ghost" b ~colors:2 (fun e ->
        if e mod 10 < 8 then 0 else 1)
  in
  Region_tree.register_partition tree split;
  let all_private = Partition.sub split 0
  and all_ghost = Partition.sub split 1 in
  let pb = Partition.block ~name:"PB" all_private ~pieces:4 in
  let sb = Partition.block ~name:"SB" all_ghost ~pieces:4 in
  let qb =
    Partition.of_explicit ~name:"QB" ~disjoint:false all_ghost
      (Array.init 4 (fun c ->
           (Partition.sub sb ((c + 1) mod 4)).Region.ispace))
  in
  Region_tree.register_partition tree pb;
  Region_tree.register_partition tree sb;
  Region_tree.register_partition tree qb;
  check Alcotest.bool "PB[i] disjoint from QB[j]" true
    (Region_tree.provably_disjoint tree (Partition.sub pb 0)
       (Partition.sub qb 0));
  check Alcotest.bool "SB[i] vs QB[j] may alias" false
    (Region_tree.provably_disjoint tree (Partition.sub sb 1)
       (Partition.sub qb 0))

(* ---------- physical instances and accessors ---------- *)

let test_physical_copy () =
  let f = Field.make "val" in
  let r = Region.create ~name:"r" (Index_space.of_range 10) [ f ] in
  let src = Physical.create r in
  Index_space.iter_ids
    (fun id -> Physical.set src f id (float_of_int (id * id)))
    r.Region.ispace;
  let sub =
    Index_space.of_iset ~universe_size:10 (Sorted_iset.of_list [ 2; 3; 7 ])
  in
  let dst = Physical.create_over ~init:(-1.) sub [ f ] in
  Physical.copy_into ~src ~dst ();
  check (Alcotest.float 0.) "copied" 49. (Physical.get dst f 7);
  check Alcotest.int "copy volume" 3 (Physical.copy_volume ~src ~dst);
  (* Reduction copy: dst += src on the intersection. *)
  Physical.reduce_into ~op:Privilege.Sum ~src ~dst ();
  check (Alcotest.float 0.) "reduced" 98. (Physical.get dst f 7);
  (try
     ignore (Physical.get dst f 0);
     Alcotest.fail "out-of-instance access accepted"
   with Invalid_argument _ -> ())

let test_accessor_privileges () =
  let f = Field.make "val" and g = Field.make "other" in
  let r = Region.create ~name:"r" (Index_space.of_range 10) [ f; g ] in
  let inst = Physical.create r in
  let sub =
    Index_space.of_iset ~universe_size:10 (Sorted_iset.range 0 4)
  in
  let ro = Accessor.make inst ~space:sub [ Privilege.reads f ] in
  let rw = Accessor.make inst ~space:sub [ Privilege.writes f ] in
  let red = Accessor.make inst ~space:sub [ Privilege.reduces Privilege.Sum f ] in
  Accessor.set rw f 1 5.;
  check (Alcotest.float 0.) "rw set/get" 5. (Accessor.get rw f 1);
  check (Alcotest.float 0.) "ro get" 5. (Accessor.get ro f 1);
  Accessor.reduce red f 1 2.;
  check (Alcotest.float 0.) "reduce applied" 7. (Accessor.get ro f 1);
  let expect_violation name thunk =
    try
      thunk ();
      Alcotest.fail (name ^ ": expected privilege violation")
    with Accessor.Privilege_violation _ -> ()
  in
  expect_violation "write under read" (fun () -> Accessor.set ro f 0 1.);
  expect_violation "read under reduce" (fun () -> ignore (Accessor.get red f 0));
  expect_violation "write under reduce" (fun () -> Accessor.set red f 0 1.);
  expect_violation "undeclared field" (fun () -> ignore (Accessor.get ro g 0));
  expect_violation "outside subregion" (fun () -> ignore (Accessor.get ro f 9))

let prop_copy_respects_intersection =
  qtest "copy_into touches exactly the intersection"
    QCheck2.Gen.(pair gen_unstructured gen_unstructured)
    (fun (sa, sb) ->
      let f = Field.make "val" in
      let src = Physical.create_over ~init:1. sa [ f ] in
      let dst = Physical.create_over ~init:0. sb [ f ] in
      Physical.copy_into ~src ~dst ();
      let ok = ref true in
      Index_space.iter_ids
        (fun id ->
          let expected = if Index_space.mem sa id then 1. else 0. in
          if Physical.get dst f id <> expected then ok := false)
        sb;
      !ok)

let () =
  Alcotest.run "regions"
    [
      ( "index-space",
        [
          prop_structured_algebra;
          prop_unstructured_algebra;
          prop_structured_mem;
          prop_structured_disjoint_rects;
          Alcotest.test_case "bounds interval" `Quick test_bounds_interval;
        ] );
      ( "partition",
        [
          Alcotest.test_case "block structured" `Quick test_block_structured;
          Alcotest.test_case "block grid" `Quick test_block_grid;
          Alcotest.test_case "block unstructured" `Quick test_block_unstructured;
          Alcotest.test_case "coloring" `Quick test_coloring;
          Alcotest.test_case "image/preimage" `Quick test_image_preimage;
          Alcotest.test_case "image rects" `Quick test_image_rects;
          prop_explicit_disjointness;
          prop_image_preimage_adjoint;
          prop_intersect_region_preserves_disjointness;
        ] );
      ( "region-tree",
        [
          Alcotest.test_case "LCA disjointness" `Quick test_tree_lca;
          Alcotest.test_case "static soundness" `Quick test_tree_soundness;
          Alcotest.test_case "hierarchical private/ghost" `Quick
            test_hierarchical_tree;
        ] );
      ( "physical",
        [
          Alcotest.test_case "copy and reduce copy" `Quick test_physical_copy;
          Alcotest.test_case "accessor privileges" `Quick
            test_accessor_privileges;
          prop_copy_respects_intersection;
          prop_copy_volume;
        ] );
    ]
