(* Shared program fixtures for the control-replication tests: the paper's
   Fig. 2 example and a family of random programs exercising aliased image
   partitions, projections, region reductions and scalar reductions. *)

open Regions
open Ir
module Syn = Program.Syntax

let fv = Field.make "v"
let fw = Field.make "w"

(* ---------- the Fig. 2 program ---------- *)

(* for t = 0, T do
     for i in I do TF(PB[i], PA[i]) end   -- B[i] = F(A[i])
     for j in I do TG(PA[j], QB[j]) end   -- A[j] = G(B[h(j)])
   end
   with PA, PB block partitions and QB the image of h over PB. *)
let fig2 ?(n = 16) ?(nt = 4) ?(timesteps = 3) () =
  let h e = (e * 3 + 1) mod n in
  let b = Program.Builder.create ~name:"fig2" in
  let ra = Program.Builder.region b ~name:"A" (Index_space.of_range n) [ fv ] in
  let rb = Program.Builder.region b ~name:"B" (Index_space.of_range n) [ fv ] in
  let pa =
    Program.Builder.partition b ~name:"PA" (fun ~name ->
        Partition.block ~name ra ~pieces:nt)
  in
  let _pb =
    Program.Builder.partition b ~name:"PB" (fun ~name ->
        Partition.block ~name rb ~pieces:nt)
  in
  let _qb =
    Program.Builder.partition b ~name:"QB" (fun ~name ->
        (* The set read by TG on color j is { h(e) | e in PA[j] }. *)
        Partition.image ~name ~target:rb ~src:pa (fun e -> [ h e ]))
  in
  Program.Builder.space b ~name:"I" nt;
  let tf =
    Task.make ~name:"TF"
      ~params:
        [
          { Task.pname = "Bsub"; privs = [ Privilege.writes fv ] };
          { Task.pname = "Asub"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        let bs = accs.(0) and as_ = accs.(1) in
        Accessor.iter bs (fun id ->
            Accessor.set bs fv id ((Accessor.get as_ fv id *. 1.5) +. 2.));
        0.)
  in
  let tg =
    Task.make ~name:"TG"
      ~params:
        [
          { Task.pname = "Asub"; privs = [ Privilege.writes fv ] };
          { Task.pname = "Bhalo"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        let as_ = accs.(0) and bh = accs.(1) in
        Accessor.iter as_ (fun id ->
            Accessor.set as_ fv id ((Accessor.get bh fv (h id) *. 0.8) -. 1.));
        0.)
  in
  let init_a =
    Task.make ~name:"initA"
      ~params:[ { Task.pname = "A"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun id ->
            Accessor.set accs.(0) fv id ((float_of_int id *. 0.5) +. 1.));
        0.)
  in
  Program.Builder.task b tf;
  Program.Builder.task b tg;
  Program.Builder.task b init_a;
  Program.Builder.body b
    [
      Syn.run (Syn.call "initA" [ Syn.whole "A" ]);
      Syn.for_time "t" timesteps
        [
          Syn.forall "I" (Syn.call "TF" [ Syn.part "PB"; Syn.part "PA" ]);
          Syn.forall "I" (Syn.call "TG" [ Syn.part "PA"; Syn.part "QB" ]);
        ];
    ];
  Program.Builder.finish b

(* ---------- random programs ---------- *)

(* Build a deterministic random program from a seed. Structure:
   - one or two root regions over an unstructured universe, fields {v,w};
   - per region: a block partition (colors = launch space) and optionally
     an aliased image partition;
   - tasks: elementwise writers (write one partition, read another through
     identity or rotated projection), reducers into possibly-aliased
     partitions, and a scalar min-reducer;
   - body: setup single launch, then a time loop of 2-4 statements. *)
let random_program seed =
  let st = Random.State.make [| 0xC0FFEE; seed |] in
  let n = 12 + Random.State.int st 12 in
  let nt = 2 + Random.State.int st 4 in
  let steps = 1 + Random.State.int st 3 in
  let b = Program.Builder.create ~name:(Printf.sprintf "rand%d" seed) in
  let two_regions = Random.State.bool st in
  let fields = [ fv; fw ] in
  let ra = Program.Builder.region b ~name:"Ra" (Index_space.of_range n) fields in
  let rb =
    if two_regions then
      Program.Builder.region b ~name:"Rb" (Index_space.of_range n) fields
    else ra
  in
  Program.Builder.space b ~name:"I" nt;
  Program.Builder.scalar b ~name:"dt" 1.0;
  let pa =
    Program.Builder.partition b ~name:"Pa" (fun ~name ->
        Partition.block ~name ra ~pieces:nt)
  in
  (* With a single region this is a second, distinct block partition of the
     same data — two identical disjoint partitions still may-alias, which
     exercises the copy machinery on fully-overlapping replicas. *)
  let pb =
    Program.Builder.partition b ~name:"Pb" (fun ~name ->
        Partition.block ~name rb ~pieces:nt)
  in
  let stride = 1 + Random.State.int st (n - 1) in
  let ha e = (e * stride + 3) mod n in
  let _qa =
    Program.Builder.partition b ~name:"Qa" (fun ~name ->
        Partition.image ~name ~target:ra ~src:pb (fun e -> [ ha e ]))
  in
  let stride2 = 1 + Random.State.int st (n - 1) in
  let hb e = (e * stride2 + 1) mod n in
  let _qb =
    Program.Builder.partition b ~name:"Qb" (fun ~name ->
        Partition.image ~name ~target:rb ~src:pa (fun e -> [ hb e ]))
  in
  (* Tasks. Control replication requires launch iterations to be
     independent, so every task touches disjoint fields on its two
     arguments: writers of [v] read [w] (and vice versa) through possibly
     aliased halo partitions — exactly the Fig. 1 pattern where the two
     loops access the data through different partitions. *)
  let writer ~name ~wf ~rf ~h =
    Task.make ~name
      ~params:
        [
          { Task.pname = "out"; privs = [ Privilege.writes wf ] };
          { Task.pname = "inp"; privs = [ Privilege.reads rf ] };
        ]
      ~nscalars:1
      (fun accs sargs ->
        let out = accs.(0) and inp = accs.(1) in
        Accessor.iter out (fun id ->
            let src = h id in
            let x =
              if Index_space.mem (Accessor.space inp) src then
                Accessor.get inp rf src
              else 0.
            in
            Accessor.set out wf id
              ((Accessor.get out wf id *. 0.5) +. (x *. 0.25) +. sargs.(0)));
        0.)
  in
  let reducer =
    Task.make ~name:"reduce_into"
      ~params:
        [
          { Task.pname = "dst"; privs = [ Privilege.reduces Privilege.Sum fv ] };
          { Task.pname = "src"; privs = [ Privilege.reads fw ] };
        ]
      (fun accs _ ->
        let dst = accs.(0) and src = accs.(1) in
        Accessor.iter dst (fun id ->
            let base =
              Index_space.fold_ids
                (fun acc j -> acc +. (Accessor.get src fw j *. 0.001))
                0.
                (Accessor.space src)
            in
            Accessor.reduce dst fv id (base +. (float_of_int id *. 0.01)));
        0.)
  in
  let dt_task =
    Task.make ~name:"dt_of"
      ~params:[ { Task.pname = "x"; privs = [ Privilege.reads fv ] } ]
      (fun accs _ ->
        Index_space.fold_ids
          (fun acc j -> Float.min acc (1. +. Float.abs (Accessor.get accs.(0) fv j)))
          Float.infinity
          (Accessor.space accs.(0)))
  in
  let setup =
    Task.make ~name:"setup"
      ~params:[ { Task.pname = "r"; privs = [ Privilege.writes fv; Privilege.writes fw ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun id ->
            Accessor.set accs.(0) fv id (float_of_int ((id * 7) mod 5) +. 0.5);
            Accessor.set accs.(0) fw id (float_of_int ((id * 3) mod 4) -. 1.));
        0.)
  in
  Program.Builder.task b (writer ~name:"Wid" ~wf:fv ~rf:fw ~h:(fun i -> i));
  Program.Builder.task b (writer ~name:"Wha" ~wf:fv ~rf:fw ~h:ha);
  Program.Builder.task b (writer ~name:"Whb" ~wf:fw ~rf:fv ~h:hb);
  Program.Builder.task b reducer;
  Program.Builder.task b dt_task;
  Program.Builder.task b setup;
  (* Random loop body. *)
  let rot k i = (i + k) mod nt in
  let pick_reader () =
    match Random.State.int st 4 with
    | 0 -> ("Wid", Syn.part "Qa")
    | 1 -> ("Wha", Syn.part "Qa")
    | 2 -> ("Whb", Syn.part "Qb")
    | _ -> ("Wid", Syn.part_fn "Pb" "rot1" (rot 1))
  in
  let pick_writer_part () = if Random.State.bool st then "Pa" else "Pb" in
  let nstmts = 2 + Random.State.int st 3 in
  let stmts =
    List.init nstmts (fun _ ->
        match Random.State.int st 5 with
        | 0 | 1 ->
            let task, reader = pick_reader () in
            Syn.forall "I"
              (Syn.call task
                 ~scalars:[ Syn.sv "dt" ]
                 [ Syn.part (pick_writer_part ()); reader ])
        | 2 ->
            Syn.forall "I"
              (Syn.call "reduce_into" [ Syn.part "Qa"; Syn.part "Pb" ])
        | 3 ->
            Syn.forall_reduce "I"
              (Syn.call "dt_of" [ Syn.part "Pa" ])
              ~into:"dt" Privilege.Min
        | _ -> Syn.assign "dt" Syn.(sv "dt" *. !.0.9 +. !.0.05))
  in
  Program.Builder.body b
    [
      Syn.run (Syn.call "setup" [ Syn.whole "Ra" ]);
      (if two_regions then Syn.run (Syn.call "setup" [ Syn.whole "Rb" ])
       else Syn.assign "dt" Syn.(sv "dt" *. !.1.0));
      Syn.for_time "t" steps stmts;
    ];
  Program.Builder.finish b
