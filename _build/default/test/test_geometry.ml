(* Unit and property tests for the geometry substrate: rectangles, interval
   trees, BVH, sorted integer sets. Property tests check every structure
   against a brute-force model. *)

open Geometry

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- generators ---------- *)

let gen_point dim =
  QCheck2.Gen.(array_size (return dim) (int_range (-20) 20))

let gen_rect dim =
  QCheck2.Gen.(
    let* a = gen_point dim in
    let* b = gen_point dim in
    return (Rect.make (Point.min_pt a b) (Point.max_pt a b)))

let gen_rect_any = QCheck2.Gen.(int_range 1 3 >>= gen_rect)

let gen_interval =
  QCheck2.Gen.(
    let* a = int_range (-100) 100 in
    let* len = int_range 0 30 in
    return (Interval.make a (a + len)))

let gen_iset =
  QCheck2.Gen.(
    let* l = list_size (int_range 0 60) (int_range 0 99) in
    return (Sorted_iset.of_list l))

(* ---------- Point / Rect unit tests ---------- *)

let test_point_basics () =
  let p = Point.make3 1 2 3 in
  check Alcotest.int "dim" 3 (Point.dim p);
  check Alcotest.int "x" 1 (Point.x p);
  check Alcotest.int "z" 3 (Point.z p);
  check Alcotest.bool "eq" true (Point.equal p (Point.make3 1 2 3));
  check Alcotest.bool "lex" true (Point.compare (Point.make2 1 9) (Point.make2 2 0) < 0);
  check Alcotest.bool "add" true
    (Point.equal (Point.add p (Point.make3 1 1 1)) (Point.make3 2 3 4))

let test_rect_basics () =
  let r = Rect.make2 ~lo:(0, 0) ~hi:(3, 4) in
  check Alcotest.int "volume" 20 (Rect.volume r);
  check Alcotest.int "extent0" 4 (Rect.extent r 0);
  check Alcotest.bool "contains" true (Rect.contains r (Point.make2 3 4));
  check Alcotest.bool "not contains" false (Rect.contains r (Point.make2 4 0));
  (match Rect.intersect r (Rect.make2 ~lo:(2, 2) ~hi:(9, 9)) with
  | Some i -> check Alcotest.int "inter volume" 6 (Rect.volume i)
  | None -> Alcotest.fail "expected overlap");
  check Alcotest.bool "disjoint" true
    (Rect.intersect r (Rect.make2 ~lo:(4, 0) ~hi:(5, 1)) = None);
  (try
     ignore (Rect.make1 3 2);
     Alcotest.fail "empty rect accepted"
   with Invalid_argument _ -> ())

let test_rect_split () =
  let r = Rect.make2 ~lo:(0, 0) ~hi:(9, 9) in
  let a, b = Rect.split_at r ~axis:1 ~at:4 in
  check Alcotest.int "left volume" 40 (Rect.volume a);
  check Alcotest.int "right volume" 60 (Rect.volume b);
  check Alcotest.bool "disjoint halves" false (Rect.overlap a b);
  check Alcotest.int "cover" 100 (Rect.volume (Rect.union_bbox a b))

let test_block_1d () =
  (* 10 elements in 3 pieces: 4,3,3. *)
  check Alcotest.(option (pair int int)) "p0" (Some (0, 3))
    (Rect.block_1d ~lo:0 ~hi:9 ~pieces:3 ~index:0);
  check Alcotest.(option (pair int int)) "p1" (Some (4, 6))
    (Rect.block_1d ~lo:0 ~hi:9 ~pieces:3 ~index:1);
  check Alcotest.(option (pair int int)) "p2" (Some (7, 9))
    (Rect.block_1d ~lo:0 ~hi:9 ~pieces:3 ~index:2);
  (* More pieces than elements: trailing pieces empty. *)
  check Alcotest.(option (pair int int)) "empty" None
    (Rect.block_1d ~lo:0 ~hi:1 ~pieces:4 ~index:3)

let prop_linearize_roundtrip =
  qtest "linearize/delinearize roundtrip" gen_rect_any (fun r ->
      let ok = ref true in
      let v = Rect.volume r in
      if v <= 4096 then
        for k = 0 to v - 1 do
          if Rect.linearize r (Rect.delinearize r k) <> k then ok := false
        done;
      !ok)

let prop_linearize_monotone =
  qtest "linearize is row-major monotone" gen_rect_any (fun r ->
      let v = min (Rect.volume r) 2048 in
      let prev = ref (-1) and ok = ref true in
      for k = 0 to v - 1 do
        let id = Rect.linearize r (Rect.delinearize r k) in
        if id <= !prev then ok := false;
        prev := id
      done;
      !ok)

let prop_overlap_model =
  qtest "overlap agrees with pointwise model"
    QCheck2.Gen.(
      let* d = int_range 1 2 in
      let* a = gen_rect d in
      let* b = gen_rect d in
      return (a, b))
    (fun (a, b) ->
      let brute =
        Rect.fold (fun acc p -> acc || Rect.contains b p) false a
      in
      Rect.overlap a b = brute)

let prop_block_cover =
  qtest "block_1d pieces tile the range"
    QCheck2.Gen.(
      let* lo = int_range (-50) 50 in
      let* n = int_range 1 40 in
      let* pieces = int_range 1 12 in
      return (lo, lo + n - 1, pieces))
    (fun (lo, hi, pieces) ->
      let covered = Array.make (hi - lo + 1) 0 in
      for index = 0 to pieces - 1 do
        match Rect.block_1d ~lo ~hi ~pieces ~index with
        | None -> ()
        | Some (a, b) ->
            for x = a to b do
              covered.(x - lo) <- covered.(x - lo) + 1
            done
      done;
      Array.for_all (fun c -> c = 1) covered)

(* ---------- Interval tree ---------- *)

let prop_interval_tree_query =
  qtest "interval tree query = brute force"
    QCheck2.Gen.(
      let* items = list_size (int_range 0 40) gen_interval in
      let* q = gen_interval in
      return (items, q))
    (fun (items, q) ->
      let tagged = List.mapi (fun i iv -> (iv, i)) items in
      let tree = Interval_tree.build tagged in
      let got =
        List.sort compare (List.map snd (Interval_tree.query tree q))
      in
      let want =
        List.sort compare
          (List.filter_map
             (fun (iv, i) -> if Interval.overlap iv q then Some i else None)
             tagged)
      in
      got = want)

let prop_interval_tree_stab =
  qtest "interval tree stab = brute force"
    QCheck2.Gen.(
      let* items = list_size (int_range 0 40) gen_interval in
      let* x = int_range (-120) 120 in
      return (items, x))
    (fun (items, x) ->
      let tagged = List.mapi (fun i iv -> (iv, i)) items in
      let tree = Interval_tree.build tagged in
      let got = List.sort compare (List.map snd (Interval_tree.stab tree x)) in
      let want =
        List.sort compare
          (List.filter_map
             (fun (iv, i) -> if Interval.contains iv x then Some i else None)
             tagged)
      in
      got = want)

let test_interval_tree_empty () =
  let t = Interval_tree.build [] in
  check Alcotest.int "size" 0 (Interval_tree.size t);
  check Alcotest.bool "query empty" true
    (Interval_tree.query t (Interval.make 0 10) = [])

(* ---------- BVH ---------- *)

let prop_bvh_query =
  qtest "bvh query = brute force"
    QCheck2.Gen.(
      let* d = int_range 1 3 in
      let* items = list_size (int_range 0 40) (gen_rect d) in
      let* q = gen_rect d in
      return (items, q))
    (fun (items, q) ->
      let tagged = List.mapi (fun i r -> (r, i)) items in
      let bvh = Bvh.build tagged in
      let got = List.sort compare (List.map snd (Bvh.query bvh q)) in
      let want =
        List.sort compare
          (List.filter_map
             (fun (r, i) -> if Rect.overlap r q then Some i else None)
             tagged)
      in
      got = want)

let test_bvh_empty () =
  let t = Bvh.build [] in
  check Alcotest.int "size" 0 (Bvh.size t);
  check Alcotest.bool "no hits" true (Bvh.query t (Rect.make1 0 5) = [])

(* ---------- Sorted_iset ---------- *)

module IS = Set.Make (Int)

let model s = IS.of_list (Array.to_list (Sorted_iset.to_array s))

let prop_iset_ops =
  qtest "set algebra matches Set.Make(Int)"
    QCheck2.Gen.(pair gen_iset gen_iset)
    (fun (a, b) ->
      let ma = model a and mb = model b in
      IS.equal (model (Sorted_iset.union a b)) (IS.union ma mb)
      && IS.equal (model (Sorted_iset.inter a b)) (IS.inter ma mb)
      && IS.equal (model (Sorted_iset.diff a b)) (IS.diff ma mb)
      && Sorted_iset.disjoint a b = IS.disjoint ma mb
      && Sorted_iset.subset a b = IS.subset ma mb)

let prop_iset_mem =
  qtest "mem matches model"
    QCheck2.Gen.(pair gen_iset (int_range (-5) 105))
    (fun (s, x) -> Sorted_iset.mem s x = IS.mem x (model s))

let prop_iset_blocks =
  qtest "choose_block pieces partition the set"
    QCheck2.Gen.(pair gen_iset (int_range 1 8))
    (fun (s, pieces) ->
      let parts =
        List.init pieces (fun index -> Sorted_iset.choose_block s ~pieces ~index)
      in
      let reunion = List.fold_left Sorted_iset.union Sorted_iset.empty parts in
      let sizes = List.map Sorted_iset.cardinal parts in
      let max_size = List.fold_left max 0 sizes
      and min_size = List.fold_left min max_int sizes in
      Sorted_iset.equal reunion s
      && (Sorted_iset.cardinal s < pieces || max_size - min_size <= 1))

let prop_iset_runs =
  qtest "runs cover exactly the set, maximal and disjoint" gen_iset (fun s ->
      let runs = Sorted_iset.runs s in
      let cover =
        List.fold_left
          (fun acc (iv : Interval.t) ->
            Sorted_iset.union acc (Sorted_iset.range iv.Interval.lo iv.Interval.hi))
          Sorted_iset.empty runs
      in
      let rec maximal = function
        | (a : Interval.t) :: (b : Interval.t) :: rest ->
            a.Interval.hi + 1 < b.Interval.lo && maximal (b :: rest)
        | _ -> true
      in
      Sorted_iset.equal cover s && maximal runs)

let test_iset_basics () =
  let s = Sorted_iset.of_list [ 5; 1; 3; 1; 5 ] in
  check Alcotest.int "cardinal dedups" 3 (Sorted_iset.cardinal s);
  check Alcotest.int "min" 1 (Sorted_iset.min_elt s);
  check Alcotest.int "max" 5 (Sorted_iset.max_elt s);
  check Alcotest.int "nth" 3 (Sorted_iset.nth s 1);
  check Alcotest.bool "range" true
    (Sorted_iset.equal (Sorted_iset.range 2 4) (Sorted_iset.of_list [ 2; 3; 4 ]))

let () =
  Alcotest.run "geometry"
    [
      ( "point-rect",
        [
          Alcotest.test_case "point basics" `Quick test_point_basics;
          Alcotest.test_case "rect basics" `Quick test_rect_basics;
          Alcotest.test_case "rect split" `Quick test_rect_split;
          Alcotest.test_case "block_1d" `Quick test_block_1d;
          prop_linearize_roundtrip;
          prop_linearize_monotone;
          prop_overlap_model;
          prop_block_cover;
        ] );
      ( "interval-tree",
        [
          Alcotest.test_case "empty" `Quick test_interval_tree_empty;
          prop_interval_tree_query;
          prop_interval_tree_stab;
        ] );
      ("bvh", [ Alcotest.test_case "empty" `Quick test_bvh_empty; prop_bvh_query ]);
      ( "sorted-iset",
        [
          Alcotest.test_case "basics" `Quick test_iset_basics;
          prop_iset_ops;
          prop_iset_mem;
          prop_iset_blocks;
          prop_iset_runs;
        ] );
    ]
