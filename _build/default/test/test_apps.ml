(* Application validation: physical invariants, closed-form answers where
   available, and end-to-end control-replication equivalence for each of
   the four evaluation codes. *)

open Geometry
open Regions
open Ir

let check = Alcotest.check

let run_seq prog =
  let ctx = Interp.Run.create prog in
  Interp.Run.run ctx;
  ctx

let run_cr ?(shards = 3) ?(config = None) prog =
  let config =
    match config with Some c -> c | None -> Cr.Pipeline.default ~shards
  in
  let compiled = Cr.Pipeline.compile config prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run ~sched:(`Random 11) compiled ctx;
  (ctx, compiled)

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

let equivalent mk ~shards =
  let p1 = mk () in
  let c1 = run_seq p1 in
  let p2 = mk () in
  let c2, _ = run_cr ~shards p2 in
  region_data c1 p1 = region_data c2 p2
  && List.sort compare (Interp.Run.scalars c1)
     = List.sort compare (Interp.Run.scalars c2)

(* ---------- stencil ---------- *)

let test_stencil_closed_form () =
  let cfg = Apps.Stencil.test_config ~nodes:4 in
  let prog = Apps.Stencil.program cfg in
  let ctx = run_seq prog in
  let grid = Program.find_region prog "grid" in
  let inst = Interp.Run.region_instance ctx grid in
  let u =
    match Index_space.bounding_rect grid.Region.ispace with
    | Some r -> r
    | None -> Alcotest.fail "empty grid"
  in
  let fout = Field.make "out" in
  (* Every interior point must match the closed form exactly. *)
  let r = cfg.Apps.Stencil.radius in
  let w = Rect.extent u 0 and h = Rect.extent u 1 in
  let errors = ref 0 in
  for x = r to w - 1 - r do
    for y = r to h - 1 - r do
      let got = Physical.get inst fout (Rect.linearize u (Point.make2 x y)) in
      let want = Apps.Stencil.expected_output cfg ~x ~y in
      if Float.abs (got -. want) > 1e-9 *. Float.max 1. (Float.abs want) then
        incr errors
    done
  done;
  check Alcotest.int "interior points match closed form" 0 !errors

let test_stencil_cr_equivalent () =
  check Alcotest.bool "stencil CR == sequential" true
    (equivalent (fun () -> Apps.Stencil.program (Apps.Stencil.test_config ~nodes:4)) ~shards:4)

let test_stencil_halo_is_remote_only () =
  let cfg = Apps.Stencil.test_config ~nodes:2 in
  let prog = Apps.Stencil.program cfg in
  let tiles = Program.find_partition prog "tiles"
  and halos = Program.find_partition prog "halos" in
  for c = 0 to Partition.color_count tiles - 1 do
    check Alcotest.bool "halo excludes own tile" true
      (Index_space.disjoint (Partition.sub tiles c).Region.ispace
         (Partition.sub halos c).Region.ispace)
  done

(* ---------- circuit ---------- *)

let test_circuit_conservation () =
  let cfg = Apps.Circuit.test_config ~nodes:3 in
  let initial =
    let p = Apps.Circuit.program { cfg with Apps.Circuit.timesteps = 0 } in
    Apps.Circuit.total_node_charge (run_seq p) p
  in
  let prog = Apps.Circuit.program cfg in
  let final = Apps.Circuit.total_node_charge (run_seq prog) prog in
  check Alcotest.bool "total charge conserved" true
    (Float.abs (final -. initial) < 1e-9 *. Float.abs initial)

let test_circuit_cr_equivalent () =
  check Alcotest.bool "circuit CR == sequential" true
    (equivalent (fun () -> Apps.Circuit.program (Apps.Circuit.test_config ~nodes:3)) ~shards:3)

let test_circuit_hierarchy () =
  (* The §4.5 structure: private partitions provably disjoint from ghost. *)
  let prog = Apps.Circuit.program (Apps.Circuit.test_config ~nodes:2) in
  let pvt = Program.find_partition prog "pvt"
  and ghost = Program.find_partition prog "ghost"
  and shr = Program.find_partition prog "shr" in
  check Alcotest.bool "pvt vs ghost disjoint (hierarchical)" false
    (Cr.Alias.may_alias ~hierarchical:true prog.Program.tree pvt ghost);
  check Alcotest.bool "shr vs ghost alias" true
    (Cr.Alias.may_alias ~hierarchical:true prog.Program.tree shr ghost);
  check Alcotest.bool "flat analysis loses it" true
    (Cr.Alias.may_alias ~hierarchical:false prog.Program.tree pvt ghost)

let test_circuit_ghost_nonempty () =
  let prog = Apps.Circuit.program (Apps.Circuit.test_config ~nodes:3) in
  let ghost = Program.find_partition prog "ghost" in
  let total =
    List.fold_left
      (fun acc c -> acc + Region.cardinal (Partition.sub ghost c))
      0
      (List.init (Partition.color_count ghost) Fun.id)
  in
  check Alcotest.bool "cross-piece wires produce ghosts" true (total > 0)

(* ---------- miniaero ---------- *)

let test_miniaero_conservation () =
  let cfg = Apps.Miniaero.test_config ~nodes:2 in
  let initial =
    let p = Apps.Miniaero.program { cfg with Apps.Miniaero.timesteps = 0 } in
    Apps.Miniaero.total_mass (run_seq p) p
  in
  let prog = Apps.Miniaero.program cfg in
  let final = Apps.Miniaero.total_mass (run_seq prog) prog in
  check Alcotest.bool "total mass conserved" true
    (Float.abs (final -. initial) < 1e-9 *. Float.abs initial)

let test_miniaero_cr_equivalent () =
  check Alcotest.bool "miniaero CR == sequential" true
    (equivalent (fun () -> Apps.Miniaero.program (Apps.Miniaero.test_config ~nodes:2)) ~shards:2)

let test_miniaero_uniform_flow () =
  (* A uniform state has equal fluxes on all faces of the periodic mesh, so
     residuals vanish and the state is a fixed point. Run one step from a
     uniform init by zeroing the variation: we emulate it by checking that
     residual contributions cancel per cell — total mass conservation is
     bitwise, checked above; here spot-check the state stays uniform if it
     starts uniform. *)
  let cfg = Apps.Miniaero.test_config ~nodes:1 in
  let prog = Apps.Miniaero.program cfg in
  let ctx = Interp.Run.create prog in
  (* Overwrite the init: run setup, then force uniformity, then the loop. *)
  (match prog.Program.body with
  | setup1 :: setup2 :: loop ->
      Interp.Run.run_stmts ctx [ setup1; setup2 ];
      let cells = Program.find_region prog "cells" in
      let inst = Interp.Run.region_instance ctx cells in
      let frho = Field.make "rho" and fe = Field.make "energy" in
      Index_space.iter_ids
        (fun id ->
          Physical.set inst frho id 1.;
          Physical.set inst fe id 2.5)
        cells.Region.ispace;
      Interp.Run.run_stmts ctx loop;
      let uniform = ref true in
      Index_space.iter_ids
        (fun id -> if Physical.get inst frho id <> 1. then uniform := false)
        cells.Region.ispace;
      check Alcotest.bool "uniform flow preserved" true !uniform
  | _ -> Alcotest.fail "unexpected program shape")

(* ---------- pennant ---------- *)

let test_pennant_momentum () =
  let prog = Apps.Pennant.program (Apps.Pennant.test_config ~nodes:2) in
  let ctx = run_seq prog in
  let mx, my = Apps.Pennant.total_momentum ctx prog in
  check Alcotest.bool "momentum conserved" true
    (Float.abs mx < 1e-9 && Float.abs my < 1e-9)

let test_pennant_cr_equivalent () =
  check Alcotest.bool "pennant CR == sequential (incl. dt collective)" true
    (equivalent (fun () -> Apps.Pennant.program (Apps.Pennant.test_config ~nodes:2)) ~shards:2)

let test_pennant_dt_decreases () =
  (* The min-reduction replaces the initial placeholder: the CFL estimate
     0.05*sqrt(vol)/(1+|p|) is bounded by 0.05 and strictly positive, and
     the hot zone's pressure keeps it strictly below the zero-pressure
     bound. *)
  let prog = Apps.Pennant.program (Apps.Pennant.test_config ~nodes:2) in
  let ctx = run_seq prog in
  let dt = Interp.Run.scalar ctx "dt" in
  check Alcotest.bool "dt in CFL range" true (dt > 0. && dt < 0.05);
  check Alcotest.bool "dt replaced the initial value" true (dt <> 1e-3)

(* ---------- cross-app: all configs agree ---------- *)

let test_apps_config_invariance () =
  let apps =
    [
      ("stencil", fun () -> Apps.Stencil.program (Apps.Stencil.test_config ~nodes:2));
      ("circuit", fun () -> Apps.Circuit.program (Apps.Circuit.test_config ~nodes:2));
      ("pennant", fun () -> Apps.Pennant.program (Apps.Pennant.test_config ~nodes:2));
    ]
  in
  List.iter
    (fun (name, mk) ->
      let p1 = mk () in
      let d1 = region_data (run_seq p1) p1 in
      List.iter
        (fun config ->
          let p2 = mk () in
          let ctx2, _ = run_cr ~config:(Some config) p2 in
          check Alcotest.bool (name ^ " config-invariant") true
            (region_data ctx2 p2 = d1))
        [
          { (Cr.Pipeline.default ~shards:2) with Cr.Pipeline.sync = `Barrier };
          { (Cr.Pipeline.default ~shards:2) with Cr.Pipeline.hierarchical = false };
          { (Cr.Pipeline.default ~shards:2) with Cr.Pipeline.intersections = `Dense };
        ])
    apps

let () =
  Alcotest.run "applications"
    [
      ( "stencil",
        [
          Alcotest.test_case "closed form" `Quick test_stencil_closed_form;
          Alcotest.test_case "CR equivalence" `Quick test_stencil_cr_equivalent;
          Alcotest.test_case "halo remote-only" `Quick
            test_stencil_halo_is_remote_only;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "charge conservation" `Quick
            test_circuit_conservation;
          Alcotest.test_case "CR equivalence" `Quick test_circuit_cr_equivalent;
          Alcotest.test_case "hierarchical tree" `Quick test_circuit_hierarchy;
          Alcotest.test_case "ghosts exist" `Quick test_circuit_ghost_nonempty;
        ] );
      ( "miniaero",
        [
          Alcotest.test_case "mass conservation" `Quick
            test_miniaero_conservation;
          Alcotest.test_case "CR equivalence" `Quick test_miniaero_cr_equivalent;
          Alcotest.test_case "uniform flow fixed point" `Quick
            test_miniaero_uniform_flow;
        ] );
      ( "pennant",
        [
          Alcotest.test_case "momentum conservation" `Quick
            test_pennant_momentum;
          Alcotest.test_case "CR equivalence" `Quick test_pennant_cr_equivalent;
          Alcotest.test_case "dt reduction" `Quick test_pennant_dt_decreases;
        ] );
      ( "config-invariance",
        [ Alcotest.test_case "all configs agree" `Quick test_apps_config_invariance ] );
    ]
