(* Tests for the execution substrate: the domain pool, the sequential
   interpreter's order invariance, and the privilege strictness the
   interpreter enforces. *)

open Regions
open Ir

let check = Alcotest.check

(* ---------- taskpool ---------- *)

let test_pool_async () =
  Taskpool.Pool.with_pool ~domains:2 (fun pool ->
      let futures =
        List.init 20 (fun i ->
            Taskpool.Pool.async pool (fun () -> i * i))
      in
      let total =
        List.fold_left (fun acc f -> acc + Taskpool.Pool.await f) 0 futures
      in
      check Alcotest.int "sum of squares" 2470 total)

let test_pool_parallel_for () =
  Taskpool.Pool.with_pool ~domains:3 (fun pool ->
      let n = 1000 in
      let out = Array.make n 0 in
      Taskpool.Pool.parallel_for pool ~lo:0 ~hi:(n - 1) (fun i ->
          out.(i) <- 3 * i);
      let ok = ref true in
      Array.iteri (fun i v -> if v <> 3 * i then ok := false) out;
      check Alcotest.bool "all cells written" true !ok)

let test_pool_exception () =
  Taskpool.Pool.with_pool ~domains:2 (fun pool ->
      let f = Taskpool.Pool.async pool (fun () -> failwith "boom") in
      (try
         ignore (Taskpool.Pool.await f);
         Alcotest.fail "expected exception"
       with Failure m -> check Alcotest.string "message" "boom" m);
      (* The pool survives a failed task. *)
      check Alcotest.int "pool still works" 7
        (Taskpool.Pool.await (Taskpool.Pool.async pool (fun () -> 7))))

let test_pool_map () =
  Taskpool.Pool.with_pool ~domains:2 (fun pool ->
      let out =
        Taskpool.Pool.parallel_map_array pool
          (fun x -> x *. 2.)
          (Array.init 100 float_of_int)
      in
      check (Alcotest.float 0.) "last" 198. out.(99))

(* ---------- interpreter order invariance ---------- *)

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

let run_with order prog =
  let ctx = Interp.Run.create prog in
  Interp.Run.run ~order ctx;
  (region_data ctx prog, List.sort compare (Interp.Run.scalars ctx))

let test_order_invariance () =
  (* The fixture programs have independent launch iterations, so results
     must be bitwise identical under any execution order — including real
     parallel execution on domains. *)
  List.iter
    (fun seed ->
      let reference = run_with `Seq (Test_fixtures.Fixtures.random_program seed) in
      List.iter
        (fun order ->
          check Alcotest.bool
            (Printf.sprintf "seed %d order-invariant" seed)
            true
            (run_with order (Test_fixtures.Fixtures.random_program seed) = reference))
        [ `Random 1; `Random 99 ];
      Taskpool.Pool.with_pool ~domains:3 (fun pool ->
          check Alcotest.bool
            (Printf.sprintf "seed %d pool-invariant" seed)
            true
            (run_with (`Pool pool) (Test_fixtures.Fixtures.random_program seed) = reference)))
    [ 2; 17; 23 ]

let test_fig2_functional () =
  (* Hand-checked first iteration of the Fig. 2 program on a small
     instance: B[i] = F(A[i]) = 1.5*A[i] + 2 with A initialised to
     0.5*i + 1. *)
  let prog = Test_fixtures.Fixtures.fig2 ~n:8 ~nt:2 ~timesteps:1 () in
  let ctx = Interp.Run.create prog in
  Interp.Run.run ctx;
  let b = Interp.Run.instance ctx "B" in
  check (Alcotest.float 1e-12) "B[3] after TF" ((1.5 *. 2.5) +. 2.)
    (Physical.get b Test_fixtures.Fixtures.fv 3);
  (* A[j] = G(B[h(j)]) = 0.8*B[(3j+1) mod 8] - 1. *)
  let a = Interp.Run.instance ctx "A" in
  let h j = ((j * 3) + 1) mod 8 in
  let expected_b e = (1.5 *. ((0.5 *. float_of_int e) +. 1.)) +. 2. in
  check (Alcotest.float 1e-12) "A[2] after TG"
    ((0.8 *. expected_b (h 2)) -. 1.)
    (Physical.get a Test_fixtures.Fixtures.fv 2)

(* ---------- privilege strictness at the interpreter level ---------- *)

let test_kernel_violation_detected () =
  let fv = Test_fixtures.Fixtures.fv in
  let b = Program.Builder.create ~name:"violation" in
  let _r = Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv ] in
  let bad_task =
    Task.make ~name:"bad"
      ~params:[ { Task.pname = "r"; privs = [ Privilege.reads fv ] } ]
      (fun accs _ ->
        (* Writes under a read privilege: must raise. *)
        Accessor.set accs.(0) fv 0 1.;
        0.)
  in
  Program.Builder.task b bad_task;
  let module Syn = Program.Syntax in
  Program.Builder.body b [ Syn.run (Syn.call "bad" [ Syn.whole "R" ]) ];
  let prog = Program.Builder.finish b in
  let ctx = Interp.Run.create prog in
  try
    Interp.Run.run ctx;
    Alcotest.fail "privilege violation not detected"
  with Accessor.Privilege_violation _ -> ()

(* ---------- checker ---------- *)

let test_checker_rejects () =
  let fv = Test_fixtures.Fixtures.fv in
  let expect_errors name build =
    let b = Program.Builder.create ~name in
    build b;
    match Check.check (Program.Builder.finish b) with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: expected a checker error" name
  in
  let module Syn = Program.Syntax in
  let writer =
    Task.make ~name:"w"
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun _ _ -> 0.)
  in
  expect_errors "unknown task" (fun b ->
      let _ = Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv ] in
      Program.Builder.body b [ Syn.run (Syn.call "nope" [ Syn.whole "R" ]) ]);
  expect_errors "write through aliased partition" (fun b ->
      let r = Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv ] in
      let p =
        Program.Builder.partition b ~name:"P" (fun ~name ->
            Partition.block ~name r ~pieces:2)
      in
      let _ =
        Program.Builder.partition b ~name:"Q" (fun ~name ->
            Partition.image ~name ~target:r ~src:p (fun e -> [ e; (e + 1) mod 8 ]))
      in
      Program.Builder.space b ~name:"I" 2;
      Program.Builder.task b writer;
      Program.Builder.body b [ Syn.forall "I" (Syn.call "w" [ Syn.part "Q" ]) ]);
  expect_errors "arity mismatch" (fun b ->
      let r = Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv ] in
      let _ =
        Program.Builder.partition b ~name:"P" (fun ~name ->
            Partition.block ~name r ~pieces:2)
      in
      Program.Builder.space b ~name:"I" 2;
      Program.Builder.task b writer;
      Program.Builder.body b
        [ Syn.forall "I" (Syn.call "w" [ Syn.part "P"; Syn.part "P" ]) ]);
  expect_errors "unbound scalar" (fun b ->
      Program.Builder.body b [ Syn.assign "x" Syn.(!.1.0) ])

let () =
  Alcotest.run "runtime"
    [
      ( "taskpool",
        [
          Alcotest.test_case "async/await" `Quick test_pool_async;
          Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
          Alcotest.test_case "map array" `Quick test_pool_map;
        ] );
      ( "interp",
        [
          Alcotest.test_case "order invariance" `Quick test_order_invariance;
          Alcotest.test_case "fig2 functional values" `Quick
            test_fig2_functional;
          Alcotest.test_case "privilege violation detected" `Quick
            test_kernel_violation_detected;
        ] );
      ("check", [ Alcotest.test_case "rejections" `Quick test_checker_rejects ]);
    ]
