test/fixtures.ml: Accessor Array Field Float Index_space Ir List Partition Printf Privilege Program Random Regions Task
