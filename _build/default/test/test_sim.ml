(* Tests for the machine simulator: core pools, the machine model, the
   dynamic dependence analysis, and sanity properties of the two
   simulators (the mechanisms behind Figures 6-9). *)

open Regions
open Ir

let check = Alcotest.check

(* ---------- cores ---------- *)

let test_cores_serialize () =
  let p = Realm.Cores.create ~cores:2 in
  (* Three unit tasks on two cores: two run at 0, one queues. *)
  let t1 = Realm.Cores.execute p ~ready:0. ~duration:1. in
  let t2 = Realm.Cores.execute p ~ready:0. ~duration:1. in
  let t3 = Realm.Cores.execute p ~ready:0. ~duration:1. in
  check (Alcotest.float 1e-9) "first" 1. t1;
  check (Alcotest.float 1e-9) "second" 1. t2;
  check (Alcotest.float 1e-9) "third queues" 2. t3;
  check (Alcotest.float 1e-9) "busy until" 2. (Realm.Cores.busy_until p);
  Realm.Cores.reset p;
  check (Alcotest.float 1e-9) "reset" 0. (Realm.Cores.busy_until p)

let test_cores_ready_gap () =
  let p = Realm.Cores.create ~cores:1 in
  let t1 = Realm.Cores.execute p ~ready:5. ~duration:1. in
  check (Alcotest.float 1e-9) "waits for ready" 6. t1

(* ---------- machine ---------- *)

let test_machine_model () =
  let m = Realm.Machine.piz_daint ~nodes:16 in
  check Alcotest.int "compute cores" 11 (Realm.Machine.compute_cores m);
  check Alcotest.bool "intra-node cheaper" true
    (Realm.Machine.transfer_time m ~src_node:3 ~dst_node:3 ~bytes:1e6
    < Realm.Machine.transfer_time m ~src_node:3 ~dst_node:4 ~bytes:1e6);
  check Alcotest.bool "collective grows with nodes" true
    (Realm.Machine.collective_time (Realm.Machine.piz_daint ~nodes:1024)
    > Realm.Machine.collective_time m);
  check (Alcotest.float 0.) "no noise by default" 1.
    (Realm.Machine.jitter m ~key:123);
  let noisy = Realm.Machine.make ~nodes:4 ~task_noise:0.1 () in
  let j = Realm.Machine.jitter noisy ~key:123 in
  check Alcotest.bool "noise in range" true (j >= 1. && j <= 1.6);
  check (Alcotest.float 0.) "deterministic" j
    (Realm.Machine.jitter noisy ~key:123)

(* ---------- dependence analysis ---------- *)

let stmts_of prog =
  match
    List.find_map
      (function Types.For_time { body; _ } -> Some body | _ -> None)
      prog.Program.body
  with
  | Some body ->
      List.filter
        (function
          | Types.Index_launch _ | Types.Index_launch_reduce _ -> true
          | _ -> false)
        body
  | None -> Alcotest.fail "no loop"

let test_dep_fig2 () =
  let prog = Test_fixtures.Fixtures.fig2 () in
  match stmts_of prog with
  | [ tf; tg ] ->
      (* TF writes PB / TG reads QB (aliased through B): data pairs.
         TF reads PA / TG writes PA: same disjoint partition. *)
      (match Legion.Dep.relate prog tf tg with
      | Legion.Dep.All_colors { data; order = _ } ->
          check Alcotest.bool "has data pairs" true (data <> []);
          List.iter
            (fun (p : Spmd.Intersections.pairs) ->
              check Alcotest.bool "non-empty intersections" true
                (p.Spmd.Intersections.items <> []))
            data
      | _ -> Alcotest.fail "expected All_colors TF->TG");
      (match Legion.Dep.relate prog tg tf with
      | Legion.Dep.All_colors _ -> ()
      | Legion.Dep.Same_color | Legion.Dep.No_dep ->
          Alcotest.fail "expected aliasing TG->TF (PA write vs read is \
                         same-partition but QB read vs PB write aliases)")
  | _ -> Alcotest.fail "expected two launches"

let test_dep_independent () =
  (* Two launches touching different regions: no dependence. *)
  let fv = Test_fixtures.Fixtures.fv in
  let b = Program.Builder.create ~name:"indep" in
  let r1 = Program.Builder.region b ~name:"R1" (Index_space.of_range 8) [ fv ] in
  let r2 = Program.Builder.region b ~name:"R2" (Index_space.of_range 8) [ fv ] in
  let _ =
    Program.Builder.partition b ~name:"P1" (fun ~name ->
        Partition.block ~name r1 ~pieces:2)
  in
  let _ =
    Program.Builder.partition b ~name:"P2" (fun ~name ->
        Partition.block ~name r2 ~pieces:2)
  in
  Program.Builder.space b ~name:"I" 2;
  let w name =
    Task.make ~name
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun _ _ -> 0.)
  in
  Program.Builder.task b (w "w1");
  Program.Builder.task b (w "w2");
  let module Syn = Program.Syntax in
  Program.Builder.body b
    [
      Syn.for_time "t" 1
        [
          Syn.forall "I" (Syn.call "w1" [ Syn.part "P1" ]);
          Syn.forall "I" (Syn.call "w2" [ Syn.part "P2" ]);
        ];
    ];
  let prog = Program.Builder.finish b in
  match stmts_of prog with
  | [ s1; s2 ] ->
      check Alcotest.bool "no dep" true (Legion.Dep.relate prog s1 s2 = Legion.Dep.No_dep)
  | _ -> Alcotest.fail "expected two launches"

(* ---------- simulator sanity ---------- *)

let stencil_cr nodes =
  let cfg = Apps.Stencil.default ~nodes in
  let prog = Apps.Stencil.program cfg in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:nodes) prog in
  (Legion.Sim_spmd.simulate
     ~machine:(Realm.Machine.piz_daint ~nodes)
     ~steps:6 compiled)
    .Legion.Sim_spmd.per_step

let stencil_nocr nodes =
  let cfg = Apps.Stencil.default ~nodes in
  let prog = Apps.Stencil.program cfg in
  (Legion.Sim_implicit.simulate
     ~machine:(Realm.Machine.piz_daint ~nodes)
     ~steps:6 prog)
    .Legion.Sim_implicit.per_step

let test_cr_weak_scaling_flat () =
  (* The paper's headline: CR keeps near-perfect weak scaling. *)
  let t1 = stencil_cr 1 and t64 = stencil_cr 64 in
  check Alcotest.bool "within 5% of single node" true (t64 < t1 *. 1.05)

let test_nocr_collapses () =
  (* Without CR the master O(N) launch overhead dominates at scale (Fig. 1):
     per-step time grows roughly linearly once saturated. *)
  let t1 = stencil_nocr 1 and t256 = stencil_nocr 256 and t512 = stencil_nocr 512 in
  check Alcotest.bool "much slower at 256 nodes" true (t256 > t1 *. 2.);
  check Alcotest.bool "roughly linear beyond saturation" true
    (t512 > t256 *. 1.7 && t512 < t256 *. 2.3)

let test_cr_beats_nocr_at_scale () =
  check Alcotest.bool "CR wins at 64 nodes" true (stencil_cr 64 < stencil_nocr 64)

let test_nocr_matches_at_small_scale () =
  (* At 1 node the two models should roughly agree (same work, same cores):
     this pins the simulators against each other. *)
  let cr = stencil_cr 1 and nocr = stencil_nocr 1 in
  check Alcotest.bool "within 10% at one node" true
    (Float.abs (cr -. nocr) /. cr < 0.10)

let test_sim_deterministic () =
  let a = stencil_cr 16 and b = stencil_cr 16 in
  check (Alcotest.float 0.) "bitwise deterministic" a b

let test_mapper_matters () =
  (* A communication-hostile round-robin mapping moves far more data than
     the locality-preserving block mapping (§4.2: mapping decisions are
     orthogonal to CR but visible in the model). *)
  let cfg = Apps.Circuit.sim_config ~nodes:8 in
  let scale = Apps.Circuit.scale cfg in
  let machine = Realm.Machine.piz_daint ~nodes:8 in
  let prog = Apps.Circuit.program cfg in
  let run mapper =
    (Legion.Sim_implicit.simulate ~machine ~mapper ~scale ~steps:4 prog)
      .Legion.Sim_implicit.bytes_moved
  in
  let block = run (Legion.Mapper.block ~nodes:8)
  and rr = run (Legion.Mapper.round_robin ~nodes:8) in
  check Alcotest.bool "round robin moves more data" true (rr > 2. *. block)

let test_barrier_mode_slower () =
  let cfg = Apps.Circuit.sim_config ~nodes:32 in
  let scale = Apps.Circuit.scale cfg in
  let machine = Realm.Machine.piz_daint ~nodes:32 in
  let run sync =
    let prog = Apps.Circuit.program cfg in
    let compiled =
      Cr.Pipeline.compile { (Cr.Pipeline.default ~shards:32) with Cr.Pipeline.sync } prog
    in
    (Legion.Sim_spmd.simulate ~machine ~scale ~steps:6 compiled)
      .Legion.Sim_spmd.per_step
  in
  check Alcotest.bool "barriers cost more" true (run `Barrier > run `P2p)

let () =
  Alcotest.run "simulator"
    [
      ( "cores",
        [
          Alcotest.test_case "multiserver queueing" `Quick test_cores_serialize;
          Alcotest.test_case "ready gap" `Quick test_cores_ready_gap;
        ] );
      ("machine", [ Alcotest.test_case "model" `Quick test_machine_model ]);
      ( "dependence",
        [
          Alcotest.test_case "fig2 relations" `Quick test_dep_fig2;
          Alcotest.test_case "independent stmts" `Quick test_dep_independent;
        ] );
      ( "weak-scaling",
        [
          Alcotest.test_case "CR stays flat" `Quick test_cr_weak_scaling_flat;
          Alcotest.test_case "no-CR collapses" `Quick test_nocr_collapses;
          Alcotest.test_case "CR wins at scale" `Quick test_cr_beats_nocr_at_scale;
          Alcotest.test_case "models agree at 1 node" `Quick
            test_nocr_matches_at_small_scale;
          Alcotest.test_case "simulation deterministic" `Quick
            test_sim_deterministic;
          Alcotest.test_case "barrier sync costs more" `Quick
            test_barrier_mode_slower;
          Alcotest.test_case "mapping locality matters" `Quick
            test_mapper_matters;
        ] );
    ]
