(* Tests for the SPMD layer: dynamic intersections (shallow + complete)
   against brute force, ownership maps, executor synchronisation semantics
   (including deadlock detection on deliberately broken programs), and the
   synchronisation-insertion invariants. *)

open Geometry
open Regions
open Ir

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fv = Field.make "v"
let fw = Field.make "w"

(* ---------- intersections vs brute force ---------- *)

let gen_unstructured_partition =
  QCheck2.Gen.(
    let* colors = int_range 1 6 in
    let* sets =
      array_size (return colors)
        (let* l = list_size (int_range 0 20) (int_range 0 59) in
         return (Sorted_iset.of_list l))
    in
    return sets)

let mk_unstructured_partition name sets =
  let r = Region.create ~name:(name ^ "_r") (Index_space.of_range 60) [ fv ] in
  Partition.of_explicit ~name ~disjoint:false r
    (Array.map (fun s -> Index_space.of_iset ~universe_size:60 s) sets)

let brute_force_pairs src dst =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          let inter =
            Index_space.inter
              (Partition.sub src i).Region.ispace
              (Partition.sub dst j).Region.ispace
          in
          if Index_space.is_empty inter then None
          else Some (i, j, Sorted_iset.to_array (Index_space.ids inter)))
        (List.init (Partition.color_count dst) Fun.id))
    (List.init (Partition.color_count src) Fun.id)

let normalize items =
  List.sort compare
    (List.map
       (fun (i, j, sp) -> (i, j, Sorted_iset.to_array (Index_space.ids sp)))
       items)

let prop_intersections_exact =
  qtest "sparse intersections = brute force"
    QCheck2.Gen.(pair gen_unstructured_partition gen_unstructured_partition)
    (fun (a, b) ->
      let src = mk_unstructured_partition "src" a
      and dst = mk_unstructured_partition "dst" b in
      let got = Spmd.Intersections.compute ~src ~dst () in
      normalize got.Spmd.Intersections.items
      = List.sort compare (brute_force_pairs src dst))

let prop_all_pairs_same_nonempty =
  qtest "all-pairs finds the same non-empty set"
    QCheck2.Gen.(pair gen_unstructured_partition gen_unstructured_partition)
    (fun (a, b) ->
      let src = mk_unstructured_partition "src" a
      and dst = mk_unstructured_partition "dst" b in
      let sparse = Spmd.Intersections.compute ~src ~dst ()
      and dense = Spmd.Intersections.compute_all_pairs ~src ~dst () in
      normalize sparse.Spmd.Intersections.items
      = normalize dense.Spmd.Intersections.items)

let test_intersections_structured () =
  (* Structured path through the BVH: block tiles vs their one-cell halos
     on a 12x12 grid. *)
  let u = Rect.make2 ~lo:(0, 0) ~hi:(11, 11) in
  let r = Region.create ~name:"g" (Index_space.of_rect u) [ fv ] in
  let tiles = Partition.block_grid ~name:"tiles" r ~grid:[| 2; 2 |] in
  let halos =
    Partition.image_rects ~name:"halos" ~target:r ~src:tiles (fun rc ->
        [
          Rect.make2
            ~lo:(rc.Rect.lo.(0) - 1, rc.Rect.lo.(1) - 1)
            ~hi:(rc.Rect.hi.(0) + 1, rc.Rect.hi.(1) + 1);
        ])
  in
  let got = Spmd.Intersections.compute ~src:tiles ~dst:halos () in
  let brute = brute_force_pairs tiles halos in
  check Alcotest.bool "matches brute force" true
    (normalize got.Spmd.Intersections.items = List.sort compare brute);
  (* Every tile overlaps every halo on a 2x2 tiling (corners touch). *)
  check Alcotest.int "pair count" 16 (List.length got.Spmd.Intersections.items)

(* ---------- ownership ---------- *)

let prop_ownership_consistent =
  qtest "owner_of_color inverts colors_of_shard"
    QCheck2.Gen.(
      let* shards = int_range 1 12 in
      let* colors = int_range 1 40 in
      return (shards, colors))
    (fun (shards, colors) ->
      List.for_all
        (fun s ->
          List.for_all
            (fun c -> Spmd.Prog.owner_of_color ~shards ~colors c = s)
            (Spmd.Prog.colors_of_shard ~shards ~colors s))
        (List.init shards Fun.id)
      &&
      (* every color owned exactly once *)
      List.length
        (List.concat_map
           (fun s -> Spmd.Prog.colors_of_shard ~shards ~colors s)
           (List.init shards Fun.id))
      = colors)

(* ---------- executor semantics ---------- *)

(* A minimal hand-built block: one partition, one launch writing it, one
   copy to an overlapping partition, proper sync. Executing it must move
   the data; breaking the sync must deadlock. *)
let tiny_env () =
  let b = Program.Builder.create ~name:"tiny" in
  let r =
    Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv; fw ]
  in
  let p =
    Program.Builder.partition b ~name:"P" (fun ~name ->
        Partition.block ~name r ~pieces:2)
  in
  let _q =
    Program.Builder.partition b ~name:"Q" (fun ~name ->
        Partition.image ~name ~target:r ~src:p (fun e -> [ (e + 4) mod 8 ]))
  in
  Program.Builder.space b ~name:"I" 2;
  let bump =
    Task.make ~name:"bump"
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i (Accessor.get accs.(0) fv i +. 1.));
        0.)
  in
  (* Writes a different field than it reads, so launch iterations stay
     independent (the CR precondition). *)
  let observe =
    Task.make ~name:"observe"
      ~params:
        [
          { Task.pname = "out"; privs = [ Privilege.writes fw ] };
          { Task.pname = "inp"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fw i
              (Accessor.get accs.(0) fw i
              +. (0.5 *. Accessor.get accs.(1) fv ((i + 4) mod 8))));
        0.)
  in
  Program.Builder.task b bump;
  Program.Builder.task b observe;
  Program.Builder.finish b

let launch task rargs =
  Spmd.Prog.Launch
    {
      space = "I";
      launch = { Types.task; rargs; sargs = [||] };
    }

let mk_copy id =
  {
    Spmd.Prog.copy_id = id;
    src = Spmd.Prog.Opart "P";
    dst = Spmd.Prog.Opart "Q";
    fields = [ fv ];
    reduce = None;
    pairs = `Sparse;
  }

let part p = Types.Part (p, Types.Id)

let run_tiny body ~credits ~copies =
  let prog = tiny_env () in
  let block =
    {
      Spmd.Prog.shards = 2;
      init =
        [
          Spmd.Prog.Copy
            {
              Spmd.Prog.copy_id = 100;
              src = Spmd.Prog.Oregion "R";
              dst = Spmd.Prog.Opart "P";
              fields = [ fv; fw ];
              reduce = None;
              pairs = `Sparse;
            };
          Spmd.Prog.Copy
            {
              Spmd.Prog.copy_id = 101;
              src = Spmd.Prog.Oregion "R";
              dst = Spmd.Prog.Opart "Q";
              fields = [ fv ];
              reduce = None;
              pairs = `Sparse;
            };
        ];
      body;
      finalize =
        [
          Spmd.Prog.Copy
            {
              Spmd.Prog.copy_id = 102;
              src = Spmd.Prog.Opart "P";
              dst = Spmd.Prog.Oregion "R";
              fields = [ fv; fw ];
              reduce = None;
              pairs = `Sparse;
            };
        ];
      copies =
        [
          mk_copy 0;
          {
            Spmd.Prog.copy_id = 100;
            src = Spmd.Prog.Oregion "R";
            dst = Spmd.Prog.Opart "P";
            fields = [ fv; fw ];
            reduce = None;
            pairs = `Sparse;
          };
          {
            Spmd.Prog.copy_id = 101;
            src = Spmd.Prog.Oregion "R";
            dst = Spmd.Prog.Opart "Q";
            fields = [ fv ];
            reduce = None;
            pairs = `Sparse;
          };
          {
            Spmd.Prog.copy_id = 102;
            src = Spmd.Prog.Opart "P";
            dst = Spmd.Prog.Oregion "R";
            fields = [ fv; fw ];
            reduce = None;
            pairs = `Sparse;
          };
        ]
        @ copies;
      credits;
    }
  in
  let ctx = Interp.Run.create prog in
  Spmd.Exec.run_block ~sched:`Round_robin ~source:prog ctx block;
  (prog, ctx)

let test_exec_copy_moves_data () =
  (* bump P; copy P->Q; await; observe(P, Q); release — two iterations. *)
  let body =
    [
      Spmd.Prog.For_time
        {
          var = "t";
          count = 2;
          body =
            [
              launch "bump" [ part "P" ];
              Spmd.Prog.Copy (mk_copy 0);
              Spmd.Prog.Await 0;
              launch "observe" [ part "P"; part "Q" ];
              Spmd.Prog.Release 0;
            ];
        };
    ]
  in
  let prog, ctx = run_tiny body ~credits:[] ~copies:[] in
  (* Sequential reference: R starts at 0; after t iterations each element is
     bump+observe composed. Just compare against the interpreter on an
     equivalent implicit program. *)
  let b = Program.Builder.create ~name:"tiny-ref" in
  let r =
    Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv; fw ]
  in
  let p =
    Program.Builder.partition b ~name:"P" (fun ~name ->
        Partition.block ~name r ~pieces:2)
  in
  let _q =
    Program.Builder.partition b ~name:"Q" (fun ~name ->
        Partition.image ~name ~target:r ~src:p (fun e -> [ (e + 4) mod 8 ]))
  in
  Program.Builder.space b ~name:"I" 2;
  List.iter (Program.Builder.task b) (List.map (Program.find_task prog) [ "bump"; "observe" ]);
  let module Syn = Program.Syntax in
  Program.Builder.body b
    [
      Syn.for_time "t" 2
        [
          Syn.forall "I" (Syn.call "bump" [ Syn.part "P" ]);
          Syn.forall "I" (Syn.call "observe" [ Syn.part "P"; Syn.part "Q" ]);
        ];
    ];
  let ref_prog = Program.Builder.finish b in
  let ref_ctx = Interp.Run.create ref_prog in
  Interp.Run.run ref_ctx;
  let dump c pr =
    let inst = Interp.Run.region_instance c (Program.find_region pr "R") in
    (Physical.to_alist inst fv, Physical.to_alist inst fw)
  in
  check Alcotest.bool "matches implicit execution" true
    (dump ctx prog = dump ref_ctx ref_prog)

let test_exec_missing_release_deadlocks () =
  (* Without the Release, the second iteration's copy starves on WAR
     credits. *)
  let body =
    [
      Spmd.Prog.For_time
        {
          var = "t";
          count = 2;
          body =
            [
              launch "bump" [ part "P" ];
              Spmd.Prog.Copy (mk_copy 0);
              Spmd.Prog.Await 0;
              launch "observe" [ part "P"; part "Q" ];
            ];
        };
    ]
  in
  try
    ignore (run_tiny body ~credits:[] ~copies:[]);
    Alcotest.fail "expected deadlock"
  with Spmd.Exec.Deadlock _ -> ()

let test_exec_zero_credit_blocks_first_copy () =
  (* With zero initial credit and no preceding Release, even the first
     iteration cannot issue the copy. *)
  let body =
    [
      Spmd.Prog.For_time
        {
          var = "t";
          count = 1;
          body =
            [
              launch "bump" [ part "P" ];
              Spmd.Prog.Copy (mk_copy 0);
              Spmd.Prog.Await 0;
              launch "observe" [ part "P"; part "Q" ];
              Spmd.Prog.Release 0;
            ];
        };
    ]
  in
  try
    ignore (run_tiny body ~credits:[ (0, 0) ] ~copies:[]);
    Alcotest.fail "expected deadlock"
  with Spmd.Exec.Deadlock _ -> ()

let test_exec_barrier_roundtrip () =
  (* Barriers bracketing the copy (Fig. 4c mode) also execute correctly. *)
  let body =
    [
      Spmd.Prog.For_time
        {
          var = "t";
          count = 2;
          body =
            [
              launch "bump" [ part "P" ];
              Spmd.Prog.Barrier;
              Spmd.Prog.Copy (mk_copy 0);
              Spmd.Prog.Barrier;
              Spmd.Prog.Await 0;
              launch "observe" [ part "P"; part "Q" ];
              Spmd.Prog.Release 0;
            ];
        };
    ]
  in
  let _, ctx = run_tiny body ~credits:[] ~copies:[] in
  (* Smoke: it terminated and produced non-zero data. *)
  let any_nonzero =
    List.exists
      (fun (_, v) -> v <> 0.)
      (Physical.to_alist (Interp.Run.instance ctx "R") fv)
  in
  check Alcotest.bool "terminated with data" true any_nonzero

(* ---------- sync insertion invariants ---------- *)

(* Regression (seed 951): a consumer must apply a copy's incoming data
   before granting the next overwrite of the same destination — every
   Copy's Await must precede any Release at the same body position. *)
let prop_release_never_splits_copy_await =
  qtest "no Release between a Copy and its Await" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prog = Test_fixtures.Fixtures.random_program seed in
      let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) prog in
      let rec flatten = function
        | [] -> []
        | Spmd.Prog.For_time { body; _ } :: rest -> flatten body @ flatten rest
        | i :: rest -> i :: flatten rest
      in
      let rec scan = function
        | [] -> true
        | Spmd.Prog.Copy c :: rest ->
            let rec until_await = function
              | Spmd.Prog.Await id :: rest' when id = c.Spmd.Prog.copy_id ->
                  scan rest'
              | Spmd.Prog.Release _ :: _ -> false
              | _ :: rest' -> until_await rest'
              | [] -> false
            in
            until_await rest
        | _ :: rest -> scan rest
      in
      List.for_all
        (function
          | Spmd.Prog.Seq _ -> true
          | Spmd.Prog.Replicated b -> scan (flatten b.Spmd.Prog.body))
        compiled.Spmd.Prog.items)

let test_seed_951_domains_regression () =
  (* The schedule-dependent write-after-apply race found by the soak: fixed
     by the two-pass synchronisation insertion. *)
  let p1 = Test_fixtures.Fixtures.random_program 951 in
  let c1 = Interp.Run.create p1 in
  Interp.Run.run c1;
  let reference =
    Physical.to_alist
      (Interp.Run.region_instance c1 (Program.find_region p1 "Ra"))
      fv
  in
  for _trial = 1 to 5 do
    let p2 = Test_fixtures.Fixtures.random_program 951 in
    let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:7) p2 in
    let c2 = Interp.Run.create compiled.Spmd.Prog.source in
    Spmd.Exec.run ~sched:`Domains compiled c2;
    check Alcotest.bool "domains run matches sequential" true
      (Physical.to_alist
         (Interp.Run.region_instance c2 (Program.find_region p2 "Ra"))
         fv
      = reference)
  done

let prop_sync_one_await_release_per_copy =
  qtest "sync inserts exactly one await and release per copy" ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prog = Test_fixtures.Fixtures.random_program seed in
      let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) prog in
      List.for_all
        (function
          | Spmd.Prog.Seq _ -> true
          | Spmd.Prog.Replicated b ->
              let rec count pred = function
                | [] -> 0
                | Spmd.Prog.For_time { body; _ } :: rest ->
                    count pred body + count pred rest
                | i :: rest -> (if pred i then 1 else 0) + count pred rest
              in
              let body_copies =
                count (function Spmd.Prog.Copy _ -> true | _ -> false) b.Spmd.Prog.body
              in
              count (function Spmd.Prog.Await _ -> true | _ -> false) b.Spmd.Prog.body
              = body_copies
              && count (function Spmd.Prog.Release _ -> true | _ -> false) b.Spmd.Prog.body
                 = body_copies)
        compiled.Spmd.Prog.items)

let () =
  Alcotest.run "spmd"
    [
      ( "intersections",
        [
          prop_intersections_exact;
          prop_all_pairs_same_nonempty;
          Alcotest.test_case "structured BVH path" `Quick
            test_intersections_structured;
        ] );
      ("ownership", [ prop_ownership_consistent ]);
      ( "executor",
        [
          Alcotest.test_case "copy moves data" `Quick test_exec_copy_moves_data;
          Alcotest.test_case "missing release deadlocks" `Quick
            test_exec_missing_release_deadlocks;
          Alcotest.test_case "zero credit blocks" `Quick
            test_exec_zero_credit_blocks_first_copy;
          Alcotest.test_case "barrier mode runs" `Quick
            test_exec_barrier_roundtrip;
        ] );
      ( "sync-insertion",
        [
          prop_sync_one_await_release_per_copy;
          prop_release_never_splits_copy_await;
          Alcotest.test_case "seed 951 domains regression" `Quick
            test_seed_951_domains_regression;
        ] );
    ]
