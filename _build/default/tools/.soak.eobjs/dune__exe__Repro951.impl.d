tools/repro951.ml: Cr Interp Ir List Printf Program Regions Spmd Test_fixtures
