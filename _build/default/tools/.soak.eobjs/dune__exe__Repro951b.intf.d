tools/repro951b.mli:
