tools/repro951.mli:
