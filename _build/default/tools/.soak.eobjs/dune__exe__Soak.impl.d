tools/soak.ml: Array Cr Field Interp Ir List Physical Printf Program Region Regions Spmd Sys Test_fixtures
