tools/soak.mli:
