tools/repro951b.ml: Cr Interp Ir List Pretty Printf Program Regions Spmd Test_fixtures
