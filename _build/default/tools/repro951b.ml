open Ir
let () =
  let seed = 951 in
  let p1 = Test_fixtures.Fixtures.random_program seed in
  print_endline (Pretty.program_to_string p1);
  let c1 = Interp.Run.create p1 in
  Interp.Run.run c1;
  let p2 = Test_fixtures.Fixtures.random_program seed in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:7) p2 in
  print_endline (Spmd.Prog.to_string compiled);
  (* run domains until mismatch, print differing elements *)
  let rec hunt n =
    if n = 0 then print_endline "no mismatch in 20 tries"
    else begin
      let c2 = Interp.Run.create compiled.Spmd.Prog.source in
      Spmd.Exec.run ~sched:`Domains compiled c2;
      let diff = ref [] in
      List.iter (fun rname ->
        let r1 = Program.find_region p1 rname and r2 = Program.find_region p2 rname in
        let i1 = Interp.Run.region_instance c1 r1 and i2 = Interp.Run.region_instance c2 r2 in
        List.iter (fun f ->
          List.iter2 (fun (id, a) (_, b) ->
            if a <> b then diff := (rname, Regions.Field.name f, id, a, b) :: !diff)
            (Regions.Physical.to_alist i1 f) (Regions.Physical.to_alist i2 f))
          r1.Regions.Region.fields)
        (Program.region_names p1);
      if !diff = [] then hunt (n-1)
      else begin
        Printf.printf "MISMATCH (%d elements):\n" (List.length !diff);
        List.iteri (fun k (rn, fn, id, a, b) ->
          if k < 10 then Printf.printf "  %s.%s[%d] seq=%.17g dom=%.17g\n" rn fn id a b)
          (List.rev !diff)
      end
    end
  in
  hunt 20
