open Ir
let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map (fun f -> (rname, Regions.Field.name f, Regions.Physical.to_alist inst f)) r.Regions.Region.fields)
    (Program.region_names prog)
let () =
  let seed = 951 in
  let p1 = Test_fixtures.Fixtures.random_program seed in
  let c1 = Interp.Run.create p1 in
  Interp.Run.run c1;
  let a = region_data c1 p1 in
  List.iter (fun sched_name ->
    for trial = 1 to 10 do
      let p2 = Test_fixtures.Fixtures.random_program seed in
      let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:7) p2 in
      let c2 = Interp.Run.create compiled.Spmd.Prog.source in
      let sched = match sched_name with
        | "rr" -> `Round_robin | "rand" -> `Random (951*31+7) | _ -> `Domains in
      Spmd.Exec.run ~sched compiled c2;
      let b = region_data c2 p2 in
      if a <> b then Printf.printf "%s trial %d: MISMATCH\n%!" sched_name trial
    done;
    Printf.printf "%s: 10 trials done\n%!" sched_name)
    ["rr"; "rand"; "domains"]
