lib/interp/run.ml: Accessor Array Check Eval Hashtbl Ir List Partition Physical Printf Privilege Program Random Region Region_tree Regions Task Taskpool Types
