lib/interp/run.mli: Ir Regions Taskpool
