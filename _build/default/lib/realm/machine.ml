type t = {
  nodes : int;
  cores_per_node : int;
  dedicated_analysis_core : bool;
  launch_overhead : float;
  copy_issue_overhead : float;
  analysis_overhead : float;
  local_analysis_overhead : float;
  network_latency : float;
  network_bandwidth : float;
  memory_bandwidth : float;
  sync_latency : float;
  bytes_per_element : float;
  task_noise : float;
}

let make ~nodes ?(cores_per_node = 12) ?(dedicated_analysis_core = true)
    ?(launch_overhead = 25e-6) ?(copy_issue_overhead = 5e-6)
    ?(analysis_overhead = 1.2e-3)
    ?(local_analysis_overhead = 25e-6) ?(network_latency = 1.5e-6)
    ?(network_bandwidth = 10e9) ?(memory_bandwidth = 60e9)
    ?(sync_latency = 2e-6) ?(bytes_per_element = 8.) ?(task_noise = 0.) () =
  if nodes <= 0 then invalid_arg "Machine.make: nodes <= 0";
  {
    nodes;
    cores_per_node;
    dedicated_analysis_core;
    launch_overhead;
    copy_issue_overhead;
    analysis_overhead;
    local_analysis_overhead;
    network_latency;
    network_bandwidth;
    memory_bandwidth;
    sync_latency;
    bytes_per_element;
    task_noise;
  }

(* A cheap integer hash (splitmix-style) mapped to [0,1), shaped into an
   exponential tail: real OS/hardware noise is heavy-tailed, which is what
   makes per-step global synchronisation expensive — the expected maximum
   over n tasks grows like ln n instead of saturating. Capped at 6 tail
   units to keep single outliers bounded. *)
let jitter t ~key =
  if t.task_noise = 0. then 1.
  else begin
    let h = ref (key * 0x9E3779B9) in
    h := (!h lxor (!h lsr 16)) * 0x85EBCA6B;
    h := (!h lxor (!h lsr 13)) * 0xC2B2AE35;
    h := !h lxor (!h lsr 16);
    let u = float_of_int (!h land 0xFFFFFF) /. float_of_int 0x1000000 in
    let tail = Float.min 6. (-.Float.log (1. -. u)) in
    1. +. (t.task_noise *. tail)
  end

let piz_daint ~nodes = make ~nodes ()

let compute_cores t =
  if t.dedicated_analysis_core then max 1 (t.cores_per_node - 1)
  else t.cores_per_node

let transfer_time t ~src_node ~dst_node ~bytes =
  if src_node = dst_node then bytes /. t.memory_bandwidth
  else t.network_latency +. (bytes /. t.network_bandwidth)

let log2_nodes t =
  ceil (Float.log2 (float_of_int (max 2 t.nodes)))

let collective_time t = 2. *. log2_nodes t *. t.sync_latency

let barrier_time t = 2. *. log2_nodes t *. t.sync_latency
