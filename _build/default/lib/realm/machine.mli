(** Machine models for the critical-path simulator.

    The simulator charges the costs the paper's evaluation turns on:

    - {b control overhead}: a control thread pays [launch_overhead] +
      [analysis_overhead] per subtask it launches. In the implicit model a
      single master pays it for {e every} task in the system — the O(N)
      bottleneck of Fig. 1 — while under control replication each shard
      pays it only for its own tasks;
    - {b compute}: a task occupies one core of its node for its cost-model
      duration;
    - {b communication}: a transfer of [b] bytes between distinct nodes
      costs [network_latency + b / network_bandwidth]; intra-node copies
      cost [b / memory_bandwidth];
    - {b synchronisation}: global barriers and collectives pay a
      log2(nodes)-scaled latency; point-to-point synchronisation is free
      beyond the message latency already charged to the copy.

    The [piz_daint] preset models a Cray XC50 node (12-core Xeon E5-2690
    v3, Aries interconnect) as used in the paper's evaluation; constants
    are order-of-magnitude published figures, not measurements. *)

type t = {
  nodes : int;
  cores_per_node : int;
  dedicated_analysis_core : bool;
      (** Legion dedicates a core per node to runtime analysis (§5.3), so
          application kernels see one core fewer. *)
  launch_overhead : float; (** s per subtask launch on a control thread *)
  copy_issue_overhead : float;
      (** s of control-thread time to issue one copy (cheaper than a task
          launch: no mapping or privilege analysis) *)
  analysis_overhead : float;
      (** s of dynamic dependence analysis per task on the {e single
          master} of the implicit model — the analysis spans the whole
          machine's region tree and instance state, so it is far costlier
          than a launch. Control replication removes it (§4.1). *)
  local_analysis_overhead : float;
      (** s of intra-shard dependence analysis per task under control
          replication — Legion still analyses parallelism within a shard
          (§4.1), but against shard-local state only. *)
  network_latency : float; (** s per inter-node message *)
  network_bandwidth : float; (** bytes/s per link *)
  memory_bandwidth : float; (** bytes/s for intra-node copies *)
  sync_latency : float; (** s per barrier/collective hop *)
  bytes_per_element : float; (** payload size of one field element *)
  task_noise : float;
      (** fractional task-duration variability (OS and hardware noise):
          each task runs for [duration * (1 + task_noise * u)] with a
          deterministic pseudo-random [u] in [0,1). Programs with per-step
          global synchronisation (PENNANT's dt reduction) are slowed by the
          slowest task; fully asynchronous pipelines hide most of it. *)
}

val jitter : t -> key:int -> float
(** The deterministic noise multiplier for a task identified by [key]. *)

val make :
  nodes:int ->
  ?cores_per_node:int ->
  ?dedicated_analysis_core:bool ->
  ?launch_overhead:float ->
  ?copy_issue_overhead:float ->
  ?analysis_overhead:float ->
  ?local_analysis_overhead:float ->
  ?network_latency:float ->
  ?network_bandwidth:float ->
  ?memory_bandwidth:float ->
  ?sync_latency:float ->
  ?bytes_per_element:float ->
  ?task_noise:float ->
  unit ->
  t

val piz_daint : nodes:int -> t

val compute_cores : t -> int
(** Cores available to application kernels per node. *)

val transfer_time : t -> src_node:int -> dst_node:int -> bytes:float -> float

val collective_time : t -> float
(** A log-tree reduction + broadcast across all nodes. *)

val barrier_time : t -> float
