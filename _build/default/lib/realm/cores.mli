(** Analytic multiserver core pool.

    Tasks submitted in nondecreasing ready-time order are placed on the
    earliest-free core; the pool tracks each core's next free instant.
    This models intra-node task scheduling without an event loop: the
    completion timestamp of each task is returned directly. *)

type t

val create : cores:int -> t
val cores : t -> int

val execute : t -> ready:float -> duration:float -> float
(** Completion time of a task that becomes ready at [ready] and runs for
    [duration] on one core. *)

val busy_until : t -> float
(** When the last core frees up. *)

val reset : t -> unit
