lib/realm/cores.mli:
