lib/realm/cores.ml: Array Float
