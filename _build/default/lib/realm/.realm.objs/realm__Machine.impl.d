lib/realm/machine.ml: Float
