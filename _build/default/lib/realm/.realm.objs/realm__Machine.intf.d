lib/realm/machine.mli:
