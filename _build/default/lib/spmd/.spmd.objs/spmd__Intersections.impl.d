lib/spmd/intersections.ml: Bvh Fun Geometry Hashtbl Index_space Interval_tree List Partition Region Regions Unix
