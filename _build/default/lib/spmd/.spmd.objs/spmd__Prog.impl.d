lib/spmd/prog.ml: Field Format Geometry Ir List Privilege Regions
