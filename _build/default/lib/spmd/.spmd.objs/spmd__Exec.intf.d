lib/spmd/exec.mli: Interp Intersections Ir Prog
