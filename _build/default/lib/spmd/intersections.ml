(* Dynamic computation of copy intersections (paper §3.3).

   Copies are issued between pairs of source and destination subregions, but
   only their intersections must move. The computation runs in two phases:

   - a *shallow* phase that finds candidate overlapping pairs from subregion
     bounds alone — an interval tree over identifier bounds for unstructured
     partitions, a bounding-volume hierarchy for structured ones — avoiding
     the O(N^2) all-pairs comparison;
   - a *complete* phase computing the exact element intersection of each
     candidate pair, discarding the empty ones.

   Both phases are timed; the per-phase totals reproduce Table 1. *)

open Geometry
open Regions

type stats = {
  mutable shallow_s : float; (* seconds in the shallow phase *)
  mutable complete_s : float; (* seconds in the complete phase *)
  mutable candidates : int; (* pairs surviving the shallow phase *)
  mutable nonempty : int; (* pairs surviving the complete phase *)
}

let fresh_stats () =
  { shallow_s = 0.; complete_s = 0.; candidates = 0; nonempty = 0 }

(* The non-empty intersections between two partitions' subregions:
   (source color, destination color, shared elements). *)
type pairs = {
  src : Partition.t;
  dst : Partition.t;
  items : (int * int * Index_space.t) list;
}

let timed cell f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  cell := !cell +. (Unix.gettimeofday () -. t0);
  r

(* The index is built from every rectangle (structured) or identifier run
   (unstructured) of each destination subregion, not from whole-subregion
   bounds: halo subregions are unions of scattered pieces whose bounding
   box would overlap nearly everything. Queries deduplicate candidate
   colors through a seen-set keyed by the source color being queried. *)
let shallow_candidates ~(src : Partition.t) ~(dst : Partition.t) =
  let n_src = Partition.color_count src
  and n_dst = Partition.color_count dst in
  let structured =
    n_dst > 0
    && Index_space.is_structured (Partition.sub dst 0).Region.ispace
  in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let add i j =
    if not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      out := (i, j) :: !out
    end
  in
  if structured then begin
    let items =
      List.concat_map
        (fun j ->
          List.map
            (fun r -> (r, j))
            (Index_space.rects (Partition.sub dst j).Region.ispace))
        (List.init n_dst Fun.id)
    in
    let bvh = Bvh.build items in
    for i = 0 to n_src - 1 do
      List.iter
        (fun r -> Bvh.iter_overlapping bvh r (fun _ j -> add i j))
        (Index_space.rects (Partition.sub src i).Region.ispace)
    done
  end
  else begin
    let items =
      List.concat_map
        (fun j ->
          List.map
            (fun run -> (run, j))
            (Index_space.id_runs (Partition.sub dst j).Region.ispace))
        (List.init n_dst Fun.id)
    in
    let tree = Interval_tree.build items in
    for i = 0 to n_src - 1 do
      List.iter
        (fun run -> Interval_tree.iter_overlapping tree run (fun _ j -> add i j))
        (Index_space.id_runs (Partition.sub src i).Region.ispace)
    done
  end;
  List.rev !out

let complete_pairs ~(src : Partition.t) ~(dst : Partition.t) candidates =
  List.filter_map
    (fun (i, j) ->
      let inter =
        Index_space.inter
          (Partition.sub src i).Region.ispace
          (Partition.sub dst j).Region.ispace
      in
      if Index_space.is_empty inter then None else Some (i, j, inter))
    candidates

let compute ?stats ~src ~dst () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let sh = ref 0. and co = ref 0. in
  let candidates = timed sh (fun () -> shallow_candidates ~src ~dst) in
  let items = timed co (fun () -> complete_pairs ~src ~dst candidates) in
  stats.shallow_s <- stats.shallow_s +. !sh;
  stats.complete_s <- stats.complete_s +. !co;
  stats.candidates <- stats.candidates + List.length candidates;
  stats.nonempty <- stats.nonempty + List.length items;
  { src; dst; items }

(* The naive all-pairs computation (what §3.3 optimizes away) — kept for the
   ablation benchmark. *)
let compute_all_pairs ?stats ~src ~dst () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let n_src = Partition.color_count src
  and n_dst = Partition.color_count dst in
  let candidates =
    List.concat_map
      (fun i -> List.init n_dst (fun j -> (i, j)))
      (List.init n_src Fun.id)
  in
  let co = ref 0. in
  let items = timed co (fun () -> complete_pairs ~src ~dst candidates) in
  stats.complete_s <- stats.complete_s +. !co;
  stats.candidates <- stats.candidates + List.length candidates;
  stats.nonempty <- stats.nonempty + List.length items;
  { src; dst; items }
