(** Functional execution of SPMD programs.

    Each replicated block runs as [shards] cooperative shard streams driven
    by a scheduler: round-robin, seeded-random (adversarial interleavings
    for the equivalence tests), or real OCaml domains. Synchronisation —
    write-after-read credits and read-after-write tokens per copy pair
    (§3.4), global barriers, and the dynamic collective for scalar
    reductions (§4.4) — is honoured exactly; a schedule in which every
    live shard is blocked raises {!Deadlock} (a control-replication bug by
    definition, so tests assert it never happens).

    Execution is bitwise deterministic and equal to the sequential
    interpreter on the same inputs, for any schedule: plain copies never
    conflict (write-privileged partitions are disjoint), reduction copies
    are staged and applied in ascending source-color order, and the scalar
    collective folds per-color results in color order. *)

exception Deadlock of string

type sched =
  [ `Round_robin  (** deterministic cooperative stepper *)
  | `Random of int  (** seeded adversarial interleaving (same stepper) *)
  | `Domains
    (** one OCaml domain per shard with real mutex/condition-variable
        synchronisation — true parallel execution of the SPMD program.
        Use moderate shard counts (≲ 16); deadlock detection does not
        apply (a sync bug hangs instead). *) ]

val run :
  ?sched:sched -> ?stats:Intersections.stats -> Prog.t ->
  Interp.Run.context -> unit
(** Executes the whole compiled program against the context: [Seq] items via
    the sequential interpreter, [Replicated] blocks with the SPMD machinery
    (instances per (partition, color), dynamic intersections, shard
    streams). Root-region instances and scalars in the context hold the
    results afterwards. *)

val run_block :
  ?sched:sched -> ?stats:Intersections.stats -> source:Ir.Program.t ->
  Interp.Run.context -> Prog.block -> unit
(** Run a single replicated block (exposed for tests). *)
