open Regions
open Ir

exception Deadlock of string

type sched = [ `Round_robin | `Random of int | `Domains ]

(* ---------- per-block runtime state ---------- *)

type chan = { mutable war : int; mutable raw : int }

(* One scalar collective (a Launch_collective instruction). A round: every
   shard deposits its per-color partial results; the last depositor folds
   them in ascending color order and publishes; every shard consumes; the
   last consumer resets the slot for the next loop iteration. A shard that
   races ahead to the next round blocks until the previous one is fully
   drained. *)
type collective_slot = {
  mutable values : (int * float) list; (* (color, local result) *)
  arrived : bool array; (* per shard, this round *)
  mutable result : float option;
  consumed : bool array;
}

type barrier_state = { mutable arrived : int; mutable generation : int }

type bstate = {
  source : Program.t;
  ctx : Interp.Run.context;
  block : Prog.block;
  insts : (string * int, Physical.t) Hashtbl.t; (* (partition, color) *)
  pairs : (int, Intersections.pairs) Hashtbl.t; (* copy_id -> pairs *)
  chans : (int * int * int, chan) Hashtbl.t; (* (copy_id, i, j) *)
  mailbox : (int * int, (int * Physical.t) list ref) Hashtbl.t;
      (* (copy_id, dst color) -> staged reduction payloads *)
  barrier : barrier_state;
  mutable collectives : (Prog.instr * collective_slot) list;
      (* keyed by the Launch_collective instruction itself, by physical
         identity — two distinct collectives can be structurally equal, but
         all shards share the same instruction values *)
}

let part_of_operand source = function
  | Prog.Opart p -> Some (Program.find_partition source p)
  | Prog.Oregion _ -> None

let instance st pname color =
  match Hashtbl.find_opt st.insts (pname, color) with
  | Some inst -> inst
  | None ->
      invalid_arg
        (Printf.sprintf "Spmd.Exec: no instance for %s[%d]" pname color)

(* Partitions mentioned anywhere in the block (launch arguments, copies,
   fills) — each of their subregions gets its own storage (§3.1). *)
let partitions_used (source : Program.t) (b : Prog.block) =
  let acc = Hashtbl.create 16 in
  let add name = Hashtbl.replace acc name () in
  let add_operand = function
    | Prog.Opart p -> add p
    | Prog.Oregion _ -> ()
  in
  let add_launch (l : Types.launch) =
    List.iter
      (function Types.Part (p, _) -> add p | Types.Whole _ -> ())
      l.Types.rargs
  in
  let rec go instrs =
    List.iter
      (function
        | Prog.Launch { launch; _ } -> add_launch launch
        | Prog.Launch_collective { launch; _ } -> add_launch launch
        | Prog.Copy c ->
            add_operand c.Prog.src;
            add_operand c.Prog.dst
        | Prog.Fill { part; _ } -> add part
        | Prog.Await _ | Prog.Release _ | Prog.Barrier | Prog.Assign _ -> ()
        | Prog.For_time { body; _ } -> go body)
      instrs
  in
  go b.Prog.init;
  go b.Prog.body;
  go b.Prog.finalize;
  Hashtbl.fold
    (fun name () l -> (name, Program.find_partition source name) :: l)
    acc []

let fields_used_of_partition (source : Program.t) (b : Prog.block) pname =
  (* Union of fields the block touches on this partition, for sizing the
     replicated instances. *)
  let acc = ref [] in
  let add f = if not (List.exists (Field.equal f) !acc) then acc := f :: !acc in
  let add_launch (l : Types.launch) =
    let task = Program.find_task source l.Types.task in
    List.iteri
      (fun i rarg ->
        match rarg with
        | Types.Part (p, _) when p = pname ->
            List.iter
              (fun (pr : Privilege.t) -> add pr.Privilege.field)
              (Task.param_privs task i)
        | Types.Part _ | Types.Whole _ -> ())
      l.Types.rargs
  in
  let add_copy (c : Prog.copy) op =
    match op with
    | Prog.Opart p when p = pname -> List.iter add c.Prog.fields
    | Prog.Opart _ | Prog.Oregion _ -> ()
  in
  let rec go instrs =
    List.iter
      (function
        | Prog.Launch { launch; _ } -> add_launch launch
        | Prog.Launch_collective { launch; _ } -> add_launch launch
        | Prog.Copy c ->
            add_copy c c.Prog.src;
            add_copy c c.Prog.dst
        | Prog.Fill { part; fields; _ } ->
            if part = pname then List.iter add fields
        | Prog.Await _ | Prog.Release _ | Prog.Barrier | Prog.Assign _ -> ()
        | Prog.For_time { body; _ } -> go body)
      instrs
  in
  go b.Prog.init;
  go b.Prog.body;
  go b.Prog.finalize;
  !acc

let create_state ?stats ~(source : Program.t) ctx (b : Prog.block) =
  let st =
    {
      source;
      ctx;
      block = b;
      insts = Hashtbl.create 64;
      pairs = Hashtbl.create 16;
      chans = Hashtbl.create 64;
      mailbox = Hashtbl.create 16;
      barrier = { arrived = 0; generation = 0 };
      collectives = [];
    }
  in
  List.iter
    (fun (pname, (p : Partition.t)) ->
      let fields = fields_used_of_partition source b pname in
      for c = 0 to Partition.color_count p - 1 do
        let sub = Partition.sub p c in
        Hashtbl.replace st.insts (pname, c)
          (Physical.create_over sub.Region.ispace fields)
      done)
    (partitions_used source b);
  (* Dynamic analysis (§3.3): pair sets for partition-to-partition copies,
     plus one war/raw channel per non-empty pair. *)
  List.iter
    (fun (c : Prog.copy) ->
      match (part_of_operand source c.Prog.src, part_of_operand source c.Prog.dst) with
      | Some src, Some dst ->
          let pairs =
            match c.Prog.pairs with
            | `Sparse -> Intersections.compute ?stats ~src ~dst ()
            | `Dense -> Intersections.compute_all_pairs ?stats ~src ~dst ()
          in
          Hashtbl.replace st.pairs c.Prog.copy_id pairs;
          let war =
            Option.value ~default:1
              (List.assoc_opt c.Prog.copy_id b.Prog.credits)
          in
          List.iter
            (fun (i, j, _) ->
              Hashtbl.replace st.chans (c.Prog.copy_id, i, j) { war; raw = 0 })
            pairs.Intersections.items
      | _ -> ())
    b.Prog.copies;
  st

(* ---------- copy primitives ---------- *)

let root_inst st rname =
  Interp.Run.region_instance st.ctx (Program.find_region st.source rname)

(* Sequential (master-side) execution of an init/finalize copy: every color
   at once, no synchronisation. *)
let master_copy st (c : Prog.copy) =
  let do_one ~src ~dst =
    match c.Prog.reduce with
    | None -> Physical.copy_into ~fields:c.Prog.fields ~src ~dst ()
    | Some op -> Physical.reduce_into ~op ~fields:c.Prog.fields ~src ~dst ()
  in
  match (c.Prog.src, c.Prog.dst) with
  | Prog.Oregion rs, Prog.Opart pd ->
      let p = Program.find_partition st.source pd in
      let src = root_inst st rs in
      for color = 0 to Partition.color_count p - 1 do
        do_one ~src ~dst:(instance st pd color)
      done
  | Prog.Opart ps, Prog.Oregion rd ->
      let p = Program.find_partition st.source ps in
      let dst = root_inst st rd in
      for color = 0 to Partition.color_count p - 1 do
        do_one ~src:(instance st ps color) ~dst
      done
  | Prog.Opart ps, Prog.Opart pd ->
      let pairs = Hashtbl.find st.pairs c.Prog.copy_id in
      List.iter
        (fun (i, j, _) -> do_one ~src:(instance st ps i) ~dst:(instance st pd j))
        pairs.Intersections.items
  | Prog.Oregion rs, Prog.Oregion rd ->
      do_one ~src:(root_inst st rs) ~dst:(root_inst st rd)

(* ---------- shard streams ---------- *)

type loop_info = { lvar : string; lcount : int; mutable liter : int }

type frame = {
  instrs : Prog.instr array;
  mutable idx : int;
  loop : loop_info option;
}

type wait_state =
  | Ready
  | In_barrier of int (* generation observed at arrival *)
  | In_collective of string (* deposited, waiting for the result *)

type shard = {
  sid : int;
  env : Eval.env;
  mutable frames : frame list;
  mutable wait : wait_state;
}

let shard_done s = s.frames = []

let owner st pname color =
  let p = Program.find_partition st.source pname in
  Prog.owner_of_color ~shards:st.block.Prog.shards
    ~colors:(Partition.color_count p) color

let owned_space_colors st sid space =
  let n = Program.find_space st.source space in
  Prog.colors_of_shard ~shards:st.block.Prog.shards ~colors:n sid

(* Run one color of a launch against the replicated instances. Post-
   normalization, every argument uses the identity projection, so color [c]
   of the launch touches exactly color [c] of each argument partition. *)
let run_launch_color st env (l : Types.launch) c =
  let task = Program.find_task st.source l.Types.task in
  let sargs = Array.map (Eval.sexpr env) l.Types.sargs in
  let accessors =
    Array.of_list
      (List.mapi
         (fun k rarg ->
           match rarg with
           | Types.Part (pname, Types.Id) ->
               let inst = instance st pname c in
               Accessor.make inst ~space:(Physical.ispace inst)
                 (Task.param_privs task k)
           | Types.Part (pname, Types.Fn (fname, _)) ->
               invalid_arg
                 (Printf.sprintf
                    "Spmd.Exec: non-normalized projection %s(%s) survived \
                     control replication"
                    fname pname)
           | Types.Whole r ->
               invalid_arg
                 (Printf.sprintf
                    "Spmd.Exec: whole-region argument %s in replicated code" r))
         l.Types.rargs)
  in
  task.Task.kernel accessors sargs

let chan st key = Hashtbl.find st.chans key

(* Pairs of a copy grouped by the role this shard plays. *)
let owned_src_pairs st sid (c : Prog.copy) =
  let pairs = Hashtbl.find st.pairs c.Prog.copy_id in
  let ps = match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
  List.filter (fun (i, _, _) -> owner st ps i = sid) pairs.Intersections.items

let owned_dst_pairs st sid copy_id =
  let c = List.find (fun (c : Prog.copy) -> c.Prog.copy_id = copy_id) st.block.Prog.copies in
  let pairs = Hashtbl.find st.pairs copy_id in
  let pd = match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
  (c, List.filter (fun (_, j, _) -> owner st pd j = sid) pairs.Intersections.items)

(* A shard-side copy: wait for all write-after-read credits on owned pairs,
   then move data (staging reduction payloads) and signal read-after-write
   tokens (§3.4: copies are issued by the producer). *)
let try_copy st s (c : Prog.copy) =
  let owned = owned_src_pairs st s.sid c in
  let all_credits =
    List.for_all (fun (i, j, _) -> (chan st (c.Prog.copy_id, i, j)).war > 0) owned
  in
  if not all_credits then `Blocked
  else begin
    let ps = match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
    let pd = match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
    List.iter
      (fun (i, j, space) ->
        let ch = chan st (c.Prog.copy_id, i, j) in
        ch.war <- ch.war - 1;
        let src = instance st ps i and dst = instance st pd j in
        (match c.Prog.reduce with
        | None -> Physical.copy_into ~fields:c.Prog.fields ~src ~dst ()
        | Some _ ->
            (* Snapshot the payload now — the producer may overwrite the
               source before the consumer applies — and stage it; the
               consumer folds payloads in ascending source color for
               deterministic floating-point results. *)
            let snapshot = Physical.create_over space c.Prog.fields in
            Physical.copy_into ~fields:c.Prog.fields ~src ~dst:snapshot ();
            let key = (c.Prog.copy_id, j) in
            let box =
              match Hashtbl.find_opt st.mailbox key with
              | Some b -> b
              | None ->
                  let b = ref [] in
                  Hashtbl.replace st.mailbox key b;
                  b
            in
            box := (i, snapshot) :: !box);
        ch.raw <- ch.raw + 1)
      owned;
    `Progress
  end

let try_await st s copy_id =
  let c, owned = owned_dst_pairs st s.sid copy_id in
  let ready =
    List.for_all (fun (i, j, _) -> (chan st (copy_id, i, j)).raw > 0) owned
  in
  if not ready then `Blocked
  else begin
    List.iter
      (fun (i, j, _) ->
        let ch = chan st (copy_id, i, j) in
        ch.raw <- ch.raw - 1)
      owned;
    (match c.Prog.reduce with
    | None -> ()
    | Some op ->
        let pd = match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false in
        List.iter
          (fun (_, j, _) ->
            match Hashtbl.find_opt st.mailbox (copy_id, j) with
            | None -> ()
            | Some box ->
                let staged =
                  List.sort (fun (a, _) (b, _) -> Int.compare a b) !box
                in
                box := [];
                List.iter
                  (fun (_, snapshot) ->
                    Physical.reduce_into ~op ~fields:c.Prog.fields
                      ~src:snapshot ~dst:(instance st pd j) ())
                  staged)
          owned);
    `Progress
  end

let do_release st s copy_id =
  let _, owned = owned_dst_pairs st s.sid copy_id in
  List.iter
    (fun (i, j, _) ->
      let ch = chan st (copy_id, i, j) in
      ch.war <- ch.war + 1)
    owned

let collective_slot st instr =
  match List.assq_opt instr st.collectives with
  | Some slot -> slot
  | None ->
      let n = st.block.Prog.shards in
      let slot =
        {
          values = [];
          arrived = Array.make n false;
          result = None;
          consumed = Array.make n false;
        }
      in
      st.collectives <- (instr, slot) :: st.collectives;
      slot

(* ---------- the stepper ---------- *)

let push_loop s var count body =
  if count > 0 then begin
    Eval.set s.env var 0.;
    s.frames <-
      { instrs = Array.of_list body; idx = 0; loop = Some { lvar = var; lcount = count; liter = 0 } }
      :: s.frames
  end

(* Advance past exhausted frames, re-entering loops. *)
let rec normalize_frames s =
  match s.frames with
  | [] -> ()
  | f :: rest ->
      if f.idx >= Array.length f.instrs then (
        match f.loop with
        | Some li when li.liter + 1 < li.lcount ->
            li.liter <- li.liter + 1;
            Eval.set s.env li.lvar (float_of_int li.liter);
            f.idx <- 0
        | Some _ | None ->
            s.frames <- rest;
            normalize_frames s)
      else ()

(* Execute (or block on) the shard's current instruction. Returns whether
   the shard made progress. *)
let step st s =
  normalize_frames s;
  match s.frames with
  | [] -> `Done
  | f :: _ -> (
      let instr = f.instrs.(f.idx) in
      let advance () =
        f.idx <- f.idx + 1;
        normalize_frames s;
        `Progress
      in
      match instr with
      | Prog.Assign (v, e) ->
          Eval.set s.env v (Eval.sexpr s.env e);
          advance ()
      | Prog.For_time { var; count; body } ->
          f.idx <- f.idx + 1;
          push_loop s var count body;
          normalize_frames s;
          `Progress
      | Prog.Launch { space; launch } ->
          List.iter
            (fun c -> ignore (run_launch_color st s.env launch c))
            (owned_space_colors st s.sid space);
          advance ()
      | Prog.Fill { part; fields; op } ->
          let p = Program.find_partition st.source part in
          List.iter
            (fun c ->
              let inst = instance st part c in
              List.iter
                (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
                fields)
            (Prog.colors_of_shard ~shards:st.block.Prog.shards
               ~colors:(Partition.color_count p) s.sid);
          advance ()
      | Prog.Copy c -> (
          match try_copy st s c with
          | `Blocked -> `Blocked
          | `Progress -> advance ())
      | Prog.Await id -> (
          match try_await st s id with
          | `Blocked -> `Blocked
          | `Progress -> advance ())
      | Prog.Release id ->
          do_release st s id;
          advance ()
      | Prog.Barrier -> (
          match s.wait with
          | In_barrier gen ->
              if st.barrier.generation > gen then begin
                s.wait <- Ready;
                advance ()
              end
              else `Blocked
          | Ready | In_collective _ ->
              (* Arrival mutates shared state, so it counts as progress even
                 though the shard then waits. *)
              let gen = st.barrier.generation in
              st.barrier.arrived <- st.barrier.arrived + 1;
              s.wait <- In_barrier gen;
              if st.barrier.arrived = st.block.Prog.shards then begin
                st.barrier.arrived <- 0;
                st.barrier.generation <- gen + 1;
                s.wait <- Ready;
                ignore (advance ())
              end;
              `Progress)
      | Prog.Launch_collective { space; launch; var; op } as instr -> (
          let slot = collective_slot st instr in
          let shards = st.block.Prog.shards in
          match s.wait with
          | In_collective _ -> (
              match slot.result with
              | None -> `Blocked
              | Some r ->
                  Eval.set s.env var r;
                  slot.consumed.(s.sid) <- true;
                  if Array.for_all Fun.id slot.consumed then begin
                    slot.values <- [];
                    Array.fill slot.arrived 0 shards false;
                    Array.fill slot.consumed 0 shards false;
                    slot.result <- None
                  end;
                  s.wait <- Ready;
                  advance ())
          | Ready | In_barrier _ ->
              if slot.result <> None then
                (* A previous round is still being drained by slower
                   shards; wait for the reset. *)
                `Blocked
              else begin
                (* Deposit per-color partial results; the last shard to
                   arrive folds them in ascending color order (bitwise
                   equal to the sequential fold) and publishes. *)
                let mine =
                  List.map
                    (fun c -> (c, run_launch_color st s.env launch c))
                    (owned_space_colors st s.sid space)
                in
                slot.values <- mine @ slot.values;
                slot.arrived.(s.sid) <- true;
                s.wait <- In_collective var;
                if Array.for_all Fun.id slot.arrived then begin
                  let sorted =
                    List.sort
                      (fun (a, _) (b, _) -> Int.compare a b)
                      slot.values
                  in
                  slot.result <-
                    Some
                      (List.fold_left
                         (fun acc (_, v) -> Privilege.apply_redop op acc v)
                         (Privilege.identity_of op)
                         sorted)
                end;
                (* The deposit itself is progress; the shard picks the
                   result up on a later step. *)
                `Progress
              end))

(* ---------- real-parallel execution on OCaml domains ----------

   One domain per shard. All synchronisation metadata (war/raw counters,
   reduction mailboxes, the barrier and collective slots) is protected by a
   single monitor; waits block on its condition variable. Data movement
   happens outside the lock — the war/raw protocol itself guarantees
   exclusive access, which is exactly the property this mode stress-tests:
   if the compiler's synchronisation insertion were wrong, domains would
   race or hang. *)
let drive_domains st (b : Prog.block) master_env =
  let m = Mutex.create () and cv = Condition.create () in
  let locked f =
    Mutex.lock m;
    let r = f () in
    Mutex.unlock m;
    r
  in
  let wait_until pred =
    Mutex.lock m;
    while not (pred ()) do
      Condition.wait cv m
    done;
    Mutex.unlock m
  in
  let shards = b.Prog.shards in
  (* Pre-create collective slots so the lookup list is read-only while the
     domains run. *)
  let rec precreate instrs =
    List.iter
      (function
        | Prog.Launch_collective _ as i -> ignore (collective_slot st i)
        | Prog.For_time { body; _ } -> precreate body
        | _ -> ())
      instrs
  in
  precreate b.Prog.body;
  let shard_main sid () =
    let env = Eval.copy master_env in
    let rec exec = function
      | Prog.Assign (v, e) -> Eval.set env v (Eval.sexpr env e)
      | Prog.For_time { var; count; body } ->
          for t = 0 to count - 1 do
            Eval.set env var (float_of_int t);
            List.iter exec body
          done
      | Prog.Launch { space; launch } ->
          List.iter
            (fun c -> ignore (run_launch_color st env launch c))
            (owned_space_colors st sid space)
      | Prog.Fill { part; fields; op } ->
          let p = Program.find_partition st.source part in
          List.iter
            (fun c ->
              let inst = instance st part c in
              List.iter
                (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
                fields)
            (Prog.colors_of_shard ~shards ~colors:(Partition.color_count p) sid)
      | Prog.Copy c ->
          let ps =
            match c.Prog.src with Prog.Opart p -> p | Prog.Oregion _ -> assert false
          and pd =
            match c.Prog.dst with Prog.Opart p -> p | Prog.Oregion _ -> assert false
          in
          List.iter
            (fun (i, j, space) ->
              let ch = chan st (c.Prog.copy_id, i, j) in
              wait_until (fun () -> ch.war > 0);
              locked (fun () -> ch.war <- ch.war - 1);
              let src = instance st ps i and dst = instance st pd j in
              (match c.Prog.reduce with
              | None -> Physical.copy_into ~fields:c.Prog.fields ~src ~dst ()
              | Some _ ->
                  let snapshot = Physical.create_over space c.Prog.fields in
                  Physical.copy_into ~fields:c.Prog.fields ~src ~dst:snapshot ();
                  locked (fun () ->
                      let key = (c.Prog.copy_id, j) in
                      let box =
                        match Hashtbl.find_opt st.mailbox key with
                        | Some b -> b
                        | None ->
                            let b = ref [] in
                            Hashtbl.replace st.mailbox key b;
                            b
                      in
                      box := (i, snapshot) :: !box));
              locked (fun () ->
                  ch.raw <- ch.raw + 1;
                  Condition.broadcast cv))
            (owned_src_pairs st sid c)
      | Prog.Await copy_id ->
          let c, owned = owned_dst_pairs st sid copy_id in
          List.iter
            (fun (i, j, _) ->
              let ch = chan st (copy_id, i, j) in
              wait_until (fun () -> ch.raw > 0);
              locked (fun () -> ch.raw <- ch.raw - 1))
            owned;
          (match c.Prog.reduce with
          | None -> ()
          | Some op ->
              let pd =
                match c.Prog.dst with
                | Prog.Opart p -> p
                | Prog.Oregion _ -> assert false
              in
              List.iter
                (fun (_, j, _) ->
                  let staged =
                    locked (fun () ->
                        match Hashtbl.find_opt st.mailbox (copy_id, j) with
                        | None -> []
                        | Some box ->
                            let l = !box in
                            box := [];
                            l)
                  in
                  List.iter
                    (fun (_, snapshot) ->
                      Physical.reduce_into ~op ~fields:c.Prog.fields
                        ~src:snapshot ~dst:(instance st pd j) ())
                    (List.sort (fun (a, _) (b, _) -> Int.compare a b) staged))
                owned)
      | Prog.Release copy_id ->
          let _, owned = owned_dst_pairs st sid copy_id in
          locked (fun () ->
              List.iter
                (fun (i, j, _) ->
                  let ch = chan st (copy_id, i, j) in
                  ch.war <- ch.war + 1)
                owned;
              Condition.broadcast cv)
      | Prog.Barrier ->
          let gen =
            locked (fun () ->
                let gen = st.barrier.generation in
                st.barrier.arrived <- st.barrier.arrived + 1;
                if st.barrier.arrived = shards then begin
                  st.barrier.arrived <- 0;
                  st.barrier.generation <- gen + 1;
                  Condition.broadcast cv
                end;
                gen)
          in
          wait_until (fun () -> st.barrier.generation > gen)
      | Prog.Launch_collective { space; launch; var; op } as instr ->
          let slot = collective_slot st instr in
          (* A previous round must have fully drained before depositing. *)
          wait_until (fun () -> slot.result = None && not slot.arrived.(sid));
          let mine =
            List.map
              (fun c -> (c, run_launch_color st env launch c))
              (owned_space_colors st sid space)
          in
          locked (fun () ->
              slot.values <- mine @ slot.values;
              slot.arrived.(sid) <- true;
              if Array.for_all Fun.id slot.arrived then begin
                let sorted =
                  List.sort (fun (a, _) (b, _) -> Int.compare a b) slot.values
                in
                slot.result <-
                  Some
                    (List.fold_left
                       (fun acc (_, v) -> Privilege.apply_redop op acc v)
                       (Privilege.identity_of op)
                       sorted)
              end;
              Condition.broadcast cv);
          wait_until (fun () -> slot.result <> None);
          let r = locked (fun () -> Option.get slot.result) in
          Eval.set env var r;
          locked (fun () ->
              slot.consumed.(sid) <- true;
              if Array.for_all Fun.id slot.consumed then begin
                slot.values <- [];
                Array.fill slot.arrived 0 shards false;
                Array.fill slot.consumed 0 shards false;
                slot.result <- None
              end;
              Condition.broadcast cv)
    in
    List.iter exec b.Prog.body;
    env
  in
  let domains = Array.init shards (fun sid -> Domain.spawn (shard_main sid)) in
  let envs = Array.map Domain.join domains in
  if shards > 0 then
    List.iter (fun (k, v) -> Eval.set master_env k v) (Eval.bindings envs.(0))

let run_block ?(sched = `Round_robin) ?stats ~source ctx (b : Prog.block) =
  let st = create_state ?stats ~source ctx b in
  (* Initialization runs sequentially, outside the shards (Fig. 4d). *)
  List.iter
    (function
      | Prog.Copy c -> master_copy st c
      | Prog.Fill { part; fields; op } ->
          let p = Program.find_partition source part in
          for color = 0 to Partition.color_count p - 1 do
            let inst = instance st part color in
            List.iter
              (fun fld -> Physical.fill inst fld (Privilege.identity_of op))
              fields
          done
      | instr ->
          invalid_arg
            (Format.asprintf "Spmd.Exec: unsupported init instruction %a"
               Prog.pp_instr instr))
    b.Prog.init;
  (* Shard streams. *)
  let master_env = Interp.Run.env ctx in
  let drive_stepper rng =
  let shards =
    Array.init b.Prog.shards (fun sid ->
        {
          sid;
          env = Eval.copy master_env;
          frames = [ { instrs = Array.of_list b.Prog.body; idx = 0; loop = None } ];
          wait = Ready;
        })
  in
  let live () =
    Array.to_list shards |> List.filter (fun s -> not (shard_done s))
  in
  let rr = ref 0 in
  let rec drive () =
    match live () with
    | [] -> ()
    | alive ->
        (* Try shards starting from a scheduler-chosen point; if a full
           sweep makes no progress, every live shard is blocked. *)
        let order =
          match rng with
          | Some state ->
              let arr = Array.of_list alive in
              for i = Array.length arr - 1 downto 1 do
                let j = Random.State.int state (i + 1) in
                let t = arr.(i) in
                arr.(i) <- arr.(j);
                arr.(j) <- t
              done;
              Array.to_list arr
          | None ->
              let n = List.length alive in
              let k = !rr mod n in
              incr rr;
              let arr = Array.of_list alive in
              List.init n (fun i -> arr.((i + k) mod n))
        in
        let progressed =
          List.exists
            (fun s -> match step st s with `Progress | `Done -> true | `Blocked -> false)
            order
        in
        if not progressed then
          raise
            (Deadlock
               (Printf.sprintf "all %d live shards blocked" (List.length alive)));
        drive ()
  in
  drive ();
  (* Replicated scalar state is identical on all shards; fold it back. *)
  match shards with
  | [||] -> ()
  | _ ->
      List.iter
        (fun (k, v) -> Eval.set master_env k v)
        (Eval.bindings shards.(0).env)
  in
  (match sched with
  | `Round_robin -> drive_stepper None
  | `Random seed -> drive_stepper (Some (Random.State.make [| seed |]))
  | `Domains -> drive_domains st b master_env);
  (* Finalization, sequential again. *)
  List.iter
    (function
      | Prog.Copy c -> master_copy st c
      | instr ->
          invalid_arg
            (Format.asprintf "Spmd.Exec: unsupported finalize instruction %a"
               Prog.pp_instr instr))
    b.Prog.finalize

let run ?sched ?stats (t : Prog.t) ctx =
  List.iter
    (function
      | Prog.Seq stmts -> Interp.Run.run_stmts ctx stmts
      | Prog.Replicated b -> run_block ?sched ?stats ~source:t.Prog.source ctx b)
    t.Prog.items
