type 'a node =
  | Leaf of (Rect.t * 'a) array
  | Node of { bbox : Rect.t; left : 'a node; right : 'a node }

type 'a t = { root : 'a node option; size : int }

let leaf_capacity = 4

let bbox_of_node = function
  | Leaf items ->
      let r0 = fst items.(0) in
      Array.fold_left (fun b (r, _) -> Rect.union_bbox b r) r0 items
  | Node { bbox; _ } -> bbox

let size t = t.size

let build pairs =
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  (* [go lo hi] builds a node over arr.(lo..hi-1), partitioning in place. *)
  let rec go lo hi =
    if hi - lo <= leaf_capacity then Leaf (Array.sub arr lo (hi - lo))
    else begin
      (* Choose the centroid-bbox longest axis and split at the median by
         sorting the slice along that axis. *)
      let c0 = Rect.center (fst arr.(lo)) in
      let cb_lo = ref c0 and cb_hi = ref c0 in
      for i = lo to hi - 1 do
        let c = Rect.center (fst arr.(i)) in
        cb_lo := Point.min_pt !cb_lo c;
        cb_hi := Point.max_pt !cb_hi c
      done;
      let d = Point.dim c0 in
      let axis = ref 0 and best = ref min_int in
      for i = 0 to d - 1 do
        let span = !cb_hi.(i) - !cb_lo.(i) in
        if span > !best then begin
          best := span;
          axis := i
        end
      done;
      let slice = Array.sub arr lo (hi - lo) in
      Array.sort
        (fun (a, _) (b, _) ->
          Int.compare (Rect.center a).(!axis) (Rect.center b).(!axis))
        slice;
      Array.blit slice 0 arr lo (hi - lo);
      let mid = (lo + hi) / 2 in
      let left = go lo mid and right = go mid hi in
      let bbox = Rect.union_bbox (bbox_of_node left) (bbox_of_node right) in
      Node { bbox; left; right }
    end
  in
  { root = (if n = 0 then None else Some (go 0 n)); size = n }

let iter_overlapping t q f =
  let rec go = function
    | Leaf items ->
        Array.iter (fun (r, p) -> if Rect.overlap r q then f r p) items
    | Node { bbox; left; right } ->
        if Rect.overlap bbox q then begin
          go left;
          go right
        end
  in
  match t.root with None -> () | Some n -> go n

let query t q =
  let acc = ref [] in
  iter_overlapping t q (fun r p -> acc := (r, p) :: !acc);
  !acc
