lib/geometry/interval_tree.mli: Interval
