lib/geometry/bvh.mli: Rect
