lib/geometry/sorted_iset.ml: Array Format Int Interval List Rect
