lib/geometry/rect.ml: Array Format Point Printf
