lib/geometry/point.ml: Array Format Printf Stdlib
