lib/geometry/sorted_iset.mli: Format Interval
