lib/geometry/bvh.ml: Array Int Point Rect
