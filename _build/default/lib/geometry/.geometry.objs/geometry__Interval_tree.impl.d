lib/geometry/interval_tree.ml: Array Interval
