type t = int array

let dim = Array.length

let make1 a = [| a |]
let make2 a b = [| a; b |]
let make3 a b c = [| a; b; c |]

let coord p i =
  if i >= Array.length p then
    invalid_arg (Printf.sprintf "Point: coordinate %d of %dd point" i (dim p));
  p.(i)

let x p = coord p 0
let y p = coord p 1
let z p = coord p 2

let equal a b = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let map2 f a b =
  if dim a <> dim b then invalid_arg "Point.map2: dimension mismatch";
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add = map2 ( + )
let sub = map2 ( - )
let min_pt = map2 min
let max_pt = map2 max

let zero d = Array.make d 0

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list p)

let to_string p = Format.asprintf "%a" pp p
