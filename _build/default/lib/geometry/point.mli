(** Integer lattice points of dimension 1, 2 or 3.

    Points index elements of structured index spaces. The representation is a
    plain [int array] of length [dim]; all operations assume operands have
    equal dimension. *)

type t = int array

val dim : t -> int

val make1 : int -> t
val make2 : int -> int -> t
val make3 : int -> int -> int -> t

(** [x p] is the first coordinate of [p]; [y] and [z] the second and third.
    Raises [Invalid_argument] if the point has too few dimensions. *)

val x : t -> int
val y : t -> int
val z : t -> int

val equal : t -> t -> bool

(** Lexicographic order, coordinate 0 most significant. *)
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t

(** Coordinate-wise minimum / maximum. *)

val min_pt : t -> t -> t
val max_pt : t -> t -> t

(** [map2 f a b] applies [f] coordinate-wise. *)
val map2 : (int -> int -> int) -> t -> t -> t

val zero : int -> t
(** [zero d] is the origin of dimension [d]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
