(** Closed integer intervals [lo..hi], used by {!Interval_tree}. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** Raises [Invalid_argument] if [lo > hi]. *)

val length : t -> int
val overlap : t -> t -> bool
val intersect : t -> t -> t option
val contains : t -> int -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
