type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: %d > %d" lo hi);
  { lo; hi }

let length i = i.hi - i.lo + 1
let overlap a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  if overlap a b then Some { lo = max a.lo b.lo; hi = min a.hi b.hi }
  else None

let contains i x = i.lo <= x && x <= i.hi

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let pp ppf i = Format.fprintf ppf "[%d..%d]" i.lo i.hi
