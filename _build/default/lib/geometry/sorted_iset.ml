type t = int array

let empty = [||]

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then a
  else begin
    let w = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let of_array a =
  let a = Array.copy a in
  Array.sort Int.compare a;
  dedup_sorted a

let of_list l = of_array (Array.of_list l)

let of_sorted_array_unchecked a = a

let range lo hi =
  if lo > hi then empty else Array.init (hi - lo + 1) (fun i -> lo + i)

let to_array s = s
let cardinal = Array.length
let is_empty s = Array.length s = 0

let mem s x =
  let lo = ref 0 and hi = ref (Array.length s - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) = x then found := true
    else if s.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let min_elt s = if is_empty s then raise Not_found else s.(0)
let max_elt s = if is_empty s then raise Not_found else s.(cardinal s - 1)

let equal (a : t) (b : t) = a = b

let union a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    let v = if x <= y then x else y in
    if x <= y then incr i;
    if y <= x then incr j;
    out.(!w) <- v;
    incr w
  done;
  while !i < na do
    out.(!w) <- a.(!i);
    incr i;
    incr w
  done;
  while !j < nb do
    out.(!w) <- b.(!j);
    incr j;
    incr w
  done;
  if !w = na + nb then out else Array.sub out 0 !w

let union_many sets =
  let total = Array.fold_left (fun n s -> n + Array.length s) 0 sets in
  let out = Array.make total 0 in
  let w = ref 0 in
  Array.iter
    (fun s ->
      Array.blit s 0 out !w (Array.length s);
      w := !w + Array.length s)
    sets;
  Array.sort Int.compare out;
  dedup_sorted out

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out.(!w) <- x;
      incr w;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  if !w = Array.length out then out else Array.sub out 0 !w

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < na do
    let x = a.(!i) in
    while !j < nb && b.(!j) < x do
      incr j
    done;
    if !j >= nb || b.(!j) <> x then begin
      out.(!w) <- x;
      incr w
    end;
    incr i
  done;
  if !w = na then out else Array.sub out 0 !w

let disjoint a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and d = ref true in
  while !d && !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then d := false else if x < y then incr i else incr j
  done;
  !d

let subset a b =
  cardinal a <= cardinal b && cardinal (inter a b) = cardinal a

let iter f s = Array.iter f s
let fold f init s = Array.fold_left f init s

let nth s k =
  if k < 0 || k >= cardinal s then invalid_arg "Sorted_iset.nth";
  s.(k)

let runs s =
  let n = Array.length s in
  if n = 0 then []
  else begin
    let acc = ref [] in
    let start = ref s.(0) and prev = ref s.(0) in
    for i = 1 to n - 1 do
      if s.(i) <> !prev + 1 then begin
        acc := Interval.make !start !prev :: !acc;
        start := s.(i)
      end;
      prev := s.(i)
    done;
    acc := Interval.make !start !prev :: !acc;
    List.rev !acc
  end

let choose_block s ~pieces ~index =
  let n = cardinal s in
  match Rect.block_1d ~lo:0 ~hi:(n - 1) ~pieces ~index with
  | None -> empty
  | Some (lo, hi) -> Array.sub s lo (hi - lo + 1)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list s)
