(** Static bounding volume hierarchy over rectangles.

    Used by the shallow-intersection phase of the copy intersection
    optimization (paper §3.3) for structured partitions: given the bounding
    rectangles of all subregions, find the pairs that may overlap without
    comparing all pairs. *)

type 'a t

val build : (Rect.t * 'a) list -> 'a t
(** Median split on the longest axis of the centroid bounding box; leaves
    hold up to a small constant number of rectangles. *)

val size : 'a t -> int

val query : 'a t -> Rect.t -> (Rect.t * 'a) list
(** All stored pairs whose rectangle overlaps the query rectangle. *)

val iter_overlapping : 'a t -> Rect.t -> (Rect.t -> 'a -> unit) -> unit
