(** Immutable sets of non-negative integers as sorted, duplicate-free arrays.

    These are the element sets of unstructured index spaces: element
    identifiers are dense integers, and partition/copy machinery needs fast
    ordered iteration, set algebra, and binary-search membership. *)

type t

val empty : t
val of_list : int list -> t
val of_array : int array -> t
(** Both constructors sort and deduplicate. *)

val of_sorted_array_unchecked : int array -> t
(** The caller asserts the array is strictly increasing. O(1); the array is
    not copied, so the caller must not mutate it afterwards. *)

val range : int -> int -> t
(** [range lo hi] is [{lo, .., hi}]; empty when [lo > hi]. *)

val to_array : t -> int array
(** The underlying array; must not be mutated. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
val min_elt : t -> int
val max_elt : t -> int
(** [min_elt]/[max_elt] raise [Not_found] on the empty set. *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val union : t -> t -> t
val union_many : t array -> t
(** Union of many sets in one concat-sort-dedup pass — O(total log total),
    unlike a left fold of {!union}, which is quadratic in the result. *)

val inter : t -> t -> t
val diff : t -> t -> t

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val nth : t -> int -> int
(** [nth s k] is the k-th smallest element. *)

val runs : t -> Interval.t list
(** Decomposition into maximal runs of consecutive integers, ascending. *)

val choose_block : t -> pieces:int -> index:int -> t
(** Contiguous nearly-equal blocking of the sorted elements, as used by block
    partitions of unstructured spaces. *)

val pp : Format.formatter -> t -> unit
