type t = { lo : Point.t; hi : Point.t }

let make lo hi =
  let d = Point.dim lo in
  if d <> Point.dim hi then invalid_arg "Rect.make: dimension mismatch";
  if d = 0 then invalid_arg "Rect.make: zero-dimensional rectangle";
  for i = 0 to d - 1 do
    if lo.(i) > hi.(i) then
      invalid_arg
        (Printf.sprintf "Rect.make: empty on axis %d (%d > %d)" i lo.(i)
           hi.(i))
  done;
  { lo; hi }

let make1 lo hi = make (Point.make1 lo) (Point.make1 hi)

let make2 ~lo:(x0, y0) ~hi:(x1, y1) =
  make (Point.make2 x0 y0) (Point.make2 x1 y1)

let make3 ~lo:(x0, y0, z0) ~hi:(x1, y1, z1) =
  make (Point.make3 x0 y0 z0) (Point.make3 x1 y1 z1)

let dim r = Point.dim r.lo

let extent r i = r.hi.(i) - r.lo.(i) + 1

let volume r =
  let v = ref 1 in
  for i = 0 to dim r - 1 do
    v := !v * extent r i
  done;
  !v

let equal a b = Point.equal a.lo b.lo && Point.equal a.hi b.hi

let compare a b =
  let c = Point.compare a.lo b.lo in
  if c <> 0 then c else Point.compare a.hi b.hi

let contains r p =
  let d = dim r in
  Point.dim p = d
  &&
  let rec go i = i >= d || (r.lo.(i) <= p.(i) && p.(i) <= r.hi.(i) && go (i + 1)) in
  go 0

let contains_rect r s = contains r s.lo && contains r s.hi

let overlap a b =
  let d = dim a in
  let rec go i = i >= d || (a.lo.(i) <= b.hi.(i) && b.lo.(i) <= a.hi.(i) && go (i + 1)) in
  dim b = d && go 0

let intersect a b =
  if not (overlap a b) then None
  else Some (make (Point.max_pt a.lo b.lo) (Point.min_pt a.hi b.hi))

let union_bbox a b = make (Point.min_pt a.lo b.lo) (Point.max_pt a.hi b.hi)

let center r = Array.init (dim r) (fun i -> (r.lo.(i) + r.hi.(i)) / 2)

let linearize r p =
  if not (contains r p) then
    invalid_arg
      (Printf.sprintf "Rect.linearize: %s outside %s%s" (Point.to_string p)
         (Point.to_string r.lo) (Point.to_string r.hi));
  let k = ref 0 in
  for i = 0 to dim r - 1 do
    k := (!k * extent r i) + (p.(i) - r.lo.(i))
  done;
  !k

let delinearize r k =
  if k < 0 || k >= volume r then invalid_arg "Rect.delinearize: out of range";
  let d = dim r in
  let p = Array.make d 0 in
  let k = ref k in
  for i = d - 1 downto 0 do
    let e = extent r i in
    p.(i) <- r.lo.(i) + (!k mod e);
    k := !k / e
  done;
  p

let iter f r =
  for k = 0 to volume r - 1 do
    f (delinearize r k)
  done

let fold f init r =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) r;
  !acc

let split_at r ~axis ~at =
  if axis < 0 || axis >= dim r then invalid_arg "Rect.split_at: bad axis";
  if at <= r.lo.(axis) || at > r.hi.(axis) then
    invalid_arg "Rect.split_at: split point leaves an empty half";
  let hi_left = Array.copy r.hi and lo_right = Array.copy r.lo in
  hi_left.(axis) <- at - 1;
  lo_right.(axis) <- at;
  (make r.lo hi_left, make lo_right r.hi)

let block_1d ~lo ~hi ~pieces ~index =
  if pieces <= 0 then invalid_arg "Rect.block_1d: pieces <= 0";
  if index < 0 || index >= pieces then invalid_arg "Rect.block_1d: bad index";
  let n = hi - lo + 1 in
  let q = n / pieces and r = n mod pieces in
  let start = lo + (index * q) + min index r in
  let len = q + if index < r then 1 else 0 in
  if len <= 0 then None else Some (start, start + len - 1)

let pp ppf r = Format.fprintf ppf "[%a..%a]" Point.pp r.lo Point.pp r.hi
let to_string r = Format.asprintf "%a" pp r
