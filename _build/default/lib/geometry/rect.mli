(** Axis-aligned rectangles (boxes) with inclusive integer bounds.

    A rectangle is the set of points [p] with [lo <= p <= hi] coordinate-wise.
    Rectangles are never empty: constructors reject bounds with
    [lo.(i) > hi.(i)]; operations that can produce an empty result (such as
    {!intersect}) return an [option]. *)

type t = private { lo : Point.t; hi : Point.t }

val make : Point.t -> Point.t -> t
(** Raises [Invalid_argument] if dimensions differ or any [lo.(i) > hi.(i)]. *)

val make1 : int -> int -> t
val make2 : lo:int * int -> hi:int * int -> t
val make3 : lo:int * int * int -> hi:int * int * int -> t

val dim : t -> int
val volume : t -> int

(** Extent along axis [i] (number of points). *)
val extent : t -> int -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val contains : t -> Point.t -> bool
val contains_rect : t -> t -> bool
val overlap : t -> t -> bool
val intersect : t -> t -> t option

val union_bbox : t -> t -> t
(** Smallest rectangle containing both arguments. *)

val center : t -> Point.t

(** [linearize r p] is the row-major rank of [p] within [r] (coordinate 0
    slowest-varying). [delinearize r k] inverts it. Raises
    [Invalid_argument] when [p] is outside [r] or [k] outside
    [0..volume r - 1]. *)

val linearize : t -> Point.t -> int
val delinearize : t -> int -> Point.t

val iter : (Point.t -> unit) -> t -> unit
(** Row-major iteration over all points. *)

val fold : ('a -> Point.t -> 'a) -> 'a -> t -> 'a

val split_at : t -> axis:int -> at:int -> t * t
(** [split_at r ~axis ~at] splits into points with coordinate [< at] and
    [>= at] along [axis]. Both halves must be non-empty. *)

val block_1d : lo:int -> hi:int -> pieces:int -> index:int -> (int * int) option
(** Quotient-remainder blocking of the inclusive range [lo..hi] into [pieces]
    nearly equal pieces; piece [index] (0-based) as inclusive bounds, or
    [None] when that piece is empty. First [(n mod pieces)] pieces get one
    extra element. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
