(** Static augmented interval tree.

    Used by the shallow-intersection phase of the copy intersection
    optimization (paper §3.3) to find, among the subregions of an
    unstructured partition, those whose index ranges overlap a query
    interval in [O(log n + k)] instead of [O(n)]. The tree is built once
    from a list of (interval, payload) pairs and is immutable. *)

type 'a t

val build : (Interval.t * 'a) list -> 'a t

val size : 'a t -> int

val query : 'a t -> Interval.t -> (Interval.t * 'a) list
(** All stored pairs whose interval overlaps the query, in unspecified
    order. *)

val iter_overlapping : 'a t -> Interval.t -> (Interval.t -> 'a -> unit) -> unit

val stab : 'a t -> int -> (Interval.t * 'a) list
(** All pairs whose interval contains the given point. *)
