(* A balanced BST keyed by interval low endpoint, augmented with the maximum
   high endpoint of each subtree. Built once from a sorted array, so the tree
   is perfectly balanced and queries are O(log n + k). *)

type 'a node = {
  ival : Interval.t;
  payload : 'a;
  max_hi : int;
  left : 'a node option;
  right : 'a node option;
}

type 'a t = { root : 'a node option; size : int }

let size t = t.size

let build pairs =
  let arr = Array.of_list pairs in
  Array.sort (fun (a, _) (b, _) -> Interval.compare a b) arr;
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let ival, payload = arr.(mid) in
      let left = go lo (mid - 1) and right = go (mid + 1) hi in
      let max_hi =
        let m = ival.Interval.hi in
        let m = match left with Some n -> max m n.max_hi | None -> m in
        match right with Some n -> max m n.max_hi | None -> m
      in
      Some { ival; payload; max_hi; left; right }
  in
  { root = go 0 (Array.length arr - 1); size = Array.length arr }

let iter_overlapping t q f =
  let rec go = function
    | None -> ()
    | Some n ->
        (* Prune subtrees that cannot contain an overlapping interval: if
           every interval below ends before q.lo, skip; if this node's low
           endpoint is past q.hi, the right subtree (larger lows) is too. *)
        if n.max_hi >= q.Interval.lo then begin
          go n.left;
          if Interval.overlap n.ival q then f n.ival n.payload;
          if n.ival.Interval.lo <= q.Interval.hi then go n.right
        end
  in
  go t.root

let query t q =
  let acc = ref [] in
  iter_overlapping t q (fun i p -> acc := (i, p) :: !acc);
  !acc

let stab t x = query t (Interval.make x x)
