lib/taskpool/pool.mli:
