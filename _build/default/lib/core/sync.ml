let insert ~prog ~mode instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  (* Instructions to emit before / after each original position. *)
  let before = Array.make n [] and after = Array.make n [] in
  let add_before k i = before.(k) <- before.(k) @ [ i ]
  and add_after k i = after.(k) <- after.(k) @ [ i ] in
  let credits = ref [] in
  (* First pass: barriers and awaits. Releases are placed in a second pass
     so that a Release landing after a Copy instruction always follows that
     copy's Await — a consumer must have applied incoming data before
     granting the next overwrite (the copy-as-last-user case can otherwise
     put the Release first when the user sits later in the body). *)
  Array.iteri
    (fun k instr ->
      match instr with
      | Spmd.Prog.Copy c ->
          let id = c.Spmd.Prog.copy_id in
          if mode = `Barrier then begin
            add_before k Spmd.Prog.Barrier;
            add_after k Spmd.Prog.Barrier
          end;
          (* Consumers synchronise right after the producer issues. *)
          add_after k (Spmd.Prog.Await id)
      | _ -> ())
    arr;
  Array.iteri
    (fun k instr ->
      match instr with
      | Spmd.Prog.Copy c -> (
          let id = c.Spmd.Prog.copy_id in
          (* Last user of the destination in cyclic order from the copy:
             positions k+1..n-1 first, then 0..k-1 wrapping into the next
             iteration. *)
          match c.Spmd.Prog.dst with
          | Spmd.Prog.Oregion _ -> add_after k (Spmd.Prog.Release id)
          | Spmd.Prog.Opart dp ->
              let is_user j =
                j <> k
                && Placement.uses_partition prog dp c.Spmd.Prog.fields arr.(j)
              in
              let last_user =
                let wrapped = ref None in
                for j = 0 to k - 1 do
                  if is_user j then wrapped := Some j
                done;
                match !wrapped with
                | Some j -> Some j
                | None ->
                    let tail = ref None in
                    for j = k + 1 to n - 1 do
                      if is_user j then tail := Some j
                    done;
                    !tail
              in
              (match last_user with
              | Some j ->
                  add_after j (Spmd.Prog.Release id);
                  (* A Release preceding its copy in program order grants
                     this iteration's credit itself; starting with one more
                     would let the copy overrun a consumer still using the
                     previous iteration's data. *)
                  if j < k then credits := (id, 0) :: !credits
              | None ->
                  (* Nobody uses the destination inside the loop (the data
                     is only for finalization): release immediately. *)
                  add_after k (Spmd.Prog.Release id)))
      | _ -> ())
    arr;
  ( List.concat (List.init n (fun k -> before.(k) @ (arr.(k) :: after.(k)))),
    !credits )
