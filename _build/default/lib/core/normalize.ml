open Regions
open Ir

let derived_name p fname = Printf.sprintf "__proj_%s_%s" p fname

let program (prog : Program.t) =
  let extra = ref [] in
  (* (partition, fname) -> derived partition name *)
  let derive space_size pname fname f =
    let dname = derived_name pname fname in
    let already =
      List.mem_assoc dname prog.Program.decls
      || List.mem_assoc dname !extra
    in
    if not already then begin
      let p = Program.find_partition prog pname in
      let spaces =
        Array.init space_size (fun i ->
            let c = f i in
            if c < 0 || c >= Partition.color_count p then
              invalid_arg
                (Printf.sprintf
                   "Normalize: projection %s maps launch point %d to color \
                    %d, outside partition %s"
                   fname i c pname);
            (Partition.sub p c).Region.ispace)
      in
      let q = Partition.of_explicit ~name:dname p.Partition.parent spaces in
      Region_tree.register_partition prog.Program.tree q;
      extra := (dname, Types.Dpartition q) :: !extra
    end;
    dname
  in
  let rewrite_launch space (l : Types.launch) =
    let n = Program.find_space prog space in
    let rargs =
      List.map
        (function
          | Types.Part (p, Types.Fn (fname, f)) ->
              Types.Part (derive n p fname f, Types.Id)
          | (Types.Part (_, Types.Id) | Types.Whole _) as a -> a)
        l.Types.rargs
    in
    { l with Types.rargs }
  in
  let rec rewrite_stmt = function
    | Types.Index_launch { space; launch } ->
        Types.Index_launch { space; launch = rewrite_launch space launch }
    | Types.Index_launch_reduce { space; launch; var; op } ->
        Types.Index_launch_reduce
          { space; launch = rewrite_launch space launch; var; op }
    | (Types.Single_launch _ | Types.Assign _) as s -> s
    | Types.For_time { var; count; body } ->
        Types.For_time { var; count; body = List.map rewrite_stmt body }
    | Types.If { test; then_; else_ } ->
        Types.If
          {
            test;
            then_ = List.map rewrite_stmt then_;
            else_ = List.map rewrite_stmt else_;
          }
  in
  let body = List.map rewrite_stmt prog.Program.body in
  {
    prog with
    Program.decls = prog.Program.decls @ List.rev !extra;
    Program.body = body;
  }
