(** Projection normalization (paper §2.2).

    Region arguments of index launches must be of the form [p\[f(i)\]] with
    [f] pure. Control replication wants every argument in the canonical
    form [q\[i\]]: this pass rewrites each [p\[f(i)\]] into [q\[i\]] where
    [q] is a fresh partition of [p]'s parent with [q\[i\] = p\[f(i)\]] —
    "we make essential use of Regent's ability to define multiple
    partitions of the same data".

    The derived partition's disjointness is detected dynamically by
    {!Regions.Partition.of_explicit} (it is disjoint when [f] is injective
    on the launch space and [p] is disjoint). Derived partitions are named
    [__proj_<p>_<f>] and shared between launches using the same pair; the
    function value must agree with the name, as in the source language. *)

val program : Ir.Program.t -> Ir.Program.t
(** Rewrite every index launch in the program. Idempotent. *)
