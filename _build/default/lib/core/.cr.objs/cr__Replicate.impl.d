lib/core/replicate.ml: Alias Array Field Hashtbl Ir List Partition Printf Privilege Program Region Region_tree Regions Spmd Task Types Usage
