lib/core/pipeline.ml: Alias Check Ir List Normalize Partition Placement Printf Privilege Program Regions Replicate Spmd Sync Task Types
