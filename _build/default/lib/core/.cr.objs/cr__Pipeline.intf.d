lib/core/pipeline.mli: Ir Spmd
