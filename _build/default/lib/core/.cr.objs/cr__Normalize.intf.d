lib/core/normalize.mli: Ir
