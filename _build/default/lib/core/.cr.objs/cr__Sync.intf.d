lib/core/sync.mli: Ir Spmd
