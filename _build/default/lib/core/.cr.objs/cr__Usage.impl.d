lib/core/usage.ml: Field Ir List Privilege Regions Summary Types
