lib/core/usage.mli: Ir Regions
