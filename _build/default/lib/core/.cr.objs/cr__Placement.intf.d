lib/core/placement.mli: Ir Regions Spmd
