lib/core/normalize.ml: Array Ir List Partition Printf Program Region Region_tree Regions Types
