lib/core/alias.ml: Partition Region Region_tree Regions
