lib/core/sync.ml: Array List Placement Spmd
