lib/core/alias.mli: Regions
