lib/core/replicate.mli: Ir Spmd
