lib/core/placement.ml: Array Field Ir List Privilege Regions Spmd Summary
