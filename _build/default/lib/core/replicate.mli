(** Data replication (paper §3.1) and region reductions (§4.3).

    Rewrites the body of a control-replicated loop so that every partition
    has its own storage:

    - initialization copies from each parent region into every used
      partition before the loop, and finalization copies from every written
      partition back after it (Fig. 4a lines 2–4 and 14–15);
    - after every statement writing a partition [P], copies from [P] to
      each {e aliased} partition also used in the block — partitions
      provably disjoint by the region-tree analysis get no copies;
    - reduce-privileged arguments are redirected to fresh temporary
      partitions initialized to the operator identity, followed by
      reduction-apply copies to the home partition and every aliased user;
    - scalar reductions become dynamic collectives (§4.4).

    Copies carry exactly the fields their destination observes (reads,
    writes, or reduced fields — a reduction needs an up-to-date base to
    apply onto, and written or reduced replicas flow back at finalization).
    The §3.2 copy placement optimization itself lives in {!Placement}. *)

type result = {
  prog : Ir.Program.t; (* input program extended with temporary partitions *)
  init : Spmd.Prog.instr list;
  loop_body : Spmd.Prog.instr list; (* no synchronization yet *)
  finalize : Spmd.Prog.instr list;
}

val block :
  prog:Ir.Program.t ->
  pairs_mode:[ `Sparse | `Dense ] ->
  hierarchical:bool ->
  fresh_copy_id:(unit -> int) ->
  Ir.Types.stmt list ->
  result
(** The statements must already satisfy {!Pipeline} eligibility (index
    launches with identity projections, scalar assignments). *)
