open Regions

let may_alias ~hierarchical tree (p : Partition.t) (q : Partition.t) =
  if Partition.equal p q then
    invalid_arg "Alias.may_alias: same partition";
  if hierarchical then
    not (Region_tree.provably_disjoint tree p.Partition.parent q.Partition.parent)
  else
    (* Flat view: only the root matters. Partitions of different trees
       never alias; partitions of the same tree always may. *)
    Region.equal
      (Region_tree.root_of tree p.Partition.parent)
      (Region_tree.root_of tree q.Partition.parent)
