(** Synchronization insertion (paper §3.4).

    Copies are issued by the producer shard; consumers must (a) not read a
    destination before the copy lands — read-after-write — and (b) grant
    the next occurrence of the copy permission to overwrite data they are
    still using — write-after-read.

    In point-to-point mode ([`P2p]) the pass inserts, per copy: an [Await]
    immediately after it (consumers take the incoming tokens and apply
    staged reduction payloads) and a [Release] after the {e last} user of
    the destination in cyclic body order starting from the copy — the user
    whose completion makes the next iteration's copy safe. Channels are
    per-intersection-pair, so only shards that actually exchange data
    synchronise.

    In barrier mode ([`Barrier], Fig. 4c) each copy is additionally
    bracketed by global barriers, the naive scheme whose cost the
    point-to-point refinement removes. Await/Release are kept — they are
    what applies reduction payloads — but never block after a barrier. *)

val insert :
  prog:Ir.Program.t ->
  mode:[ `P2p | `Barrier ] ->
  Spmd.Prog.instr list ->
  Spmd.Prog.instr list * (int * int) list
(** Returns the instrumented body and the initial write-after-read credit
    of each copy whose Release precedes it in program order (credit 0;
    all others default to 1). *)
