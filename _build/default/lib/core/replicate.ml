open Regions
open Ir

type result = {
  prog : Program.t;
  init : Spmd.Prog.instr list;
  loop_body : Spmd.Prog.instr list;
  finalize : Spmd.Prog.instr list;
}

let inter_fields a b = List.filter (fun f -> List.exists (Field.equal f) b) a

let root_region_name (prog : Program.t) (p : Partition.t) =
  let root = Region_tree.root_of prog.Program.tree p.Partition.parent in
  let found =
    List.find_map
      (fun (name, d) ->
        match d with
        | Types.Dregion r when Region.equal r root -> Some name
        | _ -> None)
      prog.Program.decls
  in
  match found with
  | Some name -> name
  | None ->
      invalid_arg
        (Printf.sprintf
           "Replicate: root region %s of partition %s is not declared"
           root.Region.name p.Partition.name)

let block ~(prog : Program.t) ~pairs_mode ~hierarchical ~fresh_copy_id stmts
    =
  let uses = Usage.of_block prog stmts in
  let used = Usage.used_partitions uses in
  let part name = Program.find_partition prog name in
  let aliased p q =
    Alias.may_alias ~hierarchical prog.Program.tree (part p) (part q)
  in
  (* Destination fields a copy out of [src_fields] should deliver to [q]:
     everything [q] observes — reads, writes (the replica flows back at
     finalization), and reduced fields (reduction-apply needs an up-to-date
     base, and the home partition also flows back). *)
  let dst_fields q src_fields =
    inter_fields src_fields (Usage.all_fields uses q)
  in
  let mk_copy ?reduce ~src ~dst fields =
    Spmd.Prog.Copy
      {
        Spmd.Prog.copy_id = fresh_copy_id ();
        src;
        dst;
        fields;
        reduce;
        pairs = pairs_mode;
      }
  in
  (* Reduction temporaries: one per (statement index, partition, operator).
     Each is a fresh partition with the same subspaces as its base. *)
  let extra_decls = ref [] in
  let make_temp k pname op =
    let p = part pname in
    let tname =
      Printf.sprintf "__red%d_%s_%s" k pname
        (match op with
        | Privilege.Sum -> "sum"
        | Privilege.Prod -> "prod"
        | Privilege.Min -> "min"
        | Privilege.Max -> "max")
    in
    (* Recompiling the same program reuses the existing temporary — it has
       the same geometry by construction. *)
    if
      List.mem_assoc tname prog.Program.decls
      || List.mem_assoc tname !extra_decls
    then tname
    else begin
      let spaces =
        Array.init (Partition.color_count p) (fun c ->
            (Partition.sub p c).Region.ispace)
      in
      let t =
        Partition.of_explicit ~name:tname ~disjoint:false p.Partition.parent
          spaces
      in
      Region_tree.register_partition prog.Program.tree t;
      extra_decls := (tname, Types.Dpartition t) :: !extra_decls;
      tname
    end
  in
  (* Transform one statement into: fills, the launch itself, then apply and
     write-propagation copies. *)
  let transform k (u : Usage.stmt_use) =
    match u.Usage.stmt with
    | Types.Assign (v, e) -> [ Spmd.Prog.Assign (v, e) ]
    | Types.Index_launch { space; launch }
    | Types.Index_launch_reduce { space; launch; _ } ->
        (* Group this statement's reductions by (partition, op). *)
        let red_groups =
          List.fold_left
            (fun acc (p, f, op) ->
              let key = (p, op) in
              let fs = try List.assoc key acc with Not_found -> [] in
              (key, fs @ [ f ]) :: List.remove_assoc key acc)
            [] u.Usage.reduces
        in
        let temp_of = Hashtbl.create 4 in
        List.iter
          (fun ((p, op), _) ->
            Hashtbl.replace temp_of (p, op) (make_temp k p op))
          red_groups;
        (* Rewrite reduce-privileged arguments to their temporaries. *)
        let task = Program.find_task prog launch.Types.task in
        let rargs =
          List.mapi
            (fun i rarg ->
              match (rarg, Task.reduces_param task i) with
              | Types.Part (p, Types.Id), Some op ->
                  Types.Part (Hashtbl.find temp_of (p, op), Types.Id)
              | (Types.Part _ | Types.Whole _), _ -> rarg)
            launch.Types.rargs
        in
        let launch = { launch with Types.rargs } in
        let fills =
          List.map
            (fun ((p, op), fields) ->
              Spmd.Prog.Fill
                { part = Hashtbl.find temp_of (p, op); fields; op })
            red_groups
        in
        let the_launch =
          match u.Usage.stmt with
          | Types.Index_launch _ -> Spmd.Prog.Launch { space; launch }
          | Types.Index_launch_reduce { var; op; _ } ->
              Spmd.Prog.Launch_collective { space; launch; var; op }
          | _ -> assert false
        in
        (* Reduction-apply copies: home partition first (all reduced
           fields), then aliased users. *)
        let apply_copies =
          List.concat_map
            (fun ((p, op), fields) ->
              let temp = Hashtbl.find temp_of (p, op) in
              let home =
                mk_copy ~reduce:op ~src:(Spmd.Prog.Opart temp)
                  ~dst:(Spmd.Prog.Opart p) fields
              in
              let others =
                List.filter_map
                  (fun q ->
                    if q = p || not (aliased p q) then None
                    else
                      match dst_fields q fields with
                      | [] -> None
                      | fl ->
                          Some
                            (mk_copy ~reduce:op ~src:(Spmd.Prog.Opart temp)
                               ~dst:(Spmd.Prog.Opart q) fl))
                  used
              in
              home :: others)
            red_groups
        in
        (* Write-propagation copies (Fig. 4a line 9): writes to [p] reach
           every aliased used partition. *)
        let write_groups =
          List.fold_left
            (fun acc (p, f) ->
              let fs = try List.assoc p acc with Not_found -> [] in
              (p, fs @ [ f ]) :: List.remove_assoc p acc)
            [] u.Usage.writes
        in
        let prop_copies =
          List.concat_map
            (fun (p, fields) ->
              List.filter_map
                (fun q ->
                  if q = p || not (aliased p q) then None
                  else
                    match dst_fields q fields with
                    | [] -> None
                    | fl ->
                        Some
                          (mk_copy ~src:(Spmd.Prog.Opart p)
                             ~dst:(Spmd.Prog.Opart q) fl))
                used)
            write_groups
        in
        fills @ [ the_launch ] @ apply_copies @ prop_copies
    | Types.Single_launch _ | Types.For_time _ | Types.If _ ->
        invalid_arg "Replicate: statement not eligible for replication"
  in
  let loop_body = List.concat (List.mapi transform uses) in
  (* Initialization: every used partition starts as a copy of its parent
     region's data (Fig. 4a lines 2-4). *)
  let init =
    List.filter_map
      (fun p ->
        match Usage.all_fields uses p with
        | [] -> None
        | fields ->
            Some
              (mk_copy
                 ~src:(Spmd.Prog.Oregion (root_region_name prog (part p)))
                 ~dst:(Spmd.Prog.Opart p) fields))
      used
  in
  (* Finalization: written and reduced partitions flow back (lines 14-15).
     Aliased readers hold no data of their own — their contents mirror some
     written partition — so only writers copy back. *)
  let finalize =
    List.filter_map
      (fun p ->
        let written =
          List.concat_map
            (fun u ->
              List.filter_map
                (fun (q, f) -> if q = p then Some f else None)
                u.Usage.writes
              @ List.filter_map
                  (fun (q, f, _) -> if q = p then Some f else None)
                  u.Usage.reduces)
            uses
        in
        let written =
          List.fold_left
            (fun acc f ->
              if List.exists (Field.equal f) acc then acc else acc @ [ f ])
            [] written
        in
        match written with
        | [] -> None
        | fields ->
            Some
              (mk_copy ~src:(Spmd.Prog.Opart p)
                 ~dst:(Spmd.Prog.Oregion (root_region_name prog (part p)))
                 fields))
      used
  in
  let prog =
    { prog with Program.decls = prog.Program.decls @ List.rev !extra_decls }
  in
  { prog; init; loop_body; finalize }
