(** Partition-level static aliasing analysis (paper §2.3, §4.5).

    Control replication needs to know, for two partitions used in a
    replicated block, whether any subregion of one may share elements with
    any subregion of the other — if so, writes to one must be copied to the
    other. Since every subregion of a partition is contained in the
    partition's parent region, two partitions are provably disjoint exactly
    when their parent regions are: the {!Regions.Region_tree.provably_disjoint}
    LCA test. This is where hierarchical region trees (§4.5) pay off — a
    partition of the [all_private] subregion is provably disjoint from any
    partition of [all_ghost], so no copies (and no dynamic intersections)
    are ever issued between them.

    With [hierarchical:false] the analysis collapses the tree: two distinct
    partitions of the same root may always alias. This reproduces the
    behaviour the §4.5 optimization improves on and feeds the ablation
    benchmark. *)

val may_alias :
  hierarchical:bool ->
  Regions.Region_tree.t ->
  Regions.Partition.t ->
  Regions.Partition.t ->
  bool
(** [may_alias ~hierarchical tree p q] for distinct partitions [p <> q].
    Raises [Invalid_argument] when called on the same partition (a
    partition never needs copies to itself — each color has exactly one
    instance). *)
