(** Copy placement optimization (paper §3.2).

    Data replication inserts a copy to every aliased user after {e each}
    write; when a partition is written several times before anyone reads
    the aliased copies (e.g. the stages of a Runge–Kutta step), the earlier
    copies are redundant. This is the partial-redundancy-elimination
    variant the paper describes, run at partition granularity: a plain copy
    is removed when a later copy with the same source, destination and a
    superset of its fields exists with no intervening instruction using
    (reading or writing) the destination's copied fields.

    Reduction-apply copies are never removed — each application carries
    that statement's contributions. *)

val optimize :
  prog:Ir.Program.t ->
  ?finalize_sources:string list ->
  Spmd.Prog.instr list ->
  Spmd.Prog.instr list
(** Operates on a loop body produced by {!Replicate} (no synchronization
    instructions yet, no nested loops). The redundancy scan crosses the
    loop back edge except for destinations in [finalize_sources], whose
    value after the last iteration is observable. *)

val uses_partition :
  Ir.Program.t -> string -> Regions.Field.t list -> Spmd.Prog.instr -> bool
(** Does the instruction read or write any of the given fields of the given
    partition? Shared with {!Sync}, which places Release after the last
    user. *)
