(** Per-statement partition usage inside a candidate block, at the
    granularity control replication reasons at: (partition, field, mode). *)

type stmt_use = {
  stmt : Ir.Types.stmt;
  space : string option; (* launch space, for launches *)
  reads : (string * Regions.Field.t) list;
  writes : (string * Regions.Field.t) list;
  reduces : (string * Regions.Field.t * Regions.Privilege.redop) list;
}

val of_stmt : Ir.Program.t -> Ir.Types.stmt -> stmt_use

val of_block : Ir.Program.t -> Ir.Types.stmt list -> stmt_use list

val used_partitions : stmt_use list -> string list
(** Partitions appearing in any launch argument, in first-use order. *)

val use_fields : stmt_use list -> string -> Regions.Field.t list
(** Fields of a partition accessed with read or write (not reduce-only)
    privileges anywhere in the block. *)

val all_fields : stmt_use list -> string -> Regions.Field.t list
(** Fields accessed with any privilege. *)

val reads_or_writes : stmt_use -> string -> Regions.Field.t list -> bool
(** Does this statement read or write any of the given fields of the given
    partition? (The "user" test for synchronization placement, §3.4.) *)
