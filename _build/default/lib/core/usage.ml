open Regions
open Ir

type stmt_use = {
  stmt : Types.stmt;
  space : string option;
  reads : (string * Field.t) list;
  writes : (string * Field.t) list;
  reduces : (string * Field.t * Privilege.redop) list;
}

let of_stmt prog stmt =
  match stmt with
  | Types.Index_launch { space; launch }
  | Types.Index_launch_reduce { space; launch; _ } ->
      let accs = Summary.launch_accesses prog launch in
      {
        stmt;
        space = Some space;
        reads = Summary.reads accs;
        writes = Summary.writes accs;
        reduces = Summary.reduces accs;
      }
  | Types.Assign _ | Types.Single_launch _ | Types.For_time _ | Types.If _ ->
      { stmt; space = None; reads = []; writes = []; reduces = [] }

let of_block prog stmts = List.map (of_stmt prog) stmts

let used_partitions uses =
  let seen = ref [] in
  let add p = if not (List.mem p !seen) then seen := p :: !seen in
  List.iter
    (fun u ->
      List.iter (fun (p, _) -> add p) u.reads;
      List.iter (fun (p, _) -> add p) u.writes;
      List.iter (fun (p, _, _) -> add p) u.reduces)
    uses;
  List.rev !seen

let dedup_fields fl =
  List.fold_left
    (fun acc f -> if List.exists (Field.equal f) acc then acc else acc @ [ f ])
    [] fl

let use_fields uses part =
  dedup_fields
    (List.concat_map
       (fun u ->
         List.filter_map
           (fun (p, f) -> if p = part then Some f else None)
           (u.reads @ u.writes))
       uses)

let all_fields uses part =
  dedup_fields
    (List.concat_map
       (fun u ->
         List.filter_map
           (fun (p, f) -> if p = part then Some f else None)
           (u.reads @ u.writes
           @ List.map (fun (p, f, _) -> (p, f)) u.reduces))
       uses)

let reads_or_writes u part fields =
  List.exists
    (fun (p, f) -> p = part && List.exists (Field.equal f) fields)
    (u.reads @ u.writes)
