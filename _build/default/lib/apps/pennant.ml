open Regions
open Ir
module Syn = Program.Syntax

type config = {
  nodes : int;
  pieces_per_node : int;
  piece_zones : int * int;
  timesteps : int;
}

(* Calibrated to the paper's ~20 x 10^6 zones/s/node (Fig. 8): 7.4M
   zones/node in 11 pieces on the 11 compute cores gives a ~0.27 s step.
   The reference codes use all 12 cores and are correspondingly faster on
   a single node. *)
let eos_seconds_per_zone = 0.0825e-6
let forces_seconds_per_zone = 0.165e-6
let move_seconds_per_point = 0.11e-6
let update_seconds_per_zone = 0.1375e-6
let dt_seconds_per_zone = 0.055e-6
let task_noise = 0.025

let default ~nodes =
  { nodes; pieces_per_node = 11; piece_zones = (819, 819); timesteps = 10 }

let sim_config ~nodes =
  { nodes; pieces_per_node = 11; piece_zones = (24, 24); timesteps = 10 }

let test_config ~nodes =
  { nodes; pieces_per_node = 2; piece_zones = (4, 3); timesteps = 3 }

let zones_per_piece cfg =
  let x, y = cfg.piece_zones in
  x * y

let scale cfg =
  let full = default ~nodes:cfg.nodes in
  let compute =
    float_of_int (zones_per_piece full) /. float_of_int (zones_per_piece cfg)
  in
  let copy =
    float_of_int (fst full.piece_zones) /. float_of_int (fst cfg.piece_zones)
  in
  Legion.Scale.make ~compute ~copy

let fzp = Field.make "zp"
let fzrho = Field.make "zrho"
let fze = Field.make "ze"
let fzvol = Field.make "zvol"
let fzm = Field.make "zm"
let fpt = Array.init 4 (fun k -> Field.make (Printf.sprintf "zpt%d" k))
let fppx = Field.make "ppx"
let fppy = Field.make "ppy"
let fpvx = Field.make "pvx"
let fpvy = Field.make "pvy"
let fpfx = Field.make "pfx"
let fpfy = Field.make "pfy"
let fpm = Field.make "pm"

let near_square n =
  let a = ref 1 in
  for d = 1 to int_of_float (sqrt (float_of_int n)) do
    if n mod d = 0 then a := d
  done;
  (!a, n / !a)

type mesh = {
  pieces : int;
  n_zones : int;
  n_points : int;
  zone_pts : int array array; (* zone -> 4 corner point ids *)
  private_sets : Geometry.Sorted_iset.t array;
  shared_sets : Geometry.Sorted_iset.t array;
  ghost_sets : Geometry.Sorted_iset.t array;
  all_private : Geometry.Sorted_iset.t;
  all_shared : Geometry.Sorted_iset.t;
}

let generate cfg =
  let pieces = cfg.nodes * cfg.pieces_per_node in
  let zx, zy = cfg.piece_zones in
  let gx, gy = near_square pieces in
  let w = gx * zx and h = gy * zy in
  let n_zones = pieces * zx * zy in
  let n_points = (w + 1) * (h + 1) in
  let point_id x y = (y * (w + 1)) + x in
  (* Zone ids are piece-major. *)
  let zone_id gx_ gy_ =
    let px = gx_ / zx and py = gy_ / zy in
    let piece = px + (gx * py) in
    (piece * zx * zy) + (gx_ mod zx) + (zx * (gy_ mod zy))
  in
  let zone_pts = Array.make n_zones [||] in
  for gy_ = 0 to h - 1 do
    for gx_ = 0 to w - 1 do
      zone_pts.(zone_id gx_ gy_) <-
        [|
          point_id gx_ gy_;
          point_id (gx_ + 1) gy_;
          point_id gx_ (gy_ + 1);
          point_id (gx_ + 1) (gy_ + 1);
        |]
    done
  done;
  (* Pieces touching a point: the pieces of its up-to-four adjacent
     zones. *)
  let pieces_of_point x y =
    let acc = ref [] in
    List.iter
      (fun (dx, dy) ->
        let zx_ = x + dx and zy_ = y + dy in
        if zx_ >= 0 && zx_ < w && zy_ >= 0 && zy_ < h then begin
          let p = (zx_ / zx) + (gx * (zy_ / zy)) in
          if not (List.mem p !acc) then acc := p :: !acc
        end)
      [ (-1, -1); (0, -1); (-1, 0); (0, 0) ];
    List.sort compare !acc
  in
  let private_l = Array.make pieces []
  and shared_l = Array.make pieces []
  and ghost_l = Array.make pieces [] in
  for y = 0 to h do
    for x = 0 to w do
      let id = point_id x y in
      match pieces_of_point x y with
      | [] -> ()
      | [ p ] -> private_l.(p) <- id :: private_l.(p)
      | owner :: others ->
          shared_l.(owner) <- id :: shared_l.(owner);
          List.iter (fun q -> ghost_l.(q) <- id :: ghost_l.(q)) others
    done
  done;
  let private_sets = Array.map Geometry.Sorted_iset.of_list private_l
  and shared_sets = Array.map Geometry.Sorted_iset.of_list shared_l
  and ghost_sets = Array.map Geometry.Sorted_iset.of_list ghost_l in
  {
    pieces;
    n_zones;
    n_points;
    zone_pts;
    private_sets;
    shared_sets;
    ghost_sets;
    all_private = Geometry.Sorted_iset.union_many private_sets;
    all_shared = Geometry.Sorted_iset.union_many shared_sets;
  }

let program cfg =
  let m = generate cfg in
  let zx, _zy = cfg.piece_zones in
  let gx, _gy = near_square m.pieces in
  let w = gx * zx in
  let b = Program.Builder.create ~name:"pennant" in
  let zones =
    Program.Builder.region b ~name:"zones"
      (Index_space.of_range m.n_zones)
      ([ fzp; fzrho; fze; fzvol; fzm ] @ Array.to_list fpt)
  in
  let points =
    Program.Builder.region b ~name:"points"
      (Index_space.of_range m.n_points)
      [ fppx; fppy; fpvx; fpvy; fpfx; fpfy; fpm ]
  in
  let piset s = Index_space.of_iset ~universe_size:m.n_points s in
  let pvs =
    Program.Builder.partition b ~name:"pvs" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true points
          [| piset m.all_private; piset m.all_shared |])
  in
  let all_private = Partition.sub pvs 0
  and all_shared = Partition.sub pvs 1 in
  let _pvt =
    Program.Builder.partition b ~name:"pvt" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true all_private
          (Array.map piset m.private_sets))
  in
  let _shr =
    Program.Builder.partition b ~name:"shr" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:true all_shared
          (Array.map piset m.shared_sets))
  in
  let _ghost =
    Program.Builder.partition b ~name:"ghost" (fun ~name ->
        Partition.of_explicit ~name ~disjoint:false all_shared
          (Array.map piset m.ghost_sets))
  in
  let _zones_p =
    Program.Builder.partition b ~name:"zones_p" (fun ~name ->
        Partition.block ~name zones ~pieces:m.pieces)
  in
  Program.Builder.space b ~name:"P" m.pieces;
  Program.Builder.scalar b ~name:"dt" 1e-3;
  let corner_sign = [| (-1., -1.); (1., -1.); (-1., 1.); (1., 1.) |] in
  (* Position/force lookup through pvt, shr or ghost (arguments 1-3). *)
  let lookup field accs n =
    let rec go k =
      if k > 3 then
        invalid_arg (Printf.sprintf "pennant: point %d not covered" n)
      else if Index_space.mem (Accessor.space accs.(k)) n then
        Accessor.get accs.(k) field n
      else go (k + 1)
    in
    go 1
  in
  let deposit field accs n v =
    let rec go k =
      if k > 3 then
        invalid_arg (Printf.sprintf "pennant: point %d not covered" n)
      else if Index_space.mem (Accessor.space accs.(k)) n then
        Accessor.reduce accs.(k) field n v
      else go (k + 1)
    in
    go 1
  in
  let calc_dt =
    Task.make ~name:"calc_dt"
      ~params:
        [
          {
            Task.pname = "zones";
            privs = [ Privilege.reads fzvol; Privilege.reads fzp ];
          };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. dt_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        Index_space.fold_ids
          (fun acc z ->
            Float.min acc
              (0.05 *. sqrt (Float.abs (Accessor.get zs fzvol z))
              /. (1. +. Float.abs (Accessor.get zs fzp z))))
          Float.infinity (Accessor.space zs))
  in
  let zone_eos =
    Task.make ~name:"zone_eos"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              [ Privilege.writes fzp; Privilege.reads fzrho; Privilege.reads fze ];
          };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. eos_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        Accessor.iter zs (fun z ->
            Accessor.set zs fzp z
              (0.4 *. Accessor.get zs fzrho z *. Accessor.get zs fze z));
        0.)
  in
  let point_forces =
    Task.make ~name:"point_forces"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              Privilege.reads fzp
              :: List.map Privilege.reads (Array.to_list fpt);
          };
          { Task.pname = "pvt"; privs = [ Privilege.reduces Privilege.Sum fpfx; Privilege.reduces Privilege.Sum fpfy ] };
          { Task.pname = "shr"; privs = [ Privilege.reduces Privilege.Sum fpfx; Privilege.reduces Privilege.Sum fpfy ] };
          { Task.pname = "ghost"; privs = [ Privilege.reduces Privilege.Sum fpfx; Privilege.reduces Privilege.Sum fpfy ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. forces_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        Accessor.iter zs (fun z ->
            let p = Accessor.get zs fzp z in
            Array.iteri
              (fun k (sx, sy) ->
                let pt = int_of_float (Accessor.get zs fpt.(k) z) in
                deposit fpfx accs pt (0.5 *. sx *. p);
                deposit fpfy accs pt (0.5 *. sy *. p))
              corner_sign);
        0.)
  in
  let move_points =
    let privs =
      [
        Privilege.writes fppx;
        Privilege.writes fppy;
        Privilege.writes fpvx;
        Privilege.writes fpvy;
        Privilege.writes fpfx;
        Privilege.writes fpfy;
        Privilege.reads fpm;
      ]
    in
    Task.make ~name:"move_points"
      ~params:[ { Task.pname = "pvt"; privs }; { Task.pname = "shr"; privs } ]
      ~nscalars:1
      ~cost:(fun sizes ->
        float_of_int (sizes.(0) + sizes.(1)) *. move_seconds_per_point)
      (fun accs sargs ->
        let dt = sargs.(0) in
        Array.iter
          (fun acc ->
            Accessor.iter acc (fun p ->
                let minv = 1. /. Accessor.get acc fpm p in
                let vx =
                  Accessor.get acc fpvx p
                  +. (dt *. Accessor.get acc fpfx p *. minv)
                and vy =
                  Accessor.get acc fpvy p
                  +. (dt *. Accessor.get acc fpfy p *. minv)
                in
                Accessor.set acc fpvx p vx;
                Accessor.set acc fpvy p vy;
                Accessor.set acc fppx p (Accessor.get acc fppx p +. (dt *. vx));
                Accessor.set acc fppy p (Accessor.get acc fppy p +. (dt *. vy));
                Accessor.set acc fpfx p 0.;
                Accessor.set acc fpfy p 0.))
          [| accs.(0); accs.(1) |];
        0.)
  in
  let zone_update =
    Task.make ~name:"zone_update"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              [
                Privilege.writes fzvol;
                Privilege.writes fzrho;
                Privilege.writes fze;
                Privilege.reads fzp;
                Privilege.reads fzm;
              ]
              @ List.map Privilege.reads (Array.to_list fpt);
          };
          { Task.pname = "pvt"; privs = [ Privilege.reads fppx; Privilege.reads fppy ] };
          { Task.pname = "shr"; privs = [ Privilege.reads fppx; Privilege.reads fppy ] };
          { Task.pname = "ghost"; privs = [ Privilege.reads fppx; Privilege.reads fppy ] };
        ]
      ~cost:(fun sizes -> float_of_int sizes.(0) *. update_seconds_per_zone)
      (fun accs _ ->
        let zs = accs.(0) in
        Accessor.iter zs (fun z ->
            let px k = lookup fppx accs (int_of_float (Accessor.get zs fpt.(k) z))
            and py k = lookup fppy accs (int_of_float (Accessor.get zs fpt.(k) z)) in
            (* Shoelace area of the quad with corners 0,1,3,2 (ccw). *)
            let order = [| 0; 1; 3; 2 |] in
            let vol = ref 0. in
            for k = 0 to 3 do
              let a = order.(k) and b = order.((k + 1) mod 4) in
              vol := !vol +. ((px a *. py b) -. (px b *. py a))
            done;
            let vol = 0.5 *. Float.abs !vol in
            let old_vol = Accessor.get zs fzvol z in
            let zm = Accessor.get zs fzm z in
            Accessor.set zs fze z
              (Accessor.get zs fze z
              -. (Accessor.get zs fzp z *. (vol -. old_vol) /. zm));
            Accessor.set zs fzvol z vol;
            Accessor.set zs fzrho z (zm /. Float.max vol 1e-12));
        0.)
  in
  let init_zones =
    Task.make ~name:"init_zones"
      ~params:
        [
          {
            Task.pname = "zones";
            privs =
              [
                Privilege.writes fzp;
                Privilege.writes fzrho;
                Privilege.writes fze;
                Privilege.writes fzvol;
                Privilege.writes fzm;
              ]
              @ List.map Privilege.writes (Array.to_list fpt);
          };
        ]
      (fun accs _ ->
        let zs = accs.(0) in
        Accessor.iter zs (fun z ->
            Accessor.set zs fzrho z 1.;
            (* A central "Sedov-like" energy concentration. *)
            Accessor.set zs fze z
              (if z = m.n_zones / 2 then 10. else 1.);
            Accessor.set zs fzp z 0.;
            Accessor.set zs fzvol z 1.;
            Accessor.set zs fzm z 1.;
            Array.iteri
              (fun k f ->
                Accessor.set zs f z (float_of_int m.zone_pts.(z).(k)))
              fpt);
        0.)
  in
  let init_points =
    Task.make ~name:"init_points"
      ~params:
        [
          {
            Task.pname = "points";
            privs =
              [
                Privilege.writes fppx;
                Privilege.writes fppy;
                Privilege.writes fpvx;
                Privilege.writes fpvy;
                Privilege.writes fpfx;
                Privilege.writes fpfy;
                Privilege.writes fpm;
              ];
          };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun p ->
            Accessor.set accs.(0) fppx p (float_of_int (p mod (w + 1)));
            Accessor.set accs.(0) fppy p (float_of_int (p / (w + 1)));
            Accessor.set accs.(0) fpvx p 0.;
            Accessor.set accs.(0) fpvy p 0.;
            Accessor.set accs.(0) fpfx p 0.;
            Accessor.set accs.(0) fpfy p 0.;
            Accessor.set accs.(0) fpm p 1.);
        0.)
  in
  List.iter (Program.Builder.task b)
    [ calc_dt; zone_eos; point_forces; move_points; zone_update; init_zones;
      init_points ];
  Program.Builder.body b
    [
      Syn.run (Syn.call "init_zones" [ Syn.whole "zones" ]);
      Syn.run (Syn.call "init_points" [ Syn.whole "points" ]);
      Syn.for_time "t" cfg.timesteps
        [
          Syn.forall_reduce "P"
            (Syn.call "calc_dt" [ Syn.part "zones_p" ])
            ~into:"dt" Privilege.Min;
          Syn.forall "P" (Syn.call "zone_eos" [ Syn.part "zones_p" ]);
          Syn.forall "P"
            (Syn.call "point_forces"
               [ Syn.part "zones_p"; Syn.part "pvt"; Syn.part "shr"; Syn.part "ghost" ]);
          Syn.forall "P"
            (Syn.call "move_points"
               ~scalars:[ Syn.sv "dt" ]
               [ Syn.part "pvt"; Syn.part "shr" ]);
          Syn.forall "P"
            (Syn.call "zone_update"
               [ Syn.part "zones_p"; Syn.part "pvt"; Syn.part "shr"; Syn.part "ghost" ]);
        ];
    ];
  Program.Builder.finish b

let total_momentum ctx prog =
  let points = Program.find_region prog "points" in
  let inst = Interp.Run.region_instance ctx points in
  Index_space.fold_ids
    (fun (mx, my) id ->
      let m = Physical.get inst fpm id in
      ( mx +. (m *. Physical.get inst fpvx id),
        my +. (m *. Physical.get inst fpvy id) ))
    (0., 0.) points.Region.ispace

module Reference = struct
  type variant = Mpi | Mpi_openmp

  let per_step machine cfg variant =
    let zones_per_node = cfg.pieces_per_node * zones_per_piece cfg in
    let points_per_node = zones_per_node in
    let core_seconds =
      (float_of_int zones_per_node
      *. (eos_seconds_per_zone +. forces_seconds_per_zone
         +. update_seconds_per_zone +. dt_seconds_per_zone))
      +. (float_of_int points_per_node *. move_seconds_per_point)
    in
    let base = core_seconds /. float_of_int machine.Realm.Machine.cores_per_node in
    let nodes = machine.Realm.Machine.nodes in
    (* Per-step blocking dt allreduce: heavy-tailed noise amplified with
       rank count. Coefficients calibrated to the paper's 82% (MPI) and
       64% (MPI+OpenMP) parallel efficiencies at 1024 nodes; MPI+OpenMP
       overlaps communication worse (§5.3). *)
    match variant with
    | Mpi ->
        let ranks = nodes * machine.Realm.Machine.cores_per_node in
        let steps_log = Float.max 0. (Float.log2 (float_of_int ranks) -. Float.log2 12.) in
        base *. (1. +. (0.022 *. steps_log))
    | Mpi_openmp ->
        let steps_log = Float.max 0. (Float.log2 (float_of_int (max 1 nodes))) in
        base *. (1. +. (0.056 *. steps_log))
end
