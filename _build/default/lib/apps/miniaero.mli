(** MiniAero: explicit compressible Navier-Stokes proxy on a 3D
    unstructured mesh (paper §5.2, after the Mantevo mini-app).

    A hex mesh treated as fully unstructured: cells carry conserved state,
    internal faces carry fluxes and their two adjacent cell ids. The mesh
    is divided into box pieces; cells are piece-major. Each timestep runs a
    four-stage Runge–Kutta loop: per stage, a face flux computation
    (reading a cell halo — own cells plus neighbours' boundary cells), a
    residual gather (reading a face halo — own faces plus neighbour-owned
    faces adjacent to own cells), and a stage update, preceded by one
    state-save launch. Thirteen index launches per timestep make this the
    richest copy-placement and synchronisation workload of the four
    applications.

    The central-difference flux is globally conservative: the sum of each
    conserved field over all cells is invariant across timesteps — the
    validation invariant. *)

type config = {
  nodes : int;
  pieces_per_node : int;
  piece_cells : int * int * int; (* cells per piece along x, y, z *)
  timesteps : int;
}

val default : nodes:int -> config
(** Paper scale: 512k cells per node (10 pieces of 40x40x32). Simulation
    only. *)

val sim_config : nodes:int -> config
(** Reduced 8x8x8 pieces; combine with {!scale}. *)

val test_config : nodes:int -> config

val program : config -> Ir.Program.t
val scale : config -> Legion.Scale.t

val total_mass : Interp.Run.context -> Ir.Program.t -> float
(** Σ density over all cells. *)

module Reference : sig
  type variant = Rank_per_core | Rank_per_node

  val per_step : Realm.Machine.t -> config -> variant -> float
  (** The MPI+Kokkos reference in its two configurations (Fig. 7): one
      rank per core, or one rank per node with Kokkos threads. *)
end
