(** Stencil: the Parallel Research Kernels 2D star-shaped stencil (paper
    §5.1).

    A radius-[r] star stencil over a square grid of double-precision
    values, weak-scaled at [points_per_node] grid points per node
    (40000² in the paper). Each timestep applies the stencil ([out +=
    Σ w·in]) and then increments the input everywhere ([in += 1]), exactly
    the PRK iteration structure.

    The grid is tiled into [tiles_per_node × nodes] tiles; an aliased
    image partition grows each tile by the stencil radius — the halo — so
    control replication turns the write-to-[in] / read-from-halo pattern
    into point-to-point halo exchanges.

    Being structured, instances can be built at full paper scale: partition
    geometry is rectangle algebra, so the simulator uses real sizes
    ([Legion.Scale.unit_scale]). Kernels only run at test scale. *)

type config = {
  nodes : int;
  points_per_node : int; (* grid points per node (a square number scale) *)
  tiles_per_node : int;
  radius : int;
  timesteps : int;
}

val default : nodes:int -> config
(** Paper configuration: 40000² points/node, radius 2, tiles to fill the
    node's compute cores. *)

val test_config : nodes:int -> config
(** Small instance for functional runs (kernels execute). *)

val program : config -> Ir.Program.t

val scale : config -> Legion.Scale.t

val interior_checksum : Interp.Run.context -> Ir.Program.t -> float
(** Sum of the [out] field (validation support). *)

val expected_output : config -> x:int -> y:int -> float
(** Closed-form value of [out] at an interior point after [timesteps]
    steps of the PRK iteration with unit-normalised star weights. *)

(** Reference implementations (paper comparators), as step-time models on
    the simulated machine. *)
module Reference : sig
  type variant = Mpi | Mpi_openmp

  val per_step : Realm.Machine.t -> config -> variant -> float
end
