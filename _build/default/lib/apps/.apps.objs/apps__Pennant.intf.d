lib/apps/pennant.mli: Interp Ir Legion Realm
