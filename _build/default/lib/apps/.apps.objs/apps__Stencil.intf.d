lib/apps/stencil.mli: Interp Ir Legion Realm
