lib/apps/miniaero.ml: Accessor Array Field Float Geometry Index_space Interp Ir Legion List Partition Physical Printf Privilege Program Realm Region Regions Task
