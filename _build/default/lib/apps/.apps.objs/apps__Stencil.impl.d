lib/apps/stencil.ml: Accessor Array Field Float Geometry Index_space Interp Ir Legion Partition Physical Point Privilege Program Realm Rect Region Regions Task
