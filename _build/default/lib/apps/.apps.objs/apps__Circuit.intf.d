lib/apps/circuit.mli: Interp Ir Legion Realm
