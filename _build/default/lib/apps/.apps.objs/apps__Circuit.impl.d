lib/apps/circuit.ml: Accessor Array Field Geometry Index_space Interp Ir Legion List Partition Physical Printf Privilege Program Random Realm Region Regions Sorted_iset Task
