lib/apps/miniaero.mli: Interp Ir Legion Realm
