(** Circuit: sparse unstructured circuit simulation (paper §5.4, after the
    Legion circuit of Bauer et al. 2012).

    A randomly generated sparse graph of circuit nodes connected by wires,
    weak-scaled at [wires_per_node] wires and [cnodes_per_node] circuit
    nodes per machine node (100k / 25k in the paper). The graph is divided
    into pieces; wires stay mostly within their piece, with a configurable
    fraction crossing to a neighbouring piece (ring locality, so each piece
    exchanges with O(1) neighbours).

    The node region uses the hierarchical private/shared idiom of §4.5: a
    top-level disjoint partition separates nodes never involved in
    communication ([all_private]) from boundary nodes ([all_shared]);
    per-piece private, shared-owned and aliased ghost partitions live
    below. Control replication proves the private partition free of
    communication and issues copies and dynamic intersections only for the
    shared/ghost side.

    Each timestep runs the classic three phases:
    + [calc_new_currents] — wires update currents from endpoint voltages
      (reads private + shared + ghost voltages);
    + [distribute_charge] — wires deposit charge at endpoints ({e reduce}
      privileges into private, shared and ghost — §4.3);
    + [update_voltage] — owned (private + shared) nodes integrate voltage
      and reset charge.

    With zero leakage the total node charge [Σ capacitance·voltage] is
    conserved exactly — the validation invariant. *)

type config = {
  nodes : int;
  pieces_per_node : int;
  cnodes_per_piece : int;
  wires_per_piece : int;
  pct_cross : float; (* fraction of wires with a remote endpoint *)
  timesteps : int;
  seed : int;
}

val default : nodes:int -> config
(** Paper scale: 8 pieces/node, 3125 circuit nodes and 12500 wires per
    piece. Use only for simulation — a full instance materialises the
    graph. *)

val sim_config : nodes:int -> config
(** Reduced instance with the paper's wires-to-nodes ratio; combine with
    {!scale} for full-scale simulation. *)

val test_config : nodes:int -> config

val program : config -> Ir.Program.t

val scale : config -> Legion.Scale.t
(** Element multiplier from [sim_config] geometry to [default] geometry. *)

val total_node_charge : Interp.Run.context -> Ir.Program.t -> float
(** Σ capacitance·voltage + pending charge over all circuit nodes. *)

module Reference : sig
  val per_step : Realm.Machine.t -> config -> float
  (** Hand-written SPMD model (the paper has no MPI reference for circuit;
      this is the idealised explicit-communication equivalent, used by the
      examples). *)
end
