(** PENNANT: Lagrangian hydrodynamics on a 2D unstructured mesh (paper
    §5.3, after the LANL proxy application).

    Zones (quads) carry thermodynamic state; points carry position,
    velocity and accumulated forces. Points on piece seams are shared
    between pieces, so the point region uses the §4.5 private/shared
    hierarchy with per-piece private, shared-owned and aliased ghost
    partitions. Each timestep:

    + [calc_dt] — a {e scalar min-reduction} over zones into [dt]
      (paper §4.4; the global reduction whose latency Fig. 8 is about);
    + [zone_eos] — zone pressure from density and energy;
    + [point_forces] — zones push their four corner points ({e reduce}
      into private, shared and ghost point partitions);
    + [move_points] — integrate velocities and positions with [dt], reset
      forces;
    + [zone_update] — new zone volumes (shoelace formula over corner
      positions read through the point partitions), density, energy.

    The corner force pattern is antisymmetric, so total momentum
    [Σ m·v] is conserved exactly — the validation invariant.

    PENNANT runs are configured with machine [task_noise] (heavy-tailed
    per-task variability): the per-step dt collective makes every variant
    pay the slowest task, which is what separates the three curves of
    Fig. 8. *)

type config = {
  nodes : int;
  pieces_per_node : int;
  piece_zones : int * int; (* zones per piece along x, y *)
  timesteps : int;
}

val default : nodes:int -> config
(** Paper scale: 7.4M zones/node (8 pieces of 960x960). Simulation only. *)

val sim_config : nodes:int -> config
val test_config : nodes:int -> config

val program : config -> Ir.Program.t
val scale : config -> Legion.Scale.t

val task_noise : float
(** The machine noise level used for the Fig. 8 experiment. *)

val total_momentum : Interp.Run.context -> Ir.Program.t -> float * float
(** (Σ m·vx, Σ m·vy) over all points. *)

module Reference : sig
  type variant = Mpi | Mpi_openmp

  val per_step : Realm.Machine.t -> config -> variant -> float
  (** The reference codes use all 12 cores (faster than Regent on one
      node), but their blocking dt allreduce amplifies noise with scale:
      82% (MPI) and 64% (MPI+OpenMP) parallel efficiency at 1024 nodes in
      the paper. *)
end
