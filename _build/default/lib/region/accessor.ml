exception Privilege_violation of string

type t = {
  inst : Physical.t;
  space : Index_space.t;
  privs : Privilege.t list;
}

let make inst ~space privs =
  if not (Index_space.subset space (Physical.ispace inst)) then
    invalid_arg "Accessor.make: space not contained in instance";
  { inst; space; privs }

let space t = t.space
let privileges t = t.privs

let violation fmt = Format.kasprintf (fun s -> raise (Privilege_violation s)) fmt

let mode_of t f =
  let rec find = function
    | [] -> None
    | (p : Privilege.t) :: rest ->
        if Field.equal p.Privilege.field f then Some p.Privilege.mode
        else find rest
  in
  find t.privs

let check_elt t id =
  if not (Index_space.mem t.space id) then
    violation "access to element %d outside the argument's index space" id

let get t f id =
  check_elt t id;
  match mode_of t f with
  | Some (Privilege.Read | Privilege.Read_write) -> Physical.get t.inst f id
  | Some (Privilege.Reduce _) ->
      violation "read of field %s under a reduce-only privilege" (Field.name f)
  | None -> violation "read of undeclared field %s" (Field.name f)

let set t f id v =
  check_elt t id;
  match mode_of t f with
  | Some Privilege.Read_write -> Physical.set t.inst f id v
  | Some Privilege.Read ->
      violation "write to field %s under a read-only privilege" (Field.name f)
  | Some (Privilege.Reduce _) ->
      violation "write to field %s under a reduce-only privilege" (Field.name f)
  | None -> violation "write to undeclared field %s" (Field.name f)

let reduce_with t ~op f id v =
  check_elt t id;
  Physical.update t.inst f id (fun old -> Privilege.apply_redop op old v)

let reduce t f id v =
  match mode_of t f with
  | Some (Privilege.Reduce op) -> reduce_with t ~op f id v
  | Some Privilege.Read_write ->
      violation
        "reduce to field %s under reads-writes: use reduce_op to name the \
         operator"
        (Field.name f)
  | Some Privilege.Read ->
      violation "reduce to field %s under a read-only privilege" (Field.name f)
  | None -> violation "reduce to undeclared field %s" (Field.name f)

let reduce_op t ~op f id v =
  match mode_of t f with
  | Some (Privilege.Reduce op') when op' = op -> reduce_with t ~op f id v
  | Some Privilege.Read_write -> reduce_with t ~op f id v
  | Some (Privilege.Reduce _) ->
      violation "reduce to field %s with a mismatched operator" (Field.name f)
  | Some Privilege.Read ->
      violation "reduce to field %s under a read-only privilege" (Field.name f)
  | None -> violation "reduce to undeclared field %s" (Field.name f)

let iter t f = Index_space.iter_ids f t.space
let cardinal t = Index_space.cardinal t.space
