(** Task privileges on region arguments (paper §2.1).

    A task declares, per region parameter and field, how it accesses the
    data: read, write (meaning read-write here, as in Regent's
    [reads writes]), or reduce with an associative-commutative operator.
    Privileges are {e strict}: a task may only do what it declared, and may
    only launch subtasks whose privileges its own subsume. Dependence
    analysis and control replication reason about tasks purely through these
    declarations. *)

type redop = Sum | Prod | Min | Max

type mode =
  | Read
  | Read_write
  | Reduce of redop

type t = { field : Field.t; mode : mode }

val reads : Field.t -> t
val writes : Field.t -> t
(** [writes] grants read-write access. *)

val reduces : redop -> Field.t -> t

val apply_redop : redop -> float -> float -> float
val identity_of : redop -> float

val conflicts : mode -> mode -> bool
(** Whether two accesses to overlapping data must be ordered. Two reads
    never conflict; two reductions with the same operator never conflict;
    everything else does. *)

val subsumes : mode -> mode -> bool
(** [subsumes caller callee]: may a task holding [caller] launch a subtask
    needing [callee]? *)

val mode_to_string : mode -> string
val redop_to_string : redop -> string
val pp : Format.formatter -> t -> unit
