open Geometry

type disjointness = Disjoint | Aliased

type t = {
  id : int;
  name : string;
  parent : Region.t;
  subs : Region.t array;
  disjointness : disjointness;
}

let next = ref 0
let lock = Mutex.create ()

let fresh_id () =
  Mutex.protect lock (fun () ->
      let id = !next in
      incr next;
      id)

let make ~name ~parent ~subs ~disjointness =
  { id = fresh_id (); name; parent; subs; disjointness }

let color_count t = Array.length t.subs

let sub t c =
  if c < 0 || c >= color_count t then
    invalid_arg
      (Printf.sprintf "Partition.sub: color %d of %s (%d colors)" c t.name
         (color_count t));
  t.subs.(c)

let color_of_sub t r =
  let found = ref None in
  Array.iteri
    (fun c s -> if Region.equal s r && !found = None then found := Some c)
    t.subs;
  !found

let equal a b = a.id = b.id

let pp ppf t =
  Format.fprintf ppf "%s#%d(%d colors, %s)" t.name t.id (color_count t)
    (match t.disjointness with Disjoint -> "disjoint" | Aliased -> "aliased")

let sub_name name c = Printf.sprintf "%s[%d]" name c

let of_subspaces ~name ~disjointness parent spaces =
  let subs =
    Array.mapi
      (fun c sp -> Region.subregion parent ~name:(sub_name name c) sp)
      spaces
  in
  make ~name ~parent ~subs ~disjointness

let block ~name (r : Region.t) ~pieces =
  if pieces <= 0 then invalid_arg "Partition.block: pieces <= 0";
  let spaces =
    if Index_space.is_structured r.Region.ispace then
      match Index_space.bounding_rect r.Region.ispace with
      | None ->
          Array.make pieces (Index_space.empty_like r.Region.ispace)
      | Some bbox ->
          let u =
            match Index_space.universe r.Region.ispace with
            | Index_space.Structured u -> u
            | Index_space.Unstructured _ -> assert false
          in
          Array.init pieces (fun c ->
              match
                Rect.block_1d ~lo:bbox.Rect.lo.(0) ~hi:bbox.Rect.hi.(0)
                  ~pieces ~index:c
              with
              | None -> Index_space.empty_like r.Region.ispace
              | Some (lo, hi) ->
                  let slab_lo = Array.copy bbox.Rect.lo
                  and slab_hi = Array.copy bbox.Rect.hi in
                  slab_lo.(0) <- lo;
                  slab_hi.(0) <- hi;
                  let slab = Rect.make slab_lo slab_hi in
                  Index_space.inter r.Region.ispace
                    (Index_space.of_rects ~universe:u [ slab ]))
    else
      let elts = Index_space.ids r.Region.ispace in
      let usize =
        match Index_space.universe r.Region.ispace with
        | Index_space.Unstructured n -> n
        | Index_space.Structured _ -> assert false
      in
      Array.init pieces (fun c ->
          Index_space.of_iset ~universe_size:usize
            (Sorted_iset.choose_block elts ~pieces ~index:c))
  in
  of_subspaces ~name ~disjointness:Disjoint r spaces

let block_grid ~name (r : Region.t) ~grid =
  let bbox =
    match Index_space.bounding_rect r.Region.ispace with
    | Some b -> b
    | None -> invalid_arg "Partition.block_grid: empty region"
  in
  let d = Rect.dim bbox in
  if Array.length grid <> d then
    invalid_arg "Partition.block_grid: grid rank mismatch";
  let u =
    match Index_space.universe r.Region.ispace with
    | Index_space.Structured u -> u
    | Index_space.Unstructured _ ->
        invalid_arg "Partition.block_grid: unstructured region"
  in
  let colors = Array.fold_left ( * ) 1 grid in
  let color_rect =
    Rect.make (Point.zero d) (Array.map (fun g -> g - 1) grid)
  in
  let spaces =
    Array.init colors (fun c ->
        let cp = Rect.delinearize color_rect c in
        let lo = Array.make d 0 and hi = Array.make d 0 in
        let empty = ref false in
        for i = 0 to d - 1 do
          match
            Rect.block_1d ~lo:bbox.Rect.lo.(i) ~hi:bbox.Rect.hi.(i)
              ~pieces:grid.(i) ~index:cp.(i)
          with
          | None -> empty := true
          | Some (l, h) ->
              lo.(i) <- l;
              hi.(i) <- h
        done;
        if !empty then Index_space.empty_like r.Region.ispace
        else
          Index_space.inter r.Region.ispace
            (Index_space.of_rects ~universe:u [ Rect.make lo hi ]))
  in
  of_subspaces ~name ~disjointness:Disjoint r spaces

let of_coloring ~name (r : Region.t) ~colors f =
  if colors <= 0 then invalid_arg "Partition.of_coloring: colors <= 0";
  let buckets = Array.make colors [] in
  Index_space.iter_ids
    (fun e ->
      let c = f e in
      if c >= 0 && c < colors then buckets.(c) <- e :: buckets.(c))
    r.Region.ispace;
  let usize =
    match Index_space.universe r.Region.ispace with
    | Index_space.Unstructured n -> n
    | Index_space.Structured u -> Rect.volume u
  in
  let space_of_bucket b =
    let ids = Sorted_iset.of_list b in
    if Index_space.is_structured r.Region.ispace then
      (* Rebuild as unit rectangles inside the structured universe. *)
      let u =
        match Index_space.universe r.Region.ispace with
        | Index_space.Structured u -> u
        | Index_space.Unstructured _ -> assert false
      in
      let rects =
        Sorted_iset.fold
          (fun acc id ->
            let p = Rect.delinearize u id in
            Rect.make p p :: acc)
          [] ids
      in
      Index_space.of_rects ~universe:u rects
    else Index_space.of_iset ~universe_size:usize ids
  in
  of_subspaces ~name ~disjointness:Disjoint r (Array.map space_of_bucket buckets)

let image ~name ~target ~src h =
  let usize =
    match Index_space.universe target.Region.ispace with
    | Index_space.Unstructured n -> n
    | Index_space.Structured _ ->
        invalid_arg "Partition.image: structured target (use image_rects)"
  in
  let spaces =
    Array.map
      (fun (s : Region.t) ->
        let acc = ref [] in
        Index_space.iter_ids
          (fun e -> List.iter (fun x -> acc := x :: !acc) (h e))
          s.Region.ispace;
        let img =
          Index_space.of_iset ~universe_size:usize (Sorted_iset.of_list !acc)
        in
        Index_space.inter img target.Region.ispace)
      src.subs
  in
  of_subspaces ~name ~disjointness:Aliased target spaces

let image_rects ~name ~target ~src f =
  let u =
    match Index_space.universe target.Region.ispace with
    | Index_space.Structured u -> u
    | Index_space.Unstructured _ ->
        invalid_arg "Partition.image_rects: unstructured target"
  in
  let clip r = Rect.intersect r u in
  let spaces =
    Array.map
      (fun (s : Region.t) ->
        if Index_space.is_empty s.Region.ispace then
          Index_space.empty_like target.Region.ispace
        else
          let rects =
            List.concat_map
              (fun rect -> List.filter_map clip (f rect))
              (Index_space.rects s.Region.ispace)
          in
          Index_space.inter
            (Index_space.of_rects ~universe:u rects)
            target.Region.ispace)
      src.subs
  in
  of_subspaces ~name ~disjointness:Aliased target spaces

let preimage ~name ~src ~target h =
  let spaces =
    Array.map
      (fun (tsub : Region.t) ->
        let acc = ref [] in
        Index_space.iter_ids
          (fun e ->
            if Index_space.mem tsub.Region.ispace (h e) then acc := e :: !acc)
          src.Region.ispace;
        match Index_space.universe src.Region.ispace with
        | Index_space.Unstructured n ->
            Index_space.of_iset ~universe_size:n (Sorted_iset.of_list !acc)
        | Index_space.Structured u ->
            let rects =
              List.rev_map
                (fun id ->
                  let p = Rect.delinearize u id in
                  Rect.make p p)
                !acc
            in
            Index_space.of_rects ~universe:u rects)
      target.subs
  in
  of_subspaces ~name ~disjointness:target.disjointness src spaces

let pairwise_disjoint spaces =
  let n = Array.length spaces in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !ok && not (Index_space.disjoint spaces.(i) spaces.(j)) then
        ok := false
    done
  done;
  !ok

let of_explicit ~name ?disjoint (r : Region.t) spaces =
  Array.iter
    (fun sp ->
      if not (Index_space.same_universe sp r.Region.ispace) then
        invalid_arg "Partition.of_explicit: universe mismatch")
    spaces;
  let disjointness =
    match disjoint with
    | Some true -> Disjoint
    | Some false -> Aliased
    | None -> if pairwise_disjoint spaces then Disjoint else Aliased
  in
  of_subspaces ~name ~disjointness r spaces

let intersect_region ~name t space =
  let spaces =
    Array.map
      (fun (s : Region.t) -> Index_space.inter s.Region.ispace space)
      t.subs
  in
  of_subspaces ~name ~disjointness:t.disjointness t.parent spaces

let verify_disjoint t =
  pairwise_disjoint
    (Array.map (fun (s : Region.t) -> s.Region.ispace) t.subs)
