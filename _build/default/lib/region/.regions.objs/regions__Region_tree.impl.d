lib/region/region_tree.ml: Array Hashtbl Option Partition Printf Region
