lib/region/field.mli: Format
