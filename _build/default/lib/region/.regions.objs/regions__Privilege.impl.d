lib/region/privilege.ml: Field Float Format
