lib/region/accessor.ml: Field Format Index_space Physical Privilege
