lib/region/index_space.ml: Array Format Geometry Int Interval List Printf Rect Sorted_iset
