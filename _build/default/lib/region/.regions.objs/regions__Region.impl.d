lib/region/region.ml: Field Format Index_space Int List Mutex
