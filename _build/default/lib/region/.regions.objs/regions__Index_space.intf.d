lib/region/index_space.mli: Format Geometry Interval Rect Sorted_iset
