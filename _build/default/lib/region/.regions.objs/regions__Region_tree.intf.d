lib/region/region_tree.mli: Partition Region
