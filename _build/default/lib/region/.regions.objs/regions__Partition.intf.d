lib/region/partition.mli: Format Geometry Index_space Region
