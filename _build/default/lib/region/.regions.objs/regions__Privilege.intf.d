lib/region/privilege.mli: Field Format
