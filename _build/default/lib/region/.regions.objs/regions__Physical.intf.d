lib/region/physical.mli: Field Index_space Privilege Region
