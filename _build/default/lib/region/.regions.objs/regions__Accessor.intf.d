lib/region/accessor.mli: Field Index_space Physical Privilege
