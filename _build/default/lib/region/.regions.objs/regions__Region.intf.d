lib/region/region.mli: Field Format Index_space
