lib/region/physical.ml: Array Field Geometry Hashtbl Index_space List Printf Privilege Region Sorted_iset
