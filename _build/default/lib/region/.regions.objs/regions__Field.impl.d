lib/region/field.ml: Format Hashtbl Int Mutex
