lib/region/partition.ml: Array Format Geometry Index_space List Mutex Point Printf Rect Region Sorted_iset
