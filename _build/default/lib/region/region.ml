type t = {
  id : int;
  name : string;
  ispace : Index_space.t;
  fields : Field.t list;
}

let next = ref 0
let lock = Mutex.create ()

let fresh_id () =
  Mutex.protect lock (fun () ->
      let id = !next in
      incr next;
      id)

let create ~name ispace fields =
  { id = fresh_id (); name; ispace; fields }

let subregion t ~name ispace =
  if not (Index_space.same_universe t.ispace ispace) then
    invalid_arg "Region.subregion: universe mismatch";
  { id = fresh_id (); name; ispace; fields = t.fields }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let has_field t f = List.exists (Field.equal f) t.fields
let cardinal t = Index_space.cardinal t.ispace
let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.id
