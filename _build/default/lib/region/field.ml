type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 64
let next = ref 0
let lock = Mutex.create ()

let make name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some f -> f
      | None ->
          let f = { id = !next; name } in
          incr next;
          Hashtbl.add table name f;
          f)

let name f = f.name
let id f = f.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf f = Format.pp_print_string ppf f.name
