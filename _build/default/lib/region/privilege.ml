type redop = Sum | Prod | Min | Max

type mode = Read | Read_write | Reduce of redop

type t = { field : Field.t; mode : mode }

let reads f = { field = f; mode = Read }
let writes f = { field = f; mode = Read_write }
let reduces op f = { field = f; mode = Reduce op }

let apply_redop op a b =
  match op with
  | Sum -> a +. b
  | Prod -> a *. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let identity_of = function
  | Sum -> 0.
  | Prod -> 1.
  | Min -> Float.infinity
  | Max -> Float.neg_infinity

let conflicts a b =
  match (a, b) with
  | Read, Read -> false
  | Reduce x, Reduce y -> x <> y
  | _ -> true

let subsumes caller callee =
  match (caller, callee) with
  | Read_write, _ -> true
  | Read, Read -> true
  | Reduce x, Reduce y -> x = y
  | _ -> false

let redop_to_string = function
  | Sum -> "+"
  | Prod -> "*"
  | Min -> "min"
  | Max -> "max"

let mode_to_string = function
  | Read -> "reads"
  | Read_write -> "reads writes"
  | Reduce op -> "reduces " ^ redop_to_string op

let pp ppf t =
  Format.fprintf ppf "%s(%a)" (mode_to_string t.mode) Field.pp t.field
