open Geometry

type t = {
  ispace : Index_space.t;
  flds : Field.t list;
  ids : Sorted_iset.t; (* sorted global ids; data arrays are parallel *)
  contiguous : bool; (* ids = [min..max]: enables O(1) addressing *)
  base : int; (* min id when contiguous *)
  data : (int, float array) Hashtbl.t; (* field id -> values *)
}

let ispace t = t.ispace
let fields t = t.flds

let create_over ?(init = 0.) ispace flds =
  let ids = Index_space.ids ispace in
  let n = Sorted_iset.cardinal ids in
  let contiguous, base =
    if n = 0 then (true, 0)
    else
      let lo = Sorted_iset.min_elt ids and hi = Sorted_iset.max_elt ids in
      (hi - lo + 1 = n, lo)
  in
  let data = Hashtbl.create (List.length flds) in
  List.iter
    (fun f -> Hashtbl.replace data (Field.id f) (Array.make n init))
    flds;
  { ispace; flds; ids; contiguous; base; data }

let create ?init (r : Region.t) =
  create_over ?init r.Region.ispace r.Region.fields

let index_of t id =
  if t.contiguous then begin
    let k = id - t.base in
    if k < 0 || k >= Sorted_iset.cardinal t.ids then
      invalid_arg (Printf.sprintf "Physical: element %d not in instance" id);
    k
  end
  else begin
    let a = Sorted_iset.to_array t.ids in
    let lo = ref 0 and hi = ref (Array.length a - 1) and res = ref (-1) in
    while !res < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) = id then res := mid
      else if a.(mid) < id then lo := mid + 1
      else hi := mid - 1
    done;
    if !res < 0 then
      invalid_arg (Printf.sprintf "Physical: element %d not in instance" id);
    !res
  end

let column t f =
  match Hashtbl.find_opt t.data (Field.id f) with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Physical: no field %s in instance" (Field.name f))

let get t f id = (column t f).(index_of t id)
let set t f id v = (column t f).(index_of t id) <- v

let update t f id g =
  let a = column t f and k = index_of t id in
  a.(k) <- g a.(k)

let fill t f v = Array.fill (column t f) 0 (Sorted_iset.cardinal t.ids) v
let fill_all t v = List.iter (fun f -> fill t f v) t.flds

let shared_fields ?fields src dst =
  match fields with
  | Some fl -> fl
  | None -> List.filter (fun f -> List.exists (Field.equal f) dst.flds) src.flds

let transfer ~f ?fields ~src ~dst () =
  let fl = shared_fields ?fields src dst in
  let common = Index_space.inter src.ispace dst.ispace in
  List.iter
    (fun fld ->
      let sc = column src fld and dc = column dst fld in
      Index_space.iter_ids
        (fun id ->
          let si = index_of src id and di = index_of dst id in
          dc.(di) <- f dc.(di) sc.(si))
        common)
    fl

let copy_into ?fields ~src ~dst () =
  transfer ~f:(fun _old v -> v) ?fields ~src ~dst ()

let reduce_into ~op ?fields ~src ~dst () =
  transfer ~f:(Privilege.apply_redop op) ?fields ~src ~dst ()

let copy_volume ~src ~dst =
  Index_space.cardinal (Index_space.inter src.ispace dst.ispace)

let equal_on a b space fl =
  let ok = ref true in
  List.iter
    (fun f ->
      Index_space.iter_ids
        (fun id -> if !ok && get a f id <> get b f id then ok := false)
        space)
    fl;
  !ok

let to_alist t f =
  List.rev
    (Sorted_iset.fold (fun acc id -> (id, get t f id) :: acc) [] t.ids)
