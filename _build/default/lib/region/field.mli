(** Fields of a region's field space.

    Every field holds one [float] per element (the element data type does not
    matter for control replication — paper §2.1 — so a single scalar type
    keeps the physical layer simple). Fields are interned: equal names map to
    equal ids, so field sets can be compared cheaply. *)

type t

val make : string -> t
val name : t -> string
val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
