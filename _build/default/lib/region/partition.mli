(** Partitions: indexed families of subregions of a parent region.

    A partition names the subsets of a region on which parallel computation
    is carried out (paper §2.1). Multiple partitions of the same region may
    coexist — the feature control replication leverages. Each partitioning
    operator declares the {e disjointness} of its result: [Disjoint] means
    the subregions are statically guaranteed pairwise non-overlapping
    (e.g. {!block}); [Aliased] means they may overlap (e.g. {!image} through
    an unconstrained function). Partitions need not cover the parent. *)

type disjointness = Disjoint | Aliased

type t = private {
  id : int;
  name : string;
  parent : Region.t;
  subs : Region.t array;
  disjointness : disjointness;
}

val color_count : t -> int
val sub : t -> int -> Region.t
(** [sub t c] is the subregion of color [c]. *)

val color_of_sub : t -> Region.t -> int option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Partitioning operators} *)

val block : name:string -> Region.t -> pieces:int -> t
(** Nearly equal contiguous pieces: along axis 0 for structured regions, by
    identifier rank for unstructured ones. Disjoint. *)

val block_grid : name:string -> Region.t -> grid:int array -> t
(** Structured regions only: a [grid.(0) x .. x grid.(d-1)] tiling of the
    bounding rectangle, colors in row-major order. Disjoint. *)

val of_coloring : name:string -> Region.t -> colors:int -> (int -> int) -> t
(** [of_coloring r ~colors f] assigns element (global id) [e] to color
    [f e]; elements with colors outside [0..colors-1] belong to no
    subregion. Disjoint by construction. *)

val image : name:string -> target:Region.t -> src:t -> (int -> int list) -> t
(** [image ~target ~src h]: color [c] gets [{ h(e) | e in src[c] }],
    clipped to [target] (unstructured targets). Aliased — [h] is
    unconstrained (paper §2.1, line 22 of Fig. 2). *)

val image_rects : name:string -> target:Region.t -> src:t ->
  (Geometry.Rect.t -> Geometry.Rect.t list) -> t
(** Structured analogue of {!image} for affine-style index functions: maps
    each rectangle of [src]'s subregions through the given rectangle
    function, clipping to [target]'s universe. Aliased. *)

val preimage : name:string -> src:Region.t -> target:t -> (int -> int) -> t
(** [preimage ~src ~target h]: color [c] gets [{ e in src | h(e) in
    target[c] }]. Disjoint when [target] is disjoint ([h] is a function, so
    preimages of disjoint sets are disjoint); aliased otherwise. *)

val of_explicit :
  name:string -> ?disjoint:bool -> Region.t -> Index_space.t array -> t
(** Escape hatch used by applications that compute their partitions with
    domain knowledge (as Regent's dependent-partitioning sub-language
    would). [?disjoint] defaults to dynamically checking pairwise
    disjointness; pass [~disjoint:false] to force [Aliased]. *)

val intersect_region : name:string -> t -> Index_space.t -> t
(** Restrict every subregion to the given index space, preserving
    disjointness — used for hierarchical private/ghost trees (paper §4.5). *)

val verify_disjoint : t -> bool
(** Dynamic check that subregions are pairwise disjoint (test support). *)
