(** Runtime region trees (paper §2.3).

    A region tree records the parent/child relationships between regions and
    partitions: a region's children are the partitions declared on it; a
    partition's children are its subregions. The tree supports the
    disjointness test dependence analysis and control replication rely on:
    two regions are {e provably disjoint} when the least common ancestor on
    their paths is a disjoint partition and they descend through different
    colors.

    The tree is a registry: roots and partitions are registered as the
    program declares them. A region may appear in at most one position
    (regions have unique ids; partitioning always creates fresh
    subregions). *)

type t

val create : unit -> t

val register_root : t -> Region.t -> unit
val register_partition : t -> Partition.t -> unit
(** Registers the partition under its parent region and all its subregions
    under it. The parent must already be present (as a root or as a
    registered subregion). *)

val mem_region : t -> Region.t -> bool
val partitions_of : t -> Region.t -> Partition.t list
val parent_of : t -> Region.t -> (Partition.t * int) option
(** The partition (and color) this region is a subregion of, if any. *)

val root_of : t -> Region.t -> Region.t

val ancestor_regions : t -> Region.t -> Region.t list
(** The region's chain of enclosing regions, nearest first, excluding
    itself. *)

val provably_disjoint : t -> Region.t -> Region.t -> bool
(** The static LCA test: [true] only when the tree structure guarantees the
    two regions can never share an element. Sound but incomplete — a [false]
    answer means {e may} alias. *)

val may_alias : t -> Region.t -> Region.t -> bool
(** [not (provably_disjoint t a b)], with the convention that regions from
    different trees never alias. *)
