type node_parent =
  | Root
  | In_partition of Partition.t * int (* color *)

type t = {
  parents : (int, node_parent) Hashtbl.t; (* region id -> position *)
  parts : (int, Partition.t list) Hashtbl.t; (* region id -> partitions *)
}

let create () = { parents = Hashtbl.create 64; parts = Hashtbl.create 64 }

let mem_region t (r : Region.t) = Hashtbl.mem t.parents r.Region.id

let register_root t (r : Region.t) =
  if mem_region t r then invalid_arg "Region_tree: region already registered";
  Hashtbl.add t.parents r.Region.id Root

let register_partition t (p : Partition.t) =
  let parent = p.Partition.parent in
  if not (mem_region t parent) then
    invalid_arg
      (Printf.sprintf "Region_tree: parent %s of partition %s not registered"
         parent.Region.name p.Partition.name);
  let existing =
    Option.value ~default:[] (Hashtbl.find_opt t.parts parent.Region.id)
  in
  Hashtbl.replace t.parts parent.Region.id (existing @ [ p ]);
  Array.iteri
    (fun c (s : Region.t) ->
      if mem_region t s then
        invalid_arg "Region_tree: subregion already registered";
      Hashtbl.add t.parents s.Region.id (In_partition (p, c)))
    p.Partition.subs

let partitions_of t (r : Region.t) =
  Option.value ~default:[] (Hashtbl.find_opt t.parts r.Region.id)

let parent_of t (r : Region.t) =
  match Hashtbl.find_opt t.parents r.Region.id with
  | Some (In_partition (p, c)) -> Some (p, c)
  | Some Root | None -> None

(* The path from a region up to its root, as a list of (partition, color)
   steps, nearest first. *)
let path_to_root t (r : Region.t) =
  let rec go acc r =
    match parent_of t r with
    | None -> (r, acc)
    | Some (p, c) -> go ((p, c) :: acc) p.Partition.parent
  in
  (* Prepending while climbing leaves the list root-first. *)
  go [] r

let root_of t r = fst (path_to_root t r)

let ancestor_regions t (r : Region.t) =
  let rec go acc r =
    match parent_of t r with
    | None -> acc
    | Some (p, _) ->
        let parent = p.Partition.parent in
        go (acc @ [ parent ]) parent
  in
  go [] r

let provably_disjoint t (a : Region.t) (b : Region.t) =
  if Region.equal a b then false
  else if not (mem_region t a && mem_region t b) then false
  else
    let root_a, path_a = path_to_root t a and root_b, path_b = path_to_root t b in
    if not (Region.equal root_a root_b) then
      (* Different trees: never alias, but that is a vacuous kind of
         disjointness; report it as disjoint. *)
      true
    else
      (* Walk the two root-first paths together to the divergence point. *)
      let rec walk pa pb =
        match (pa, pb) with
        | (p1, c1) :: ta, (p2, c2) :: tb ->
            if Partition.equal p1 p2 then
              if c1 = c2 then walk ta tb
              else p1.Partition.disjointness = Partition.Disjoint
            else
              (* Same region partitioned two different ways: the partitions
                 may overlap arbitrarily. *)
              false
        | [], _ | _, [] ->
            (* One region is an ancestor of the other. *)
            false
      in
      walk path_a path_b

let may_alias t a b = not (provably_disjoint t a b)
