(** Privilege-checked views of physical instances.

    Task kernels never touch {!Physical} instances directly: they receive
    accessors that enforce the task's declared privileges — Regent's
    strictness property (paper §2.1), which is what lets control replication
    ignore task bodies entirely. An access outside the declared privileges
    raises {!Privilege_violation} (and tests assert this fires). Accessors
    also restrict the view to the task argument's index space, so a kernel
    cannot reach elements of the parent region outside its subregion. *)

exception Privilege_violation of string

type t

val make : Physical.t -> space:Index_space.t -> Privilege.t list -> t
(** A view of [inst] restricted to [space] under the given privileges.
    [space] must be a subset of the instance's index space. *)

val space : t -> Index_space.t
val privileges : t -> Privilege.t list

val get : t -> Field.t -> int -> float
(** Requires [Read] or [Read_write] on the field. *)

val set : t -> Field.t -> int -> float -> unit
(** Requires [Read_write] on the field. *)

val reduce : t -> Field.t -> int -> float -> unit
(** Folds the value with the declared operator; requires [Reduce _] or
    [Read_write] on the field (under [Read_write] the caller passes the
    operator explicitly via {!reduce_op}). *)

val reduce_op : t -> op:Privilege.redop -> Field.t -> int -> float -> unit

val iter : t -> (int -> unit) -> unit
(** Iterate the accessor's index space (global identifiers). *)

val cardinal : t -> int
