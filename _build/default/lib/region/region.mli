(** Logical regions: named collections of elements with fields.

    A region pairs an index space with a field space. Declaring a region
    allocates no memory (paper §2.1); storage lives in {!Physical} instances
    created by the runtime. Regions carry a unique id so that region trees
    and dependence analysis can key on identity. *)

type t = private {
  id : int;
  name : string;
  ispace : Index_space.t;
  fields : Field.t list;
}

val create : name:string -> Index_space.t -> Field.t list -> t

val subregion : t -> name:string -> Index_space.t -> t
(** A new region over a subset of [t]'s index space with the same fields.
    Raises [Invalid_argument] if the index space is not a subset of the
    parent's universe. Registration in a {!Region_tree} is the caller's
    business (partitioning operators do it). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val has_field : t -> Field.t -> bool
val cardinal : t -> int
val pp : Format.formatter -> t -> unit
