type t = { node_of_color : colors:int -> int -> int }

let block ~nodes =
  {
    node_of_color =
      (fun ~colors c -> Spmd.Prog.owner_of_color ~shards:nodes ~colors c);
  }

let round_robin ~nodes = { node_of_color = (fun ~colors:_ c -> c mod nodes) }
