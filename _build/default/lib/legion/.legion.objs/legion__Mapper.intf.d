lib/legion/mapper.mli:
