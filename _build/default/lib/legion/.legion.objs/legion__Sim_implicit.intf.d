lib/legion/sim_implicit.mli: Ir Mapper Realm Scale
