lib/legion/mapper.ml: Spmd
