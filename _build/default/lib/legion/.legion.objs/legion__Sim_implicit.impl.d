lib/legion/sim_implicit.ml: Array Dep Float Fun Index_space Ir List Mapper Partition Program Realm Region Regions Scale Spmd Task Types
