lib/legion/sim_spmd.mli: Realm Scale Spmd
