lib/legion/sim_spmd.ml: Array Float Hashtbl Index_space Ir List Option Partition Privilege Program Realm Region Regions Scale Spmd Summary Task Types
