lib/legion/scale.ml:
