lib/legion/dep.mli: Ir Regions Spmd
