lib/legion/dep.ml: Field Ir List Partition Privilege Program Region_tree Regions Spmd Summary Types
