(** Task-to-node mapping (paper §4.2).

    The default strategy is the typical one the paper describes: one shard
    per node, block distribution of colors over nodes, and tasks of a shard
    spread over the node's compute cores. Mappers are first-class so
    alternative policies (round-robin, random) can be plugged into the
    simulators for mapping experiments. *)

type t = { node_of_color : colors:int -> int -> int }

val block : nodes:int -> t
(** Block distribution — matches {!Spmd.Prog.owner_of_color} with one shard
    per node. *)

val round_robin : nodes:int -> t
(** Color [c] on node [c mod nodes] — deliberately communication-hostile,
    for mapping ablations. *)
