open Format

let rec pp_sexpr ppf = function
  | Types.Sconst v -> fprintf ppf "%g" v
  | Types.Svar n -> pp_print_string ppf n
  | Types.Sneg e -> fprintf ppf "-%a" pp_atom e
  | Types.Sadd (a, b) -> fprintf ppf "%a + %a" pp_atom a pp_atom b
  | Types.Ssub (a, b) -> fprintf ppf "%a - %a" pp_atom a pp_atom b
  | Types.Smul (a, b) -> fprintf ppf "%a * %a" pp_atom a pp_atom b
  | Types.Sdiv (a, b) -> fprintf ppf "%a / %a" pp_atom a pp_atom b
  | Types.Smin (a, b) -> fprintf ppf "min(%a, %a)" pp_sexpr a pp_sexpr b
  | Types.Smax (a, b) -> fprintf ppf "max(%a, %a)" pp_sexpr a pp_sexpr b

and pp_atom ppf e =
  match e with
  | Types.Sconst _ | Types.Svar _ | Types.Smin _ | Types.Smax _ ->
      pp_sexpr ppf e
  | _ -> fprintf ppf "(%a)" pp_sexpr e

let pp_rarg ppf = function
  | Types.Part (p, Types.Id) -> fprintf ppf "%s[i]" p
  | Types.Part (p, Types.Fn (f, _)) -> fprintf ppf "%s[%s(i)]" p f
  | Types.Whole r -> pp_print_string ppf r

let pp_cmp ppf c =
  pp_print_string ppf
    (match c with
    | Types.Lt -> "<"
    | Types.Le -> "<="
    | Types.Gt -> ">"
    | Types.Ge -> ">="
    | Types.Eq -> "=="
    | Types.Ne -> "!=")

let pp_launch ppf (l : Types.launch) =
  fprintf ppf "%s(" l.Types.task;
  pp_print_list
    ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
    pp_rarg ppf l.Types.rargs;
  Array.iter (fun s -> fprintf ppf ", %a" pp_sexpr s) l.Types.sargs;
  pp_print_string ppf ")"

let rec pp_stmt ppf = function
  | Types.Index_launch { space; launch } ->
      fprintf ppf "@[<h>for i in %s do %a end@]" space pp_launch launch
  | Types.Index_launch_reduce { space; launch; var; op } ->
      fprintf ppf "@[<h>%s %s= reduce for i in %s of %a@]" var
        (Regions.Privilege.redop_to_string op)
        space pp_launch launch
  | Types.Single_launch { launch } -> pp_launch ppf launch
  | Types.Assign (v, e) -> fprintf ppf "@[<h>%s = %a@]" v pp_sexpr e
  | Types.For_time { var; count; body } ->
      fprintf ppf "@[<v 2>for %s = 0, %d do@,%a@]@,end" var count pp_stmts
        body
  | Types.If { test; then_; else_ } -> (
      fprintf ppf "@[<v 2>if %a %a %a then@,%a@]" pp_sexpr test.Types.lhs
        pp_cmp test.Types.cmp pp_sexpr test.Types.rhs pp_stmts then_;
      match else_ with
      | [] -> fprintf ppf "@,end"
      | _ -> fprintf ppf "@,@[<v 2>else@,%a@]@,end" pp_stmts else_)

and pp_stmts ppf stmts =
  pp_print_list ~pp_sep:pp_print_cut pp_stmt ppf stmts

let pp_decl ppf (name, d) =
  match d with
  | Types.Dregion r ->
      fprintf ppf "var %s = region(%d elements, {%a})" name
        (Regions.Region.cardinal r)
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
           Regions.Field.pp)
        r.Regions.Region.fields
  | Types.Dpartition p ->
      fprintf ppf "var %s = partition(%s, %d colors, %s)" name
        p.Regions.Partition.parent.Regions.Region.name
        (Regions.Partition.color_count p)
        (match p.Regions.Partition.disjointness with
        | Regions.Partition.Disjoint -> "disjoint"
        | Regions.Partition.Aliased -> "aliased")
  | Types.Dspace n -> fprintf ppf "var %s = ispace(0..%d)" name (n - 1)
  | Types.Dscalar v -> fprintf ppf "var %s = %g" name v

let pp_program ppf (p : Program.t) =
  fprintf ppf "@[<v>-- program %s@," p.Program.name;
  List.iter (fun d -> fprintf ppf "%a@," pp_decl d) p.Program.decls;
  pp_stmts ppf p.Program.body;
  fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
