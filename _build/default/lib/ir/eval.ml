type env = (string, float) Hashtbl.t

let env_of_list l =
  let h = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) l;
  h

let get env n =
  match Hashtbl.find_opt env n with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Eval: unbound scalar %s" n)

let set env n v = Hashtbl.replace env n v
let mem env n = Hashtbl.mem env n
let bindings env = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env []
let copy = Hashtbl.copy

let rec sexpr env = function
  | Types.Sconst v -> v
  | Types.Svar n -> get env n
  | Types.Sneg e -> -.sexpr env e
  | Types.Sadd (a, b) -> sexpr env a +. sexpr env b
  | Types.Ssub (a, b) -> sexpr env a -. sexpr env b
  | Types.Smul (a, b) -> sexpr env a *. sexpr env b
  | Types.Sdiv (a, b) -> sexpr env a /. sexpr env b
  | Types.Smin (a, b) -> Float.min (sexpr env a) (sexpr env b)
  | Types.Smax (a, b) -> Float.max (sexpr env a) (sexpr env b)

let stest env { Types.cmp; lhs; rhs } =
  let a = sexpr env lhs and b = sexpr env rhs in
  match cmp with
  | Types.Lt -> a < b
  | Types.Le -> a <= b
  | Types.Gt -> a > b
  | Types.Ge -> a >= b
  | Types.Eq -> a = b
  | Types.Ne -> a <> b
