(** Whole programs: declarations, tasks, a body, and the region tree.

    Programs are assembled with {!Builder}, which maintains the
    {!Regions.Region_tree.t} used by every later analysis. *)

type t = {
  name : string;
  tree : Regions.Region_tree.t;
  decls : (string * Types.decl) list; (* in declaration order *)
  tasks : (string * Task.t) list;
  body : Types.stmt list;
}

val find_decl : t -> string -> Types.decl option
val find_region : t -> string -> Regions.Region.t
val find_partition : t -> string -> Regions.Partition.t
val find_space : t -> string -> int
val find_task : t -> string -> Task.t
(** The [find_*] functions raise [Invalid_argument] with the offending name
    when it is absent or bound to a different kind of declaration. *)

val scalar_names : t -> string list
val initial_scalars : t -> (string * float) list

val region_names : t -> string list
val partition_names : t -> string list

module Builder : sig
  type program = t
  type b

  val create : name:string -> b

  val region :
    b -> name:string -> Regions.Index_space.t -> Regions.Field.t list ->
    Regions.Region.t
  (** Declare a root region: creates it, registers it in the tree, binds the
      name. *)

  val bind_region : b -> name:string -> Regions.Region.t -> Regions.Region.t
  (** Bind a name to an already-registered region (e.g. a subregion of a
      partition, for hierarchical trees). *)

  val partition :
    b -> name:string -> (name:string -> Regions.Partition.t) ->
    Regions.Partition.t
  (** [partition b ~name f] runs the partitioning operator [f] (one of the
      {!Regions.Partition} constructors, partially applied), registers the
      result in the tree and binds the name. *)

  val space : b -> name:string -> int -> unit
  val scalar : b -> name:string -> float -> unit
  val task : b -> Task.t -> unit
  val body : b -> Types.stmt list -> unit

  val finish : b -> program
end

(** Convenience constructors for statements and scalar expressions. *)
module Syntax : sig
  val ( !. ) : float -> Types.sexpr
  val sv : string -> Types.sexpr
  val ( +. ) : Types.sexpr -> Types.sexpr -> Types.sexpr
  val ( -. ) : Types.sexpr -> Types.sexpr -> Types.sexpr
  val ( *. ) : Types.sexpr -> Types.sexpr -> Types.sexpr
  val ( /. ) : Types.sexpr -> Types.sexpr -> Types.sexpr

  val call : string -> ?scalars:Types.sexpr list -> Types.rarg list -> Types.launch

  (** [part p] is the argument [p[i]]; [part_fn p fname f] is [p[f(i)]];
      [whole r] passes the entire region [r]. *)

  val part : string -> Types.rarg
  val part_fn : string -> string -> (int -> int) -> Types.rarg
  val whole : string -> Types.rarg

  val forall : string -> Types.launch -> Types.stmt
  val forall_reduce :
    string -> Types.launch -> into:string -> Regions.Privilege.redop ->
    Types.stmt
  val run : Types.launch -> Types.stmt
  val assign : string -> Types.sexpr -> Types.stmt
  val for_time : string -> int -> Types.stmt list -> Types.stmt
end
