(* Core abstract syntax of the implicitly parallel task language.

   Programs are the Regent subset control replication targets (paper §2.2):
   arbitrary scalar control flow around forall-style loops of task calls
   whose region arguments are p[f(i)] for a partition p, loop index i and
   pure f. Tasks declare per-field privileges on each region parameter and
   their bodies are opaque kernels — the analyses never look inside.

   Scalars are double-precision floats (time-step sizes, residuals, ...).
   Loop trip counts are integers known when the loop starts. *)

(* Scalar expressions over the program's scalar variables. *)
type sexpr =
  | Sconst of float
  | Svar of string
  | Sneg of sexpr
  | Sadd of sexpr * sexpr
  | Ssub of sexpr * sexpr
  | Smul of sexpr * sexpr
  | Sdiv of sexpr * sexpr
  | Smin of sexpr * sexpr
  | Smax of sexpr * sexpr

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type stest = { cmp : cmp; lhs : sexpr; rhs : sexpr }

(* Projection applied to the launch index to pick a subregion: [Id] is p[i];
   [Fn] is p[f(i)] with a named pure function (the name keys derived
   partitions during normalization). *)
type proj = Id | Fn of string * (int -> int)

(* A region argument of a task call. [Part] appears in index launches;
   [Whole] passes an entire region (allowed only in single launches). *)
type rarg = Part of string * proj | Whole of string

type launch = { task : string; rargs : rarg list; sargs : sexpr array }

type stmt =
  | Index_launch of { space : string; launch : launch }
      (* for i in space do task(p[f(i)], ...) end -- iterations
         independent *)
  | Index_launch_reduce of {
      space : string;
      launch : launch;
      var : string;
      op : Regions.Privilege.redop;
    }
      (* var = reduce(op) over i of task(...) -- scalar reduction, e.g.
         dt computation (paper §4.4) *)
  | Single_launch of { launch : launch }
  | Assign of string * sexpr
  | For_time of { var : string; count : int; body : stmt list }
      (* the outer t = 0..T loop; [var] is readable as a scalar inside *)
  | If of { test : stest; then_ : stmt list; else_ : stmt list }

(* Declarations binding program-level names. Regions and partitions are
   concrete values built by the program's setup code; [Dspace n] declares a
   launch space with colors 0..n-1. *)
type decl =
  | Dregion of Regions.Region.t
  | Dpartition of Regions.Partition.t
  | Dspace of int
  | Dscalar of float
