(** Task declarations.

    A task is the unit of parallel work: a name, region parameters with
    declared per-field privileges, a number of scalar parameters, an
    executable kernel, and a cost model used by the machine simulator.

    The kernel receives one privilege-checked {!Regions.Accessor.t} per
    region parameter (in declaration order) plus the scalar arguments, and
    returns a scalar (meaningful only for launches that reduce task
    results, e.g. a local dt bound; return [0.] otherwise). *)

type param = { pname : string; privs : Regions.Privilege.t list }

type t = {
  tname : string;
  params : param list;
  nscalars : int;
  kernel : Regions.Accessor.t array -> float array -> float;
  cost : int array -> float; (* subregion sizes (elements) -> seconds *)
}

val make :
  name:string ->
  params:param list ->
  ?nscalars:int ->
  ?cost:(int array -> float) ->
  (Regions.Accessor.t array -> float array -> float) ->
  t
(** [cost] defaults to a rate of 10^8 elements/second over the first region
    argument — only the simulator consults it. *)

val param_privs : t -> int -> Regions.Privilege.t list
val arity : t -> int

val writes_param : t -> int -> bool
(** Whether parameter [i] carries any [Read_write] privilege. *)

val reduces_param : t -> int -> Regions.Privilege.redop option
(** The reduction operator of parameter [i], when it carries one. Mixing
    reduce and non-reduce privileges on one parameter is rejected by
    {!make}. *)

val written_fields : t -> int -> Regions.Field.t list
val read_fields : t -> int -> Regions.Field.t list
val reduced_fields : t -> int -> Regions.Field.t list
