open Regions

type param = { pname : string; privs : Privilege.t list }

type t = {
  tname : string;
  params : param list;
  nscalars : int;
  kernel : Accessor.t array -> float array -> float;
  cost : int array -> float;
}

let default_cost sizes =
  match Array.length sizes with
  | 0 -> 1e-6
  | _ -> float_of_int sizes.(0) /. 1e8

let nth_param t i =
  match List.nth_opt t.params i with
  | Some p -> p
  | None ->
      invalid_arg (Printf.sprintf "Task %s: no parameter %d" t.tname i)

let param_privs t i = (nth_param t i).privs
let arity t = List.length t.params

let writes_param t i =
  List.exists
    (fun (p : Privilege.t) -> p.Privilege.mode = Privilege.Read_write)
    (param_privs t i)

let reduces_param t i =
  List.find_map
    (fun (p : Privilege.t) ->
      match p.Privilege.mode with
      | Privilege.Reduce op -> Some op
      | Privilege.Read | Privilege.Read_write -> None)
    (param_privs t i)

let fields_with t i sel =
  List.filter_map
    (fun (p : Privilege.t) ->
      if sel p.Privilege.mode then Some p.Privilege.field else None)
    (param_privs t i)

let written_fields t i =
  fields_with t i (function Privilege.Read_write -> true | _ -> false)

let read_fields t i =
  fields_with t i (function
    | Privilege.Read | Privilege.Read_write -> true
    | Privilege.Reduce _ -> false)

let reduced_fields t i =
  fields_with t i (function Privilege.Reduce _ -> true | _ -> false)

let make ~name ~params ?(nscalars = 0) ?(cost = default_cost) kernel =
  let t = { tname = name; params; nscalars; kernel; cost } in
  (* Reject parameters mixing reduce with read/write privileges: reduction
     arguments get dedicated temporary instances under control replication
     (paper §4.3), which is only sound when the task cannot also observe the
     argument's contents. *)
  List.iteri
    (fun i (p : param) ->
      let has_reduce =
        List.exists
          (fun (pr : Privilege.t) ->
            match pr.Privilege.mode with Privilege.Reduce _ -> true | _ -> false)
          p.privs
      and has_other =
        List.exists
          (fun (pr : Privilege.t) ->
            match pr.Privilege.mode with
            | Privilege.Read | Privilege.Read_write -> true
            | Privilege.Reduce _ -> false)
          p.privs
      in
      if has_reduce && has_other then
        invalid_arg
          (Printf.sprintf
             "Task %s: parameter %d mixes reduce and read/write privileges"
             name i))
    params;
  t
