lib/ir/pretty.mli: Format Program Types
