lib/ir/summary.ml: Field List Printf Privilege Program Regions Task Types
