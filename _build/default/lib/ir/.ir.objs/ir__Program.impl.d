lib/ir/program.ml: Array List Printf Region Region_tree Regions Task Types
