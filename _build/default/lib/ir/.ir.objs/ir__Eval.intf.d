lib/ir/eval.mli: Types
