lib/ir/task.ml: Accessor Array List Printf Privilege Regions
