lib/ir/check.ml: Array Field Format List Partition Printf Privilege Program Region Regions String Task Types
