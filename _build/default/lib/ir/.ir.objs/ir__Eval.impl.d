lib/ir/eval.ml: Float Hashtbl List Printf Types
