lib/ir/pretty.ml: Array Format List Program Regions Types
