lib/ir/program.mli: Regions Task Types
