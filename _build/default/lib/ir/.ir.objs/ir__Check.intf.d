lib/ir/check.mli: Format Program
