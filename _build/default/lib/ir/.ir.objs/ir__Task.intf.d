lib/ir/task.mli: Regions
