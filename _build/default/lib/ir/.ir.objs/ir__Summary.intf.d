lib/ir/summary.mli: Program Regions Types
