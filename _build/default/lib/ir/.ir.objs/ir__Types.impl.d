lib/ir/types.ml: Regions
