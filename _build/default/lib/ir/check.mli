(** Static well-formedness checking of programs.

    Beyond name resolution and arity, [check] enforces the conditions under
    which an index launch's iterations are independent (paper §2.2): region
    arguments of index launches are of the form [p\[f(i)\]]; write-privileged
    arguments use the identity projection on a disjoint partition; reduce
    privileges are allowed on any argument (handled via reduction instances,
    §4.3). Scalar assignment inside index launches is impossible by
    construction; scalar reductions are expressed with
    [Index_launch_reduce] (§4.4). *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

val check : Program.t -> (unit, error list) result

val check_exn : Program.t -> unit
(** Raises [Invalid_argument] with all messages joined. *)
