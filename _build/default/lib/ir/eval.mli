(** Evaluation of scalar expressions against an environment. *)

type env

val env_of_list : (string * float) list -> env
val get : env -> string -> float
val set : env -> string -> float -> unit
val mem : env -> string -> bool
val bindings : env -> (string * float) list
val copy : env -> env

val sexpr : env -> Types.sexpr -> float
(** Raises [Invalid_argument] on an unbound variable. *)

val stest : env -> Types.stest -> bool
