open Regions

type error = { where : string; what : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let check (prog : Program.t) =
  let errors = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let scalars = ref (Program.scalar_names prog) in
  let rec check_sexpr where loop_vars = function
    | Types.Sconst _ -> ()
    | Types.Svar n ->
        if not (List.mem n !scalars || List.mem n loop_vars) then
          err where "unbound scalar %s" n
    | Types.Sneg e -> check_sexpr where loop_vars e
    | Types.Sadd (a, b)
    | Types.Ssub (a, b)
    | Types.Smul (a, b)
    | Types.Sdiv (a, b)
    | Types.Smin (a, b)
    | Types.Smax (a, b) ->
        check_sexpr where loop_vars a;
        check_sexpr where loop_vars b
  in
  let task_of_launch where (l : Types.launch) =
    match List.assoc_opt l.Types.task prog.Program.tasks with
    | None ->
        err where "unknown task %s" l.Types.task;
        None
    | Some task ->
        if List.length l.Types.rargs <> Task.arity task then
          err where "task %s expects %d region arguments, got %d"
            l.Types.task (Task.arity task)
            (List.length l.Types.rargs);
        if Array.length l.Types.sargs <> task.Task.nscalars then
          err where "task %s expects %d scalar arguments, got %d"
            l.Types.task task.Task.nscalars
            (Array.length l.Types.sargs);
        Some task
  in
  let check_priv_fields where task i (parent : Region.t) =
    List.iter
      (fun (pr : Privilege.t) ->
        if not (Region.has_field parent pr.Privilege.field) then
          err where "task %s parameter %d: field %s not in region %s"
            task i
            (Field.name pr.Privilege.field)
            parent.Region.name)
  in
  let check_index_launch where loop_vars (space : string) (l : Types.launch) =
    let space_size =
      match Program.find_decl prog space with
      | Some (Types.Dspace n) -> Some n
      | Some _ ->
          err where "%s is not an index space" space;
          None
      | None ->
          err where "unknown index space %s" space;
          None
    in
    Array.iter (check_sexpr where loop_vars) l.Types.sargs;
    match task_of_launch where l with
    | None -> ()
    | Some task ->
        List.iteri
          (fun i rarg ->
            if i >= Task.arity task then ()
              (* arity mismatch already reported *)
            else
            match rarg with
            | Types.Whole r ->
                err where
                  "whole-region argument %s in an index launch (arguments \
                   must be p[f(i)])"
                  r
            | Types.Part (pname, proj) -> (
                match Program.find_decl prog pname with
                | Some (Types.Dpartition p) -> (
                    check_priv_fields where l.Types.task i
                      p.Partition.parent
                      (Task.param_privs task i);
                    (match space_size with
                    | Some n when Partition.color_count p < n ->
                        err where
                          "partition %s has %d colors but launch space %s \
                           has %d points"
                          pname
                          (Partition.color_count p)
                          space n
                    | _ -> ());
                    if Task.writes_param task i then begin
                      if proj <> Types.Id then
                        err where
                          "write-privileged argument %d of %s uses a \
                           non-identity projection; writes require p[i]"
                          i l.Types.task;
                      if p.Partition.disjointness <> Partition.Disjoint then
                        err where
                          "write-privileged argument %s of %s is an aliased \
                           partition; iterations would not be independent"
                          pname l.Types.task
                    end)
                | Some _ -> err where "%s is not a partition" pname
                | None -> err where "unknown partition %s" pname))
          l.Types.rargs
  in
  let check_single_launch where loop_vars (l : Types.launch) =
    Array.iter (check_sexpr where loop_vars) l.Types.sargs;
    match task_of_launch where l with
    | None -> ()
    | Some task ->
        List.iteri
          (fun i rarg ->
            if i >= Task.arity task then ()
              (* arity mismatch already reported *)
            else
            match rarg with
            | Types.Part (p, _) ->
                err where
                  "partition argument %s in a single launch (pass a region)"
                  p
            | Types.Whole rname -> (
                match Program.find_decl prog rname with
                | Some (Types.Dregion r) ->
                    check_priv_fields where l.Types.task i r
                      (Task.param_privs task i)
                | Some _ -> err where "%s is not a region" rname
                | None -> err where "unknown region %s" rname))
          l.Types.rargs
  in
  let rec check_stmts loop_vars stmts =
    List.iter
      (fun stmt ->
        match stmt with
        | Types.Index_launch { space; launch } ->
            check_index_launch
              (Printf.sprintf "index launch of %s" launch.Types.task)
              loop_vars space launch
        | Types.Index_launch_reduce { space; launch; var; op = _ } ->
            let where =
              Printf.sprintf "reducing index launch of %s" launch.Types.task
            in
            check_index_launch where loop_vars space launch;
            if not (List.mem var !scalars) then
              err where "reduction target %s is not a declared scalar" var
        | Types.Single_launch { launch } ->
            check_single_launch
              (Printf.sprintf "single launch of %s" launch.Types.task)
              loop_vars launch
        | Types.Assign (v, e) ->
            let where = Printf.sprintf "assignment to %s" v in
            if not (List.mem v !scalars) then
              err where "%s is not a declared scalar" v;
            check_sexpr where loop_vars e
        | Types.For_time { var; count; body } ->
            let where = Printf.sprintf "time loop over %s" var in
            if count < 0 then err where "negative trip count %d" count;
            if List.mem var !scalars || List.mem var loop_vars then
              err where "loop variable %s shadows a scalar" var;
            check_stmts (var :: loop_vars) body
        | Types.If { test; then_; else_ } ->
            check_sexpr "if condition" loop_vars test.Types.lhs;
            check_sexpr "if condition" loop_vars test.Types.rhs;
            check_stmts loop_vars then_;
            check_stmts loop_vars else_)
      stmts
  in
  check_stmts [] prog.Program.body;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn prog =
  match check prog with
  | Ok () -> ()
  | Error es ->
      let msg =
        String.concat "; "
          (List.map (fun e -> Format.asprintf "%a" pp_error e) es)
      in
      invalid_arg ("Check failed: " ^ msg)
