(** Pretty-printing of programs in a Regent-like concrete syntax (used by
    golden tests and the [crc inspect] command). *)

val pp_sexpr : Format.formatter -> Types.sexpr -> unit
val pp_launch : Format.formatter -> Types.launch -> unit
val pp_stmt : Format.formatter -> Types.stmt -> unit
val pp_stmts : Format.formatter -> Types.stmt list -> unit
val pp_program : Format.formatter -> Program.t -> unit
val program_to_string : Program.t -> string
