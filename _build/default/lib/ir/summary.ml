open Regions

type access = { part : string; field : Field.t; mode : Privilege.mode }

let launch_accesses (prog : Program.t) (l : Types.launch) =
  let task = Program.find_task prog l.Types.task in
  List.concat
    (List.mapi
       (fun i rarg ->
         match rarg with
         | Types.Part (p, _) ->
             List.map
               (fun (pr : Privilege.t) ->
                 { part = p; field = pr.Privilege.field; mode = pr.Privilege.mode })
               (Task.param_privs task i)
         | Types.Whole r ->
             invalid_arg
               (Printf.sprintf
                  "Summary.launch_accesses: whole-region argument %s in an \
                   index launch"
                  r))
       l.Types.rargs)

let single_accesses (prog : Program.t) (l : Types.launch) =
  let task = Program.find_task prog l.Types.task in
  List.concat
    (List.mapi
       (fun i rarg ->
         let region =
           match rarg with
           | Types.Whole r -> Program.find_region prog r
           | Types.Part (p, _) ->
               invalid_arg
                 (Printf.sprintf
                    "Summary.single_accesses: partition argument %s in a \
                     single launch"
                    p)
         in
         List.map (fun pr -> (region, pr)) (Task.param_privs task i))
       l.Types.rargs)

let reads accs =
  List.filter_map
    (fun a ->
      match a.mode with
      | Privilege.Read | Privilege.Read_write -> Some (a.part, a.field)
      | Privilege.Reduce _ -> None)
    accs

let writes accs =
  List.filter_map
    (fun a ->
      match a.mode with
      | Privilege.Read_write -> Some (a.part, a.field)
      | Privilege.Read | Privilege.Reduce _ -> None)
    accs

let reduces accs =
  List.filter_map
    (fun a ->
      match a.mode with
      | Privilege.Reduce op -> Some (a.part, a.field, op)
      | Privilege.Read | Privilege.Read_write -> None)
    accs
