(** Partition-granularity access summaries.

    Control replication performs all analysis "at the level of tasks,
    privileges declared for tasks, region arguments to tasks, and the
    disjointness or aliasing of region arguments" (paper §2.1). This module
    computes, for a launch, which (partition, field) pairs are read, written
    and reduced — the summary every CR stage and the dependence analysis
    consume. *)

type access = {
  part : string; (* partition name *)
  field : Regions.Field.t;
  mode : Regions.Privilege.mode;
}

val launch_accesses : Program.t -> Types.launch -> access list
(** Accesses of one index-launch statement, at partition granularity.
    Raises [Invalid_argument] on [Whole] arguments (single launches are
    summarised with {!single_accesses}). *)

val single_accesses :
  Program.t -> Types.launch -> (Regions.Region.t * Regions.Privilege.t) list
(** Accesses of a single launch, at region granularity. *)

val reads : access list -> (string * Regions.Field.t) list
val writes : access list -> (string * Regions.Field.t) list
val reduces : access list -> (string * Regions.Field.t * Regions.Privilege.redop) list
