open Regions

type t = {
  name : string;
  tree : Region_tree.t;
  decls : (string * Types.decl) list;
  tasks : (string * Task.t) list;
  body : Types.stmt list;
}

let find_decl t name = List.assoc_opt name t.decls

let bad kind name =
  invalid_arg (Printf.sprintf "Program: no %s named %s" kind name)

let find_region t name =
  match find_decl t name with
  | Some (Types.Dregion r) -> r
  | _ -> bad "region" name

let find_partition t name =
  match find_decl t name with
  | Some (Types.Dpartition p) -> p
  | _ -> bad "partition" name

let find_space t name =
  match find_decl t name with
  | Some (Types.Dspace n) -> n
  | _ -> bad "index space" name

let find_task t name =
  match List.assoc_opt name t.tasks with
  | Some task -> task
  | None -> bad "task" name

let names_of t sel =
  List.filter_map (fun (n, d) -> if sel d then Some n else None) t.decls

let scalar_names t =
  names_of t (function Types.Dscalar _ -> true | _ -> false)

let initial_scalars t =
  List.filter_map
    (fun (n, d) ->
      match d with Types.Dscalar v -> Some (n, v) | _ -> None)
    t.decls

let region_names t =
  names_of t (function Types.Dregion _ -> true | _ -> false)

let partition_names t =
  names_of t (function Types.Dpartition _ -> true | _ -> false)

module Builder = struct
  type program = t

  type b = {
    bname : string;
    btree : Region_tree.t;
    mutable bdecls : (string * Types.decl) list; (* reversed *)
    mutable btasks : (string * Task.t) list; (* reversed *)
    mutable bbody : Types.stmt list;
  }

  let create ~name =
    {
      bname = name;
      btree = Region_tree.create ();
      bdecls = [];
      btasks = [];
      bbody = [];
    }

  let declare b name d =
    if List.mem_assoc name b.bdecls then
      invalid_arg (Printf.sprintf "Builder: name %s already declared" name);
    b.bdecls <- (name, d) :: b.bdecls

  let region b ~name ispace fields =
    let r = Region.create ~name ispace fields in
    Region_tree.register_root b.btree r;
    declare b name (Types.Dregion r);
    r

  let bind_region b ~name r =
    if not (Region_tree.mem_region b.btree r) then
      invalid_arg "Builder.bind_region: region not in this program's tree";
    declare b name (Types.Dregion r);
    r

  let partition b ~name f =
    let p = f ~name in
    Region_tree.register_partition b.btree p;
    declare b name (Types.Dpartition p);
    p

  let space b ~name n =
    if n <= 0 then invalid_arg "Builder.space: size <= 0";
    declare b name (Types.Dspace n)

  let scalar b ~name v = declare b name (Types.Dscalar v)

  let task b (t : Task.t) =
    if List.mem_assoc t.Task.tname b.btasks then
      invalid_arg
        (Printf.sprintf "Builder: task %s already declared" t.Task.tname);
    b.btasks <- (t.Task.tname, t) :: b.btasks

  let body b stmts = b.bbody <- b.bbody @ stmts

  let finish b =
    {
      name = b.bname;
      tree = b.btree;
      decls = List.rev b.bdecls;
      tasks = List.rev b.btasks;
      body = b.bbody;
    }
end

module Syntax = struct
  let ( !. ) v = Types.Sconst v
  let sv n = Types.Svar n
  let ( +. ) a b = Types.Sadd (a, b)
  let ( -. ) a b = Types.Ssub (a, b)
  let ( *. ) a b = Types.Smul (a, b)
  let ( /. ) a b = Types.Sdiv (a, b)

  let call task ?(scalars = []) rargs =
    { Types.task; rargs; sargs = Array.of_list scalars }

  let part p = Types.Part (p, Types.Id)
  let part_fn p fname f = Types.Part (p, Types.Fn (fname, f))
  let whole r = Types.Whole r

  let forall space launch = Types.Index_launch { space; launch }

  let forall_reduce space launch ~into op =
    Types.Index_launch_reduce { space; launch; var = into; op }

  let run launch = Types.Single_launch { launch }
  let assign v e = Types.Assign (v, e)
  let for_time var count body = Types.For_time { var; count; body }
end
