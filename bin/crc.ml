(* crc — the control replication compiler driver.

   Subcommands:
     inspect   print an application's implicit program and its compiled
               SPMD form
     run       execute an application functionally (sequential and
               control-replicated) and compare results
     simulate  estimate per-timestep cost on a simulated machine
     sweep     weak-scaling series for one application (Figures 6-9)
     table1    dynamic intersection timings (Table 1)
     fuzz      differential conformance fuzzing of the whole pipeline *)

open Cmdliner

type app = Stencil | Miniaero | Pennant | Circuit

let app_conv =
  let parse = function
    | "stencil" -> Ok Stencil
    | "miniaero" -> Ok Miniaero
    | "pennant" -> Ok Pennant
    | "circuit" -> Ok Circuit
    | s -> Error (`Msg (Printf.sprintf "unknown application %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Stencil -> "stencil"
      | Miniaero -> "miniaero"
      | Pennant -> "pennant"
      | Circuit -> "circuit")
  in
  Arg.conv (parse, print)

let app_arg =
  Arg.(
    required
    & pos 0 (some app_conv) None
    & info [] ~docv:"APP" ~doc:"Application: stencil, miniaero, pennant or circuit.")

let nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Machine nodes.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"S" ~doc:"Shard count (defaults to nodes).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file covering the command \
           (compile-pipeline phases and execution on the wall clock, \
           simulated-machine timelines with a marked critical path on the \
           virtual clock). Load it at https://ui.perfetto.dev or \
           chrome://tracing.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metrics registry (counters and gauges) as a text dump \
           when the command finishes.")

(* Observability plumbing shared by run/simulate/sweep: a memory trace only
   when --trace asked for one (the null sink costs a branch per event
   otherwise), a fresh registry either way. *)
let obs_setup trace_path =
  let trace =
    match trace_path with
    | None -> Obs.Trace.null
    | Some _ -> Obs.Trace.memory ()
  in
  (trace, Obs.Metrics.create ())

let obs_finish ~trace_path ~metrics trace registry =
  (match trace_path with
  | None -> ()
  | Some path ->
      Obs.Trace.set_process_name trace ~pid:Obs.Trace.wall_pid
        "crc (wall clock)";
      Obs.Trace.set_process_name trace ~pid:Obs.Trace.virtual_pid
        "simulated machine (virtual time)";
      Obs.Trace.write_chrome_file trace path;
      Printf.printf "trace: %d events written to %s\n"
        (List.length (Obs.Trace.events trace))
        path);
  if metrics then print_string (Obs.Metrics.to_string registry)

(* Registry entries for one simulator result. *)
let record_sim_metrics registry ~prefix ~per_step ~total ~tasks_run
    ~bytes_moved ~copies_run timeline =
  let set k v = Obs.Metrics.set registry (prefix ^ "." ^ k) v in
  set "per_step_s" per_step;
  set "total_s" total;
  set "makespan_s" (Realm.Timeline.makespan timeline);
  set "critical_path_ops"
    (float_of_int (List.length (Realm.Timeline.critical_path timeline)));
  set "tasks_run" (float_of_int tasks_run);
  set "bytes_moved" bytes_moved;
  Option.iter (fun c -> set "copies_run" (float_of_int c)) copies_run

(* Small (functional) and simulator-scale program constructors. *)
let test_program app nodes =
  match app with
  | Stencil -> Apps.Stencil.program (Apps.Stencil.test_config ~nodes)
  | Miniaero -> Apps.Miniaero.program (Apps.Miniaero.test_config ~nodes)
  | Pennant -> Apps.Pennant.program (Apps.Pennant.test_config ~nodes)
  | Circuit -> Apps.Circuit.program (Apps.Circuit.test_config ~nodes)

let sim_program app nodes =
  match app with
  | Stencil ->
      let cfg = Apps.Stencil.default ~nodes in
      (Apps.Stencil.program cfg, Apps.Stencil.scale cfg, 0.)
  | Miniaero ->
      let cfg = Apps.Miniaero.sim_config ~nodes in
      (Apps.Miniaero.program cfg, Apps.Miniaero.scale cfg, 0.)
  | Pennant ->
      let cfg = Apps.Pennant.sim_config ~nodes in
      (Apps.Pennant.program cfg, Apps.Pennant.scale cfg, Apps.Pennant.task_noise)
  | Circuit ->
      let cfg = Apps.Circuit.sim_config ~nodes in
      (Apps.Circuit.program cfg, Apps.Circuit.scale cfg, 0.)

let elements_per_node app =
  match app with
  | Stencil ->
      (float_of_int (Apps.Stencil.default ~nodes:1).Apps.Stencil.points_per_node, "points")
  | Miniaero ->
      let c = Apps.Miniaero.default ~nodes:1 in
      let x, y, z = c.Apps.Miniaero.piece_cells in
      (float_of_int (c.Apps.Miniaero.pieces_per_node * x * y * z), "cells")
  | Pennant ->
      let c = Apps.Pennant.default ~nodes:1 in
      let x, y = c.Apps.Pennant.piece_zones in
      (float_of_int (c.Apps.Pennant.pieces_per_node * x * y), "zones")
  | Circuit ->
      let c = Apps.Circuit.default ~nodes:1 in
      ( float_of_int (c.Apps.Circuit.pieces_per_node * c.Apps.Circuit.cnodes_per_piece),
        "circuit nodes" )

(* ---------- inspect ---------- *)

let inspect app nodes shards stages =
  let shards = Option.value ~default:nodes shards in
  let prog = test_program app nodes in
  print_endline "==== implicit program ====";
  print_endline (Ir.Pretty.program_to_string prog);
  if stages then begin
    (* The Fig. 4 transformation stages, block by block. *)
    let staged =
      Cr.Pipeline.stage_blocks (Cr.Pipeline.default ~shards) (test_program app nodes)
    in
    List.iteri
      (fun k (st : Cr.Pipeline.staged) ->
        Format.printf "@.==== block %d: after data replication (Fig. 4a) ====@." k;
        Format.printf "@[<v>%a@]@." Spmd.Prog.pp_instrs st.Cr.Pipeline.replicated;
        Format.printf "@.==== block %d: after copy placement ====@." k;
        Format.printf "@[<v>%a@]@." Spmd.Prog.pp_instrs st.Cr.Pipeline.placed;
        Format.printf "@.==== block %d: after synchronization insertion ====@." k;
        Format.printf "@[<v>%a@]@." Spmd.Prog.pp_instrs st.Cr.Pipeline.synced)
      staged
  end;
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
  print_endline "\n==== control-replicated (SPMD) program ====";
  print_endline (Spmd.Prog.to_string compiled)

(* ---------- run ---------- *)

let run app nodes shards seed trace_path metrics =
  let shards = Option.value ~default:nodes shards in
  let trace, registry = obs_setup trace_path in
  let p1 = test_program app nodes in
  let seq = Interp.Run.create p1 in
  Interp.Run.run seq;
  let p2 = test_program app nodes in
  let compiled = Cr.Pipeline.compile ~trace (Cr.Pipeline.default ~shards) p2 in
  let spmd = Interp.Run.create compiled.Spmd.Prog.source in
  let stats = Spmd.Exec.fresh_stats ~registry () in
  Spmd.Exec.run ~sched:(`Random seed) ~stats ~trace compiled spmd;
  let data ctx prog =
    List.concat_map
      (fun rname ->
        let r = Ir.Program.find_region prog rname in
        let inst = Interp.Run.region_instance ctx r in
        List.map
          (fun f -> (rname, Regions.Field.name f, Regions.Physical.to_alist inst f))
          r.Regions.Region.fields)
      (Ir.Program.region_names prog)
  in
  let equal = data seq p1 = data spmd p2 in
  Printf.printf "functional run with %d shards (random schedule %d)\n" shards seed;
  Printf.printf "sequential == control-replicated: %b\n" equal;
  (match app with
  | Circuit ->
      Printf.printf "total charge: %.12f\n" (Apps.Circuit.total_node_charge spmd p2)
  | Miniaero ->
      Printf.printf "total mass: %.12f\n" (Apps.Miniaero.total_mass spmd p2)
  | Pennant ->
      let mx, my = Apps.Pennant.total_momentum spmd p2 in
      Printf.printf "momentum: (%.3e, %.3e), dt: %.8f\n" mx my
        (Interp.Run.scalar spmd "dt")
  | Stencil ->
      Printf.printf "checksum: %.3f\n" (Apps.Stencil.interior_checksum spmd p2));
  obs_finish ~trace_path ~metrics trace registry;
  if not equal then exit 1

(* ---------- simulate ---------- *)

let simulate app nodes no_cr trace_path metrics =
  let trace, registry = obs_setup trace_path in
  let prog, scale, noise = sim_program app nodes in
  let machine = Realm.Machine.make ~nodes ~task_noise:noise () in
  let cores = Realm.Machine.compute_cores machine in
  let per_step =
    if no_cr then begin
      let r = Legion.Sim_implicit.simulate ~machine ~scale ~steps:8 ~trace prog in
      Realm.Timeline.emit
        ~track_names:(Legion.Sim_implicit.track_names ~nodes ~cores)
        r.Legion.Sim_implicit.timeline trace;
      record_sim_metrics registry ~prefix:"sim.implicit"
        ~per_step:r.Legion.Sim_implicit.per_step
        ~total:r.Legion.Sim_implicit.total
        ~tasks_run:r.Legion.Sim_implicit.tasks_run
        ~bytes_moved:r.Legion.Sim_implicit.bytes_moved ~copies_run:None
        r.Legion.Sim_implicit.timeline;
      r.Legion.Sim_implicit.per_step
    end
    else begin
      let compiled =
        Cr.Pipeline.compile ~trace (Cr.Pipeline.default ~shards:nodes) prog
      in
      let r = Legion.Sim_spmd.simulate ~machine ~scale ~steps:8 ~trace compiled in
      Realm.Timeline.emit
        ~track_names:(Legion.Sim_spmd.track_names ~shards:nodes ~cores)
        r.Legion.Sim_spmd.timeline trace;
      record_sim_metrics registry ~prefix:"sim.spmd"
        ~per_step:r.Legion.Sim_spmd.per_step ~total:r.Legion.Sim_spmd.total
        ~tasks_run:r.Legion.Sim_spmd.tasks_run
        ~bytes_moved:r.Legion.Sim_spmd.bytes_moved
        ~copies_run:(Some r.Legion.Sim_spmd.copies_run)
        r.Legion.Sim_spmd.timeline;
      r.Legion.Sim_spmd.per_step
    end
  in
  let elems, unit_ = elements_per_node app in
  Printf.printf "%s on %d nodes (%s): %.4f s/step, %.1f %s/s per node\n"
    (if no_cr then "implicit (no CR)" else "control-replicated")
    nodes
    (match app with
    | Stencil -> "paper-scale instance"
    | _ -> "reduced instance, scaled costs")
    per_step (elems /. per_step) unit_;
  obs_finish ~trace_path ~metrics trace registry

(* ---------- sweep ---------- *)

let sweep app trace_path metrics =
  let trace, registry = obs_setup trace_path in
  let elems, unit_ = elements_per_node app in
  Printf.printf "%6s %14s %14s   (%s/s per node)\n" "nodes" "Regent+CR"
    "Regent-noCR" unit_;
  List.iter
    (fun n ->
      let prog, scale, noise = sim_program app n in
      let machine = Realm.Machine.make ~nodes:n ~task_noise:noise () in
      let cores = Realm.Machine.compute_cores machine in
      let rcr =
        Legion.Sim_spmd.simulate ~machine ~scale ~steps:8 ~trace
          (Cr.Pipeline.compile ~trace (Cr.Pipeline.default ~shards:n) prog)
      in
      let rnocr = Legion.Sim_implicit.simulate ~machine ~scale ~steps:6 ~trace prog in
      if Obs.Trace.enabled trace then begin
        (* Each machine size gets its own pair of virtual-time processes so
           the series don't overlap in the viewer. *)
        let pid_cr = 1000 + n and pid_nocr = 2000 + n in
        Obs.Trace.set_process_name trace ~pid:pid_cr
          (Printf.sprintf "sweep n=%d (CR, virtual time)" n);
        Obs.Trace.set_process_name trace ~pid:pid_nocr
          (Printf.sprintf "sweep n=%d (no CR, virtual time)" n);
        Realm.Timeline.emit ~pid:pid_cr
          ~track_names:(Legion.Sim_spmd.track_names ~shards:n ~cores)
          rcr.Legion.Sim_spmd.timeline trace;
        Realm.Timeline.emit ~pid:pid_nocr
          ~track_names:(Legion.Sim_implicit.track_names ~nodes:n ~cores)
          rnocr.Legion.Sim_implicit.timeline trace
      end;
      let prefix kind = Printf.sprintf "sweep.n%03d.%s" n kind in
      record_sim_metrics registry ~prefix:(prefix "cr")
        ~per_step:rcr.Legion.Sim_spmd.per_step ~total:rcr.Legion.Sim_spmd.total
        ~tasks_run:rcr.Legion.Sim_spmd.tasks_run
        ~bytes_moved:rcr.Legion.Sim_spmd.bytes_moved
        ~copies_run:(Some rcr.Legion.Sim_spmd.copies_run)
        rcr.Legion.Sim_spmd.timeline;
      record_sim_metrics registry ~prefix:(prefix "nocr")
        ~per_step:rnocr.Legion.Sim_implicit.per_step
        ~total:rnocr.Legion.Sim_implicit.total
        ~tasks_run:rnocr.Legion.Sim_implicit.tasks_run
        ~bytes_moved:rnocr.Legion.Sim_implicit.bytes_moved ~copies_run:None
        rnocr.Legion.Sim_implicit.timeline;
      Printf.printf "%6d %14.1f %14.1f\n%!" n
        (elems /. rcr.Legion.Sim_spmd.per_step)
        (elems /. rnocr.Legion.Sim_implicit.per_step))
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  obs_finish ~trace_path ~metrics trace registry

(* ---------- table1 ---------- *)

let table1 nodes =
  Printf.printf "%10s %12s %12s %12s\n" "app" "shallow(ms)" "complete(ms)"
    "non-empty";
  List.iter
    (fun (name, app) ->
      let prog, _, _ = sim_program app nodes in
      let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:nodes) prog in
      let stats = Spmd.Intersections.fresh_stats () in
      List.iter
        (function
          | Spmd.Prog.Replicated b ->
              List.iter
                (fun (c : Spmd.Prog.copy) ->
                  match (c.Spmd.Prog.src, c.Spmd.Prog.dst) with
                  | Spmd.Prog.Opart ps, Spmd.Prog.Opart pd ->
                      ignore
                        (Spmd.Intersections.compute ~stats
                           ~src:(Ir.Program.find_partition compiled.Spmd.Prog.source ps)
                           ~dst:(Ir.Program.find_partition compiled.Spmd.Prog.source pd)
                           ())
                  | _ -> ())
                b.Spmd.Prog.copies
          | Spmd.Prog.Seq _ -> ())
        compiled.Spmd.Prog.items;
      Printf.printf "%10s %12.2f %12.2f %12d\n%!" name
        (stats.Spmd.Intersections.shallow_s *. 1e3)
        (stats.Spmd.Intersections.complete_s *. 1e3)
        stats.Spmd.Intersections.nonempty)
    [ ("circuit", Circuit); ("miniaero", Miniaero); ("pennant", Pennant);
      ("stencil", Stencil) ]

(* ---------- fuzz ---------- *)

let fuzz seed count max_tasks mutate shards no_net out replay =
  match replay with
  | Some path -> (
      match Conform.Fuzz.replay path with
      | None ->
          Printf.printf "repro %s no longer fails\n" path;
          exit 0
      | Some f ->
          Format.printf "repro %s still fails: %a@." path
            Conform.Oracle.pp_failure f;
          exit 1)
  | None -> (
      let report =
        Conform.Fuzz.campaign ~out ?max_tasks ?mutate ?shards
          ~net:(not no_net) ~log:print_endline ~seed ~count ()
      in
      match report.Conform.Fuzz.repro with
      | None ->
          Printf.printf
            "fuzz: %d case(s) passed (seed %d, all schedulers x both data \
             planes%s, sanitizer armed)\n"
            report.Conform.Fuzz.tested seed
            (if no_net then "" else " + net loopback")
      | Some (r, path) ->
          Format.printf "fuzz: case failed after %d test(s): %a@."
            report.Conform.Fuzz.tested Conform.Oracle.pp_failure
            r.Conform.Repro.failure;
          Printf.printf "minimal repro written to %s (replay with: crc fuzz \
                         --replay %s)\n"
            path path;
          exit 1)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Base case seed.")
  in
  let count =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"N" ~doc:"Number of cases to run.")
  in
  let max_tasks =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-tasks" ] ~docv:"N"
          ~doc:"Cap on generated task definitions per case.")
  in
  let mutate =
    Arg.(
      value
      & opt (some int) None
      & info [ "mutate" ] ~docv:"K"
          ~doc:
            "Negative control: drop the K-th synchronization op from every \
             compiled case before executing. A completed campaign then means \
             the oracle missed the bug.")
  in
  let out =
    Arg.(
      value
      & opt string "fuzz-repro.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write a minimal repro.")
  in
  let no_net =
    Arg.(
      value & flag
      & info [ "no-net" ]
          ~doc:
            "Skip the net/loopback backend column (the distributed \
             message-passing engine over the in-process transport).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run a saved repro file instead of fuzzing.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential conformance fuzzing: random well-privileged programs \
          run through the implicit interpreter and through the full \
          compile+SPMD pipeline under every scheduler and data plane (plus \
          the distributed loopback backend) with the race sanitizer armed; \
          failures are auto-shrunk to a replayable repro file.")
    Term.(
      const fuzz $ seed $ count $ max_tasks $ mutate $ shards_arg $ no_net
      $ out $ replay)

(* ---------- launch ---------- *)

let transport_conv =
  let parse = function
    | "loopback" -> Ok `Loopback
    | "unix" -> Ok `Unix
    | "tcp" -> Ok `Tcp
    | s -> Error (`Msg (Printf.sprintf "unknown transport %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with `Loopback -> "loopback" | `Unix -> "unix" | `Tcp -> "tcp")
  in
  Arg.conv (parse, print)

let launch app nodes shards transport watchdog fail_rate fault_seed kill
    trace_path metrics =
  let shards = Option.value ~default:nodes shards in
  let trace, registry = obs_setup trace_path in
  let reference =
    let p = test_program app nodes in
    let ctx = Interp.Run.create p in
    Interp.Run.run ctx;
    Net.Launch.snapshot_state ctx
  in
  let compiled =
    Cr.Pipeline.compile ~trace (Cr.Pipeline.default ~shards)
      (test_program app nodes)
  in
  let stats = Spmd.Exec.fresh_stats ~registry () in
  let fault =
    if fail_rate > 0. then
      Some
        (Resilience.Fault.create
           ~policy:
             {
               Resilience.Fault.no_faults with
               net_fail_rate = fail_rate;
               net_retries = 5;
               max_faults = 10_000;
             }
           ~seed:fault_seed ())
    else None
  in
  let tname =
    match transport with `Loopback -> "loopback" | `Unix -> "unix" | `Tcp -> "tcp"
  in
  Printf.printf "distributed run: %d shard(s) over %s\n%!" shards tname;
  let finish ~ok ~matched ~msgs ~bytes ~retries =
    Printf.printf "snapshot == sequential reference: %b\n" matched;
    Printf.printf "frames sent: %d, bytes on wire: %d, send retries: %d\n" msgs
      bytes retries;
    obs_finish ~trace_path ~metrics trace registry;
    if not (ok && matched) then exit 1
  in
  match transport with
  | `Loopback -> (
      (match kill with
      | Some _ ->
          prerr_endline "crc launch: --kill requires a socket transport";
          exit 2
      | None -> ());
      let ctx = Interp.Run.create compiled.Spmd.Prog.source in
      match Net.Launch.run_loopback ?fault ~stats ~trace compiled ctx with
      | () ->
          let matched =
            Net.Launch.states_equal reference (Net.Launch.snapshot_state ctx)
          in
          finish ~ok:true ~matched
            ~msgs:(Atomic.get stats.Spmd.Exec.msgs_sent)
            ~bytes:(Atomic.get stats.Spmd.Exec.bytes_on_wire)
            ~retries:0
      | exception Spmd.Exec.Deadlock d ->
          print_string (Resilience.Diag.to_string d);
          obs_finish ~trace_path ~metrics trace registry;
          exit 3)
  | (`Unix | `Tcp) as transport ->
      let o =
        Net.Launch.launch ~transport ?fault ?kill ~watchdog ~stats ~trace
          compiled
      in
      List.iter (fun line -> Printf.printf "  %s\n" line) o.Net.Launch.detail;
      (match o.Net.Launch.diag with
      | Some d -> print_string (Resilience.Diag.to_string d)
      | None -> ());
      List.iter
        (fun (rank, status) ->
          if status <> "exit 0" then
            Printf.printf "  rank %d: %s\n" rank status)
        o.Net.Launch.exits;
      let matched =
        match o.Net.Launch.state with
        | Some st -> Net.Launch.states_equal reference st
        | None -> false
      in
      finish ~ok:o.Net.Launch.ok ~matched ~msgs:o.Net.Launch.msgs
        ~bytes:o.Net.Launch.bytes_on_wire ~retries:o.Net.Launch.send_retries

let launch_cmd =
  let transport =
    Arg.(
      value
      & opt transport_conv `Unix
      & info [ "transport" ] ~docv:"T"
          ~doc:
            "Transport: $(b,loopback) (deterministic in-process), $(b,unix) \
             (one OS process per shard over Unix-domain socketpairs) or \
             $(b,tcp) (processes over 127.0.0.1).")
  in
  let watchdog =
    Arg.(
      value & opt float 30.
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "How long a rank may sit blocked without receiving a frame \
             before it reports a structured deadlock instead of hanging.")
  in
  let fail_rate =
    Arg.(
      value & opt float 0.
      & info [ "net-fail-rate" ] ~docv:"P"
          ~doc:
            "Arm fault injection: probability that any single transport \
             send fails transiently (retried with reconnect, up to 5 \
             attempts).")
  in
  let fault_seed =
    Arg.(
      value & opt int 42
      & info [ "fault-seed" ] ~docv:"N" ~doc:"Fault-injection schedule seed.")
  in
  let kill =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "kill" ] ~docv:"RANK:N"
          ~doc:
            "Hard-kill the given child rank at its N-th physical send \
             (crash testing; sockets only, rank 0 not killable).")
  in
  Cmd.v
    (Cmd.info "launch"
       ~doc:
         "Run the compiled SPMD program distributed: one rank per shard \
          exchanging region fragments, credits and tree collectives as \
          wire messages, with the final state gathered at rank 0 and \
          verified bitwise against the sequential interpreter.")
    Term.(
      const launch $ app_arg $ nodes_arg $ shards_arg $ transport $ watchdog
      $ fail_rate $ fault_seed $ kill $ trace_arg $ metrics_arg)

(* ---------- command wiring ---------- *)

let inspect_cmd =
  let stages =
    Arg.(
      value & flag
      & info [ "stages" ]
          ~doc:"Also print the Fig. 4 transformation stages of each block.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print the implicit program and its SPMD form.")
    Term.(const inspect $ app_arg $ nodes_arg $ shards_arg $ stages)

let run_cmd =
  let seed =
    Arg.(value & opt int 17 & info [ "seed" ] ~doc:"Random schedule seed.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute functionally and compare to sequential.")
    Term.(
      const run $ app_arg $ nodes_arg $ shards_arg $ seed $ trace_arg
      $ metrics_arg)

let simulate_cmd =
  let no_cr =
    Arg.(value & flag & info [ "no-cr" ] ~doc:"Simulate without control replication.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Per-timestep cost on the simulated machine.")
    Term.(
      const simulate $ app_arg $ nodes_arg $ no_cr $ trace_arg $ metrics_arg)

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Weak-scaling series (Figures 6-9 shape).")
    Term.(const sweep $ app_arg $ trace_arg $ metrics_arg)

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Dynamic intersection timings (Table 1).")
    Term.(const table1 $ nodes_arg)

let () =
  let doc = "control replication compiler and simulator driver" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "crc" ~version:"1.0.0" ~doc)
          [
            inspect_cmd;
            run_cmd;
            launch_cmd;
            simulate_cmd;
            sweep_cmd;
            table1_cmd;
            fuzz_cmd;
          ]))
