(* Long-running randomized equivalence soak (not part of `dune runtest`):
   for a seed range, run every generated program sequentially and through
   the full control-replication pipeline at several shard counts and
   schedules, and require bitwise-identical results.

     dune exec tools/soak.exe -- 0 4000

   A clean run prints `soak done [lo..hi]: 0 bad`. *)
open Regions
open Ir

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

let () =
  let lo = int_of_string Sys.argv.(1) and hi = int_of_string Sys.argv.(2) in
  let bad = ref 0 in
  for seed = lo to hi do
    let prog1 = Test_fixtures.Fixtures.random_program seed in
    let ctx1 = Interp.Run.create prog1 in
    Interp.Run.run ctx1;
    let a = region_data ctx1 prog1 in
    let sa =
      List.map (fun n -> (n, Interp.Run.scalar ctx1 n)) (Program.scalar_names prog1)
    in
    List.iter
      (fun shards ->
        let prog2 = Test_fixtures.Fixtures.random_program seed in
        let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog2 in
        List.iter
          (fun sched ->
            let ctx2 = Interp.Run.create compiled.Spmd.Prog.source in
            (try Spmd.Exec.run ~sched compiled ctx2
             with Spmd.Exec.Deadlock d ->
               incr bad;
               Printf.printf "DEADLOCK seed=%d shards=%d: %s\n%!" seed shards
                 (Resilience.Diag.to_string d));
            let b = region_data ctx2 prog2 in
            let sb =
              List.map
                (fun n -> (n, Interp.Run.scalar ctx2 n))
                (Program.scalar_names prog2)
            in
            if a <> b || sa <> sb then begin
              incr bad;
              Printf.printf "MISMATCH seed=%d shards=%d\n%!" seed shards
            end)
          [ `Round_robin; `Random ((seed * 31) + shards); `Domains ])
      [ 1; 2; 3; 4; 7 ]
  done;
  Printf.printf "soak done [%d..%d]: %d bad\n" lo hi !bad
