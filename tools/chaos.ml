(* Chaos soak: random programs x fault policies x schedulers, wall-clock
   bounded. Every run arms the deterministic fault injector and requires
   the final region contents and scalars to be bitwise identical to the
   fault-free sequential reference — injected transient leaf failures
   (rolled back and retried), delayed releases and shard stalls must all
   be invisible in the results. A run whose fault schedule exhausts a
   retry cap is counted as "killed" (the expected outcome, not a bug);
   a Deadlock or a result mismatch is a bug. Runs alternate the executor's
   data plane between compiled copy plans and the per-element ablation, so
   rollback snapshots and restored write sets are soaked against blit
   copies too.

     dune exec tools/chaos.exe -- [seconds] [start-seed]

   A short run is wired into `dune runtest`. Diagnostics go through the
   level-filtered {!Obs.Log} logger: mismatches and deadlocks print at
   error level, the final tally at info (set CRC_LOG=info to see it); a
   clean run is silent and exits 0. *)

open Regions
open Ir

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

let mk_policy ~leaf ~delays =
  {
    Resilience.Fault.leaf_fail_rate = (if leaf then 0.1 else 0.);
    leaf_retries = 6;
    release_delay_rate = (if delays then 0.05 else 0.);
    release_delay_steps = 2;
    stall_rate = (if delays then 0.05 else 0.);
    stall_steps = 2;
    net_fail_rate = 0.;
    net_retries = 0;
    delay_seconds = 0.0005;
    max_faults = 1_000_000;
  }

let policies =
  [
    ("leaf", mk_policy ~leaf:true ~delays:false);
    ("delays", mk_policy ~leaf:false ~delays:true);
    ("mixed", mk_policy ~leaf:true ~delays:true);
  ]

let () =
  let argv k default =
    if Array.length Sys.argv > k then
      match float_of_string_opt Sys.argv.(k) with
      | Some v -> v
      | None ->
          Printf.eprintf "chaos: bad argument %S\nusage: chaos [seconds] [start-seed]\n"
            Sys.argv.(k);
          exit 2
    else default
  in
  let budget = argv 1 5.0 in
  let seed0 = int_of_float (argv 2 0.) in
  let deadline = Unix.gettimeofday () +. budget in
  let runs = ref 0
  and faults = ref 0
  and killed = ref 0
  and bad = ref 0
  and seed = ref seed0 in
  while Unix.gettimeofday () < deadline do
    let s = !seed in
    incr seed;
    let prog1 = Test_fixtures.Fixtures.random_program s in
    let ctx1 = Interp.Run.create prog1 in
    Interp.Run.run ctx1;
    let want =
      ( region_data ctx1 prog1,
        List.sort compare (Interp.Run.scalars ctx1) )
    in
    List.iter
      (fun shards ->
        List.iter
          (fun (pname, policy) ->
            List.iter
              (fun sched ->
                if Unix.gettimeofday () < deadline then begin
                  let prog2 = Test_fixtures.Fixtures.random_program s in
                  let compiled =
                    Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog2
                  in
                  let ctx2 = Interp.Run.create compiled.Spmd.Prog.source in
                  let fault =
                    Resilience.Fault.create ~policy ~seed:(s lxor 0x5EED) ()
                  in
                  incr runs;
                  let data_plane = if !runs land 1 = 0 then `Plans else `Scalar in
                  match
                    Spmd.Exec.run ~sched ~fault ~watchdog:10. ~data_plane
                      compiled ctx2
                  with
                  | () ->
                      faults := !faults + Resilience.Fault.injected fault;
                      let got =
                        ( region_data ctx2 prog2,
                          List.sort compare (Interp.Run.scalars ctx2) )
                      in
                      if got <> want then begin
                        incr bad;
                        Obs.Log.err "MISMATCH seed=%d shards=%d policy=%s plane=%s"
                          s shards pname
                          (match data_plane with
                          | `Plans -> "plans"
                          | `Scalar -> "scalar")
                      end
                  | exception Resilience.Fault.Injected _ ->
                      (* The schedule exhausted a retry cap: a legitimate
                         crash, exercised separately by restart_demo. *)
                      incr killed
                  | exception Spmd.Exec.Deadlock d ->
                      incr bad;
                      Obs.Log.err "DEADLOCK seed=%d shards=%d policy=%s:\n%s" s
                        shards pname
                        (Resilience.Diag.to_string d)
                end)
              [ `Round_robin; `Random ((s * 31) + shards); `Domains ])
          policies)
      [ 2; 3 ]
  done;
  Obs.Log.info
    "chaos done: seeds [%d..%d], %d runs, %d injected faults, %d killed, %d bad"
    seed0 (!seed - 1) !runs !faults !killed !bad;
  exit (if !bad > 0 then 1 else 0)
