(* Kill-and-resume scenario for checkpoint/restart.

   A checkpointing run of the Fig. 2 program is "killed" mid-flight — the
   checkpoint sink raises a simulated power cut right after writing the
   iteration-3 checkpoint to disk. A second process-worth of state (fresh
   program instance, fresh context) then loads the on-disk checkpoint and
   resumes under the domains backend; the result must be bitwise identical
   to an uninterrupted run.

     dune exec tools/restart_demo.exe

   Exits 0 on success (wired into `dune runtest`); progress and the PASS
   line go through {!Obs.Log} at info level (set CRC_LOG=info to see
   them), failures print at error level. *)

open Regions
open Ir

exception Killed

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

let () =
  let mk () = Test_fixtures.Fixtures.fig2 ~timesteps:6 () in
  let compile p = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) p in
  (* Uninterrupted reference. *)
  let p1 = mk () in
  let c1 = compile p1 in
  let ctx1 = Interp.Run.create c1.Spmd.Prog.source in
  Spmd.Exec.run c1 ctx1;
  let want =
    (region_data ctx1 p1, List.sort compare (Interp.Run.scalars ctx1))
  in
  (* Checkpointing run, killed right after the iteration-3 cut hits disk. *)
  let path = Filename.temp_file "ctrlrep-restart" ".ckpt" in
  let p2 = mk () in
  let c2 = Spmd.Prog.map_blocks (Spmd.Prog.with_checkpoints ~every:2) (compile p2) in
  let ctx2 = Interp.Run.create c2.Spmd.Prog.source in
  (match
     Spmd.Exec.run
       ~checkpoint_sink:(fun ck ->
         Resilience.Checkpoint.save ck ~path;
         if ck.Resilience.Checkpoint.iter >= 3 then raise Killed)
       c2 ctx2
   with
  | () ->
      Obs.Log.err "restart demo: run was expected to be killed";
      exit 1
  | exception Killed ->
      Obs.Log.info
        "killed after iteration 3 (latest checkpoint survives at %s)" path);
  (* "Reboot": fresh program instance and context, resume from disk under
     real domains. *)
  let ck = Resilience.Checkpoint.load ~path in
  Sys.remove path;
  let p3 = mk () in
  let c3 = compile p3 in
  let ctx3 = Interp.Run.create c3.Spmd.Prog.source in
  Spmd.Exec.run ~sched:`Domains ~restore:ck c3 ctx3;
  let got =
    (region_data ctx3 p3, List.sort compare (Interp.Run.scalars ctx3))
  in
  if got = want then begin
    Obs.Log.info
      "restart demo: PASS (resumed at iteration %d, results bit-identical)"
      (ck.Resilience.Checkpoint.iter + 1);
    exit 0
  end
  else begin
    Obs.Log.err "restart demo: FAIL (resumed run diverged)";
    exit 1
  end
