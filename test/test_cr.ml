(* Tests for the control replication pipeline: golden structure tests on the
   paper's Fig. 2 program and end-to-end equivalence between sequential
   execution and SPMD execution of the compiled program, across shard
   counts, schedules and optimization configurations. *)

open Regions
open Ir

let check = Alcotest.check

(* ---------- helpers ---------- *)

let run_seq prog =
  let ctx = Interp.Run.create prog in
  Interp.Run.run ctx;
  ctx

let run_spmd ?sched config prog =
  let compiled = Cr.Pipeline.compile config prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run ?sched compiled ctx;
  (ctx, compiled)

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

(* The two contexts come from two instantiations of the same fixture, whose
   region objects differ; compare by (region name, field name, id, value). *)
let same_results (prog_a, ctx_a) (prog_b, ctx_b) =
  let a = region_data ctx_a prog_a and b = region_data ctx_b prog_b in
  let scalars_equal =
    List.for_all
      (fun name -> Interp.Run.scalar ctx_a name = Interp.Run.scalar ctx_b name)
      (Program.scalar_names prog_a)
  in
  a = b && scalars_equal

let equivalence_case name ?sched config mkprog =
  Alcotest.test_case name `Quick (fun () ->
      let prog1 = mkprog () in
      let seq_ctx = run_seq prog1 in
      let prog2 = mkprog () in
      let spmd_ctx, _ = run_spmd ?sched config prog2 in
      check Alcotest.bool
        (name ^ ": SPMD result equals sequential")
        true
        (same_results (prog1, seq_ctx) (prog2, spmd_ctx)))

(* Two instantiations of the same fixture build distinct region objects, so
   compare by (region name, field, id, value) — which region_data does. *)

(* ---------- golden structure tests on Fig. 2 ---------- *)

let fig2_block config =
  let prog = Test_fixtures.Fixtures.fig2 () in
  let compiled = Cr.Pipeline.compile config prog in
  let blocks =
    List.filter_map
      (function Spmd.Prog.Replicated b -> Some b | Spmd.Prog.Seq _ -> None)
      compiled.Spmd.Prog.items
  in
  match blocks with
  | [ b ] -> (compiled, b)
  | l -> Alcotest.failf "expected exactly one replicated block, got %d" (List.length l)

let rec count_instrs pred instrs =
  List.fold_left
    (fun acc i ->
      let nested =
        match i with Spmd.Prog.For_time { body; _ } -> count_instrs pred body | _ -> 0
      in
      acc + nested + if pred i then 1 else 0)
    0 instrs

let is_copy = function Spmd.Prog.Copy _ -> true | _ -> false
let is_launch = function Spmd.Prog.Launch _ -> true | _ -> false
let is_await = function Spmd.Prog.Await _ -> true | _ -> false
let is_release = function Spmd.Prog.Release _ -> true | _ -> false
let is_barrier = function Spmd.Prog.Barrier -> true | _ -> false

let test_fig2_structure () =
  let _, b = fig2_block (Cr.Pipeline.default ~shards:2) in
  (* Fig. 4b/4d: inits for PA, PB, QB; one intersection copy PB -> QB in the
     loop; finalizes for the written partitions PA and PB. *)
  check Alcotest.int "init copies" 3 (count_instrs is_copy b.Spmd.Prog.init);
  check Alcotest.int "loop copies" 1 (count_instrs is_copy b.Spmd.Prog.body);
  check Alcotest.int "finalize copies" 2
    (count_instrs is_copy b.Spmd.Prog.finalize);
  check Alcotest.int "launches" 2 (count_instrs is_launch b.Spmd.Prog.body);
  (* §3.4: one await after the copy, one release after the last consumer. *)
  check Alcotest.int "awaits" 1 (count_instrs is_await b.Spmd.Prog.body);
  check Alcotest.int "releases" 1 (count_instrs is_release b.Spmd.Prog.body);
  check Alcotest.int "no barriers in p2p mode" 0
    (count_instrs is_barrier b.Spmd.Prog.body);
  (* The loop copy goes PB -> QB with sparse intersections. *)
  let copy =
    List.find_map
      (function
        | Spmd.Prog.For_time { body; _ } ->
            List.find_map
              (function Spmd.Prog.Copy c -> Some c | _ -> None)
              body
        | _ -> None)
      b.Spmd.Prog.body
  in
  match copy with
  | None -> Alcotest.fail "no loop copy"
  | Some c ->
      check Alcotest.bool "src PB" true (c.Spmd.Prog.src = Spmd.Prog.Opart "PB");
      check Alcotest.bool "dst QB" true (c.Spmd.Prog.dst = Spmd.Prog.Opart "QB");
      check Alcotest.bool "sparse" true (c.Spmd.Prog.pairs = `Sparse)

let test_fig2_barrier_mode () =
  let config =
    { (Cr.Pipeline.default ~shards:2) with Cr.Pipeline.sync = `Barrier }
  in
  let _, b = fig2_block config in
  (* Fig. 4c: two barriers around the single loop copy. *)
  check Alcotest.int "barriers" 2 (count_instrs is_barrier b.Spmd.Prog.body)

let test_fig2_no_placement_has_more_copies () =
  let on = Cr.Pipeline.default ~shards:2 in
  let off = { on with Cr.Pipeline.placement = false } in
  let _, bon = fig2_block on in
  let _, boff = fig2_block off in
  (* Without placement, the write to PA also copies (PA aliases nothing, so
     here counts coincide) — the real difference shows on programs with
     repeated writes; at minimum placement never adds copies. *)
  check Alcotest.bool "placement does not add copies" true
    (count_instrs is_copy bon.Spmd.Prog.body
    <= count_instrs is_copy boff.Spmd.Prog.body)

let test_fig2_intersections_nonempty () =
  let prog = Test_fixtures.Fixtures.fig2 () in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:4) prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  let stats = Spmd.Exec.fresh_stats () in
  Spmd.Exec.run ~stats compiled ctx;
  check Alcotest.bool "some non-empty intersections" true
    (stats.Spmd.Exec.isect.Spmd.Intersections.nonempty > 0);
  check Alcotest.bool "shallow phase pruned or kept pairs" true
    (stats.Spmd.Exec.isect.Spmd.Intersections.candidates
    >= stats.Spmd.Exec.isect.Spmd.Intersections.nonempty)

(* The dead/redundant copy elimination: write the same partition twice with
   no reads of the aliased reader in between — placement must drop the first
   copy. The consumer writes a second region so the launch stays free of
   loop-carried dependencies. *)
let double_write_program () =
  let fv = Test_fixtures.Fixtures.fv in
  let b = Program.Builder.create ~name:"double-write" in
  let r1 = Program.Builder.region b ~name:"R1" (Index_space.of_range 12) [ fv ] in
  let r2 = Program.Builder.region b ~name:"R2" (Index_space.of_range 12) [ fv ] in
  let pa =
    Program.Builder.partition b ~name:"P" (fun ~name ->
        Partition.block ~name r1 ~pieces:3)
  in
  let _q =
    Program.Builder.partition b ~name:"Q" (fun ~name ->
        Partition.image ~name ~target:r1 ~src:pa (fun e -> [ (e + 1) mod 12 ]))
  in
  let _s =
    Program.Builder.partition b ~name:"S" (fun ~name ->
        Partition.block ~name r2 ~pieces:3)
  in
  Program.Builder.space b ~name:"I" 3;
  let bump name delta =
    Task.make ~name
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun id ->
            Accessor.set accs.(0) fv id (Accessor.get accs.(0) fv id +. delta));
        0.)
  in
  let reader =
    Task.make ~name:"consume"
      ~params:
        [
          { Task.pname = "out"; privs = [ Privilege.writes fv ] };
          { Task.pname = "inp"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        let out = accs.(0) and inp = accs.(1) in
        Accessor.iter out (fun id ->
            let other = (id + 1) mod 12 in
            Accessor.set out fv id
              ((Accessor.get out fv id *. 0.5)
              +. (Accessor.get inp fv other *. 0.25)));
        0.)
  in
  Program.Builder.task b (bump "bump1" 1.);
  Program.Builder.task b (bump "bump2" 2.);
  Program.Builder.task b reader;
  let module Syn = Program.Syntax in
  Program.Builder.body b
    [
      Syn.for_time "t" 2
        [
          Syn.forall "I" (Syn.call "bump1" [ Syn.part "P" ]);
          Syn.forall "I" (Syn.call "bump2" [ Syn.part "P" ]);
          Syn.forall "I" (Syn.call "consume" [ Syn.part "S"; Syn.part "Q" ]);
        ];
    ];
  Program.Builder.finish b

let test_placement_removes_redundant_copy () =
  let on = Cr.Pipeline.default ~shards:2 in
  let off = { on with Cr.Pipeline.placement = false } in
  let compile cfg =
    let compiled = Cr.Pipeline.compile cfg (double_write_program ()) in
    match
      List.find_map
        (function Spmd.Prog.Replicated b -> Some b | _ -> None)
        compiled.Spmd.Prog.items
    with
    | Some b -> count_instrs is_copy b.Spmd.Prog.body
    | None -> Alcotest.fail "no block"
  in
  (* Naive: a copy P->Q after each of the two bumps. Placed: the copy after
     bump1 is redundant (Q unread until consume). *)
  check Alcotest.int "naive copies" 2 (compile off);
  check Alcotest.int "placed copies" 1 (compile on)

(* ---------- equivalence: Fig. 2 ---------- *)

let fig2_equivalences =
  let mk () = Test_fixtures.Fixtures.fig2 ~n:24 ~nt:6 ~timesteps:4 () in
  let d s = Cr.Pipeline.default ~shards:s in
  [
    equivalence_case "fig2 1 shard" (d 1) mk;
    equivalence_case "fig2 2 shards" (d 2) mk;
    equivalence_case "fig2 3 shards (uneven)" (d 3) mk;
    equivalence_case "fig2 6 shards" (d 6) mk;
    equivalence_case "fig2 random schedule" ~sched:(`Random 42) (d 4) mk;
    equivalence_case "fig2 barrier sync"
      { (d 4) with Cr.Pipeline.sync = `Barrier }
      mk;
    equivalence_case "fig2 dense intersections"
      { (d 4) with Cr.Pipeline.intersections = `Dense }
      mk;
    equivalence_case "fig2 no placement"
      { (d 4) with Cr.Pipeline.placement = false }
      mk;
    equivalence_case "fig2 flat trees"
      { (d 4) with Cr.Pipeline.hierarchical = false }
      mk;
    equivalence_case "fig2 on real domains" ~sched:`Domains (d 4) mk;
  ]

(* ---------- equivalence: random programs ---------- *)

let random_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"random programs: SPMD == sequential"
       ~print:(fun (seed, shards, sched_seed) ->
         Printf.sprintf "seed=%d shards=%d sched=%d" seed shards sched_seed)
       QCheck2.Gen.(
         let* seed = int_range 0 100000 in
         let* shards = int_range 1 5 in
         let* sched_seed = int_range 0 1000 in
         return (seed, shards, sched_seed))
       (fun (seed, shards, sched_seed) ->
         let prog1 = Test_fixtures.Fixtures.random_program seed in
         (match Check.check prog1 with
         | Ok () -> ()
         | Error es ->
             QCheck2.Test.fail_reportf "generated program ill-formed: %s"
               (String.concat "; "
                  (List.map (Format.asprintf "%a" Check.pp_error) es)));
         let seq_ctx = run_seq prog1 in
         let prog2 = Test_fixtures.Fixtures.random_program seed in
         let spmd_ctx, _ =
           run_spmd ~sched:(`Random sched_seed)
             (Cr.Pipeline.default ~shards)
             prog2
         in
         same_results (prog1, seq_ctx) (prog2, spmd_ctx)))

let random_equivalence_domains =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"random programs: domains == sequential"
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck2.Gen.(int_range 0 100000)
       (fun seed ->
         let prog1 = Test_fixtures.Fixtures.random_program seed in
         let seq_ctx = run_seq prog1 in
         let prog2 = Test_fixtures.Fixtures.random_program seed in
         let spmd_ctx, _ =
           run_spmd ~sched:`Domains (Cr.Pipeline.default ~shards:4) prog2
         in
         same_results (prog1, seq_ctx) (prog2, spmd_ctx)))

let random_equivalence_configs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"random programs: all configs agree"
       ~print:(fun (seed, barrier, dense, placement, hier) ->
         Printf.sprintf "seed=%d barrier=%b dense=%b placement=%b hier=%b"
           seed barrier dense placement hier)
       QCheck2.Gen.(
         let* seed = int_range 0 100000 in
         let* barrier = bool in
         let* dense = bool in
         let* placement = bool in
         let* hier = bool in
         return (seed, barrier, dense, placement, hier))
       (fun (seed, barrier, dense, placement, hier) ->
         let config =
           {
             Cr.Pipeline.shards = 3;
             sync = (if barrier then `Barrier else `P2p);
             intersections = (if dense then `Dense else `Sparse);
             placement;
             hierarchical = hier;
           }
         in
         let prog1 = Test_fixtures.Fixtures.random_program seed in
         let seq_ctx = run_seq prog1 in
         let prog2 = Test_fixtures.Fixtures.random_program seed in
         let spmd_ctx, _ = run_spmd config prog2 in
         same_results (prog1, seq_ctx) (prog2, spmd_ctx)))

(* ---------- locality: multiple independent blocks ---------- *)

(* Control replication is a local transformation (§2.2): a program with two
   separate time loops, with sequential statements between them, gets two
   independent replicated blocks and still matches sequential execution. *)
let two_block_program () =
  let fv = Test_fixtures.Fixtures.fv in
  let fw = Test_fixtures.Fixtures.fw in
  let b = Program.Builder.create ~name:"two-blocks" in
  let r1 =
    Program.Builder.region b ~name:"R1" (Index_space.of_range 16) [ fv; fw ]
  in
  let r2 = Program.Builder.region b ~name:"R2" (Index_space.of_range 16) [ fv ] in
  let p1 =
    Program.Builder.partition b ~name:"P1" (fun ~name ->
        Partition.block ~name r1 ~pieces:4)
  in
  let _q1 =
    Program.Builder.partition b ~name:"Q1" (fun ~name ->
        Partition.image ~name ~target:r1 ~src:p1 (fun e -> [ (e + 5) mod 16 ]))
  in
  let _p2 =
    Program.Builder.partition b ~name:"P2" (fun ~name ->
        Partition.block ~name r2 ~pieces:4)
  in
  Program.Builder.space b ~name:"I" 4;
  (* Writes v reading w through the aliased halo (field-disjoint, so
     iterations are independent); a second diagonal task refreshes w. *)
  let stepper =
    Task.make ~name:"stepper"
      ~params:
        [
          { Task.pname = "out"; privs = [ Privilege.writes fv ] };
          { Task.pname = "inp"; privs = [ Privilege.reads fw ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i
              ((Accessor.get accs.(0) fv i *. 0.5)
              +. Accessor.get accs.(1) fw ((i + 5) mod 16)));
        0.)
  in
  let refresh =
    Task.make ~name:"refresh"
      ~params:
        [ { Task.pname = "out"; privs = [ Privilege.writes fw; Privilege.reads fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fw i (Accessor.get accs.(0) fv i +. 0.25));
        0.)
  in
  let seed2 =
    Task.make ~name:"seed2"
      ~params:
        [
          { Task.pname = "dst"; privs = [ Privilege.writes fv ] };
          { Task.pname = "src"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i (Accessor.get accs.(1) fv i +. 10.));
        0.)
  in
  let bump2 =
    Task.make ~name:"bump2"
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i (Accessor.get accs.(0) fv i *. 1.25));
        0.)
  in
  let init =
    Task.make ~name:"init"
      ~params:[ { Task.pname = "r"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i (float_of_int (i + 1)));
        0.)
  in
  List.iter (Program.Builder.task b) [ stepper; refresh; seed2; bump2; init ];
  let module Syn = Program.Syntax in
  Program.Builder.body b
    [
      Syn.run (Syn.call "init" [ Syn.whole "R1" ]);
      Syn.for_time "t" 3
        [
          Syn.forall "I" (Syn.call "stepper" [ Syn.part "P1"; Syn.part "Q1" ]);
          Syn.forall "I" (Syn.call "refresh" [ Syn.part "P1" ]);
        ];
      (* Sequential statement between the two replicated blocks. *)
      Syn.run (Syn.call "seed2" [ Syn.whole "R2"; Syn.whole "R1" ]);
      Syn.for_time "u" 2 [ Syn.forall "I" (Syn.call "bump2" [ Syn.part "P2" ]) ];
    ];
  Program.Builder.finish b

let test_two_blocks () =
  let compiled =
    Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) (two_block_program ())
  in
  let blocks =
    List.filter
      (function Spmd.Prog.Replicated _ -> true | Spmd.Prog.Seq _ -> false)
      compiled.Spmd.Prog.items
  in
  check Alcotest.int "two independent replicated blocks" 2 (List.length blocks);
  let p1 = two_block_program () in
  let seq = run_seq p1 in
  let p2 = two_block_program () in
  let spmd, _ = run_spmd ~sched:(`Random 3) (Cr.Pipeline.default ~shards:2) p2 in
  check Alcotest.bool "two-block program equivalent" true
    (same_results (p1, seq) (p2, spmd))

(* ---------- normalization ---------- *)

let test_normalize_creates_partition () =
  let prog = Test_fixtures.Fixtures.random_program 7 in
  let norm = Cr.Normalize.program prog in
  (* The rot1 projection appears in most generated programs; when it does, a
     derived partition must exist and launches must use identity
     projections only. *)
  let rec launches stmts =
    List.concat_map
      (function
        | Types.Index_launch { launch; _ }
        | Types.Index_launch_reduce { launch; _ } ->
            [ launch ]
        | Types.For_time { body; _ } -> launches body
        | _ -> [])
      stmts
  in
  List.iter
    (fun (l : Types.launch) ->
      List.iter
        (function
          | Types.Part (_, Types.Fn _) ->
              Alcotest.fail "Fn projection survived normalization"
          | Types.Part (_, Types.Id) | Types.Whole _ -> ())
        l.Types.rargs)
    (launches norm.Program.body)

let test_normalize_idempotent () =
  let prog = Test_fixtures.Fixtures.random_program 7 in
  let once = Cr.Normalize.program prog in
  let twice = Cr.Normalize.program once in
  check Alcotest.int "same decl count"
    (List.length once.Program.decls)
    (List.length twice.Program.decls)

(* ---------- printed SPMD form ---------- *)

let test_fig2_pretty_printed () =
  (* The printed SPMD form carries the Fig. 4d structure: shard-relative
     launches, the intersection copy, and its synchronisation. *)
  let compiled, _ = (fun () ->
      let prog = Test_fixtures.Fixtures.fig2 () in
      let c = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) prog in
      (c, prog)) ()
  in
  let text = Spmd.Prog.to_string compiled in
  List.iter
    (fun needle ->
      check Alcotest.bool ("contains " ^ needle) true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re text 0); true
         with Not_found -> false))
    [ "for i in my(I)"; "QB[*] <- PB[*]"; "await copy#"; "release copy#";
      "intersections" ]

(* ---------- credits ---------- *)

let test_credits_recorded () =
  (* A copy whose Release precedes it in program order (reader-before-copy)
     must start with zero credits; fig2's copy has its reader after it, so
     all credits default to 1 (none recorded). *)
  let prog = Test_fixtures.Fixtures.fig2 () in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) prog in
  List.iter
    (function
      | Spmd.Prog.Replicated b ->
          check Alcotest.bool "all fig2 credits default" true
            (List.for_all (fun (_, c) -> c = 1) b.Spmd.Prog.credits
            || b.Spmd.Prog.credits = [])
      | Spmd.Prog.Seq _ -> ())
    compiled.Spmd.Prog.items;
  (* The two-block program's first loop reads the halo before the copy in
     body order on the w field... verify at least that executing with the
     recorded credits terminates (covered above) and that credits only
     mention body copies. *)
  let prog2 = two_block_program () in
  let compiled2 = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) prog2 in
  List.iter
    (function
      | Spmd.Prog.Replicated b ->
          List.iter
            (fun (id, credit) ->
              check Alcotest.bool "credit is 0 or 1" true (credit = 0 || credit = 1);
              check Alcotest.bool "credit refers to a known copy" true
                (List.exists
                   (fun (c : Spmd.Prog.copy) -> c.Spmd.Prog.copy_id = id)
                   b.Spmd.Prog.copies))
            b.Spmd.Prog.credits
      | Spmd.Prog.Seq _ -> ())
    compiled2.Spmd.Prog.items

(* ---------- alias analysis ---------- *)

let test_alias_hierarchical () =
  let fv = Test_fixtures.Fixtures.fv in
  let b = Program.Builder.create ~name:"hier" in
  let r = Program.Builder.region b ~name:"B" (Index_space.of_range 40) [ fv ] in
  let split =
    Program.Builder.partition b ~name:"split" (fun ~name ->
        Partition.of_coloring ~name r ~colors:2 (fun e ->
            if e mod 10 < 8 then 0 else 1))
  in
  let prog_private = Partition.sub split 0
  and prog_ghost = Partition.sub split 1 in
  let prog = Program.Builder.finish b in
  let tree = prog.Program.tree in
  let pb = Partition.block ~name:"PB" prog_private ~pieces:4 in
  let sb = Partition.block ~name:"SB" prog_ghost ~pieces:4 in
  Region_tree.register_partition tree pb;
  Region_tree.register_partition tree sb;
  check Alcotest.bool "hierarchical proves disjoint" false
    (Cr.Alias.may_alias ~hierarchical:true tree pb sb);
  check Alcotest.bool "flat says aliased" true
    (Cr.Alias.may_alias ~hierarchical:false tree pb sb)

let () =
  Alcotest.run "control-replication"
    [
      ( "golden",
        [
          Alcotest.test_case "fig2 structure" `Quick test_fig2_structure;
          Alcotest.test_case "fig2 barrier mode" `Quick test_fig2_barrier_mode;
          Alcotest.test_case "placement monotone" `Quick
            test_fig2_no_placement_has_more_copies;
          Alcotest.test_case "dynamic intersections" `Quick
            test_fig2_intersections_nonempty;
          Alcotest.test_case "placement removes redundant copies" `Quick
            test_placement_removes_redundant_copy;
        ] );
      ("fig2-equivalence", fig2_equivalences);
      ( "random-equivalence",
        [ random_equivalence; random_equivalence_configs;
          random_equivalence_domains ] );
      ( "locality",
        [ Alcotest.test_case "two replicated blocks" `Quick test_two_blocks ] );
      ( "normalize",
        [
          Alcotest.test_case "no Fn projections survive" `Quick
            test_normalize_creates_partition;
          Alcotest.test_case "idempotent" `Quick test_normalize_idempotent;
        ] );
      ( "alias",
        [ Alcotest.test_case "hierarchical vs flat" `Quick test_alias_hierarchical ] );
      ( "spmd-form",
        [
          Alcotest.test_case "fig2 pretty printed" `Quick
            test_fig2_pretty_printed;
          Alcotest.test_case "credits well-formed" `Quick test_credits_recorded;
        ] );
    ]
