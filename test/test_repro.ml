(* Regression test for the seed-951 miscompile hunt (formerly
   tools/repro951.ml and repro951b.ml): a 7-shard compile of the
   fixture's random program must reproduce the sequential interpreter
   bitwise under every scheduler, both data planes' default, and the
   distributed loopback backend. The seed is kept because it once
   exposed a scheduler-dependent divergence; the domains scheduler runs
   several trials since its interleaving varies. *)

let seed = 951
let shards = 7

let reference () =
  let prog = Test_fixtures.Fixtures.random_program seed in
  let ctx = Interp.Run.create prog in
  Interp.Run.run ctx;
  Net.Launch.snapshot_state ctx

let compile () =
  let prog = Test_fixtures.Fixtures.random_program seed in
  Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog

let check_equal name expected got =
  if not (Net.Launch.states_equal expected got) then
    Alcotest.failf "%s: diverged from the sequential interpreter" name

let test_steppers () =
  let expected = reference () in
  List.iter
    (fun (name, sched) ->
      let compiled = compile () in
      let ctx = Interp.Run.create compiled.Spmd.Prog.source in
      Spmd.Exec.run ~sched compiled ctx;
      check_equal name expected (Net.Launch.snapshot_state ctx))
    [ ("round_robin", `Round_robin); ("random", `Random ((seed * 31) + 7)) ]

let test_domains () =
  let expected = reference () in
  for trial = 1 to 3 do
    let compiled = compile () in
    let ctx = Interp.Run.create compiled.Spmd.Prog.source in
    Spmd.Exec.run ~sched:`Domains compiled ctx;
    check_equal (Printf.sprintf "domains trial %d" trial) expected
      (Net.Launch.snapshot_state ctx)
  done

let test_loopback () =
  let expected = reference () in
  let compiled = compile () in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  Net.Launch.run_loopback ~sanitize:true compiled ctx;
  check_equal "net loopback" expected (Net.Launch.snapshot_state ctx)

let () =
  Alcotest.run "repro951"
    [
      ( "seed 951 @ 7 shards",
        [
          Alcotest.test_case "cooperative steppers" `Quick test_steppers;
          Alcotest.test_case "domains x3" `Quick test_domains;
          Alcotest.test_case "net loopback" `Quick test_loopback;
        ] );
    ]
