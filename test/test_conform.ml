(* Unit tests for the conformance harness: generator well-formedness and
   determinism, spec JSON round-trips, the differential oracle on known
   seeds, the shrinker's contract, and the race sanitizer flagging a
   deliberately removed sync op. *)

open Conform

(* ---------- generator ---------- *)

let test_generator_wellformed () =
  for seed = 0 to 59 do
    let prog = Gen.program seed in
    match Ir.Check.check prog with
    | Ok () -> ()
    | Error errs ->
        Alcotest.failf "seed %d: Ir.Check errors: %s" seed
          (String.concat "; "
             (List.map
                (fun (e : Ir.Check.error) -> e.where ^ ": " ^ e.what)
                errs))
  done

let test_generator_deterministic () =
  for seed = 0 to 19 do
    let a = Gen.spec seed and b = Gen.spec seed in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d deterministic" seed)
      true (Spec.equal a b)
  done;
  (* Different seeds almost surely give different specs. *)
  let distinct = ref 0 in
  for seed = 0 to 19 do
    if not (Spec.equal (Gen.spec seed) (Gen.spec (seed + 1000))) then
      incr distinct
  done;
  Alcotest.(check bool) "seeds vary" true (!distinct > 10)

let test_spec_json_roundtrip () =
  for seed = 0 to 39 do
    let s = Gen.spec seed in
    let s' = Spec.of_json (Spec.to_json s) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d round-trips" seed)
      true (Spec.equal s s');
    (* And through the actual string form, as repro files store it. *)
    let s'' =
      Spec.of_json (Obs.Json.of_string_exn (Obs.Json.to_string (Spec.to_json s)))
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d round-trips via string" seed)
      true (Spec.equal s s'')
  done

let test_generator_eligible () =
  (* Unless the spec opted into [loop_if], the generated time loop must be
     replicable: compiling must produce at least one Replicated item. *)
  let replicated = ref 0 and total = ref 0 in
  for seed = 0 to 59 do
    let s = Gen.spec seed in
    if not s.Spec.loop_if then begin
      incr total;
      let prog = Gen.build s in
      let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) prog in
      let has_block =
        List.exists
          (function Spmd.Prog.Replicated _ -> true | Spmd.Prog.Seq _ -> false)
          compiled.Spmd.Prog.items
      in
      if has_block then incr replicated
      else
        Alcotest.failf "seed %d: eligible spec compiled to no replicated block"
          seed
    end
  done;
  Alcotest.(check bool) "some specs tested" true (!total > 30)

(* ---------- oracle ---------- *)

let test_oracle_smoke () =
  (* Every configuration (3 schedulers x 2 data planes, sanitizer armed)
     must reproduce the implicit semantics bitwise on these seeds. *)
  for seed = 0 to 7 do
    match Oracle.check ~shards:(Fuzz.shards_of_case seed) (Gen.spec seed) with
    | None -> ()
    | Some f ->
        Alcotest.failf "seed %d: %s" seed
          (Format.asprintf "%a" Oracle.pp_failure f)
  done

(* A spec whose compiled form has sync ops to drop (a ghost copy chain) —
   the raw material for the mutation tests. The time loop must run at
   least twice: a Release dropped after a copy's *last* occurrence is
   semantically harmless, so with [steps = 1] some drops are (correctly)
   undetectable. *)
let find_mutable_case () =
  let rec go seed =
    if seed > 200 then Alcotest.fail "no spec with sync ops found"
    else
      let spec = Gen.spec seed in
      let prog = Gen.build spec in
      let compiled =
        Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) prog
      in
      if spec.Spec.steps >= 2 && Mutate.sync_count compiled > 0 then
        (seed, spec, compiled)
      else go (seed + 1)
  in
  go 0

let test_mutation_caught () =
  (* Dropping any single sync op must be caught by the oracle (race,
     mismatch, or deadlock) under the deterministic stepper schedules. *)
  let _, spec, compiled = find_mutable_case () in
  let n = Mutate.sync_count compiled in
  Alcotest.(check bool) "has sync ops" true (n > 0);
  for k = 0 to n - 1 do
    match
      Oracle.check ~shards:3 ~mutate:k ~scheds:Oracle.stepper_scheds spec
    with
    | Some _ -> ()
    | None ->
        let _, desc = Option.get (Mutate.drop_nth_sync compiled k) in
        Alcotest.failf "dropping sync op %d (%s) went undetected" k desc
  done

let test_sanitizer_flags_dropped_await () =
  (* At least one dropped sync op must surface as a sanitizer Race (not
     just a value mismatch): the race detector is an independent check of
     Cr.Sync, and happens-before detection means the deterministic
     round-robin schedule suffices. *)
  let _, spec, compiled = find_mutable_case () in
  let n = Mutate.sync_count compiled in
  let kinds =
    List.init n (fun k ->
        match
          Oracle.check ~shards:3 ~mutate:k ~scheds:Oracle.stepper_scheds spec
        with
        | Some f -> Some f.Oracle.kind
        | None -> None)
  in
  Alcotest.(check bool)
    "some mutation flagged as a race" true
    (List.mem (Some Oracle.Race) kinds)

(* ---------- shrinker ---------- *)

let test_shrinker_on_mutation () =
  (* End-to-end negative control: a campaign with a sync op dropped must
     fail, auto-shrink, and leave a replayable repro of <= 5 tasks that
     still fails with the same kind. *)
  let seed, _, _ = find_mutable_case () in
  let out = Filename.temp_file "crc-fuzz-test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let report =
        Fuzz.campaign ~out ~mutate:0 ~shards:3 ~seed ~count:1 ()
      in
      match report.Fuzz.repro with
      | None -> Alcotest.fail "mutated campaign did not fail"
      | Some (r, path) ->
          Alcotest.(check bool)
            "shrunk to <= 5 tasks" true
            (Spec.task_count r.Repro.spec <= 5);
          Alcotest.(check bool)
            "shrunk spec no larger than original" true
            (Spec.size r.Repro.spec <= Spec.size (Gen.spec seed));
          (* Replay from the file reproduces a failure of the same kind. *)
          (match Fuzz.replay path with
          | Some f' ->
              Alcotest.(check string)
                "same failure kind"
                (Oracle.kind_to_string r.Repro.failure.Oracle.kind)
                (Oracle.kind_to_string f'.Oracle.kind)
          | None -> Alcotest.fail "shrunk repro no longer fails"))

let test_shrinker_strictly_decreases () =
  (* Candidate moves must strictly reduce the size measure or be filtered;
     [Shrink.run] with an always-true predicate must terminate at a
     local minimum no larger than the input. *)
  for seed = 0 to 9 do
    let s = Gen.spec seed in
    let s' = Shrink.run (fun _ -> true) s in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d shrinks monotonically" seed)
      true
      (Spec.size s' <= Spec.size s);
    List.iter
      (fun c ->
        ignore (Spec.size c) (* candidates must at least be well-typed *))
      (Shrink.candidates s)
  done

let () =
  Alcotest.run "conform"
    [
      ( "generator",
        [
          Alcotest.test_case "wellformed" `Quick test_generator_wellformed;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "json-roundtrip" `Quick test_spec_json_roundtrip;
          Alcotest.test_case "eligible" `Quick test_generator_eligible;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "smoke" `Quick test_oracle_smoke;
          Alcotest.test_case "mutations-caught" `Quick test_mutation_caught;
          Alcotest.test_case "sanitizer-races" `Quick
            test_sanitizer_flags_dropped_await;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "mutation-shrinks" `Quick
            test_shrinker_on_mutation;
          Alcotest.test_case "monotone" `Quick
            test_shrinker_strictly_decreases;
        ] );
    ]
