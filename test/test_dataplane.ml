(* Tests for the fast data plane: copy plans vs the per-element baseline
   (bitwise, on random sparse/aliased/non-covering index sets and through
   whole random programs under all three schedulers), O(1) instance
   addressing (including the no-per-access-allocation regression for the
   binary-search mode), the bulk accessor closures' privilege and view
   containment checks, and the partition-pair intersection cache. *)

open Geometry
open Regions

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fv = Field.make "v"
let fw = Field.make "w"

(* ---------- copy plans vs per-element transfer ---------- *)

let clone inst =
  let c = Physical.create_over (Physical.ispace inst) (Physical.fields inst) in
  List.iter
    (fun f ->
      let s = Physical.column inst f and d = Physical.column c f in
      Array.blit s 0 d 0 (Array.length s))
    (Physical.fields inst);
  c

let redops = [ Privilege.Sum; Privilege.Prod; Privilege.Min; Privilege.Max ]

(* Index-space pairs come from the conformance generator: structured
   (rectangle unions) and unstructured (sparse id sets) over one shared
   universe — aliased, non-covering, possibly empty intersections. *)
let prop_plan_matches_transfer =
  qtest "plan replay = per-element transfer (copy + reduce)" ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 3))
    (fun (seed, opi) ->
      let sa, sb =
        Conform.Gen.random_space_pair (Random.State.make [| 0xDA7A; seed |])
      in
      let src = Physical.create_over sa [ fv; fw ]
      and dst0 = Physical.create_over sb [ fv; fw ] in
      List.iter
        (fun f ->
          Index_space.iter_ids
            (fun id -> Physical.set src f id (Float.of_int id +. 0.25))
            sa)
        [ fv; fw ];
      Index_space.iter_ids
        (fun id -> Physical.set dst0 fv id (-3.5 -. Float.of_int id))
        sb;
      let op = List.nth redops opi in
      let d1 = clone dst0 and d2 = clone dst0 in
      Physical.copy_into ~fields:[ fv ] ~src ~dst:d1 ();
      let plan = Spmd.Copy_plan.build ~src ~dst:d2 ~fields:[ fv ] () in
      Spmd.Copy_plan.copy plan ~src ~dst:d2;
      let r1 = clone dst0 and r2 = clone dst0 in
      Physical.reduce_into ~op ~fields:[ fv; fw ] ~src ~dst:r1 ();
      let rplan = Spmd.Copy_plan.build ~src ~dst:r2 ~fields:[ fv; fw ] () in
      Spmd.Copy_plan.reduce rplan ~op ~src ~dst:r2;
      Physical.to_alist d1 fv = Physical.to_alist d2 fv
      && Physical.to_alist d1 fw = Physical.to_alist d2 fw
      && Physical.to_alist r1 fv = Physical.to_alist r2 fv
      && Physical.to_alist r1 fw = Physical.to_alist r2 fw)

let test_plan_structured_halo () =
  (* The ghost-exchange shape: a structured tile feeding a neighbour's halo
     slab, both cut from the same 2-d universe. *)
  let u = Rect.make2 ~lo:(0, 0) ~hi:(31, 31) in
  let tile =
    Index_space.of_rects ~universe:u [ Rect.make2 ~lo:(0, 0) ~hi:(15, 31) ]
  in
  let halo =
    Index_space.of_rects ~universe:u [ Rect.make2 ~lo:(14, 0) ~hi:(17, 31) ]
  in
  let src = Physical.create_over tile [ fv ]
  and dst0 = Physical.create_over halo [ fv ] in
  Index_space.iter_ids
    (fun id -> Physical.set src fv id (Float.of_int (id * 7))) tile;
  let d1 = clone dst0 and d2 = clone dst0 in
  Physical.copy_into ~fields:[ fv ] ~src ~dst:d1 ();
  let plan = Spmd.Copy_plan.build ~src ~dst:d2 ~fields:[ fv ] () in
  Spmd.Copy_plan.copy plan ~src ~dst:d2;
  check Alcotest.bool "structured halo copy matches" true
    (Physical.to_alist d1 fv = Physical.to_alist d2 fv);
  (* Two rows of 32 intersect; runs are maximal, so they fuse into one. *)
  check Alcotest.int "volume" 64 (Spmd.Copy_plan.volume plan);
  check Alcotest.int "fused runs" 1 (Spmd.Copy_plan.nruns plan)

(* Whole-program equivalence: every scheduler, plans vs the per-element
   ablation vs the sequential interpreter, on conformance-generated
   programs (sparse/aliased partitions, ghost exchanges, reductions).
   Snapshot every root region and all scalars — field identities are
   minted fresh per build, so key on names. *)
let prop_plans_match_scalar =
  let snapshot ctx =
    ( List.sort compare (Interp.Run.scalars ctx),
      List.map
        (fun (name, inst) ->
          ( name,
            List.sort compare
              (List.map
                 (fun f -> (Field.name f, Physical.to_alist inst f))
                 (Physical.fields inst)) ))
        (Interp.Run.root_instances ctx) )
  in
  qtest "Plans = Scalar = sequential under all schedulers" ~count:20
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let spec = Conform.Gen.spec seed in
      let spmd data_plane sched =
        let compiled =
          Cr.Pipeline.compile
            (Cr.Pipeline.default ~shards:3)
            (Conform.Gen.build spec)
        in
        let ctx = Interp.Run.create compiled.Spmd.Prog.source in
        Spmd.Exec.run ~sched ~data_plane compiled ctx;
        snapshot ctx
      in
      let reference =
        let ctx = Interp.Run.create (Conform.Gen.build spec) in
        Interp.Run.run ctx;
        snapshot ctx
      in
      let agrees st = compare st reference = 0 in
      List.for_all
        (fun sched -> agrees (spmd `Plans sched) && agrees (spmd `Scalar sched))
        [ `Round_robin; `Random (seed land 0xff) ]
      && agrees (spmd `Plans `Domains))

let test_plan_stats () =
  let run data_plane =
    let prog = Test_fixtures.Fixtures.fig2 () in
    let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) prog in
    let ctx = Interp.Run.create compiled.Spmd.Prog.source in
    let stats = Spmd.Exec.fresh_stats () in
    Spmd.Exec.run ~stats ~data_plane compiled ctx;
    stats
  in
  let p = run `Plans in
  let builds = Atomic.get p.Spmd.Exec.plan_builds
  and replays = Atomic.get p.Spmd.Exec.plan_replays
  and volume = Atomic.get p.Spmd.Exec.blit_volume in
  check Alcotest.bool "plans compiled" true (builds > 0);
  (* The time loop re-executes each copy against its memoized plan. *)
  check Alcotest.bool "replays exceed builds" true (replays > builds);
  check Alcotest.bool "blit volume counted" true (volume > 0);
  let s = run `Scalar in
  check Alcotest.int "scalar ablation builds nothing" 0
    (Atomic.get s.Spmd.Exec.plan_builds);
  check Alcotest.int "scalar ablation replays nothing" 0
    (Atomic.get s.Spmd.Exec.plan_replays)

(* ---------- O(1) addressing ---------- *)

let test_get_allocation_free () =
  (* Wide-span sparse ids force the binary-search addressing mode — the
     one that used to rebuild the id array on every access. Per-access
     minor allocation must now be a small size-independent constant (the
     boxed float results), not O(n). *)
  let n = 200 in
  let ids = Sorted_iset.of_list (List.init n (fun i -> i * 1000)) in
  let space = Index_space.of_iset ~universe_size:(n * 1000) ids in
  let inst = Physical.create_over space [ fv ] in
  let acc = ref 0. in
  for r = 0 to 99 do
    acc := !acc +. Physical.get inst fv (r mod n * 1000)
  done;
  let reps = 10_000 in
  let w0 = Gc.minor_words () in
  for r = 0 to reps - 1 do
    acc := !acc +. Physical.get inst fv (r mod n * 1000)
  done;
  let per = (Gc.minor_words () -. w0) /. Float.of_int reps in
  (* O(n) per-access copying would cost ~n+1 = 201 words. *)
  check Alcotest.bool
    (Printf.sprintf "per-access minor words small (%.2f)" per)
    true (per < 16.);
  check Alcotest.bool "sum sane" true (Float.is_finite !acc)

let test_addressing_modes () =
  (* Contiguous, dense-span and search instances agree on membership and
     values. *)
  let mk ids universe =
    let space = Index_space.of_iset ~universe_size:universe ids in
    let inst = Physical.create_over space [ fv ] in
    Sorted_iset.iter
      (fun id -> Physical.set inst fv id (Float.of_int (id + 1)))
      ids;
    inst
  in
  let cases =
    [
      ("contiguous", Sorted_iset.of_list (List.init 50 (fun i -> i + 10)), 100);
      ( "dense",
        Sorted_iset.of_list
          (List.filter (fun i -> i mod 3 <> 1) (List.init 60 Fun.id)),
        100 );
      ("search", Sorted_iset.of_list (List.init 20 (fun i -> i * 700)), 20_000);
    ]
  in
  List.iter
    (fun (name, ids, universe) ->
      let inst = mk ids universe in
      for id = 0 to universe - 1 do
        let expect = Sorted_iset.mem ids id in
        if Physical.mem inst id <> expect then
          Alcotest.failf "%s: mem %d wrong" name id;
        if expect && Physical.get inst fv id <> Float.of_int (id + 1) then
          Alcotest.failf "%s: get %d wrong" name id
      done)
    cases

(* ---------- bulk accessor closures ---------- *)

let raises_violation f =
  match f () with
  | _ -> false
  | exception Accessor.Privilege_violation _ -> true

let test_bulk_privileges () =
  let space = Index_space.of_range 10 in
  let inst = Physical.create_over space [ fv; fw ] in
  let acc =
    Accessor.make inst ~space
      [ Privilege.reads fv; Privilege.reduces Privilege.Sum fw ]
  in
  check Alcotest.bool "writer under read-only refused" true
    (raises_violation (fun () -> Accessor.writer acc fv));
  check Alcotest.bool "reader under reduce-only refused" true
    (raises_violation (fun () -> Accessor.reader acc fw));
  check Alcotest.bool "reducer of undeclared field refused" true
    (raises_violation (fun () -> Accessor.reducer acc fv));
  check Alcotest.bool "mismatched reducer_op refused" true
    (raises_violation (fun () -> Accessor.reducer_op acc ~op:Privilege.Max fw));
  let red = Accessor.reducer acc fw in
  red 3 2.5;
  red 3 1.5;
  check (Alcotest.float 0.) "reducer folds" 4. (Physical.get inst fw 3);
  let rw = Accessor.make inst ~space [ Privilege.writes fv ] in
  check Alcotest.bool "anonymous reducer under reads-writes refused" true
    (raises_violation (fun () -> Accessor.reducer rw fv));
  let red_op = Accessor.reducer_op rw ~op:Privilege.Sum fv in
  red_op 1 2.;
  red_op 1 3.;
  check (Alcotest.float 0.) "reducer_op under reads-writes folds" 5.
    (Physical.get inst fv 1)

let test_bulk_view_containment () =
  (* A strict subview over a bigger instance: the bulk closures must refuse
     ids stored in the instance but outside the view. *)
  let whole = Index_space.of_range 20 in
  let sub =
    Index_space.of_iset ~universe_size:20
      (Sorted_iset.of_list [ 2; 3; 4; 11; 12 ])
  in
  let inst = Physical.create_over whole [ fv ] in
  Physical.set inst fv 3 7.5;
  Physical.set inst fv 9 1.0;
  let acc = Accessor.make inst ~space:sub [ Privilege.writes fv ] in
  let r = Accessor.reader acc fv and w = Accessor.writer acc fv in
  check (Alcotest.float 0.) "read inside view" 7.5 (r 3);
  check Alcotest.bool "read outside view refused" true
    (raises_violation (fun () -> r 9));
  check Alcotest.bool "write outside view refused" true
    (raises_violation (fun () -> w 9 0.));
  check Alcotest.bool "read outside instance refused" true
    (raises_violation (fun () -> r 25));
  check Alcotest.bool "mem tracks the view, not the instance" true
    (Accessor.mem acc 11 && not (Accessor.mem acc 9));
  (* iter_runs covers exactly the view. *)
  let seen = ref [] in
  Accessor.iter_runs acc (fun lo hi ->
      for id = lo to hi do
        seen := id :: !seen
      done);
  check (Alcotest.list Alcotest.int) "iter_runs = view" [ 2; 3; 4; 11; 12 ]
    (List.rev !seen)

(* ---------- equal_on ---------- *)

let test_equal_on () =
  let space = Index_space.of_range 32 in
  let a = Physical.create_over space [ fv; fw ]
  and b = Physical.create_over space [ fv; fw ] in
  Index_space.iter_ids
    (fun id ->
      Physical.set a fv id (Float.of_int id);
      Physical.set b fv id (Float.of_int id))
    space;
  check Alcotest.bool "equal instances" true (Physical.equal_on a b space [ fv; fw ]);
  Physical.set b fw 31 1e-9;
  check Alcotest.bool "last-element difference detected" false
    (Physical.equal_on a b space [ fv; fw ]);
  check Alcotest.bool "difference outside field list ignored" true
    (Physical.equal_on a b space [ fv ])

(* ---------- intersection cache ---------- *)

let mk_unstructured_partition name sets =
  let r = Region.create ~name:(name ^ "_r") (Index_space.of_range 60) [ fv ] in
  Partition.of_explicit ~name ~disjoint:false r
    (Array.map (fun s -> Index_space.of_iset ~universe_size:60 s) sets)

let normalize items =
  List.sort compare
    (List.map
       (fun (i, j, sp) -> (i, j, Sorted_iset.to_array (Index_space.ids sp)))
       items)

let test_isect_cache () =
  let src =
    mk_unstructured_partition "csrc"
      [|
        Sorted_iset.of_list [ 1; 2; 3; 40 ];
        Sorted_iset.of_list [ 10; 11 ];
        Sorted_iset.of_list [ 55 ];
      |]
  and dst =
    mk_unstructured_partition "cdst"
      [| Sorted_iset.of_list [ 2; 10; 55 ]; Sorted_iset.of_list [ 41; 42 ] |]
  in
  Spmd.Intersections.clear_cache ();
  let stats = Spmd.Intersections.fresh_stats () in
  let a = Spmd.Intersections.compute_cached ~stats ~src ~dst () in
  check Alcotest.int "first lookup misses" 0
    stats.Spmd.Intersections.cache_hits;
  let b = Spmd.Intersections.compute_cached ~stats ~src ~dst () in
  check Alcotest.int "second lookup hits" 1 stats.Spmd.Intersections.cache_hits;
  check Alcotest.bool "cached result shared" true (a == b);
  let fresh = Spmd.Intersections.compute ~src ~dst () in
  check Alcotest.bool "cached result = fresh compute" true
    (normalize a.Spmd.Intersections.items
    = normalize fresh.Spmd.Intersections.items);
  (* The cache keys on partition identity: a different pair recomputes. *)
  let c = Spmd.Intersections.compute_cached ~stats ~src:dst ~dst:src () in
  check Alcotest.int "reversed pair is a miss" 1
    stats.Spmd.Intersections.cache_hits;
  check Alcotest.bool "reversed result distinct" true (c != a);
  Spmd.Intersections.clear_cache ();
  let d = Spmd.Intersections.compute_cached ~stats ~src ~dst () in
  check Alcotest.int "cleared cache misses again" 1
    stats.Spmd.Intersections.cache_hits;
  check Alcotest.bool "recompute after clear still right" true
    (normalize d.Spmd.Intersections.items
    = normalize fresh.Spmd.Intersections.items)

let test_isect_cache_cap_and_stats_reset () =
  (* [fresh_stats] starts zeroed — the only reset mechanism there is. *)
  let z = Spmd.Intersections.fresh_stats () in
  check Alcotest.int "fresh stats: hits zero" 0 z.Spmd.Intersections.cache_hits;
  check Alcotest.int "fresh stats: candidates zero" 0
    z.Spmd.Intersections.candidates;
  (* The cache is bounded: filling past [cache_cap] blows the whole table
     away, so early entries are misses again while late ones stay hot, and
     the cache keeps functioning afterwards. *)
  Spmd.Intersections.clear_cache ();
  let sets = [| Sorted_iset.of_list [ 1; 2; 3 ] |] in
  let src = mk_unstructured_partition "capsrc" sets in
  let n = Spmd.Intersections.cache_cap + 60 in
  let dsts =
    Array.init n (fun i ->
        mk_unstructured_partition (Printf.sprintf "capdst%d" i) sets)
  in
  Array.iter
    (fun dst -> ignore (Spmd.Intersections.compute_cached ~src ~dst ()))
    dsts;
  let stats = Spmd.Intersections.fresh_stats () in
  ignore (Spmd.Intersections.compute_cached ~stats ~src ~dst:dsts.(n - 1) ());
  check Alcotest.int "survivor after eviction hits" 1
    stats.Spmd.Intersections.cache_hits;
  ignore (Spmd.Intersections.compute_cached ~stats ~src ~dst:dsts.(0) ());
  check Alcotest.int "evicted entry misses" 1
    stats.Spmd.Intersections.cache_hits;
  ignore (Spmd.Intersections.compute_cached ~stats ~src ~dst:dsts.(0) ());
  check Alcotest.int "re-inserted entry hits again" 2
    stats.Spmd.Intersections.cache_hits;
  Spmd.Intersections.clear_cache ()

let prop_cached_equals_compute =
  qtest "compute_cached = compute on random partition pairs" ~count:60
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 5)
           (list_size (int_range 0 20) (int_range 0 59) >|= Sorted_iset.of_list))
        (array_size (int_range 1 5)
           (list_size (int_range 0 20) (int_range 0 59) >|= Sorted_iset.of_list)))
    (fun (a, b) ->
      let src = mk_unstructured_partition "qsrc" a
      and dst = mk_unstructured_partition "qdst" b in
      let cached = Spmd.Intersections.compute_cached ~src ~dst ()
      and fresh = Spmd.Intersections.compute ~src ~dst () in
      normalize cached.Spmd.Intersections.items
      = normalize fresh.Spmd.Intersections.items)

let () =
  Alcotest.run "dataplane"
    [
      ( "copy plans",
        [
          prop_plan_matches_transfer;
          Alcotest.test_case "structured halo" `Quick test_plan_structured_halo;
          prop_plans_match_scalar;
          Alcotest.test_case "executor plan stats" `Quick test_plan_stats;
        ] );
      ( "addressing",
        [
          Alcotest.test_case "get allocates O(1)" `Quick
            test_get_allocation_free;
          Alcotest.test_case "modes agree" `Quick test_addressing_modes;
        ] );
      ( "bulk accessors",
        [
          Alcotest.test_case "privilege checks" `Quick test_bulk_privileges;
          Alcotest.test_case "view containment" `Quick
            test_bulk_view_containment;
        ] );
      ("equal_on", [ Alcotest.test_case "short-circuit" `Quick test_equal_on ]);
      ( "intersection cache",
        [
          Alcotest.test_case "hits and clears" `Quick test_isect_cache;
          Alcotest.test_case "cap eviction and stats reset" `Quick
            test_isect_cache_cap_and_stats_reset;
          prop_cached_equals_compute;
        ] );
    ]
