(* Tests for the distributed shard runtime (lib/net): wire-protocol
   round-trips and malformed-frame rejection, loopback-vs-reference
   equivalence on the four mini-apps and on generated conformance
   programs (the acceptance property: the message-passing backend's
   results are bitwise equal to the shared-memory Plans backend), the
   multi-process launcher over Unix-domain and TCP sockets, recovery
   from injected transient send faults, and the kill-a-shard crash path
   producing a structured stall report instead of a hang. *)

open Net

(* ---------- wire protocol ---------- *)

let sample_frames =
  [
    Wire.Data
      {
        copy_id = 7;
        epoch = 3;
        src_color = 1;
        dst_color = 2;
        fields = [ "x"; "flux" ];
        runs = [| (0, 4); (12, 2) |];
        payload = [| 1.5; -0.0; Float.max_float; 4.25; 5.; 6.; 0.125; 1e-300;
                     2.; 3.; 4.; 5. |];
      };
    Wire.Data
      {
        copy_id = 0;
        epoch = 0;
        src_color = 0;
        dst_color = 0;
        fields = [];
        runs = [||];
        payload = [||];
      };
    Wire.Credit { copy_id = 42; src_color = 5; dst_color = 0 };
    Wire.Coll { seq = 9; dir = `Up; values = [| (0, 1.5); (3, -2.25) |] };
    Wire.Coll { seq = 10; dir = `Down; values = [| (0, 0.75) |] };
    Wire.Coll { seq = 11; dir = `Down; values = [||] };
    Wire.Final
      {
        copy_id = 3;
        src_color = 2;
        dst_color = -1;
        fields = [ "out" ];
        runs = [| (8, 8) |];
        payload = Array.init 8 float_of_int;
      };
    Wire.Snapshot { rank = 2; blob = "arbitrary \x00 bytes \xff" };
    Wire.Stats { rank = 1; msgs = 100; bytes = 4096; retries = 2; injected = 2 };
    Wire.Bye { rank = 3 };
  ]

let test_wire_roundtrip () =
  List.iter
    (fun f ->
      let f' = Wire.decode (Wire.encode f) in
      Alcotest.(check bool)
        (Printf.sprintf "frame %s round-trips" (Wire.kind f))
        true
        (compare f f' = 0))
    sample_frames

let test_wire_malformed () =
  let expect_malformed name b =
    match Wire.decode b with
    | _ -> Alcotest.failf "%s: decode accepted a malformed frame" name
    | exception Wire.Malformed _ -> ()
  in
  expect_malformed "empty" (Bytes.create 0);
  expect_malformed "bad tag" (Bytes.of_string "\x01\xee");
  let good = Wire.encode (List.hd sample_frames) in
  expect_malformed "truncated" (Bytes.sub good 0 (Bytes.length good - 3));
  let trailing = Bytes.extend good 0 2 in
  expect_malformed "trailing bytes" trailing;
  let bad_version = Bytes.copy good in
  Bytes.set bad_version 0 '\xee';
  expect_malformed "version mismatch" bad_version

(* ---------- loopback vs the sequential reference: four apps ---------- *)

(* Per-app node counts chosen so the compiled execution is bitwise equal
   to the interpreter under {!Spmd.Exec} too (circuit's 4-node graph has
   a benign cross-color reduction reorder there — a pre-existing
   property of the shared-memory backend, not of the wire). *)
let apps : (string * int * (nodes:int -> Ir.Program.t)) list =
  [
    ( "stencil",
      4,
      fun ~nodes -> Apps.Stencil.program (Apps.Stencil.test_config ~nodes) );
    ( "circuit",
      8,
      fun ~nodes -> Apps.Circuit.program (Apps.Circuit.test_config ~nodes) );
    ( "pennant",
      4,
      fun ~nodes -> Apps.Pennant.program (Apps.Pennant.test_config ~nodes) );
    ( "miniaero",
      4,
      fun ~nodes -> Apps.Miniaero.program (Apps.Miniaero.test_config ~nodes) );
  ]

let reference_state prog =
  let ctx = Interp.Run.create prog in
  Interp.Run.run ctx;
  Launch.snapshot_state ctx

let test_loopback_apps () =
  List.iter
    (fun (name, nodes, build) ->
      List.iter
        (fun shards ->
          let expected = reference_state (build ~nodes) in
          let compiled =
            Cr.Pipeline.compile (Cr.Pipeline.default ~shards) (build ~nodes)
          in
          let ctx = Interp.Run.create compiled.Spmd.Prog.source in
          Launch.run_loopback ~sanitize:true compiled ctx;
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %d shards matches the interpreter" name
               shards)
            true
            (Launch.states_equal expected (Launch.snapshot_state ctx)))
        [ 2; 4 ])
    apps

(* ---------- loopback vs the Plans backend: generated programs ---------- *)

let prop_loopback_matches_plans =
  QCheck.Test.make ~count:15 ~name:"loopback = Plans on Conform.Gen programs"
    QCheck.(int_range 0 2000)
    (fun seed ->
      let shards = 2 + (seed mod 3) in
      let spec = Conform.Gen.spec seed in
      let via_plans =
        let prog = Conform.Gen.build spec in
        let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
        let ctx = Interp.Run.create compiled.Spmd.Prog.source in
        Spmd.Exec.run ~sched:`Round_robin ~data_plane:`Plans ~sanitize:true
          compiled ctx;
        Launch.snapshot_state ctx
      in
      let via_loopback =
        let prog = Conform.Gen.build spec in
        let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
        let ctx = Interp.Run.create compiled.Spmd.Prog.source in
        Launch.run_loopback ~sanitize:true compiled ctx;
        Launch.snapshot_state ctx
      in
      Launch.states_equal via_plans via_loopback)

(* The oracle's own loopback column, standalone: net/loopback against the
   implicit interpreter with no executor configs in the mix. *)
let test_oracle_net_column () =
  for seed = 0 to 9 do
    match
      Conform.Oracle.check
        ~shards:(Conform.Fuzz.shards_of_case seed)
        ~scheds:[] (Conform.Gen.spec seed)
    with
    | None -> ()
    | Some f ->
        Alcotest.failf "seed %d: %s" seed
          (Format.asprintf "%a" Conform.Oracle.pp_failure f)
  done

(* ---------- multi-process launcher ---------- *)

let stencil_compiled ~shards =
  let prog = Apps.Stencil.program (Apps.Stencil.test_config ~nodes:4) in
  Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog

let stencil_reference () =
  reference_state (Apps.Stencil.program (Apps.Stencil.test_config ~nodes:4))

let check_outcome name expected (o : Launch.outcome) =
  if not o.Launch.ok then
    Alcotest.failf "%s failed: %s" name (String.concat "; " o.Launch.detail);
  (match o.Launch.state with
  | None -> Alcotest.failf "%s: no final state" name
  | Some st ->
      Alcotest.(check bool)
        (name ^ " matches the interpreter")
        true
        (Launch.states_equal expected st));
  Alcotest.(check bool) (name ^ " sent messages") true (o.Launch.msgs > 0);
  Alcotest.(check bool)
    (name ^ " counted wire bytes")
    true
    (o.Launch.bytes_on_wire > 0)

let test_launch_unix () =
  let expected = stencil_reference () in
  let o = Launch.launch ~transport:`Unix ~watchdog:20. (stencil_compiled ~shards:4) in
  check_outcome "unix launch" expected o

let test_launch_tcp () =
  let expected = stencil_reference () in
  let o = Launch.launch ~transport:`Tcp ~watchdog:20. (stencil_compiled ~shards:2) in
  check_outcome "tcp launch" expected o

let test_launch_fault_recovery () =
  (* Transient send faults on every rank: each failed send is retried
     (reconnecting on TCP), and the run must still complete bitwise
     clean. The schedule is seed-deterministic, so the retry count is
     reproducible. *)
  let policy =
    {
      Resilience.Fault.no_faults with
      net_fail_rate = 0.2;
      net_retries = 5;
      max_faults = 200;
    }
  in
  let fault = Resilience.Fault.create ~policy ~seed:42 () in
  let expected = stencil_reference () in
  let o =
    Launch.launch ~transport:`Unix ~fault ~watchdog:20.
      (stencil_compiled ~shards:4)
  in
  check_outcome "faulty unix launch" expected o;
  Alcotest.(check bool)
    "some sends were retried" true
    (o.Launch.send_retries > 0)

let test_launch_kill_shard () =
  (* Hard-kill rank 1 after its 5th physical send. The survivors must
     not hang: their watchdogs produce structured deadlock reports, and
     the parent's outcome carries the stall diagnosis plus rank 1's
     exit code. *)
  let o =
    Launch.launch ~transport:`Unix ~kill:(1, 5) ~watchdog:3.
      (stencil_compiled ~shards:4)
  in
  Alcotest.(check bool) "killed run is not ok" false o.Launch.ok;
  Alcotest.(check bool)
    "structured stall report present" true
    (o.Launch.diag <> None);
  (match List.assoc_opt 1 o.Launch.exits with
  | Some s ->
      Alcotest.(check string) "rank 1 exited via the kill switch" "exit 9" s
  | None -> Alcotest.fail "rank 1 exit status missing");
  Alcotest.(check bool) "detail is not empty" true (o.Launch.detail <> [])

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed" `Quick test_wire_malformed;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "four apps" `Quick test_loopback_apps;
          QCheck_alcotest.to_alcotest prop_loopback_matches_plans;
          Alcotest.test_case "oracle net column" `Quick test_oracle_net_column;
        ] );
      ( "launch",
        [
          Alcotest.test_case "unix sockets" `Quick test_launch_unix;
          Alcotest.test_case "tcp sockets" `Quick test_launch_tcp;
          Alcotest.test_case "transient fault recovery" `Quick
            test_launch_fault_recovery;
          Alcotest.test_case "kill shard" `Quick test_launch_kill_shard;
        ] );
    ]
