(* Tests for the observability layer: JSON printer/parser, the metrics
   registry and its Exec.stats compatibility view, the level-filtered
   logger, trace sinks, Chrome trace-event schema conformance,
   critical-path attribution on the simulator timelines, trace determinism
   across the three executor schedulers, and the committed BENCH_pr3.json
   artifact's schema. *)

let check = Alcotest.check

(* ---------- Obs.Json ---------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 3);
        ("b", Obs.Json.Float 1.5);
        ("s", Obs.Json.Str "he\"llo\n\t\\");
        ("l", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("o", Obs.Json.Obj [ ("nested", Obs.Json.Str "x") ]);
      ]
  in
  let s = Obs.Json.to_string j in
  let j' = Obs.Json.of_string_exn s in
  check Alcotest.bool "roundtrip compact" true (j = j');
  let j'' = Obs.Json.of_string_exn (Obs.Json.to_string ~indent:2 j) in
  check Alcotest.bool "roundtrip pretty" true (j = j'')

let test_json_accessors () =
  let j = Obs.Json.of_string_exn {|{"x": 2.5, "y": 7, "s": "hi", "l": [1]}|} in
  check (Alcotest.option (Alcotest.float 1e-9)) "float member" (Some 2.5)
    (Option.bind (Obs.Json.member "x" j) Obs.Json.number);
  check (Alcotest.option (Alcotest.float 1e-9)) "int reads as number"
    (Some 7.)
    (Option.bind (Obs.Json.member "y" j) Obs.Json.number);
  check (Alcotest.option Alcotest.string) "string member" (Some "hi")
    (Option.bind (Obs.Json.member "s" j) Obs.Json.string_value);
  check Alcotest.bool "missing member" true (Obs.Json.member "z" j = None);
  check Alcotest.int "list member" 1
    (List.length
       (Option.get (Option.bind (Obs.Json.member "l" j) Obs.Json.to_list)))

let test_json_bad_input () =
  check Alcotest.bool "trailing garbage rejected" true
    (Result.is_error (Obs.Json.of_string "{} trailing"));
  check Alcotest.bool "unterminated rejected" true
    (Result.is_error (Obs.Json.of_string {|{"a": |}))

(* ---------- Obs.Metrics ---------- *)

let test_metrics_registry () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "runs" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check Alcotest.int "counter" 5 (Obs.Metrics.get c);
  (* Registration is idempotent: same name, same cell. *)
  let c' = Obs.Metrics.counter r "runs" in
  Obs.Metrics.incr c';
  check Alcotest.int "same cell" 6 (Obs.Metrics.get c);
  let v = ref 1.5 in
  Obs.Metrics.gauge r "level" (fun () -> !v);
  v := 2.5;
  check Alcotest.bool "gauge reads live" true
    (Obs.Metrics.find r "level" = Some (`Gauge 2.5));
  check Alcotest.bool "counter value" true
    (Obs.Metrics.find r "runs" = Some (`Counter 6));
  (* The dump is sorted by name. *)
  let names = List.map fst (Obs.Metrics.dump r) in
  check Alcotest.bool "sorted" true (names = List.sort compare names);
  check Alcotest.bool "counter/gauge name clash rejected" true
    (match Obs.Metrics.counter r "level" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_exec_stats_view () =
  (* The Exec.stats record registered against a registry is a view: both
     sides read the same numbers. *)
  let r = Obs.Metrics.create () in
  let stats = Spmd.Exec.fresh_stats ~registry:r () in
  Atomic.incr stats.Spmd.Exec.attempts;
  Atomic.incr stats.Spmd.Exec.attempts;
  Atomic.incr stats.Spmd.Exec.retries;
  check Alcotest.bool "attempts via registry" true
    (Obs.Metrics.find r "exec.attempts" = Some (`Counter 2));
  check Alcotest.bool "retries via registry" true
    (Obs.Metrics.find r "exec.retries" = Some (`Counter 1));
  Obs.Metrics.incr (Obs.Metrics.counter r "exec.attempts");
  check Alcotest.int "registry bump visible in record" 3
    (Atomic.get stats.Spmd.Exec.attempts)

(* ---------- Obs.Log ---------- *)

let test_log_levels () =
  let seen = ref [] in
  Obs.Log.set_sink (fun lvl msg -> seen := (lvl, msg) :: !seen);
  let saved = Obs.Log.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_level saved;
      Obs.Log.reset_sink ())
    (fun () ->
      Obs.Log.set_level Obs.Log.Warn;
      Obs.Log.err "e%d" 1;
      Obs.Log.warn "w";
      Obs.Log.info "hidden";
      Obs.Log.debug "hidden";
      check Alcotest.int "only err+warn pass" 2 (List.length !seen);
      Obs.Log.set_level Obs.Log.Debug;
      Obs.Log.debug "now visible";
      check Alcotest.int "debug passes at Debug" 3 (List.length !seen);
      check Alcotest.bool "formatted" true
        (List.exists (fun (_, m) -> m = "e1") !seen))

(* ---------- Obs.Trace sinks ---------- *)

let test_trace_null_disabled () =
  check Alcotest.bool "null disabled" false (Obs.Trace.enabled Obs.Trace.null);
  (* Emitting into the null sink is a no-op, not an error. *)
  Obs.Trace.instant Obs.Trace.null ~tid:1 "nothing";
  check Alcotest.int "no events" 0
    (List.length (Obs.Trace.events Obs.Trace.null))

let test_trace_memory_ring () =
  let t = Obs.Trace.memory ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Trace.instant t ~tid:0 (Printf.sprintf "e%d" i)
  done;
  let names = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events t) in
  check (Alcotest.list Alcotest.string) "oldest overwritten"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  check Alcotest.int "dropped counted" 2 (Obs.Trace.dropped t)

let test_trace_stream_sink () =
  let buf = Buffer.create 256 in
  let t = Obs.Trace.stream buf in
  Obs.Trace.instant t ~tid:3 ~cat:"c" "hello";
  Obs.Trace.complete t ~tid:3 ~ts:1. ~dur:2. "span";
  Obs.Trace.finish t;
  let j = Obs.Json.of_string_exn (Buffer.contents buf) in
  let evs =
    Option.get (Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list)
  in
  check Alcotest.int "both events serialized" 2 (List.length evs)

(* Chrome trace-event schema conformance of one serialized event list. *)
let check_chrome_schema j =
  let evs =
    match Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  check Alcotest.bool "displayTimeUnit" true
    (Obs.Json.member "displayTimeUnit" j <> None);
  List.iter
    (fun e ->
      let str k = Option.bind (Obs.Json.member k e) Obs.Json.string_value in
      let num k = Option.bind (Obs.Json.member k e) Obs.Json.number in
      (match str "name" with
      | Some _ -> ()
      | None -> Alcotest.fail "event without name");
      let ph =
        match str "ph" with
        | Some ph -> ph
        | None -> Alcotest.fail "event without ph"
      in
      check Alcotest.bool "known ph" true
        (List.mem ph [ "B"; "E"; "I"; "X"; "M" ]);
      check Alcotest.bool "ts" true (ph = "M" || num "ts" <> None);
      check Alcotest.bool "pid/tid" true (num "pid" <> None && num "tid" <> None);
      if ph = "X" then check Alcotest.bool "X has dur" true (num "dur" <> None);
      if ph = "I" then
        check (Alcotest.option Alcotest.string) "I has scope" (Some "t")
          (str "s"))
    evs;
  evs

let test_trace_chrome_schema () =
  let t = Obs.Trace.memory () in
  Obs.Trace.set_process_name t ~pid:0 "p";
  Obs.Trace.set_thread_name t ~tid:2 "t";
  Obs.Trace.instant t ~tid:2 ~args:[ ("k", Obs.Trace.Int 1) ] "i";
  Obs.Trace.with_span t ~tid:2 ~cat:"c" "work" (fun () -> ());
  Obs.Trace.complete_v t ~tid:5 ~ts_s:1. ~dur_s:0.5 "virtual";
  let evs = check_chrome_schema (Obs.Trace.to_chrome_json t) in
  check Alcotest.int "all events present" 5 (List.length evs);
  (* Virtual events land on the virtual pid, in microseconds. *)
  let virt =
    List.find
      (fun e ->
        Option.bind (Obs.Json.member "name" e) Obs.Json.string_value
        = Some "virtual")
      evs
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "virtual pid"
    (Some (float_of_int Obs.Trace.virtual_pid))
    (Option.bind (Obs.Json.member "pid" virt) Obs.Json.number);
  check (Alcotest.option (Alcotest.float 1e-3)) "seconds scaled to us"
    (Some 1e6)
    (Option.bind (Obs.Json.member "ts" virt) Obs.Json.number)

(* ---------- timeline / critical path ---------- *)

let test_timeline_binding () =
  let tl = Realm.Timeline.create () in
  let a =
    Realm.Timeline.op tl ~name:"a" ~track:0 ~start:0. ~finish:2.
      ~pred:Realm.Timeline.nil ()
  in
  let b =
    Realm.Timeline.op tl ~name:"b" ~track:0 ~start:0. ~finish:1.
      ~pred:Realm.Timeline.nil ()
  in
  let t, p = Realm.Timeline.binding [ (2., a); (1., b) ] in
  check (Alcotest.float 1e-9) "argmax time" 2. t;
  check Alcotest.int "argmax pred" a p;
  (* Ties keep the earlier candidate. *)
  let _, p = Realm.Timeline.binding [ (2., a); (2., b) ] in
  check Alcotest.int "tie keeps first" a p

let stencil_sim ?(nodes = 4) ?trace () =
  let cfg = Apps.Stencil.default ~nodes in
  let prog = Apps.Stencil.program cfg in
  let machine = Realm.Machine.make ~nodes () in
  let compiled =
    Cr.Pipeline.compile ?trace (Cr.Pipeline.default ~shards:nodes) prog
  in
  Legion.Sim_spmd.simulate ~machine ~scale:(Apps.Stencil.scale cfg) ~steps:8
    ?trace compiled

let test_critical_path_equals_makespan () =
  let r = stencil_sim () in
  let tl = r.Legion.Sim_spmd.timeline in
  check (Alcotest.float 1e-9) "makespan is reported total"
    r.Legion.Sim_spmd.total (Realm.Timeline.makespan tl);
  let contribs = Realm.Timeline.critical_contributions tl in
  let sum = List.fold_left (fun acc (_, _, d) -> acc +. d) 0. contribs in
  check (Alcotest.float 1e-6) "critical path tiles the makespan"
    (Realm.Timeline.makespan tl) sum;
  (* The contributions tile [0, makespan]: each span starts where the
     previous one ended. *)
  let _ =
    List.fold_left
      (fun at (_, start, d) ->
        check (Alcotest.float 1e-6) "contiguous" at start;
        at +. d)
      0. contribs
  in
  (* Predecessors point backwards: the DAG is in issue order. *)
  List.iter
    (fun (n : Realm.Timeline.node) ->
      check Alcotest.bool "pred precedes node" true
        (n.Realm.Timeline.pred < n.Realm.Timeline.id);
      if n.Realm.Timeline.pred <> Realm.Timeline.nil then
        check Alcotest.bool "pred finish <= node finish" true
          ((Realm.Timeline.node tl n.Realm.Timeline.pred).Realm.Timeline.finish
          <= n.Realm.Timeline.finish +. 1e-12))
    (Realm.Timeline.nodes tl)

let test_implicit_critical_path () =
  let nodes = 4 in
  let cfg = Apps.Stencil.default ~nodes in
  let machine = Realm.Machine.make ~nodes () in
  let r =
    Legion.Sim_implicit.simulate ~machine ~scale:(Apps.Stencil.scale cfg)
      ~steps:6
      (Apps.Stencil.program cfg)
  in
  let tl = r.Legion.Sim_implicit.timeline in
  check (Alcotest.float 1e-9) "makespan is reported total"
    r.Legion.Sim_implicit.total (Realm.Timeline.makespan tl);
  let sum =
    List.fold_left
      (fun acc (_, _, d) -> acc +. d)
      0.
      (Realm.Timeline.critical_contributions tl)
  in
  check (Alcotest.float 1e-6) "critical path tiles the makespan"
    (Realm.Timeline.makespan tl) sum

(* The golden end-to-end artifact: a traced stencil simulation serialized
   as Chrome JSON has per-shard virtual tracks, CR-pipeline phase spans,
   and a critical-path track whose spans sum to the makespan. *)
let test_simulate_trace_golden () =
  let nodes = 4 in
  let trace = Obs.Trace.memory () in
  let r = stencil_sim ~nodes ~trace () in
  let machine = Realm.Machine.make ~nodes () in
  Realm.Timeline.emit
    ~track_names:
      (Legion.Sim_spmd.track_names ~shards:nodes
         ~cores:(Realm.Machine.compute_cores machine))
    r.Legion.Sim_spmd.timeline trace;
  let evs = check_chrome_schema (Obs.Trace.to_chrome_json trace) in
  let name e =
    Option.value ~default:""
      (Option.bind (Obs.Json.member "name" e) Obs.Json.string_value)
  in
  let num k e = Option.bind (Obs.Json.member k e) Obs.Json.number in
  (* CR pipeline phase spans on the wall clock. *)
  List.iter
    (fun phase ->
      check Alcotest.bool (phase ^ " span present") true
        (List.exists (fun e -> name e = phase) evs))
    [ "cr.check"; "cr.normalize"; "cr.replicate"; "cr.placement"; "cr.sync";
      "cr.shard" ];
  (* Per-shard virtual tracks, named via metadata. *)
  let thread_names =
    List.filter_map
      (fun e ->
        if name e = "thread_name" then
          Option.bind (Obs.Json.member "args" e) (fun a ->
              Option.bind (Obs.Json.member "name" a) Obs.Json.string_value)
        else None)
      evs
  in
  for s = 0 to nodes - 1 do
    check Alcotest.bool (Printf.sprintf "shard %d track named" s) true
      (List.exists
         (fun n ->
           (* Any track mentioning this shard counts (ctl/core/net). *)
           let sub = Printf.sprintf "%d" s in
           String.length n >= String.length sub
           && Str.string_match (Str.regexp (".*" ^ sub)) n 0)
         thread_names)
  done;
  (* Critical-path track spans sum to the simulator's makespan. *)
  let crit_spans =
    List.filter
      (fun e ->
        num "tid" e = Some 1_000_000.
        && Option.bind (Obs.Json.member "ph" e) Obs.Json.string_value
           = Some "X")
      evs
  in
  check Alcotest.bool "critical-path track nonempty" true (crit_spans <> []);
  let sum_us =
    List.fold_left
      (fun acc e -> acc +. Option.value ~default:0. (num "dur" e))
      0. crit_spans
  in
  check (Alcotest.float 1e-3) "crit track sums to makespan (us)"
    (r.Legion.Sim_spmd.total *. 1e6)
    sum_us;
  (* Spans marked [crit] exist on their home tracks too. *)
  check Alcotest.bool "crit-marked spans" true
    (List.exists
       (fun e ->
         Option.bind (Obs.Json.member "args" e) (Obs.Json.member "crit")
         = Some (Obs.Json.Bool true))
       evs)

(* ---------- executor trace determinism ---------- *)

(* Same program + same seed: the per-tid (phase, name) sequences are
   identical under all three schedulers — only wall-clock timestamps and
   interleaving across shards may differ. *)
let per_tid_signature trace =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let key = e.Obs.Trace.tid in
      let ph =
        match e.Obs.Trace.ph with
        | Obs.Trace.B -> "B"
        | Obs.Trace.E -> "E"
        | Obs.Trace.I -> "I"
        | Obs.Trace.X _ -> "X"
        | Obs.Trace.M -> "M"
      in
      Hashtbl.replace tbl key
        ((ph, e.Obs.Trace.name)
        :: (try Hashtbl.find tbl key with Not_found -> [])))
    (Obs.Trace.events trace);
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort compare

let traced_run sched =
  let nodes = 3 in
  let prog = Apps.Stencil.program (Apps.Stencil.test_config ~nodes) in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:nodes) prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  let trace = Obs.Trace.memory () in
  Spmd.Exec.run ~sched ~trace compiled ctx;
  per_tid_signature trace

let test_trace_determinism_across_scheds () =
  let rr = traced_run `Round_robin in
  let rnd = traced_run (`Random 17) in
  let dom = traced_run `Domains in
  check Alcotest.bool "round_robin = random" true (rr = rnd);
  check Alcotest.bool "round_robin = domains" true (rr = dom);
  (* And the signature is non-trivial: per-shard tracks saw instructions. *)
  check Alcotest.bool "per-shard events exist" true
    (List.exists
       (fun (tid, evs) -> tid >= Spmd.Exec.shard_tid 0 && List.length evs > 0)
       rr)

let test_trace_run_repeatable () =
  (* Two identical runs produce identical signatures (wall-clock fields
     excluded by construction). *)
  check Alcotest.bool "repeatable" true
    (traced_run (`Random 5) = traced_run (`Random 5))

(* ---------- BENCH_pr3.json schema + data-plane thresholds ---------- *)

let bench_json_path = "../BENCH_pr3.json"

let test_bench_artifact_schema () =
  let ic = open_in bench_json_path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let j = Obs.Json.of_string_exn s in
  check (Alcotest.option Alcotest.string) "schema" (Some "crc-bench/1")
    (Option.bind (Obs.Json.member "schema" j) Obs.Json.string_value);
  let figures =
    Option.get (Option.bind (Obs.Json.member "figures" j) Obs.Json.to_list)
  in
  check Alcotest.int "four figures" 4 (List.length figures);
  List.iter
    (fun fig ->
      let series =
        Option.get (Option.bind (Obs.Json.member "series" fig) Obs.Json.to_list)
      in
      check Alcotest.bool "series nonempty" true (series <> []);
      List.iter
        (fun s ->
          let points =
            Option.get
              (Option.bind (Obs.Json.member "points" s) Obs.Json.to_list)
          in
          check Alcotest.bool "points nonempty" true (points <> []);
          List.iter
            (fun p ->
              List.iter
                (fun k ->
                  check Alcotest.bool (k ^ " is a number") true
                    (Option.bind (Obs.Json.member k p) Obs.Json.number <> None))
                [ "nodes"; "per_step_s"; "throughput_per_node" ])
            points)
        series)
    figures;
  check Alcotest.bool "table1 rows" true
    (Option.bind (Obs.Json.member "table1" j) Obs.Json.to_list
    |> Option.map (fun l -> l <> [])
    |> Option.value ~default:false);
  check Alcotest.bool "ablations object" true
    (Obs.Json.member "ablations" j <> None
    && Obs.Json.member "per_step_s" (Option.get (Obs.Json.member "ablations" j))
       <> None);
  check Alcotest.bool "metrics object" true (Obs.Json.member "metrics" j <> None);
  (* Table 1 rows carry the partition-pair cache columns. *)
  List.iter
    (fun row ->
      List.iter
        (fun k ->
          check Alcotest.bool (k ^ " is a number") true
            (Option.bind (Obs.Json.member k row) Obs.Json.number <> None))
        [ "shallow_ms"; "complete_ms"; "cold_ms"; "cached_ms" ])
    (Option.value ~default:[]
       (Option.bind (Obs.Json.member "table1" j) Obs.Json.to_list))

let read_bench_json () =
  let ic = open_in bench_json_path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Obs.Json.of_string_exn s

(* The committed artifact must meet the PR3 acceptance thresholds: copy
   plans >= 5x the per-element baseline, cached intersections >= 10x cold. *)
let test_bench_data_plane_thresholds () =
  let j = read_bench_json () in
  let dp = Option.get (Obs.Json.member "data_plane" j) in
  let num path v =
    match Option.bind v Obs.Json.number with
    | Some x -> x
    | None -> Alcotest.failf "missing number %s" path
  in
  let copy_cases =
    Option.get (Option.bind (Obs.Json.member "copy" dp) Obs.Json.to_list)
  in
  check Alcotest.bool "copy cases present" true (copy_cases <> []);
  let headline =
    num "copy[0].copy_speedup"
      (Obs.Json.member "copy_speedup" (List.hd copy_cases))
  in
  check Alcotest.bool
    (Printf.sprintf "copy plan speedup %.1fx >= 5x" headline)
    true (headline >= 5.);
  List.iter
    (fun case ->
      check Alcotest.bool "every copy case beats the baseline" true
        (num "copy_speedup" (Obs.Json.member "copy_speedup" case) > 1.
        && num "reduce_speedup" (Obs.Json.member "reduce_speedup" case) > 1.))
    copy_cases;
  let isect = Option.get (Obs.Json.member "intersections" dp) in
  let isect_speedup = num "intersections.speedup" (Obs.Json.member "speedup" isect) in
  check Alcotest.bool
    (Printf.sprintf "cached intersection speedup %.1fx >= 10x" isect_speedup)
    true (isect_speedup >= 10.);
  check Alcotest.bool "cache hits recorded" true
    (num "intersections.cache_hits" (Obs.Json.member "cache_hits" isect) > 0.);
  let kernel = Option.get (Obs.Json.member "kernel" dp) in
  check Alcotest.bool "bulk kernel beats per-element accessors" true
    (num "kernel.speedup" (Obs.Json.member "speedup" kernel) > 1.)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "bad input" `Quick test_json_bad_input;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "exec stats view" `Quick
            test_metrics_exec_stats_view;
        ] );
      ("log", [ Alcotest.test_case "levels" `Quick test_log_levels ]);
      ( "trace",
        [
          Alcotest.test_case "null disabled" `Quick test_trace_null_disabled;
          Alcotest.test_case "memory ring" `Quick test_trace_memory_ring;
          Alcotest.test_case "stream sink" `Quick test_trace_stream_sink;
          Alcotest.test_case "chrome schema" `Quick test_trace_chrome_schema;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "binding argmax" `Quick test_timeline_binding;
          Alcotest.test_case "spmd sim tiles makespan" `Quick
            test_critical_path_equals_makespan;
          Alcotest.test_case "implicit sim tiles makespan" `Quick
            test_implicit_critical_path;
          Alcotest.test_case "golden stencil trace" `Quick
            test_simulate_trace_golden;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "schedulers agree" `Quick
            test_trace_determinism_across_scheds;
          Alcotest.test_case "runs repeatable" `Quick test_trace_run_repeatable;
        ] );
      ( "bench artifact",
        [
          Alcotest.test_case "schema" `Quick test_bench_artifact_schema;
          Alcotest.test_case "data plane thresholds" `Quick
            test_bench_data_plane_thresholds;
        ] );
    ]
