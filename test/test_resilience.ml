(* Resilience subsystem tests: structured deadlock diagnostics under every
   scheduler, deterministic fault injection (same seed => same schedule and
   bit-identical results), leaf-task retry/rollback, checkpoint/restart at
   time-loop boundaries, the stall watchdog, and the task-pool fixes
   (backtrace preservation, concurrent shutdown). *)

open Regions
open Ir

let check = Alcotest.check
let fv = Field.make "v"
let fw = Field.make "w"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------- tiny mis-synchronized block (mirrors test_spmd's harness) ---- *)

let tiny_env () =
  let b = Program.Builder.create ~name:"tiny" in
  let r =
    Program.Builder.region b ~name:"R" (Index_space.of_range 8) [ fv; fw ]
  in
  let p =
    Program.Builder.partition b ~name:"P" (fun ~name ->
        Partition.block ~name r ~pieces:2)
  in
  let _q =
    Program.Builder.partition b ~name:"Q" (fun ~name ->
        Partition.image ~name ~target:r ~src:p (fun e -> [ (e + 4) mod 8 ]))
  in
  Program.Builder.space b ~name:"I" 2;
  let bump =
    Task.make ~name:"bump"
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i (Accessor.get accs.(0) fv i +. 1.));
        0.)
  in
  let observe =
    Task.make ~name:"observe"
      ~params:
        [
          { Task.pname = "out"; privs = [ Privilege.writes fw ] };
          { Task.pname = "inp"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fw i
              (Accessor.get accs.(0) fw i
              +. (0.5 *. Accessor.get accs.(1) fv ((i + 4) mod 8))));
        0.)
  in
  Program.Builder.task b bump;
  Program.Builder.task b observe;
  Program.Builder.finish b

let launch task rargs =
  Spmd.Prog.Launch { space = "I"; launch = { Types.task; rargs; sargs = [||] } }

let part p = Types.Part (p, Types.Id)

let mk_copy id =
  {
    Spmd.Prog.copy_id = id;
    src = Spmd.Prog.Opart "P";
    dst = Spmd.Prog.Opart "Q";
    fields = [ fv ];
    reduce = None;
    pairs = `Sparse;
  }

let tiny_block body ~credits =
  {
    Spmd.Prog.shards = 2;
    init =
      [
        Spmd.Prog.Copy
          {
            Spmd.Prog.copy_id = 100;
            src = Spmd.Prog.Oregion "R";
            dst = Spmd.Prog.Opart "P";
            fields = [ fv; fw ];
            reduce = None;
            pairs = `Sparse;
          };
        Spmd.Prog.Copy
          {
            Spmd.Prog.copy_id = 101;
            src = Spmd.Prog.Oregion "R";
            dst = Spmd.Prog.Opart "Q";
            fields = [ fv ];
            reduce = None;
            pairs = `Sparse;
          };
      ];
    body;
    finalize = [];
    copies = [ mk_copy 0 ];
    credits;
  }

(* Second iteration's copy starves on WAR credits: the Release is missing. *)
let missing_release_body =
  [
    Spmd.Prog.For_time
      {
        var = "t";
        count = 2;
        body =
          [
            launch "bump" [ part "P" ];
            Spmd.Prog.Copy (mk_copy 0);
            Spmd.Prog.Await 0;
            launch "observe" [ part "P"; part "Q" ];
          ];
      };
  ]

let run_tiny ?watchdog ~sched body ~credits =
  let prog = tiny_env () in
  let ctx = Interp.Run.create prog in
  Spmd.Exec.run_block ~sched ?watchdog ~source:prog ctx (tiny_block body ~credits)

(* ---------- satellite (c): deadlock diagnostics, all three scheds ------- *)

let test_deadlock_diag sched () =
  match run_tiny ~sched ~watchdog:1.0 missing_release_body ~credits:[] with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Spmd.Exec.Deadlock d ->
      check Alcotest.int "every shard reported" 2
        (List.length d.Resilience.Diag.shards);
      List.iter
        (fun (s : Resilience.Diag.shard) ->
          check Alcotest.bool
            (Printf.sprintf "shard %d names its blocked instruction"
               s.Resilience.Diag.sid)
            true
            (s.Resilience.Diag.instr <> None))
        d.Resilience.Diag.shards;
      (* The starved channel shows up with its counters. *)
      let msg = Resilience.Diag.to_string d in
      check Alcotest.bool "message names the starved copy" true
        (contains ~sub:"copy#0" msg);
      check Alcotest.bool "message shows war counters" true
        (contains ~sub:"war=0" msg);
      (* At least one shard is stuck issuing the copy with zero credits. *)
      check Alcotest.bool "a shard is blocked at the copy" true
        (List.exists
           (fun (s : Resilience.Diag.shard) ->
             match s.Resilience.Diag.wait with
             | Resilience.Diag.At_copy chans ->
                 List.exists
                   (fun (c : Resilience.Diag.chan) ->
                     c.Resilience.Diag.copy_id = 0 && c.Resilience.Diag.war = 0)
                   chans
             | _ -> false)
           d.Resilience.Diag.shards)

(* A well-synchronized program with injected stalls must NOT trip the
   watchdog (stalled shards are slow, not dead). *)
let test_stall_is_not_deadlock () =
  let body =
    [
      Spmd.Prog.For_time
        {
          var = "t";
          count = 2;
          body =
            [
              launch "bump" [ part "P" ];
              Spmd.Prog.Copy (mk_copy 0);
              Spmd.Prog.Await 0;
              launch "observe" [ part "P"; part "Q" ];
              Spmd.Prog.Release 0;
            ];
        };
    ]
  in
  let policy =
    {
      Resilience.Fault.no_faults with
      Resilience.Fault.stall_rate = 0.4;
      stall_steps = 5;
      delay_seconds = 0.002;
    }
  in
  List.iter
    (fun sched ->
      let prog = tiny_env () in
      let ctx = Interp.Run.create prog in
      let fault = Resilience.Fault.create ~policy ~seed:3 () in
      Spmd.Exec.run_block ~sched ~watchdog:1.0 ~fault ~source:prog ctx
        (tiny_block body ~credits:[]);
      check Alcotest.bool "stalls actually fired" true
        (Resilience.Fault.injected fault > 0))
    [ `Round_robin; `Domains ]

(* ---------- satellite (d): fault-injection determinism ------------------ *)

let region_data ctx prog =
  List.concat_map
    (fun rname ->
      let r = Program.find_region prog rname in
      let inst = Interp.Run.region_instance ctx r in
      List.map
        (fun f -> (rname, Field.name f, Physical.to_alist inst f))
        r.Region.fields)
    (Program.region_names prog)

let chaos_policy =
  {
    Resilience.Fault.leaf_fail_rate = 0.15;
    leaf_retries = 6;
    release_delay_rate = 0.05;
    release_delay_steps = 2;
    stall_rate = 0.05;
    stall_steps = 2;
    net_fail_rate = 0.;
    net_retries = 0;
    delay_seconds = 0.0005;
    max_faults = 1_000_000;
  }

let run_app ?fault ?stats ~sched mk =
  let prog = mk () in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) prog in
  let ctx = Interp.Run.create compiled.Spmd.Prog.source in
  Spmd.Exec.run ~sched ?fault ?stats compiled ctx;
  (region_data ctx prog, List.sort compare (Interp.Run.scalars ctx))

let test_fault_determinism mk () =
  let reference = run_app ~sched:`Round_robin mk in
  let with_seed sched seed =
    let fault = Resilience.Fault.create ~policy:chaos_policy ~seed () in
    let out = run_app ~fault ~sched mk in
    (out, Resilience.Fault.schedule fault, Resilience.Fault.injected fault)
  in
  let out_rr, sched_rr, fired_rr = with_seed `Round_robin 7 in
  check Alcotest.bool "faults fired at seed 7" true (fired_rr > 0);
  (* Same seed, same scheduler: identical fault schedule, twice over. *)
  let out_rr2, sched_rr2, _ = with_seed `Round_robin 7 in
  check Alcotest.bool "same seed => identical schedule" true
    (sched_rr = sched_rr2);
  check Alcotest.bool "same seed => identical results" true (out_rr = out_rr2);
  (* The schedule is a function of the seed, not of the interleaving. *)
  let out_rand, sched_rand, _ = with_seed (`Random 99) 7 in
  let out_dom, sched_dom, _ = with_seed `Domains 7 in
  check Alcotest.bool "schedule survives random interleaving" true
    (sched_rr = sched_rand);
  check Alcotest.bool "schedule survives real domains" true
    (sched_rr = sched_dom);
  (* Injected transient faults are invisible in the results: rollback plus
     re-execution reproduces the fault-free run bit for bit. *)
  check Alcotest.bool "faulty run == fault-free run (stepper)" true
    (out_rr = reference);
  check Alcotest.bool "faulty run == fault-free run (random)" true
    (out_rand = reference);
  check Alcotest.bool "faulty run == fault-free run (domains)" true
    (out_dom = reference);
  (* A different seed draws a different schedule (overwhelmingly). *)
  let _, sched_other, _ = with_seed `Round_robin 8 in
  check Alcotest.bool "different seed => different schedule" true
    (sched_rr <> sched_other)

let test_retry_counters () =
  let mk () = Apps.Stencil.program (Apps.Stencil.test_config ~nodes:2) in
  let stats = Spmd.Exec.fresh_stats () in
  let fault = Resilience.Fault.create ~policy:chaos_policy ~seed:7 () in
  let faulty = run_app ~fault ~stats ~sched:`Round_robin mk in
  let reference = run_app ~sched:`Round_robin mk in
  check Alcotest.bool "results identical" true (faulty = reference);
  let attempts = Atomic.get stats.Spmd.Exec.attempts in
  let retries = Atomic.get stats.Spmd.Exec.retries in
  check Alcotest.bool "attempts counted" true (attempts > 0);
  check Alcotest.bool "retries happened and were counted" true (retries > 0);
  check Alcotest.bool "each retry is an extra attempt" true (attempts > retries);
  check Alcotest.bool "injected >= retries" true
    (Atomic.get stats.Spmd.Exec.injected >= retries)

(* Retries exhausted: the injected fault escapes as Fault.Injected. *)
let test_retry_cap_escapes () =
  let mk () = Apps.Stencil.program (Apps.Stencil.test_config ~nodes:2) in
  let policy =
    {
      Resilience.Fault.no_faults with
      Resilience.Fault.leaf_fail_rate = 1.0;
      leaf_retries = 2;
    }
  in
  let stats = Spmd.Exec.fresh_stats () in
  let fault = Resilience.Fault.create ~policy ~seed:1 () in
  (match run_app ~fault ~stats ~sched:`Round_robin mk with
  | _ -> Alcotest.fail "expected Fault.Injected to escape"
  | exception Resilience.Fault.Injected { occurrence; _ } ->
      check Alcotest.int "failed on the last allowed attempt" 2 occurrence);
  check Alcotest.int "cap+1 attempts on the doomed task" 3
    (Atomic.get stats.Spmd.Exec.attempts)

(* ---------- tentpole: checkpoint/restart at time-loop boundaries -------- *)

let test_checkpoint_restart sched () =
  let mk () = Test_fixtures.Fixtures.fig2 () in
  let compile p =
    Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) p
  in
  (* Reference: plain run. *)
  let p1 = mk () in
  let c1 = compile p1 in
  let ctx1 = Interp.Run.create c1.Spmd.Prog.source in
  Spmd.Exec.run ~sched c1 ctx1;
  let want = (region_data ctx1 p1, List.sort compare (Interp.Run.scalars ctx1)) in
  (* Checkpointing run: a cut after every iteration. *)
  let p2 = mk () in
  let c2 =
    Spmd.Prog.map_blocks (Spmd.Prog.with_checkpoints ~every:1) (compile p2)
  in
  let cuts = ref [] in
  let stats = Spmd.Exec.fresh_stats () in
  let ctx2 = Interp.Run.create c2.Spmd.Prog.source in
  Spmd.Exec.run ~sched ~stats
    ~checkpoint_sink:(fun ck -> cuts := ck :: !cuts)
    c2 ctx2;
  check Alcotest.bool "checkpointing does not change results" true
    ((region_data ctx2 p2, List.sort compare (Interp.Run.scalars ctx2)) = want);
  check Alcotest.int "one cut per iteration" 3 (List.length !cuts);
  check Alcotest.int "stats counted the cuts" 3
    (Atomic.get stats.Spmd.Exec.checkpoints);
  (* Kill after iteration 1; reload the middle cut from disk and resume. *)
  let ck =
    List.find (fun ck -> ck.Resilience.Checkpoint.iter = 1) !cuts
  in
  let path = Filename.temp_file "ctrlrep" ".ckpt" in
  Resilience.Checkpoint.save ck ~path;
  let ck = Resilience.Checkpoint.load ~path in
  Sys.remove path;
  check Alcotest.int "cut round-trips through disk" 1
    ck.Resilience.Checkpoint.iter;
  let p3 = mk () in
  let c3 = compile p3 in
  let ctx3 = Interp.Run.create c3.Spmd.Prog.source in
  Spmd.Exec.run ~sched ~restore:ck c3 ctx3;
  check Alcotest.bool "restart reproduces the uninterrupted run" true
    ((region_data ctx3 p3, List.sort compare (Interp.Run.scalars ctx3)) = want)

let test_checkpoint_every_k () =
  (* every=2 over 3 iterations: exactly one cut (after iteration 1). *)
  let p = Test_fixtures.Fixtures.fig2 () in
  let c =
    Spmd.Prog.map_blocks
      (Spmd.Prog.with_checkpoints ~every:2)
      (Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) p)
  in
  let cuts = ref [] in
  let ctx = Interp.Run.create c.Spmd.Prog.source in
  Spmd.Exec.run ~checkpoint_sink:(fun ck -> cuts := ck :: !cuts) c ctx;
  check Alcotest.int "one cut" 1 (List.length !cuts);
  check Alcotest.int "taken after iteration 1" 1
    (List.hd !cuts).Resilience.Checkpoint.iter

let test_checkpoint_noop_without_sink () =
  let mk () = Test_fixtures.Fixtures.fig2 () in
  let p1 = mk () and p2 = mk () in
  let c1 = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) p1 in
  let c2 =
    Spmd.Prog.map_blocks (Spmd.Prog.with_checkpoints ~every:1)
      (Cr.Pipeline.compile (Cr.Pipeline.default ~shards:2) p2)
  in
  let ctx1 = Interp.Run.create c1.Spmd.Prog.source in
  let ctx2 = Interp.Run.create c2.Spmd.Prog.source in
  Spmd.Exec.run c1 ctx1;
  Spmd.Exec.run c2 ctx2;
  check Alcotest.bool "instrumented block without a sink is inert" true
    (region_data ctx1 p1 = region_data ctx2 p2)

(* ---------- watchdog unit behaviour ------------------------------------- *)

let test_watchdog_trips_on_quiescence () =
  let tripped = Atomic.make false in
  let dog =
    Resilience.Watchdog.start ~poll:0.005 ~timeout:0.05
      ~observe:(fun () -> `Quiescent 7)
      ~trip:(fun () -> Atomic.set tripped true)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get tripped)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Resilience.Watchdog.stop dog;
  check Alcotest.bool "tripped on frozen quiescence" true (Atomic.get tripped)

let test_watchdog_ignores_progress () =
  let tripped = Atomic.make false in
  let n = Atomic.make 0 in
  let dog =
    Resilience.Watchdog.start ~poll:0.005 ~timeout:0.05
      ~observe:(fun () -> `Quiescent (Atomic.fetch_and_add n 1))
      ~trip:(fun () -> Atomic.set tripped true)
      ()
  in
  Unix.sleepf 0.25;
  Resilience.Watchdog.stop dog;
  check Alcotest.bool "no trip while the counter moves" false
    (Atomic.get tripped);
  let tripped2 = Atomic.make false in
  let dog2 =
    Resilience.Watchdog.start ~poll:0.005 ~timeout:0.05
      ~observe:(fun () -> `Running 42)
      ~trip:(fun () -> Atomic.set tripped2 true)
      ()
  in
  Unix.sleepf 0.25;
  Resilience.Watchdog.stop dog2;
  check Alcotest.bool "no trip while running" false (Atomic.get tripped2)

(* ---------- satellites (a) + (b): task-pool fixes ------------------------ *)

exception Boom of int

(* Non-trivial call depth so the captured backtrace has frames. *)
let rec deep n = if n = 0 then raise (Boom 42) else 1 + deep (n - 1)

let test_pool_await_backtrace () =
  Taskpool.Pool.with_pool ~domains:2 (fun p ->
      let fut =
        Taskpool.Pool.async p (fun () ->
            Printexc.record_backtrace true;
            deep 5)
      in
      match Taskpool.Pool.await fut with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 42 ->
          let bt = Printexc.get_raw_backtrace () in
          check Alcotest.bool "raise-site backtrace preserved" true
            (Printexc.raw_backtrace_length bt > 0)
      | exception e ->
          Alcotest.fail ("unexpected exception " ^ Printexc.to_string e))

let test_pool_parallel_for_backtrace () =
  Taskpool.Pool.with_pool ~domains:2 (fun p ->
      match
        Taskpool.Pool.parallel_for p ~lo:0 ~hi:200 (fun i ->
            Printexc.record_backtrace true;
            if i = 57 then ignore (deep 3))
      with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 42 ->
          let bt = Printexc.get_raw_backtrace () in
          check Alcotest.bool "raise-site backtrace preserved" true
            (Printexc.raw_backtrace_length bt > 0)
      | exception e ->
          Alcotest.fail ("unexpected exception " ^ Printexc.to_string e))

let test_pool_concurrent_shutdown () =
  (* Racing shutdowns must neither double-join a worker (fatal error) nor
     return before the pool is actually drained. *)
  for _round = 1 to 10 do
    let p = Taskpool.Pool.create ~domains:3 () in
    let counter = Atomic.make 0 in
    for _ = 1 to 50 do
      ignore (Taskpool.Pool.async p (fun () -> Atomic.incr counter))
    done;
    let closers =
      List.init 4 (fun _ -> Domain.spawn (fun () -> Taskpool.Pool.shutdown p))
    in
    Taskpool.Pool.shutdown p;
    List.iter Domain.join closers;
    (* shutdown drains queued work before joining workers. *)
    check Alcotest.int "work drained" 50 (Atomic.get counter);
    (* Idempotent after the fact, and submits are refused. *)
    Taskpool.Pool.shutdown p;
    check Alcotest.bool "submit after shutdown rejected" true
      (match Taskpool.Pool.async p (fun () -> ()) with
      | _ -> false
      | exception Invalid_argument _ -> true)
  done

(* ---------- fault primitive determinism --------------------------------- *)

let test_fault_draw_deterministic () =
  let mk () =
    Resilience.Fault.create
      ~policy:
        {
          Resilience.Fault.default_policy with
          Resilience.Fault.leaf_fail_rate = 0.3;
          stall_rate = 0.3;
        }
      ~seed:123 ()
  in
  let drain t =
    List.concat_map
      (fun shard ->
        List.init 200 (fun _ ->
            [
              Resilience.Fault.draw t (Resilience.Fault.Leaf_task "f") ~shard;
              Resilience.Fault.draw t Resilience.Fault.Shard_stall ~shard;
            ]))
      [ 0; 1; 2 ]
  in
  let a = mk () and b = mk () in
  check Alcotest.bool "identical decision streams" true (drain a = drain b);
  check Alcotest.bool "identical schedules" true
    (Resilience.Fault.schedule a = Resilience.Fault.schedule b);
  check Alcotest.bool "some faults fired" true (Resilience.Fault.injected a > 0)

(* ---------- suite -------------------------------------------------------- *)

let () =
  let stencil () = Apps.Stencil.program (Apps.Stencil.test_config ~nodes:2) in
  let circuit () = Apps.Circuit.program (Apps.Circuit.test_config ~nodes:2) in
  Alcotest.run "resilience"
    [
      ( "deadlock-diagnostics",
        [
          Alcotest.test_case "round-robin" `Quick
            (test_deadlock_diag `Round_robin);
          Alcotest.test_case "random" `Quick (test_deadlock_diag (`Random 5));
          Alcotest.test_case "domains (watchdog)" `Quick
            (test_deadlock_diag `Domains);
          Alcotest.test_case "stall is not deadlock" `Quick
            test_stall_is_not_deadlock;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "draw determinism" `Quick
            test_fault_draw_deterministic;
          Alcotest.test_case "stencil determinism" `Quick
            (test_fault_determinism stencil);
          Alcotest.test_case "circuit determinism" `Quick
            (test_fault_determinism circuit);
          Alcotest.test_case "retry counters" `Quick test_retry_counters;
          Alcotest.test_case "retry cap escapes" `Quick test_retry_cap_escapes;
        ] );
      ( "checkpoint-restart",
        [
          Alcotest.test_case "stepper" `Quick
            (test_checkpoint_restart `Round_robin);
          Alcotest.test_case "domains" `Quick (test_checkpoint_restart `Domains);
          Alcotest.test_case "every k" `Quick test_checkpoint_every_k;
          Alcotest.test_case "no-op without sink" `Quick
            test_checkpoint_noop_without_sink;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "trips on quiescence" `Quick
            test_watchdog_trips_on_quiescence;
          Alcotest.test_case "ignores progress" `Quick
            test_watchdog_ignores_progress;
        ] );
      ( "taskpool",
        [
          Alcotest.test_case "await preserves backtrace" `Quick
            test_pool_await_backtrace;
          Alcotest.test_case "parallel_for preserves backtrace" `Quick
            test_pool_parallel_for_backtrace;
          Alcotest.test_case "concurrent shutdown" `Quick
            test_pool_concurrent_shutdown;
        ] );
    ]
