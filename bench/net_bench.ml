(* §Distributed (PR5): wire traffic of the message-passing backend.

   Runs the four mini-apps at 2/4/8 shards over the deterministic
   in-process loopback transport and over real multi-process Unix-domain
   sockets, counting frames and bytes on the wire (length prefixes
   included) and normalizing per time-step. Every run is verified
   bitwise against the sequential interpreter; a mismatch fails the
   bench. Writes BENCH_pr5.json (schema "crc-bench/1"), reads it back
   and schema-checks it, exiting non-zero on any failure.

   Usage: net_bench [--out PATH] *)

let json_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--out" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  Option.value (find 1) ~default:"BENCH_pr5.json"

(* All apps at 8 nodes: divisible by every shard count measured, and a
   configuration whose compiled execution is bitwise equal to the
   interpreter for every app (circuit's 4-node graph is not). *)
let nodes = 8

let apps =
  [
    ( "stencil",
      (fun () -> Apps.Stencil.program (Apps.Stencil.test_config ~nodes)),
      (Apps.Stencil.test_config ~nodes).Apps.Stencil.timesteps );
    ( "circuit",
      (fun () -> Apps.Circuit.program (Apps.Circuit.test_config ~nodes)),
      (Apps.Circuit.test_config ~nodes).Apps.Circuit.timesteps );
    ( "pennant",
      (fun () -> Apps.Pennant.program (Apps.Pennant.test_config ~nodes)),
      (Apps.Pennant.test_config ~nodes).Apps.Pennant.timesteps );
    ( "miniaero",
      (fun () -> Apps.Miniaero.program (Apps.Miniaero.test_config ~nodes)),
      (Apps.Miniaero.test_config ~nodes).Apps.Miniaero.timesteps );
  ]

let shard_counts = [ 2; 4; 8 ]

let reference build =
  let ctx = Interp.Run.create (build ()) in
  Interp.Run.run ctx;
  Net.Launch.snapshot_state ctx

(* One measured run: (msgs, bytes, matched). *)
let run_one ~transport ~shards build expected =
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) (build ()) in
  match transport with
  | `Loopback ->
      let stats = Spmd.Exec.fresh_stats () in
      let ctx = Interp.Run.create compiled.Spmd.Prog.source in
      Net.Launch.run_loopback ~stats compiled ctx;
      ( Atomic.get stats.Spmd.Exec.msgs_sent,
        Atomic.get stats.Spmd.Exec.bytes_on_wire,
        Net.Launch.states_equal expected (Net.Launch.snapshot_state ctx) )
  | `Unix ->
      let o = Net.Launch.launch ~transport:`Unix ~watchdog:60. compiled in
      let matched =
        o.Net.Launch.ok
        &&
        match o.Net.Launch.state with
        | Some st -> Net.Launch.states_equal expected st
        | None -> false
      in
      (o.Net.Launch.msgs, o.Net.Launch.bytes_on_wire, matched)

let () =
  Printf.printf "=== Distributed: wire traffic (%d nodes) ===\n%!" nodes;
  Printf.printf "%10s %7s %9s %8s %12s %10s %8s\n" "app" "shards" "transport"
    "msgs" "bytes" "msgs/step" "match";
  let failures = ref 0 in
  let rows =
    List.concat_map
      (fun (name, build, timesteps) ->
        let expected = reference build in
        List.concat_map
          (fun shards ->
            List.map
              (fun (tname, transport) ->
                let msgs, bytes, matched =
                  run_one ~transport ~shards build expected
                in
                if not matched then incr failures;
                let per_step = float_of_int msgs /. float_of_int timesteps in
                Printf.printf "%10s %7d %9s %8d %12d %10.1f %8b\n%!" name
                  shards tname msgs bytes per_step matched;
                Obs.Json.Obj
                  [
                    ("app", Obs.Json.Str name);
                    ("shards", Obs.Json.Int shards);
                    ("transport", Obs.Json.Str tname);
                    ("timesteps", Obs.Json.Int timesteps);
                    ("msgs", Obs.Json.Int msgs);
                    ("bytes_on_wire", Obs.Json.Int bytes);
                    ("msgs_per_timestep", Obs.Json.Float per_step);
                    ( "bytes_per_timestep",
                      Obs.Json.Float
                        (float_of_int bytes /. float_of_int timesteps) );
                    ("matched", Obs.Json.Bool matched);
                  ])
              [ ("loopback", `Loopback); ("unix", `Unix) ])
          shard_counts)
      apps
  in
  let artifact =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "crc-bench/1");
        ("section", Obs.Json.Str "distributed");
        ("nodes", Obs.Json.Int nodes);
        ("distributed", Obs.Json.List rows)
      ]
  in
  let oc = open_out json_path in
  Obs.Json.to_channel ~indent:2 oc artifact;
  output_char oc '\n';
  close_out oc;
  (* Self-check: parse the artifact back and validate shape and values. *)
  let fail msg =
    Printf.eprintf "artifact %s: %s\n%!" json_path msg;
    exit 1
  in
  let j =
    let ic = open_in json_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Json.of_string s with
    | Ok j -> j
    | Error e -> fail ("unparseable: " ^ e)
  in
  (match Option.bind (Obs.Json.member "schema" j) Obs.Json.string_value with
  | Some "crc-bench/1" -> ()
  | _ -> fail "schema is not crc-bench/1");
  (match Option.bind (Obs.Json.member "distributed" j) Obs.Json.to_list with
  | Some entries ->
      let expect = List.length apps * List.length shard_counts * 2 in
      if List.length entries <> expect then
        fail
          (Printf.sprintf "expected %d entries, found %d" expect
             (List.length entries));
      List.iter
        (fun e ->
          let num k =
            match Option.bind (Obs.Json.member k e) Obs.Json.number with
            | Some v -> v
            | None -> fail (Printf.sprintf "entry missing %s" k)
          in
          if num "msgs" <= 0. then fail "msgs must be positive";
          if num "bytes_on_wire" <= 0. then fail "bytes must be positive";
          match Obs.Json.member "matched" e with
          | Some (Obs.Json.Bool true) -> ()
          | _ -> fail "an entry did not match the reference")
        entries
  | None -> fail "no distributed section");
  if !failures > 0 then begin
    Printf.eprintf "%d run(s) diverged from the sequential reference\n%!"
      !failures;
    exit 1
  end;
  Printf.printf "artifact %s: schema + reference checks OK\n%!" json_path
