(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (SC'17, §5) plus the ablations DESIGN.md calls out.

   - Figures 6-9: weak-scaling sweeps for Stencil, MiniAero, PENNANT and
     Circuit — Regent with and without control replication on the machine
     simulator, plus the reference step-time models — printed as the same
     series the paper plots (throughput per node vs. nodes).
   - Table 1: shallow and complete dynamic intersection times at 64 and
     1024 nodes, measured on this machine.
   - Ablations: §3.2 copy placement, §3.3 intersection optimization, §3.4
     barrier vs point-to-point synchronisation, §4.5 hierarchical region
     trees.
   - A Bechamel microbenchmark suite with one test per figure/table.

   - §Data plane (PR3): compiled copy plans vs the per-element baseline,
     bulk accessor kernels vs per-element get/set, and the partition-pair
     intersection cache, cold vs cached.

   Pass --fast to sweep fewer node counts, --no-bechamel to skip the
   microbenchmarks, --quick to run only the data-plane section (CI smoke:
   writes the artifact, then schema-checks it and exits non-zero on
   failure), --out PATH to redirect the JSON artifact. *)

let quick = Array.exists (( = ) "--quick") Sys.argv
let fast = quick || Array.exists (( = ) "--fast") Sys.argv
let no_bechamel = Array.exists (( = ) "--no-bechamel") Sys.argv

let json_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--out" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  Option.value (find 1) ~default:"BENCH_pr3.json"

let node_counts =
  if fast then [ 1; 4; 16; 64 ]
  else [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let table1_nodes = if fast then [ 16; 64 ] else [ 64; 1024 ]

let header title = Printf.printf "\n=== %s ===\n%!" title

(* Machine-readable results, accumulated as sections run and written to
   BENCH_pr3.json at the end (schema "crc-bench/1"). *)
let registry = Obs.Metrics.create ()
let json_figures : Obs.Json.t list ref = ref []
let json_table1 : Obs.Json.t list ref = ref []
let json_ablations : Obs.Json.t ref = ref Obs.Json.Null
let json_resilience : Obs.Json.t list ref = ref []
let json_data_plane : Obs.Json.t ref = ref Obs.Json.Null

(* ---------- weak scaling sweeps (Figures 6-9) ---------- *)

type variant = { vname : string; per_step : int -> float }

let print_figure ~name ~title ~unit_ ~elements_per_node variants =
  header title;
  Printf.printf "%6s" "nodes";
  List.iter (fun v -> Printf.printf " %14s" v.vname) variants;
  Printf.printf "   (%s per node)\n" unit_;
  (* One simulation per (node count, variant): the matrix feeds the printed
     table, the efficiency row and the JSON series. *)
  let matrix =
    List.map (fun n -> (n, List.map (fun v -> v.per_step n) variants)) node_counts
  in
  List.iter
    (fun (n, row) ->
      Printf.printf "%6d" n;
      List.iter (fun ps -> Printf.printf " %14.1f" (elements_per_node /. ps)) row;
      Printf.printf "\n%!")
    matrix;
  (* Parallel efficiency at the largest sweep point, as the paper quotes. *)
  let singles = snd (List.hd matrix) in
  let last, last_row = List.hd (List.rev matrix) in
  Printf.printf "%6s" "eff%";
  List.iter2
    (fun single at_last -> Printf.printf " %14.1f" (100. *. single /. at_last))
    singles last_row;
  Printf.printf "   (at %d nodes)\n%!" last;
  let series =
    List.mapi
      (fun i v ->
        let eff =
          100. *. List.nth singles i /. List.nth last_row i
        in
        Obs.Metrics.set registry
          (Printf.sprintf "bench.%s.%s.eff_pct" name v.vname)
          eff;
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str v.vname);
            ("efficiency_pct", Obs.Json.Float eff);
            ( "points",
              Obs.Json.List
                (List.map
                   (fun (n, row) ->
                     let ps = List.nth row i in
                     Obs.Json.Obj
                       [
                         ("nodes", Obs.Json.Int n);
                         ("per_step_s", Obs.Json.Float ps);
                         ( "throughput_per_node",
                           Obs.Json.Float (elements_per_node /. ps) );
                       ])
                   matrix) );
          ])
      variants
  in
  json_figures :=
    !json_figures
    @ [
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str name);
            ("title", Obs.Json.Str title);
            ("unit", Obs.Json.Str unit_);
            ("elements_per_node", Obs.Json.Float elements_per_node);
            ("series", Obs.Json.List series);
          ];
      ]

let cr_per_step ~mk_program ~mk_scale ?task_noise () n =
  let machine = Realm.Machine.make ~nodes:n ?task_noise () in
  let prog = mk_program n in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:n) prog in
  (Legion.Sim_spmd.simulate ~machine ~scale:(mk_scale n) ~steps:8 compiled)
    .Legion.Sim_spmd.per_step

let nocr_per_step ~mk_program ~mk_scale ?task_noise () n =
  let machine = Realm.Machine.make ~nodes:n ?task_noise () in
  let prog = mk_program n in
  (Legion.Sim_implicit.simulate ~machine ~scale:(mk_scale n) ~steps:6 prog)
    .Legion.Sim_implicit.per_step

let fig6 () =
  let mk_program n = Apps.Stencil.program (Apps.Stencil.default ~nodes:n) in
  let mk_scale n = Apps.Stencil.scale (Apps.Stencil.default ~nodes:n) in
  let reference variant n =
    Apps.Stencil.Reference.per_step
      (Realm.Machine.make ~nodes:n ())
      (Apps.Stencil.default ~nodes:n)
      variant
  in
  print_figure ~name:"fig6" ~title:"Figure 6: Stencil weak scaling" ~unit_:"10^6 points/s"
    ~elements_per_node:
      (float_of_int (Apps.Stencil.default ~nodes:1).Apps.Stencil.points_per_node
      /. 1e6)
    [
      { vname = "Regent+CR"; per_step = cr_per_step ~mk_program ~mk_scale () };
      { vname = "Regent-noCR"; per_step = nocr_per_step ~mk_program ~mk_scale () };
      { vname = "MPI"; per_step = reference Apps.Stencil.Reference.Mpi };
      {
        vname = "MPI+OpenMP";
        per_step = reference Apps.Stencil.Reference.Mpi_openmp;
      };
    ]

let fig7 () =
  let mk_program n = Apps.Miniaero.program (Apps.Miniaero.sim_config ~nodes:n) in
  let mk_scale n = Apps.Miniaero.scale (Apps.Miniaero.sim_config ~nodes:n) in
  let full = Apps.Miniaero.default ~nodes:1 in
  let x, y, z = full.Apps.Miniaero.piece_cells in
  let cells_per_node = full.Apps.Miniaero.pieces_per_node * x * y * z in
  let reference variant n =
    Apps.Miniaero.Reference.per_step
      (Realm.Machine.make ~nodes:n ())
      (Apps.Miniaero.default ~nodes:n)
      variant
  in
  print_figure ~name:"fig7" ~title:"Figure 7: MiniAero weak scaling" ~unit_:"10^3 cells/s"
    ~elements_per_node:(float_of_int cells_per_node /. 1e3)
    [
      { vname = "Regent+CR"; per_step = cr_per_step ~mk_program ~mk_scale () };
      { vname = "Regent-noCR"; per_step = nocr_per_step ~mk_program ~mk_scale () };
      {
        vname = "MPI+K(core)";
        per_step = reference Apps.Miniaero.Reference.Rank_per_core;
      };
      {
        vname = "MPI+K(node)";
        per_step = reference Apps.Miniaero.Reference.Rank_per_node;
      };
    ]

let fig8 () =
  let mk_program n = Apps.Pennant.program (Apps.Pennant.sim_config ~nodes:n) in
  let mk_scale n = Apps.Pennant.scale (Apps.Pennant.sim_config ~nodes:n) in
  let noise = Apps.Pennant.task_noise in
  let full = Apps.Pennant.default ~nodes:1 in
  let zx, zy = full.Apps.Pennant.piece_zones in
  let zones_per_node = full.Apps.Pennant.pieces_per_node * zx * zy in
  let reference variant n =
    Apps.Pennant.Reference.per_step
      (Realm.Machine.make ~nodes:n ~task_noise:noise ())
      (Apps.Pennant.default ~nodes:n)
      variant
  in
  print_figure ~name:"fig8" ~title:"Figure 8: PENNANT weak scaling" ~unit_:"10^6 zones/s"
    ~elements_per_node:(float_of_int zones_per_node /. 1e6)
    [
      {
        vname = "Regent+CR";
        per_step = cr_per_step ~mk_program ~mk_scale ~task_noise:noise ();
      };
      {
        vname = "Regent-noCR";
        per_step = nocr_per_step ~mk_program ~mk_scale ~task_noise:noise ();
      };
      { vname = "MPI"; per_step = reference Apps.Pennant.Reference.Mpi };
      {
        vname = "MPI+OpenMP";
        per_step = reference Apps.Pennant.Reference.Mpi_openmp;
      };
    ]

let fig9 () =
  let mk_program n = Apps.Circuit.program (Apps.Circuit.sim_config ~nodes:n) in
  let mk_scale n = Apps.Circuit.scale (Apps.Circuit.sim_config ~nodes:n) in
  let full = Apps.Circuit.default ~nodes:1 in
  let cnodes_per_node =
    full.Apps.Circuit.pieces_per_node * full.Apps.Circuit.cnodes_per_piece
  in
  print_figure ~name:"fig9" ~title:"Figure 9: Circuit weak scaling"
    ~unit_:"10^3 circuit nodes/s"
    ~elements_per_node:(float_of_int cnodes_per_node /. 1e3)
    [
      { vname = "Regent+CR"; per_step = cr_per_step ~mk_program ~mk_scale () };
      { vname = "Regent-noCR"; per_step = nocr_per_step ~mk_program ~mk_scale () };
    ]

(* ---------- Table 1: dynamic intersection times ---------- *)

(* Partition pairs of every sparse copy of the compiled program. *)
let sparse_pairs compiled =
  List.concat_map
    (function
      | Spmd.Prog.Replicated b ->
          List.filter_map
            (fun (c : Spmd.Prog.copy) ->
              match (c.Spmd.Prog.src, c.Spmd.Prog.dst) with
              | Spmd.Prog.Opart ps, Spmd.Prog.Opart pd ->
                  Some
                    ( Ir.Program.find_partition compiled.Spmd.Prog.source ps,
                      Ir.Program.find_partition compiled.Spmd.Prog.source pd )
              | _ -> None)
            b.Spmd.Prog.copies
      | Spmd.Prog.Seq _ -> [])
    compiled.Spmd.Prog.items

(* Run the dynamic analysis for every sparse copy of the compiled program,
   accumulating shallow and complete times (§3.3). *)
let measure_intersections prog shards =
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
  let stats = Spmd.Intersections.fresh_stats () in
  List.iter
    (fun (src, dst) -> ignore (Spmd.Intersections.compute ~stats ~src ~dst ()))
    (sparse_pairs compiled);
  stats

(* The same pass through the partition-pair cache: one cold pass (misses,
   computed and inserted) and one hot pass (pure lookups). *)
let measure_cached prog shards =
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards) prog in
  let pairs = sparse_pairs compiled in
  Spmd.Intersections.clear_cache ();
  let stats = Spmd.Intersections.fresh_stats () in
  let pass () =
    List.iter
      (fun (src, dst) ->
        ignore (Spmd.Intersections.compute_cached ~stats ~src ~dst ()))
      pairs
  in
  let t0 = Unix.gettimeofday () in
  pass ();
  let cold = Unix.gettimeofday () -. t0 in
  let reps = 10 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    pass ()
  done;
  let cached = (Unix.gettimeofday () -. t1) /. float_of_int reps in
  (cold, cached, stats.Spmd.Intersections.cache_hits)

let table1 () =
  header "Table 1: dynamic region intersection times";
  Printf.printf "%10s %6s %12s %12s %12s %12s %10s %10s\n" "app" "nodes"
    "shallow(ms)" "complete(ms)" "candidates" "non-empty" "cold(ms)"
    "cached(ms)";
  let apps =
    [
      ( "Circuit",
        fun n -> Apps.Circuit.program (Apps.Circuit.sim_config ~nodes:n) );
      ( "MiniAero",
        fun n -> Apps.Miniaero.program (Apps.Miniaero.sim_config ~nodes:n) );
      ( "PENNANT",
        fun n -> Apps.Pennant.program (Apps.Pennant.sim_config ~nodes:n) );
      ("Stencil", fun n -> Apps.Stencil.program (Apps.Stencil.default ~nodes:n));
    ]
  in
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun n ->
          let stats = measure_intersections (mk n) n in
          let cold, cached, hits = measure_cached (mk n) n in
          Printf.printf "%10s %6d %12.2f %12.2f %12d %12d %10.2f %10.4f\n%!"
            name n
            (stats.Spmd.Intersections.shallow_s *. 1e3)
            (stats.Spmd.Intersections.complete_s *. 1e3)
            stats.Spmd.Intersections.candidates
            stats.Spmd.Intersections.nonempty (cold *. 1e3) (cached *. 1e3);
          json_table1 :=
            !json_table1
            @ [
                Obs.Json.Obj
                  [
                    ("app", Obs.Json.Str name);
                    ("nodes", Obs.Json.Int n);
                    ( "shallow_ms",
                      Obs.Json.Float (stats.Spmd.Intersections.shallow_s *. 1e3)
                    );
                    ( "complete_ms",
                      Obs.Json.Float (stats.Spmd.Intersections.complete_s *. 1e3)
                    );
                    ( "candidates",
                      Obs.Json.Int stats.Spmd.Intersections.candidates );
                    ("nonempty", Obs.Json.Int stats.Spmd.Intersections.nonempty);
                    ("cold_ms", Obs.Json.Float (cold *. 1e3));
                    ("cached_ms", Obs.Json.Float (cached *. 1e3));
                    ("cache_hits", Obs.Json.Int hits);
                  ];
              ])
        table1_nodes)
    apps

(* ---------- ablations ---------- *)

(* Dynamic-analysis cost of one configuration: (seconds, candidate pairs,
   pair-set computations). *)
let measure_intersections_with config prog =
  let compiled = Cr.Pipeline.compile config prog in
  let stats = Spmd.Intersections.fresh_stats () in
  let sets = ref 0 in
  List.iter
    (function
      | Spmd.Prog.Replicated b ->
          List.iter
            (fun (c : Spmd.Prog.copy) ->
              match (c.Spmd.Prog.src, c.Spmd.Prog.dst) with
              | Spmd.Prog.Opart ps, Spmd.Prog.Opart pd ->
                  incr sets;
                  ignore
                    (Spmd.Intersections.compute ~stats
                       ~src:(Ir.Program.find_partition compiled.Spmd.Prog.source ps)
                       ~dst:(Ir.Program.find_partition compiled.Spmd.Prog.source pd)
                       ())
              | _ -> ())
            b.Spmd.Prog.copies
      | Spmd.Prog.Seq _ -> ())
    compiled.Spmd.Prog.items;
  ( stats.Spmd.Intersections.shallow_s +. stats.Spmd.Intersections.complete_s,
    stats.Spmd.Intersections.candidates,
    !sets )

(* A three-phase update chain: each phase rewrites the same partition; only
   the last value is read through the aliased halo, so the first two
   write-propagation copies are redundant — the §3.2 pattern. *)
let placement_chain_program ~pieces =
  let open Regions in
  let open Ir in
  let module Syn = Program.Syntax in
  let fv = Field.make "v" in
  let n = pieces * 4 in
  let b = Program.Builder.create ~name:"chain" in
  let r1 = Program.Builder.region b ~name:"R1" (Index_space.of_range n) [ fv ] in
  let r2 = Program.Builder.region b ~name:"R2" (Index_space.of_range n) [ fv ] in
  let p =
    Program.Builder.partition b ~name:"P" (fun ~name ->
        Partition.block ~name r1 ~pieces)
  in
  let _q =
    Program.Builder.partition b ~name:"Q" (fun ~name ->
        Partition.image ~name ~target:r1 ~src:p (fun e -> [ (e + 1) mod n ]))
  in
  let _s =
    Program.Builder.partition b ~name:"S" (fun ~name ->
        Partition.block ~name r2 ~pieces)
  in
  Program.Builder.space b ~name:"I" pieces;
  let phase name delta =
    Task.make ~name
      ~params:[ { Task.pname = "out"; privs = [ Privilege.writes fv ] } ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i (Accessor.get accs.(0) fv i +. delta));
        0.)
  in
  let consume =
    Task.make ~name:"consume"
      ~params:
        [
          { Task.pname = "out"; privs = [ Privilege.writes fv ] };
          { Task.pname = "inp"; privs = [ Privilege.reads fv ] };
        ]
      (fun accs _ ->
        Accessor.iter accs.(0) (fun i ->
            Accessor.set accs.(0) fv i
              (Accessor.get accs.(1) fv ((i + 1) mod n) *. 0.5));
        0.)
  in
  List.iter (Program.Builder.task b)
    [ phase "phase1" 1.; phase "phase2" 2.; phase "phase3" 3.; consume ];
  Program.Builder.body b
    [
      Syn.for_time "t" 2
        [
          Syn.forall "I" (Syn.call "phase1" [ Syn.part "P" ]);
          Syn.forall "I" (Syn.call "phase2" [ Syn.part "P" ]);
          Syn.forall "I" (Syn.call "phase3" [ Syn.part "P" ]);
          Syn.forall "I" (Syn.call "consume" [ Syn.part "S"; Syn.part "Q" ]);
        ];
    ];
  Program.Builder.finish b

let simulate_with config ~scale n prog =
  let machine = Realm.Machine.make ~nodes:n () in
  let compiled = Cr.Pipeline.compile config prog in
  Legion.Sim_spmd.simulate ~machine ~scale ~steps:8 compiled

let ablations () =
  header "Ablations (simulated per-step seconds at 64 nodes)";
  let n = 64 in
  let cases =
    [
      ( "Stencil",
        (fun () -> Apps.Stencil.program (Apps.Stencil.default ~nodes:n)),
        Apps.Stencil.scale (Apps.Stencil.default ~nodes:n) );
      ( "Circuit",
        (fun () -> Apps.Circuit.program (Apps.Circuit.sim_config ~nodes:n)),
        Apps.Circuit.scale (Apps.Circuit.sim_config ~nodes:n) );
      ( "MiniAero",
        (fun () -> Apps.Miniaero.program (Apps.Miniaero.sim_config ~nodes:n)),
        Apps.Miniaero.scale (Apps.Miniaero.sim_config ~nodes:n) );
    ]
  in
  Printf.printf "%10s %12s %12s %12s %12s %12s\n" "app" "default" "barriers"
    "all-pairs" "no-placemt" "flat-tree";
  let json_per_step = ref [] in
  List.iter
    (fun (name, mk, scale) ->
      let d = Cr.Pipeline.default ~shards:n in
      let run config =
        (simulate_with config ~scale n (mk ())).Legion.Sim_spmd.per_step
      in
      let vd = run d in
      let vbar = run { d with Cr.Pipeline.sync = `Barrier } in
      let vdense = run { d with Cr.Pipeline.intersections = `Dense } in
      let vnoplace = run { d with Cr.Pipeline.placement = false } in
      let vflat = run { d with Cr.Pipeline.hierarchical = false } in
      Printf.printf "%10s %12.4f %12.4f %12.4f %12.4f %12.4f\n%!" name vd vbar
        vdense vnoplace vflat;
      json_per_step :=
        !json_per_step
        @ [
            Obs.Json.Obj
              [
                ("app", Obs.Json.Str name);
                ("default", Obs.Json.Float vd);
                ("barriers", Obs.Json.Float vbar);
                ("all_pairs", Obs.Json.Float vdense);
                ("no_placement", Obs.Json.Float vnoplace);
                ("flat_tree", Obs.Json.Float vflat);
              ];
          ])
    cases;
  (* The §4.5 benefit is in the dynamic analysis, not the executed copies:
     a flat tree cannot prove the private partitions disjoint from the
     ghosts, so the runtime computes intersections for partition pairs that
     never exchange data. *)
  Printf.printf
    "\n%10s | %10s %10s %12s | %10s %10s %12s   (dynamic intersections)\n"
    "app" "pairsets" "candidates" "analysis(ms)" "pairsets" "candidates"
    "analysis(ms)";
  Printf.printf "%10s | %36s | %36s\n" "" "hierarchical (default)"
    "flat tree (no §4.5)";
  let json_analysis = ref [] in
  List.iter
    (fun (name, mk, _scale) ->
      let d = Cr.Pipeline.default ~shards:n in
      let measure config =
        let prog = mk () in
        let stats = measure_intersections_with config prog in
        stats
      in
      let h = measure d
      and f = measure { d with Cr.Pipeline.hierarchical = false } in
      let ms (a, _, _) = a *. 1e3
      and cand (_, c, _) = c
      and sets (_, _, s) = s in
      Printf.printf "%10s | %10d %10d %12.2f | %10d %10d %12.2f\n%!" name
        (sets h) (cand h) (ms h) (sets f) (cand f) (ms f);
      let side v =
        Obs.Json.Obj
          [
            ("pairsets", Obs.Json.Int (sets v));
            ("candidates", Obs.Json.Int (cand v));
            ("analysis_ms", Obs.Json.Float (ms v));
          ]
      in
      json_analysis :=
        !json_analysis
        @ [
            Obs.Json.Obj
              [
                ("app", Obs.Json.Str name);
                ("hierarchical", side h);
                ("flat_tree", side f);
              ];
          ])
    cases;
  (* §3.2 copy placement: the four applications write each partition once
     per aliased-reader use, so placement is already optimal there (as the
     paper notes for Fig. 4a); a multi-phase update chain shows the
     optimization at work. *)
  let chain = placement_chain_program ~pieces:(n * 4) in
  let copies config =
    let compiled = Cr.Pipeline.compile config chain in
    List.fold_left
      (fun acc -> function
        | Spmd.Prog.Replicated b ->
            let rec count = function
              | [] -> 0
              | Spmd.Prog.For_time { body; _ } :: rest -> count body + count rest
              | Spmd.Prog.Copy _ :: rest -> 1 + count rest
              | _ :: rest -> count rest
            in
            acc + count b.Spmd.Prog.body
        | Spmd.Prog.Seq _ -> acc)
      0 compiled.Spmd.Prog.items
  in
  let d = Cr.Pipeline.default ~shards:n in
  let with_p = copies d
  and without_p = copies { d with Cr.Pipeline.placement = false } in
  Printf.printf
    "\nplacement ablation (3-phase update chain): %d copy statements per step with placement, %d without\n%!"
    with_p without_p;
  json_ablations :=
    Obs.Json.Obj
      [
        ("nodes", Obs.Json.Int n);
        ("per_step_s", Obs.Json.List !json_per_step);
        ("intersection_analysis", Obs.Json.List !json_analysis);
        ( "placement_chain",
          Obs.Json.Obj
            [
              ("with_placement_copies", Obs.Json.Int with_p);
              ("without_placement_copies", Obs.Json.Int without_p);
            ] );
      ]

(* ---------- resilience overhead ---------- *)

(* What arming the fault injector (per-attempt rollback snapshots), firing
   actual faults, and cutting checkpoints cost on a real (non-simulated)
   SPMD execution. *)
let resilience_overhead () =
  header "Resilience overhead (stencil, real SPMD execution, 3 shards)";
  let mk () = Apps.Stencil.program (Apps.Stencil.test_config ~nodes:3) in
  let time f =
    let reps = if fast then 3 else 10 in
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e3
  in
  let run ?policy ?checkpoint () =
    let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:3) (mk ()) in
    let compiled =
      match checkpoint with
      | Some every ->
          Spmd.Prog.map_blocks (Spmd.Prog.with_checkpoints ~every) compiled
      | None -> compiled
    in
    let ctx = Interp.Run.create compiled.Spmd.Prog.source in
    let fault =
      Option.map (fun policy -> Resilience.Fault.create ~policy ~seed:7 ()) policy
    in
    let checkpoint_sink =
      Option.map (fun _ (_ : Resilience.Checkpoint.t) -> ()) checkpoint
    in
    Spmd.Exec.run ?fault ?checkpoint_sink compiled ctx
  in
  let leaf =
    {
      Resilience.Fault.no_faults with
      Resilience.Fault.leaf_fail_rate = 0.1;
      leaf_retries = 6;
    }
  in
  List.iter
    (fun (name, f) ->
      let ms = time f in
      Printf.printf "%30s %10.3f ms/run\n%!" name ms;
      json_resilience :=
        !json_resilience
        @ [
            Obs.Json.Obj
              [ ("case", Obs.Json.Str name); ("ms_per_run", Obs.Json.Float ms) ];
          ])
    [
      ("baseline", fun () -> run ());
      ( "armed, zero rates (snapshots)",
        fun () -> run ~policy:Resilience.Fault.no_faults () );
      ("10% leaf faults + rollback", fun () -> run ~policy:leaf ());
      ("checkpoint every iteration", fun () -> run ~checkpoint:1 ());
    ]

(* ---------- §Data plane: plans, bulk accessors, intersection cache ---------- *)

let time_per_run ~reps f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* Ghost exchange between neighbouring structured tiles: the left tile's
   instance feeds a halo slab owned by its neighbour — the copy shape the
   SPMD executor replays every time step. [`Rows] slabs cut across the slow
   axis (full-row runs, the stencil x-halo); [`Cols] slabs cut the fast
   axis (short runs, the y-halo — the plan's worst case). *)
let copy_microbench shape =
  let open Geometry in
  let open Regions in
  let fa = Field.make "dp_a" and fb = Field.make "dp_b" in
  let fl = [ fa; fb ] in
  let side = 512 in
  let depth = 8 in
  let u = Rect.make2 ~lo:(0, 0) ~hi:((side - 1), (side - 1)) in
  let half = side / 2 in
  let tile =
    Index_space.of_rects ~universe:u
      [ Rect.make2 ~lo:(0, 0) ~hi:(half - 1, side - 1) ]
  in
  let halo_rect =
    match shape with
    | `Rows -> Rect.make2 ~lo:(half - depth, 0) ~hi:(half + depth - 1, side - 1)
    | `Cols -> Rect.make2 ~lo:(0, half - depth) ~hi:(side - 1, half + depth - 1)
  in
  let halo = Index_space.of_rects ~universe:u [ halo_rect ] in
  let src = Physical.create_over tile fl in
  let dst = Physical.create_over halo fl in
  List.iter (fun f -> Physical.fill src f 1.5) fl;
  let volume =
    Index_space.cardinal (Index_space.inter tile halo) * List.length fl
  in
  let reps_scalar = if fast then 20 else 100 in
  let reps_plan = reps_scalar * 10 in
  let scalar_s =
    time_per_run ~reps:reps_scalar (fun () ->
        Physical.copy_into ~fields:fl ~src ~dst ())
  in
  let plan = Spmd.Copy_plan.build ~src ~dst ~fields:fl () in
  let plan_s =
    time_per_run ~reps:reps_plan (fun () -> Spmd.Copy_plan.copy plan ~src ~dst)
  in
  let scalar_red_s =
    time_per_run ~reps:reps_scalar (fun () ->
        Physical.reduce_into ~op:Privilege.Sum ~fields:fl ~src ~dst ())
  in
  let plan_red_s =
    time_per_run ~reps:reps_plan (fun () ->
        Spmd.Copy_plan.reduce plan ~op:Privilege.Sum ~src ~dst)
  in
  (volume, Spmd.Copy_plan.nruns plan, scalar_s, plan_s, scalar_red_s, plan_red_s)

(* Per-element [Accessor.get]/[set] vs the hoisted bulk closures over the
   same full-view instance — the saxpy-shaped loop every app kernel runs. *)
let kernel_microbench () =
  let open Geometry in
  let open Regions in
  let fx = Field.make "dp_x" and fy = Field.make "dp_y" in
  let side = 512 in
  let space = Index_space.of_rect (Rect.make2 ~lo:(0, 0) ~hi:(side - 1, side - 1)) in
  let inst = Physical.create_over space [ fx; fy ] in
  Physical.fill inst fx 2.0;
  let acc =
    Accessor.make inst ~space [ Privilege.reads fx; Privilege.writes fy ]
  in
  let n = Index_space.cardinal space in
  let reps = if fast then 20 else 100 in
  let scalar_s =
    time_per_run ~reps (fun () ->
        Accessor.iter acc (fun id ->
            Accessor.set acc fy id ((2.5 *. Accessor.get acc fx id) +. 1.)))
  in
  let bulk_s =
    time_per_run ~reps (fun () ->
        let rx = Accessor.reader acc fx and wy = Accessor.writer acc fy in
        Accessor.iter_runs acc (fun lo hi ->
            for id = lo to hi do
              wy id ((2.5 *. rx id) +. 1.)
            done))
  in
  (n, scalar_s, bulk_s)

(* Cold vs cached dynamic analysis on Circuit's shr -> ghost exchange (the
   partition pair Table 1 measures), through the partition-pair cache. *)
let isect_cold_cached () =
  let nodes = 16 in
  let prog = Apps.Circuit.program (Apps.Circuit.sim_config ~nodes) in
  let compiled = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:nodes) prog in
  let src = Ir.Program.find_partition compiled.Spmd.Prog.source "shr"
  and dst = Ir.Program.find_partition compiled.Spmd.Prog.source "ghost" in
  Spmd.Intersections.clear_cache ();
  let stats = Spmd.Intersections.fresh_stats () in
  let t0 = Unix.gettimeofday () in
  ignore (Spmd.Intersections.compute_cached ~stats ~src ~dst ());
  let cold = Unix.gettimeofday () -. t0 in
  let reps = 1000 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Spmd.Intersections.compute_cached ~stats ~src ~dst ())
  done;
  let cached = (Unix.gettimeofday () -. t1) /. float_of_int reps in
  (cold, cached, stats.Spmd.Intersections.cache_hits)

let data_plane () =
  header "Data plane: copy plans, bulk accessors, intersection cache";
  let copy_case name shape =
    let volume, nruns, scalar_s, plan_s, scalar_red_s, plan_red_s =
      copy_microbench shape
    in
    let speedup = scalar_s /. plan_s in
    let red_speedup = scalar_red_s /. plan_red_s in
    Printf.printf
      "%-22s %8d elems %6d runs  copy %10.1f -> %10.1f Melem/s (%5.1fx)  reduce %9.1f -> %9.1f Melem/s (%5.1fx)\n%!"
      name volume nruns
      (float_of_int volume /. scalar_s /. 1e6)
      (float_of_int volume /. plan_s /. 1e6)
      speedup
      (float_of_int volume /. scalar_red_s /. 1e6)
      (float_of_int volume /. plan_red_s /. 1e6)
      red_speedup;
    ( Obs.Json.Obj
        [
          ("case", Obs.Json.Str name);
          ("volume_elems", Obs.Json.Int volume);
          ("runs", Obs.Json.Int nruns);
          ("scalar_s_per_copy", Obs.Json.Float scalar_s);
          ("plan_s_per_copy", Obs.Json.Float plan_s);
          ("copy_speedup", Obs.Json.Float speedup);
          ("scalar_s_per_reduce", Obs.Json.Float scalar_red_s);
          ("plan_s_per_reduce", Obs.Json.Float plan_red_s);
          ("reduce_speedup", Obs.Json.Float red_speedup);
        ],
      speedup )
  in
  let ghost, ghost_speedup = copy_case "ghost-exchange(rows)" `Rows in
  let ghost_cols, _ = copy_case "ghost-exchange(cols)" `Cols in
  let n, scalar_s, bulk_s = kernel_microbench () in
  let kernel_speedup = scalar_s /. bulk_s in
  Printf.printf
    "%-22s %8d elems            saxpy %9.1f -> %10.1f Melem/s (%5.1fx)\n%!"
    "kernel(bulk accessor)" n
    (float_of_int n /. scalar_s /. 1e6)
    (float_of_int n /. bulk_s /. 1e6)
    kernel_speedup;
  let cold, cached, hits = isect_cold_cached () in
  let isect_speedup = cold /. cached in
  Printf.printf
    "%-22s cold %8.3f ms -> cached %8.5f ms (%7.1fx, %d hits)\n%!"
    "intersections(circuit)" (cold *. 1e3) (cached *. 1e3) isect_speedup hits;
  List.iter
    (fun (k, v) -> Obs.Metrics.set registry ("bench.data_plane." ^ k) v)
    [
      ("copy_speedup", ghost_speedup);
      ("isect_speedup", isect_speedup);
      ("kernel_speedup", kernel_speedup);
    ];
  json_data_plane :=
    Obs.Json.Obj
      [
        ("copy", Obs.Json.List [ ghost; ghost_cols ]);
        ( "kernel",
          Obs.Json.Obj
            [
              ("elems", Obs.Json.Int n);
              ("scalar_s", Obs.Json.Float scalar_s);
              ("bulk_s", Obs.Json.Float bulk_s);
              ("speedup", Obs.Json.Float kernel_speedup);
            ] );
        ( "intersections",
          Obs.Json.Obj
            [
              ("cold_ms", Obs.Json.Float (cold *. 1e3));
              ("cached_ms", Obs.Json.Float (cached *. 1e3));
              ("speedup", Obs.Json.Float isect_speedup);
              ("cache_hits", Obs.Json.Int hits);
            ] );
      ]

(* ---------- Bechamel microbenchmarks ---------- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel microbenchmarks (one per figure/table)";
  let stencil16 = Apps.Stencil.program (Apps.Stencil.default ~nodes:16) in
  let circuit16 = Apps.Circuit.program (Apps.Circuit.sim_config ~nodes:16) in
  let aero4 = Apps.Miniaero.program (Apps.Miniaero.sim_config ~nodes:4) in
  let pennant16 = Apps.Pennant.program (Apps.Pennant.sim_config ~nodes:16) in
  let compiled16 = Cr.Pipeline.compile (Cr.Pipeline.default ~shards:16) stencil16 in
  let machine16 = Realm.Machine.make ~nodes:16 () in
  let circuit_src =
    (Cr.Pipeline.compile (Cr.Pipeline.default ~shards:16) circuit16)
      .Spmd.Prog.source
  in
  let shr = Ir.Program.find_partition circuit_src "shr"
  and ghost = Ir.Program.find_partition circuit_src "ghost" in
  let tests =
    [
      Test.make ~name:"fig6:stencil-cr-sim-16nodes"
        (Staged.stage (fun () ->
             Legion.Sim_spmd.simulate ~machine:machine16 ~steps:4 compiled16));
      Test.make ~name:"fig7:miniaero-compile-4nodes"
        (Staged.stage (fun () ->
             Cr.Pipeline.compile (Cr.Pipeline.default ~shards:4) aero4));
      Test.make ~name:"fig8:pennant-compile-16nodes"
        (Staged.stage (fun () ->
             Cr.Pipeline.compile (Cr.Pipeline.default ~shards:16) pennant16));
      Test.make ~name:"fig9:circuit-compile-16nodes"
        (Staged.stage (fun () ->
             Cr.Pipeline.compile (Cr.Pipeline.default ~shards:16) circuit16));
      Test.make ~name:"table1:circuit-intersections"
        (Staged.stage (fun () -> Spmd.Intersections.compute ~src:shr ~dst:ghost ()));
      Test.make ~name:"table1:circuit-all-pairs"
        (Staged.stage (fun () ->
             Spmd.Intersections.compute_all_pairs ~src:shr ~dst:ghost ()));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] ->
            Printf.printf "%40s  %12.3f ms/run\n%!" name (est /. 1e6)
        | _ -> Printf.printf "%40s  (no estimate)\n%!" name)
      results
  in
  benchmark (Test.make_grouped ~name:"bench" tests)

(* ---------- machine-readable artifact ---------- *)

let write_json () =
  let j =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "crc-bench/1");
        ("fast", Obs.Json.Bool fast);
        ("quick", Obs.Json.Bool quick);
        ( "node_counts",
          Obs.Json.List (List.map (fun n -> Obs.Json.Int n) node_counts) );
        ("figures", Obs.Json.List !json_figures);
        ("table1", Obs.Json.List !json_table1);
        ("ablations", !json_ablations);
        ("resilience_overhead", Obs.Json.List !json_resilience);
        ("data_plane", !json_data_plane);
        ("metrics", Obs.Metrics.to_json registry);
      ]
  in
  let oc = open_out json_path in
  Obs.Json.to_channel ~indent:2 oc j;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" json_path

(* Read the artifact back and check schema + the PR3 acceptance thresholds
   (copy plans >= 5x the per-element baseline, cached intersections >= 10x
   cold). Exits non-zero on failure — the CI smoke gate. *)
let self_check () =
  let fail msg =
    Printf.eprintf "bench artifact check FAILED: %s\n%!" msg;
    exit 1
  in
  let s =
    let ic = open_in json_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let j =
    match Obs.Json.of_string s with
    | Ok j -> j
    | Error e -> fail ("unparseable artifact: " ^ e)
  in
  (match Option.bind (Obs.Json.member "schema" j) Obs.Json.string_value with
  | Some "crc-bench/1" -> ()
  | _ -> fail "schema is not crc-bench/1");
  List.iter
    (fun k ->
      if Obs.Json.member k j = None then fail (Printf.sprintf "missing key %S" k))
    [ "figures"; "table1"; "ablations"; "resilience_overhead"; "data_plane"; "metrics" ];
  let dp =
    match Obs.Json.member "data_plane" j with
    | Some (Obs.Json.Obj _ as d) -> d
    | _ -> fail "data_plane section missing or not an object"
  in
  let num path v =
    match Option.bind v Obs.Json.number with
    | Some x -> x
    | None -> fail (Printf.sprintf "missing number %s" path)
  in
  let copy_speedup =
    match Option.bind (Obs.Json.member "copy" dp) Obs.Json.to_list with
    | Some (first :: _) ->
        num "data_plane.copy[0].copy_speedup"
          (Obs.Json.member "copy_speedup" first)
    | _ -> fail "data_plane.copy is empty"
  in
  let isect_speedup =
    num "data_plane.intersections.speedup"
      (Option.bind (Obs.Json.member "intersections" dp) (Obs.Json.member "speedup"))
  in
  if copy_speedup < 5. then
    fail (Printf.sprintf "copy plan speedup %.2fx < 5x" copy_speedup);
  if isect_speedup < 10. then
    fail (Printf.sprintf "cached intersection speedup %.2fx < 10x" isect_speedup);
  Printf.printf
    "artifact %s: schema + thresholds OK (copy %.1fx, intersections %.1fx)\n%!"
    json_path copy_speedup isect_speedup

let () =
  if not quick then begin
    fig6 ();
    fig7 ();
    fig8 ();
    fig9 ();
    table1 ();
    ablations ();
    resilience_overhead ()
  end;
  data_plane ();
  if not (quick || no_bechamel) then bechamel_suite ();
  write_json ();
  self_check ();
  Printf.printf "\nAll experiments complete.\n"
